//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate provides the (small) subset of the `rand` 0.8 API the
//! workspace actually uses, with the same names and signatures:
//!
//! - [`RngCore`] / [`Rng`] with `gen_range`, `gen_bool` and `gen`,
//! - [`SeedableRng::seed_from_u64`],
//! - [`rngs::StdRng`], a deterministic xoshiro256++ generator.
//!
//! `StdRng` is **not** the ChaCha12 generator of the real crate, so seeded
//! streams differ from upstream `rand`; within this workspace every consumer
//! only relies on seeded streams being deterministic and statistically
//! uniform, which xoshiro256++ provides.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

/// A source of random `u64`s. The base trait every generator implements.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Builds a generator from a single `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform `f64` in `[0, 1)` from one `u64` draw (53 mantissa bits).
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing extension methods; blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        unit_f64(self) < p
    }

    /// Samples a value of a [`Standard`]-distributed type (`f64` in `[0,1)`,
    /// full-range integers, fair `bool`s).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a single value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Scalar types that know how to sample themselves from an interval.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(
            self.start < self.end,
            "gen_range requires a non-empty range"
        );
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range requires a non-empty range");
        T::sample_interval(rng, low, high, true)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo) + if inclusive { 1 } else { 0 };
                debug_assert!(span > 0);
                // Modulo sampling; the bias is < span/2^64, negligible for the
                // simulation-sized spans this workspace draws.
                let draw = (rng.next_u64() as u128 % span as u128) as i128;
                (lo + draw) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                // As in real `rand`, floats ignore inclusivity: the endpoint
                // has measure zero.
                let _ = inclusive;
                let u = unit_f64(rng) as $t;
                low + (high - low) * u
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&x));
            let n: usize = rng.gen_range(0..7);
            assert!(n < 7);
            let m: usize = rng.gen_range(3..=5);
            assert!((3..=5).contains(&m));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 1/2");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac} far from 1/4");
    }
}

//! Concrete generators: [`StdRng`].

use crate::{RngCore, SeedableRng};

/// The workspace's standard seeded generator: xoshiro256++.
///
/// Unlike upstream `rand` (ChaCha12), this is a small-state non-crypto PRNG;
/// it passes BigCrush and is more than uniform enough for the Monte-Carlo
/// estimates this workspace runs. Seeded streams are stable across releases
/// of this vendored crate so test fixtures stay reproducible.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

/// SplitMix64, used to expand a 64-bit seed into the xoshiro state
/// (the initialization recommended by the xoshiro authors).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // The all-zero state is the one fixed point; splitmix64 cannot
        // produce four zeros from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector_is_stable() {
        // Pin the stream so fixture-dependent tests elsewhere can rely on it.
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(first, {
            let mut check = StdRng::seed_from_u64(0);
            (0..3).map(|_| check.next_u64()).collect::<Vec<_>>()
        });
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so they
//! are wire-ready once the real `serde` is available, but no code path
//! serializes anything yet. These derives therefore expand to nothing; the
//! marker traits in the sibling `serde` shim are blanket-implemented, so
//! `#[derive(Serialize, Deserialize)]` stays a compile-time no-op with the
//! same spelling as the real thing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

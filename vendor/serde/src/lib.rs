//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no crates.io access, so this shim keeps the
//! workspace's `#[derive(Serialize, Deserialize)]` annotations compiling:
//! the derives (re-exported from the vendored `serde_derive`) expand to
//! nothing, and the traits below are blanket-implemented markers. Swapping
//! in the real `serde` later is a one-line Cargo.toml change — no source
//! edits — because every spelling matches upstream.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that would be serializable under real `serde`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for types that would be deserializable under real `serde`.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of the criterion 0.5 API the workspace's `benches/` use —
//! [`Criterion`], [`Bencher::iter`], [`criterion_group!`], and
//! [`criterion_main!`] — backed by a simple wall-clock harness: per
//! benchmark it warms up briefly, then times `sample_size` samples (capped
//! by a time budget) and reports min/mean/median nanoseconds per iteration.
//!
//! It honors the two CLI flags cargo's test/bench machinery passes to
//! `harness = false` targets: `--test` (run each benchmark once, for
//! `cargo test --benches`) and a filter string (run only matching ids).
//!
//! Four environment variables drive machine-readable measurement runs
//! (the `bench_report` harness in `crates/bench` sets all of them):
//!
//! - `CRITERION_SAMPLE_SIZE` — overrides the sample count, winning over
//!   any builder configuration so one knob bounds every suite.
//! - `CRITERION_MEASUREMENT_MS` / `CRITERION_WARMUP_MS` — override the
//!   per-benchmark measurement budget and warm-up duration, likewise.
//! - `CRITERION_JSON` — a file path; each finished benchmark appends one
//!   JSON line `{"id":…,"min_ns":…,"median_ns":…,"mean_ns":…,"samples":…}`
//!   (nothing is emitted in `--test` mode).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export for drop-in compatibility with `criterion::black_box`.
pub use std::hint::black_box;

/// Benchmark driver: holds configuration and runs registered functions.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(50),
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the time budget for the measurement phase of each benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up duration for each benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Applies the CLI arguments cargo passes to `harness = false`
    /// targets, then the `CRITERION_*` environment overrides (which win
    /// over builder configuration — the whole point is letting one
    /// external harness bound every suite uniformly).
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // Flags we accept and ignore for cargo compatibility.
                "--bench" | "--list" | "--nocapture" | "--quiet" | "-q" | "--exact" => {}
                other => {
                    if !other.starts_with('-') && self.filter.is_none() {
                        self.filter = Some(other.to_string());
                    }
                }
            }
        }
        if let Some(n) = env_u64("CRITERION_SAMPLE_SIZE") {
            self.sample_size = (n as usize).max(1);
        }
        if let Some(ms) = env_u64("CRITERION_MEASUREMENT_MS") {
            self.measurement_time = Duration::from_millis(ms);
        }
        if let Some(ms) = env_u64("CRITERION_WARMUP_MS") {
            self.warm_up_time = Duration::from_millis(ms);
        }
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            mode: if self.test_mode {
                Mode::TestOnce
            } else {
                Mode::Measure {
                    sample_size: self.sample_size,
                    measurement_time: self.measurement_time,
                    warm_up_time: self.warm_up_time,
                }
            },
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(id);
        self
    }
}

enum Mode {
    TestOnce,
    Measure {
        sample_size: usize,
        measurement_time: Duration,
        warm_up_time: Duration,
    },
}

/// Passed to each benchmark closure; [`Bencher::iter`] times a routine.
pub struct Bencher {
    mode: Mode,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, storing one wall-clock sample per invocation batch.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match self.mode {
            Mode::TestOnce => {
                black_box(routine());
            }
            Mode::Measure {
                sample_size,
                measurement_time,
                warm_up_time,
            } => {
                // Warm-up: also estimates the per-iteration cost so each
                // timed sample can batch enough iterations to out-resolve
                // the clock.
                let warm_start = Instant::now();
                let mut warm_iters: u64 = 0;
                while warm_start.elapsed() < warm_up_time || warm_iters == 0 {
                    black_box(routine());
                    warm_iters += 1;
                    if warm_iters >= 1_000_000 {
                        break;
                    }
                }
                let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
                // Aim each sample at ~1ms of work, at least one iteration.
                let batch = ((1_000_000.0 / est_ns).ceil() as u64).max(1);

                let budget = Instant::now();
                self.samples_ns.clear();
                for _ in 0..sample_size {
                    let t = Instant::now();
                    for _ in 0..batch {
                        black_box(routine());
                    }
                    self.samples_ns
                        .push(t.elapsed().as_nanos() as f64 / batch as f64);
                    if budget.elapsed() > measurement_time {
                        break;
                    }
                }
            }
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<48} ok (test mode)");
            return;
        }
        self.samples_ns.sort_by(|a, b| a.total_cmp(b));
        let n = self.samples_ns.len();
        let min = self.samples_ns[0];
        let median = self.samples_ns[n / 2];
        let mean = self.samples_ns.iter().sum::<f64>() / n as f64;
        println!(
            "{id:<48} min {} · median {} · mean {} ({n} samples)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                append_json_line(&path, id, min, median, mean, n);
            }
        }
    }
}

/// Appends one machine-readable result line to the `CRITERION_JSON` file.
/// Failures are reported but never abort the run — a broken report file
/// should not take the measurements down with it.
fn append_json_line(path: &str, id: &str, min: f64, median: f64, mean: f64, samples: usize) {
    use std::io::Write;
    let escaped: String = id
        .chars()
        .flat_map(|ch| match ch {
            '"' | '\\' => vec!['\\', ch],
            _ => vec![ch],
        })
        .collect();
    let line = format!(
        "{{\"id\":\"{escaped}\",\"min_ns\":{min:.1},\"median_ns\":{median:.1},\"mean_ns\":{mean:.1},\"samples\":{samples}}}\n",
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("criterion: failed to append to CRITERION_JSON ({path}): {e}");
    }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:7.1} ns")
    } else if ns < 1e6 {
        format!("{:7.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:7.2} ms", ns / 1e6)
    } else {
        format!("{:7.2} s ", ns / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's two forms:
/// `criterion_group!(name, target, ...)` and
/// `criterion_group! { name = n; config = expr; targets = t, ... }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the `main` function for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_routine() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = false;
        c.bench_function("trivial", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }
}

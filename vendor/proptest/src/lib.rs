//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of the proptest API the workspace's tests use, with the same
//! spellings: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), [`prop_assert!`]/[`prop_assert_eq!`], range
//! and tuple strategies, [`collection::vec`] and [`Strategy::prop_map`].
//!
//! Differences from upstream, deliberate and documented:
//!
//! - Cases are sampled **uniformly** from each strategy with a deterministic
//!   per-test seed — there is no edge-case bias and no shrinking. A failure
//!   reports the case index so it can be replayed (the stream is stable).
//! - `prop_assert!` panics immediately instead of returning a `TestCaseError`.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
pub use rand::SeedableRng as __SeedableRng;

/// Items the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Per-test configuration; only `cases` is meaningful in this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default.
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value. Uniform over the strategy's domain in this shim.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: rand::SampleUniform + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: rand::SampleUniform + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};

    /// A strategy for `Vec`s of exactly `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Stable 64-bit FNV-1a hash of the test path, used to derive per-test seeds.
pub fn __seed_for(test_path: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_path.bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Immediate-panic analog of proptest's `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Immediate-panic analog of proptest's `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Immediate-panic analog of proptest's `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn` becomes a `#[test]` that samples its
/// arguments from the given strategies for `config.cases` cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            for __case in 0..(__config.cases as u64) {
                let __seed = $crate::__seed_for(concat!(module_path!(), "::", stringify!($name)), __case);
                let mut __rng = <$crate::__StdRng as $crate::__SeedableRng>::seed_from_u64(__seed);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __run = || -> () { $body };
                __run();
            }
        }
    )+};
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )+
        }
    };
}

#[doc(hidden)]
pub use rand::rngs::StdRng as __StdRng;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn tiny() -> impl Strategy<Value = f64> {
        -1.0..1.0f64
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_respect_bounds(x in 0.0..2.5f64, n in 1usize..6, k in 0u64..10) {
            prop_assert!((0.0..2.5).contains(&x));
            prop_assert!((1..6).contains(&n));
            prop_assert!(k < 10);
        }

        #[test]
        fn tuples_vecs_and_map_compose(v in crate::collection::vec((tiny(), tiny()), 4).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 4);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in tiny()) {
            prop_assert!(x.abs() <= 1.0);
        }
    }
}

//! `paradrive` — speed-limit-aware basis-gate codesign and parallel-drive
//! transpilation for parametrically coupled quantum computers.
//!
//! This facade crate re-exports the `paradrive` workspace: a from-scratch
//! Rust reproduction of *"Parallel Driving for Fast Quantum Computing Under
//! Speed Limits"* (McKinney, Zhou, Xia, Hatridge, Jones — ISCA 2023).
//!
//! # What's inside
//!
//! | Module | Contents |
//! |---|---|
//! | [`linalg`] | complex matrices, `expm`, eigensolvers, Haar-random unitaries |
//! | [`weyl`] | Weyl-chamber coordinates, Makhlin invariants, the 2Q gate zoo |
//! | [`hamiltonian`] | conversion–gain coupler drives and parallel 1Q drives |
//! | [`speedlimit`] | speed-limit functions and Algorithm-1 duration scaling |
//! | [`optimizer`] | Nelder–Mead template synthesis onto target gate classes |
//! | [`coverage`] | template coverage sets, `K`/`D` decomposition scores |
//! | [`circuit`] | circuit IR and the 16-qubit benchmark suite |
//! | [`sim`] | exact statevector simulation and Quantum-Volume analysis |
//! | [`transpiler`] | topology zoo, device calibration, (noise-aware) routing, consolidation, scheduling, fidelity |
//! | [`core`] | baseline vs parallel-drive cost models, codesign, the full flow |
//! | [`engine`] | batched multi-threaded transpilation with a decomposition cache |
//! | [`verify`] | semantic equivalence oracles: exact up-to-permutation and Monte-Carlo |
//! | [`obs`] | deterministic tracing/metrics: per-stage spans, counters, Chrome-trace export |
//!
//! # Quickstart
//!
//! ```
//! use paradrive::weyl::{magic::coordinates, WeylPoint};
//! use paradrive::hamiltonian::ConversionGain;
//! use std::f64::consts::FRAC_PI_4;
//!
//! // Drive conversion and gain at equal strength: the pulse lands on the
//! // CNOT local-equivalence class (the paper's Eq. 4).
//! let pulse = ConversionGain::new(FRAC_PI_4, FRAC_PI_4).unitary(1.0);
//! let point = coordinates(&pulse)?;
//! assert!(point.approx_eq(WeylPoint::CNOT, 1e-9));
//! # Ok::<(), paradrive::weyl::WeylError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use paradrive_circuit as circuit;
pub use paradrive_core as core;
pub use paradrive_coverage as coverage;
pub use paradrive_engine as engine;
pub use paradrive_hamiltonian as hamiltonian;
pub use paradrive_linalg as linalg;
pub use paradrive_obs as obs;
pub use paradrive_optimizer as optimizer;
pub use paradrive_sim as sim;
pub use paradrive_speedlimit as speedlimit;
pub use paradrive_transpiler as transpiler;
pub use paradrive_verify as verify;
pub use paradrive_weyl as weyl;

//! Semantic verification of the transpiler against the exact simulator:
//! routing must preserve the circuit's action up to its reported final
//! qubit layout, and consolidation must preserve block unitaries exactly.

use paradrive::circuit::{Circuit, OneQ, TwoQ};
use paradrive::linalg::mat::process_fidelity;
use paradrive::sim::{circuit_unitary, State};
use paradrive::transpiler::consolidate::{consolidate, Item};
use paradrive::transpiler::routing::route;
use paradrive::transpiler::topology::CouplingMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random 1Q+2Q circuit over `n` qubits for semantic fuzzing.
fn random_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        if rng.gen_bool(0.4) {
            let q = rng.gen_range(0..n);
            match rng.gen_range(0..4) {
                0 => c.push_1q(OneQ::H, q),
                1 => c.push_1q(OneQ::T, q),
                2 => c.push_1q(OneQ::Rx(rng.gen_range(0.0..3.0)), q),
                _ => c.push_1q(OneQ::Rz(rng.gen_range(0.0..3.0)), q),
            }
        } else {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            match rng.gen_range(0..4) {
                0 => c.push_2q(TwoQ::Cx, a, b),
                1 => c.push_2q(TwoQ::Cz, a, b),
                2 => c.push_2q(TwoQ::Swap, a, b),
                _ => c.push_2q(TwoQ::CPhase(rng.gen_range(0.1..3.0)), a, b),
            }
        }
    }
    c
}

#[test]
fn routing_preserves_semantics_on_2x2_grid() {
    let map = CouplingMap::grid(2, 2);
    for seed in 0..6 {
        let c = random_circuit(4, 30, seed);
        let routed = route(&c, &map, seed).unwrap();
        let original = State::run(&c).unwrap();
        let physical = State::run(&routed.circuit).unwrap();
        // The routed state holds logical qubit l at physical routed.layout[l].
        let recovered = physical.permuted(&routed.layout).unwrap();
        let f = original.fidelity(&recovered);
        assert!(
            f > 1.0 - 1e-9,
            "seed {seed}: routed circuit diverged (fidelity {f})"
        );
    }
}

#[test]
fn routing_preserves_semantics_on_line() {
    let map = CouplingMap::line(5);
    for seed in 0..4 {
        let c = random_circuit(5, 40, 100 + seed);
        let routed = route(&c, &map, seed).unwrap();
        let f = State::run(&routed.circuit)
            .unwrap()
            .permuted(&routed.layout)
            .unwrap()
            .fidelity(&State::run(&c).unwrap());
        assert!(f > 1.0 - 1e-9, "seed {seed}: fidelity {f}");
    }
}

#[test]
fn consolidation_preserves_block_unitaries() {
    // Rebuild a 2-qubit circuit from its consolidated items and compare the
    // full unitary against the original (consolidation on 2 qubits loses
    // only trailing standalone 1Q runs, which it also reports).
    for seed in 0..6 {
        let c = random_circuit(2, 20, 200 + seed);
        let u_orig = circuit_unitary(&c).unwrap();
        let items = consolidate(&c).unwrap();
        let mut u_rebuilt = paradrive::linalg::CMat::identity(4);
        for item in &items {
            let full = match item {
                Item::Block { a, b, unitary, .. } => {
                    assert!((*a == 0 && *b == 1) || (*a == 1 && *b == 0));
                    if *a == 0 {
                        unitary.clone()
                    } else {
                        let s = paradrive::weyl::gates::swap();
                        s.mul(unitary).mul(&s)
                    }
                }
                Item::OneQRun { q, unitary, .. } => {
                    if *q == 0 {
                        unitary.kron(&paradrive::linalg::CMat::identity(2))
                    } else {
                        paradrive::linalg::CMat::identity(2).kron(unitary)
                    }
                }
            };
            u_rebuilt = full.mul(&u_rebuilt);
        }
        let f = process_fidelity(&u_orig, &u_rebuilt);
        assert!(f > 1.0 - 1e-9, "seed {seed}: reconstruction fidelity {f}");
    }
}

#[test]
fn quantum_volume_blocks_survive_routing() {
    // QV circuits carry arbitrary SU(4) payloads; routing must keep them
    // intact (only adding SWAPs).
    let map = CouplingMap::grid(2, 2);
    let c = paradrive::circuit::benchmarks::quantum_volume(4, 3, 11);
    let routed = route(&c, &map, 0).unwrap();
    let f = State::run(&routed.circuit)
        .unwrap()
        .permuted(&routed.layout)
        .unwrap()
        .fidelity(&State::run(&c).unwrap());
    assert!(f > 1.0 - 1e-9, "fidelity {f}");
}

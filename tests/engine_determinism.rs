//! The batched engine must be a pure function of (batch, config): for a
//! fixed routing-seed count, its output — durations, fidelities, routed
//! circuits — is identical across thread counts, with the cache on or
//! off, and bit-for-bit equal to the pre-existing sequential pipeline
//! (`paradrive::core::flow::compare_models`).

use paradrive::circuit::benchmarks;
use paradrive::core::flow::compare_models;
use paradrive::engine::{run_batch, Batch, EngineConfig, EngineReport};
use paradrive::transpiler::fidelity::FidelityModel;
use paradrive::transpiler::topology::CouplingMap;

const SEEDS: u64 = 4;

/// A batch that exercises every costing path: CNOT/iSWAP/SWAP family
/// classes (GHZ, QAOA), fractional CNOT-family phases and general
/// CPhase·SWAP merges (QFT), and Haar-random general classes (QV).
fn batch() -> Batch {
    let mut b = Batch::new(CouplingMap::grid(4, 4));
    b.push("GHZ", benchmarks::ghz(16));
    b.push("QFT", benchmarks::qft(16));
    b.push("QAOA", benchmarks::qaoa(16, 2, 7));
    b.push("QV", benchmarks::quantum_volume(16, 4, 7));
    b
}

fn assert_reports_identical(a: &EngineReport, b: &EngineReport) {
    assert_eq!(a.circuits.len(), b.circuits.len());
    for (x, y) in a.circuits.iter().zip(&b.circuits) {
        let (r, s) = (&x.result, &y.result);
        assert_eq!(r.name, s.name);
        assert_eq!(r.swaps, s.swaps, "{}", r.name);
        assert_eq!(r.blocks, s.blocks, "{}", r.name);
        for (label, v, w) in [
            (
                "baseline_duration",
                r.baseline_duration,
                s.baseline_duration,
            ),
            (
                "optimized_duration",
                r.optimized_duration,
                s.optimized_duration,
            ),
            (
                "duration_reduction_pct",
                r.duration_reduction_pct,
                s.duration_reduction_pct,
            ),
            (
                "fq_improvement_pct",
                r.fq_improvement_pct,
                s.fq_improvement_pct,
            ),
            (
                "ft_improvement_pct",
                r.ft_improvement_pct,
                s.ft_improvement_pct,
            ),
        ] {
            assert_eq!(v.to_bits(), w.to_bits(), "{}: {label} {v} vs {w}", r.name);
        }
        assert_eq!(x.routed, y.routed, "{}: routed circuits differ", r.name);
    }
}

#[test]
fn tracing_never_perturbs_the_report() {
    // The observability layer's acceptance bar: flipping the process-global
    // recorder on (what `--trace` does) must leave the deterministic report
    // bit-identical, at one worker and at four.
    let batch = batch();
    let base = EngineConfig::default()
        .routing_seeds(SEEDS)
        .keep_routed(true);
    let quiet = run_batch(&batch, &base.threads(4)).unwrap();

    paradrive::obs::global().set_enabled(true);
    let traced_one = run_batch(&batch, &base.threads(1)).unwrap();
    let traced_four = run_batch(&batch, &base.threads(4)).unwrap();
    paradrive::obs::global().set_enabled(false);
    let _ = paradrive::obs::global().take();

    assert_reports_identical(&quiet, &traced_one);
    assert_reports_identical(&quiet, &traced_four);

    // The trace itself is populated (the batch recorder is always on) but
    // carries the wall-clock truth *next to* the report, never inside it:
    // every result field compared above came from the deterministic side.
    for report in [&quiet, &traced_one, &traced_four] {
        assert!(
            report.trace.spans.iter().any(|s| s.name == "route"),
            "batch trace lost its route spans"
        );
    }
}

#[test]
fn engine_is_deterministic_across_threads_and_cache() {
    let batch = batch();
    let base = EngineConfig::default()
        .routing_seeds(SEEDS)
        .keep_routed(true);

    let one = run_batch(&batch, &base.threads(1)).unwrap();
    let four = run_batch(&batch, &base.threads(4)).unwrap();
    let four_nocache = run_batch(&batch, &base.threads(4).cache(false)).unwrap();

    assert_reports_identical(&one, &four);
    assert_reports_identical(&one, &four_nocache);

    // The cache was actually exercised (and surfaced in the report) —
    // repeated classes across the suite guarantee hits.
    let stats = one.cache_stats().expect("cache stats with cache on");
    assert!(stats.hits > 0, "no hits: {stats:?}");
    assert!(stats.misses > 0, "no misses: {stats:?}");
    assert!(four_nocache.cache_stats().is_none());
    assert_eq!(one.threads, 1);
    assert_eq!(four.threads, 4);

    // And the engine agrees bit-for-bit with the pre-existing sequential
    // pipeline on every circuit.
    for (job, report) in batch.jobs().iter().zip(&one.circuits) {
        let seq = compare_models(
            &job.name,
            &job.circuit,
            batch.map(),
            SEEDS,
            0.25,
            FidelityModel::paper(),
        )
        .unwrap();
        let r = &report.result;
        assert_eq!(r.swaps, seq.swaps, "{}", job.name);
        assert_eq!(r.blocks, seq.blocks, "{}", job.name);
        assert_eq!(
            r.baseline_duration.to_bits(),
            seq.baseline_duration.to_bits(),
            "{}: baseline {} vs {}",
            job.name,
            r.baseline_duration,
            seq.baseline_duration,
        );
        assert_eq!(
            r.optimized_duration.to_bits(),
            seq.optimized_duration.to_bits(),
            "{}: optimized {} vs {}",
            job.name,
            r.optimized_duration,
            seq.optimized_duration,
        );
        assert_eq!(
            r.ft_improvement_pct.to_bits(),
            seq.ft_improvement_pct.to_bits(),
            "{}",
            job.name
        );
    }
}

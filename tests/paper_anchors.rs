//! Regression tests pinning the paper's headline numbers: if any of these
//! drift, the reproduction no longer matches the published evaluation.

use paradrive::core::flow::gate_infidelities;
use paradrive::core::scoring::{best_basis, duration_table, paper_lambda, Metric};
use paradrive::speedlimit::{Characterized, Linear, Squared};
use paradrive::transpiler::fidelity::FidelityModel;

fn find<'a>(
    rows: &'a [paradrive::core::scoring::DurationRow],
    name: &str,
) -> &'a paradrive::core::scoring::DurationRow {
    rows.iter().find(|r| r.basis == name).unwrap()
}

#[test]
fn table2_all_dbasis_values() {
    // Paper Table II D_Basis rows for all three speed limits.
    let cases: Vec<(&str, Box<dyn paradrive::speedlimit::SpeedLimit>, [f64; 6])> = vec![
        (
            "linear",
            Box::new(Linear::normalized()),
            [1.0, 0.5, 1.0, 0.5, 1.0, 0.5],
        ),
        (
            "squared",
            Box::new(Squared::normalized()),
            [1.0, 0.5, 0.71, 0.35, 0.79, 0.40],
        ),
        (
            "snail",
            Box::new(Characterized::snail()),
            [1.0, 0.5, 1.80, 0.90, 1.40, 0.70],
        ),
    ];
    let names = ["iSWAP", "sqrt_iSWAP", "CNOT", "sqrt_CNOT", "B", "sqrt_B"];
    for (label, slf, wants) in cases {
        let rows = duration_table(slf.as_ref(), 0.0, paper_lambda()).unwrap();
        for (name, want) in names.iter().zip(wants) {
            let got = find(&rows, name).d_basis;
            assert!(
                (got - want).abs() < 0.01,
                "{label}/{name}: D_Basis {got} vs paper {want}"
            );
        }
    }
}

#[test]
fn table3_sqrt_iswap_row() {
    let slf = Linear::normalized();
    let rows = duration_table(&slf, 0.25, paper_lambda()).unwrap();
    let r = find(&rows, "sqrt_iSWAP");
    assert!((r.d_cnot - 1.75).abs() < 1e-9);
    assert!((r.d_swap - 2.50).abs() < 1e-9);
    assert!((r.e_d_haar - 1.91).abs() < 0.01);
    assert!((r.d_w - 2.15).abs() < 0.01);
}

#[test]
fn paper_conclusion_sqrt_iswap_wins() {
    // "for a linear speed limit, √iSWAP is the most duration optimized
    // basis gate" at appreciable 1Q cost.
    let slf = Linear::normalized();
    for d1q in [0.1, 0.25] {
        let rows = duration_table(&slf, d1q, paper_lambda()).unwrap();
        assert_eq!(best_basis(&rows, Metric::Haar), "sqrt_iSWAP", "d1q={d1q}");
        assert_eq!(best_basis(&rows, Metric::W), "sqrt_iSWAP", "d1q={d1q}");
    }
}

#[test]
fn table6_infidelity_improvements() {
    let rows = gate_infidelities(0.25, FidelityModel::paper());
    let get = |n: &str| rows.iter().find(|r| r.target == n).unwrap();
    // Paper: CNOT 14.3%, SWAP 9.98%, Haar 10.5%, W 11.62%.
    assert!((get("CNOT").improved_pct - 14.3).abs() < 1.5);
    assert!((get("SWAP").improved_pct - 9.98).abs() < 1.5);
    assert!((get("E[Haar]").improved_pct - 10.5).abs() < 1.5);
    assert!((get("W(0.47)").improved_pct - 11.62).abs() < 1.5);
}

#[test]
fn snail_favors_conversion_side_iswap() {
    // "For the SNAIL modulator all gates are pinned at iSWAP on the
    // conversion side."
    let slf = Characterized::snail();
    let rows = duration_table(&slf, 0.0, paper_lambda()).unwrap();
    for m in [Metric::Haar, Metric::Cnot, Metric::Swap, Metric::W] {
        assert!(best_basis(&rows, m).contains("iSWAP"));
    }
}

//! Cross-validation of the paper's fidelity model (Eqs. 10–11) against
//! channel-level density-matrix simulation: the Table VI infidelities are
//! exactly the amplitude-damping survival of a fully excited qubit pair
//! over the decomposition duration.

use paradrive::circuit::{Circuit, OneQ};
use paradrive::core::rules::{total_duration, BaselineSqrtIswap, ParallelDriveRules};
use paradrive::sim::{Density, State};
use paradrive::transpiler::fidelity::FidelityModel;
use paradrive::transpiler::CostModel;
use paradrive::weyl::WeylPoint;

/// Worst-case two-qubit wire state |11⟩.
fn excited_pair() -> State {
    let mut c = Circuit::new(2);
    c.push_1q(OneQ::X, 0);
    c.push_1q(OneQ::X, 1);
    State::run(&c).unwrap()
}

fn channel_infidelity(duration_pulses: f64, model: FidelityModel) -> f64 {
    let reference = excited_pair();
    let mut rho = Density::from_state(&reference);
    rho.relax_all(model.to_ns(duration_pulses), model.t1_ns)
        .unwrap();
    1.0 - rho.fidelity(&reference)
}

#[test]
fn table6_cnot_infidelity_from_channels() {
    let fm = FidelityModel::paper();
    let d1q = 0.25;
    // Baseline CNOT: 1.75 pulses. Model says 1 − exp(−2·D/T1) ≈ 0.0035.
    let d_base = total_duration(BaselineSqrtIswap::new(d1q).cost(WeylPoint::CNOT), d1q);
    let inf_channel = channel_infidelity(d_base, fm);
    let inf_model = 1.0 - fm.total_fidelity(d_base, 2);
    assert!(
        (inf_channel - inf_model).abs() < 1e-12,
        "channel {inf_channel} vs model {inf_model}"
    );
    assert!((inf_channel - 0.0035).abs() < 2e-4);

    // Optimized CNOT: 1.5 pulses → ≈ 0.0030.
    let d_opt = total_duration(ParallelDriveRules::new(d1q).cost(WeylPoint::CNOT), d1q);
    let inf_opt = channel_infidelity(d_opt, fm);
    assert!((inf_opt - 0.0030).abs() < 2e-4);
    assert!(inf_opt < inf_channel);
}

#[test]
fn model_is_worst_case_over_input_states() {
    // For any state, channel-level fidelity ≥ the paper's exp(-N·D/T1)
    // bound (equality on |1…1⟩) — the model is a conservative wire bound.
    let fm = FidelityModel::paper();
    let d = 10.0; // pulses
    let bound = fm.total_fidelity(d, 2);

    // GHZ-like and product superposition probes.
    let mut bell = Circuit::new(2);
    bell.push_1q(OneQ::H, 0);
    bell.push_2q(paradrive::circuit::TwoQ::Cx, 0, 1);
    let mut plus = Circuit::new(2);
    plus.push_1q(OneQ::H, 0);
    plus.push_1q(OneQ::H, 1);

    for (label, c) in [("bell", bell), ("plus", plus)] {
        let reference = State::run(&c).unwrap();
        let mut rho = Density::from_state(&reference);
        rho.relax_all(fm.to_ns(d), fm.t1_ns).unwrap();
        let f = rho.fidelity(&reference);
        assert!(
            f >= bound - 1e-12,
            "{label}: channel fidelity {f} below the model bound {bound}"
        );
    }
    // And the excited pair saturates it.
    let reference = excited_pair();
    let mut rho = Density::from_state(&reference);
    rho.relax_all(fm.to_ns(d), fm.t1_ns).unwrap();
    assert!((rho.fidelity(&reference) - bound).abs() < 1e-12);
}

//! Engine-integrated semantic verification (the acceptance check for the
//! verify subsystem): with `VerifyLevel::Exact`, every ≤10-qubit suite
//! circuit — all nine benchmark builders, instantiated at exact-oracle
//! widths — passes unitary equivalence up to the routed output permutation
//! across **every topology in the zoo** and a spread of calibration
//! scenarios, with noise-aware routing on.

use paradrive::circuit::benchmarks;
use paradrive::circuit::Circuit;
use paradrive::engine::{run_batch, Batch, EngineConfig, VerifyLevel};
use paradrive::transpiler::calibration::Calibration;
use paradrive::transpiler::topology::CouplingMap;
use std::sync::Arc;

/// The full builder suite at ≤10-qubit widths.
fn small_suite(seed: u64) -> Vec<(&'static str, Circuit)> {
    vec![
        ("QV", benchmarks::quantum_volume(6, 4, seed)),
        ("VQE_L", benchmarks::vqe_linear(6, 1, seed)),
        ("GHZ", benchmarks::ghz(6)),
        ("HLF", benchmarks::hidden_linear_function(6, seed)),
        ("QFT", benchmarks::qft(6)),
        ("Adder", benchmarks::adder(2)),
        ("QAOA", benchmarks::qaoa(6, 2, seed)),
        ("VQE_F", benchmarks::vqe_full(6, 2, seed)),
        ("Multiplier", benchmarks::multiplier(1)),
    ]
}

#[test]
fn exact_verification_passes_across_the_zoo_and_calibrations() {
    let seed = 7;
    let maps: Vec<Arc<CouplingMap>> = vec![
        Arc::new(CouplingMap::grid(3, 3)),
        Arc::new(CouplingMap::ring(8)),
        Arc::new(CouplingMap::line(8)),
        Arc::new(CouplingMap::heavy_hex(2)),
        Arc::new(CouplingMap::modular(2, 4, 1).unwrap()),
    ];
    let fidelity = EngineConfig::default().fidelity;
    let mut batch = Batch::with_shared(Arc::clone(&maps[0]));
    for map in &maps {
        let cals = vec![
            Arc::new(Calibration::uniform(map, fidelity)),
            Arc::new(Calibration::spread(map, fidelity, 0.3, 17).unwrap()),
            Arc::new(Calibration::hotspot(map, fidelity, 1, 17).unwrap()),
            Arc::new(Calibration::gradient(map, fidelity, 1.0).unwrap()),
        ];
        for cal in &cals {
            for (name, circuit) in small_suite(seed) {
                batch.push_calibrated(
                    format!("{name}-{}-{}", map.label(), cal.label()),
                    circuit,
                    Arc::clone(map),
                    Arc::clone(cal),
                );
            }
        }
    }

    let config = EngineConfig::default()
        .routing_seeds(2)
        .noise_aware(true)
        .verify(VerifyLevel::Exact)
        .threads(4);
    let report = run_batch(&batch, &config).unwrap();
    assert_eq!(report.circuits.len(), 5 * 4 * 9);

    for c in &report.circuits {
        let v = c.verification.as_ref().expect("verification on");
        // Every device in this batch is ≤ 9 qubits, so the support always
        // fits the dense oracle: strictly exact, never a sampled fallback.
        assert_eq!(v.method(), "exact", "{}: {v}", c.result.name);
        assert!(!v.failed(), "{}: equivalence rejected ({v})", c.result.name);
    }
    let summary = report.verification_summary().unwrap();
    assert_eq!(summary.exact, report.circuits.len());
    assert_eq!(
        (summary.sampled, summary.skipped, summary.failed),
        (0, 0, 0)
    );
    assert!(
        summary.min_fidelity > 1.0 - 1e-9,
        "min fidelity {}",
        summary.min_fidelity
    );
}

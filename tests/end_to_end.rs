//! Workspace-spanning integration tests: drive the public API through the
//! same pipelines the paper's evaluation uses.

use paradrive::circuit::benchmarks;
use paradrive::core::flow::compare_models;
use paradrive::core::rules::{BaselineSqrtIswap, ParallelDriveRules};
use paradrive::hamiltonian::{ConversionGain, ParallelDriveBuilder};
use paradrive::optimizer::{TemplateSpec, TemplateSynthesizer};
use paradrive::speedlimit::{Characterized, DurationScale, Linear, SpeedLimit, Squared};
use paradrive::transpiler::consolidate::consolidate;
use paradrive::transpiler::fidelity::FidelityModel;
use paradrive::transpiler::routing::route_best_of;
use paradrive::transpiler::schedule::schedule;
use paradrive::transpiler::topology::CouplingMap;
use paradrive::weyl::magic::coordinates;
use paradrive::weyl::WeylPoint;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

#[test]
fn hamiltonian_to_speedlimit_chain() {
    // Build a CNOT-class pulse from the Hamiltonian, extract its chamber
    // point, and price it under all three speed limits.
    let pulse = ConversionGain::new(FRAC_PI_4, FRAC_PI_4).unitary(1.0);
    let p = coordinates(&pulse).unwrap();
    assert!(p.approx_eq(WeylPoint::CNOT, 1e-8));

    let expectations: [(&dyn SpeedLimit, f64); 3] = [
        (&Linear::normalized(), 1.0),
        (&Squared::normalized(), std::f64::consts::FRAC_1_SQRT_2),
        (&Characterized::snail(), 1.8),
    ];
    for (slf, want) in expectations {
        let scale = DurationScale::new(slf);
        let got = scale.pulse_duration(p).unwrap();
        assert!(
            (got - want).abs() < 5e-3,
            "{}: CNOT pulse duration {got}, want {want}",
            slf.name()
        );
    }
}

#[test]
fn synthesis_to_pulse_replay() {
    // Synthesize parallel-drive parameters for iSWAP → CNOT, rebuild the
    // physical pulse from them, and verify the replayed unitary lands on
    // the CNOT class.
    let spec = TemplateSpec::iswap_basis(1);
    let mut rng = StdRng::seed_from_u64(12);
    let out = TemplateSynthesizer::new(spec)
        .with_restarts(10)
        .synthesize_to_point(WeylPoint::CNOT, &mut rng)
        .unwrap();
    assert!(out.converged, "loss {}", out.loss);

    let base = ConversionGain::try_new(FRAC_PI_2, 0.0, out.params[0], out.params[1]).unwrap();
    let mut builder = ParallelDriveBuilder::new(base);
    for i in 0..4 {
        builder = builder.segment(out.params[2 + i], out.params[6 + i]);
    }
    let pulse = builder.total_time(1.0).build().unwrap();
    let replayed = coordinates(&pulse.unitary()).unwrap();
    assert!(
        replayed.chamber_dist(WeylPoint::CNOT) < 1e-3,
        "replayed pulse at {replayed}"
    );
}

#[test]
fn routed_circuit_stays_semantically_sane() {
    let map = CouplingMap::grid(4, 4);
    let c = benchmarks::qaoa(16, 1, 3);
    let routed = route_best_of(&c, &map, 3).unwrap();
    // Routing only adds SWAPs.
    assert_eq!(
        routed.circuit.two_q_count(),
        c.two_q_count() + routed.swaps_inserted
    );
    assert_eq!(routed.circuit.one_q_count(), c.one_q_count());
    // All consolidated blocks are unitary with valid chamber points.
    let items = consolidate(&routed.circuit).unwrap();
    for item in &items {
        if let paradrive::transpiler::consolidate::Item::Block { unitary, point, .. } = item {
            assert!(unitary.is_unitary(1e-8));
            assert!(point.in_chamber(1e-6));
        }
    }
}

#[test]
fn schedule_duration_monotone_in_1q_cost() {
    let map = CouplingMap::grid(4, 4);
    let c = benchmarks::ghz(16);
    let routed = route_best_of(&c, &map, 2).unwrap();
    let items = consolidate(&routed.circuit).unwrap();
    let mut last = 0.0;
    for d1q in [0.0, 0.1, 0.25, 0.5] {
        let s = schedule(&items, &BaselineSqrtIswap::new(d1q), 16);
        assert!(
            s.duration >= last,
            "duration decreased with more 1Q cost: {} < {last}",
            s.duration
        );
        last = s.duration;
    }
}

#[test]
fn optimized_flow_never_slower_across_suite_sample() {
    let map = CouplingMap::grid(4, 4);
    for b in benchmarks::standard_suite(5)
        .into_iter()
        .filter(|b| matches!(b.name, "GHZ" | "VQE_L" | "QAOA"))
    {
        let r = compare_models(b.name, &b.circuit, &map, 2, 0.25, FidelityModel::paper()).unwrap();
        assert!(
            r.optimized_duration <= r.baseline_duration + 1e-9,
            "{}: optimized {} > baseline {}",
            b.name,
            r.optimized_duration,
            r.baseline_duration
        );
        assert!(r.duration_reduction_pct > 0.0, "{}: no gain", b.name);
    }
}

#[test]
fn cost_models_agree_on_identity_blocks() {
    // A CX followed by its inverse consolidates to the identity class and
    // must be free under both models.
    let mut c = paradrive::circuit::Circuit::new(2);
    c.push_2q(paradrive::circuit::TwoQ::Cx, 0, 1);
    c.push_2q(paradrive::circuit::TwoQ::Cx, 0, 1);
    let items = consolidate(&c).unwrap();
    let base = schedule(&items, &BaselineSqrtIswap::new(0.25), 2);
    let opt = schedule(&items, &ParallelDriveRules::new(0.25), 2);
    assert_eq!(base.duration, 0.0);
    assert_eq!(opt.duration, 0.0);
}

//! Quickstart: from a driven coupler Hamiltonian to a scored basis gate.
//!
//! Run with `cargo run --release --example quickstart`.

use paradrive::hamiltonian::{ConversionGain, ParallelDriveBuilder};
use paradrive::speedlimit::{Characterized, DurationScale, Linear};
use paradrive::weyl::invariants::MakhlinInvariants;
use paradrive::weyl::{gates, magic::coordinates, WeylPoint};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A parametric coupler drive: conversion at θc = π/2 is an iSWAP.
    let iswap_pulse = ConversionGain::new(FRAC_PI_2, 0.0).unitary(1.0);
    let p = coordinates(&iswap_pulse)?;
    println!(
        "conversion-only pulse lands at {p} (iSWAP = {})",
        WeylPoint::ISWAP
    );

    // 2. Mixing gain in moves the gate along the chamber floor: equal
    //    drives realize the CNOT class (Eq. 4 of the paper).
    let cnot_pulse = ConversionGain::new(FRAC_PI_4, FRAC_PI_4).unitary(1.0);
    println!("balanced pulse lands at {}", coordinates(&cnot_pulse)?);
    let inv = MakhlinInvariants::of(&cnot_pulse)?;
    println!(
        "its Makhlin invariants: ({:.3}, {:.3}, {:.3}) — CNOT is (0, 0, 1)",
        inv.g1, inv.g2, inv.g3
    );

    // 3. Speed limits decide how fast each family can be pumped.
    let linear = Linear::normalized();
    let snail = Characterized::snail();
    for (name, slf) in [
        ("linear", &linear as &dyn paradrive::speedlimit::SpeedLimit),
        ("snail", &snail),
    ] {
        let scale = DurationScale::new(slf);
        println!(
            "[{name}] pulse durations: iSWAP {:.2}, CNOT {:.2}, B {:.2} (iSWAP-pulse units)",
            scale.pulse_duration(WeylPoint::ISWAP)?,
            scale.pulse_duration(WeylPoint::CNOT)?,
            scale.pulse_duration(WeylPoint::B)?,
        );
    }

    // 4. Parallel drive: add 1Q X drives during the 2Q pulse and the
    //    trajectory bends off the chamber floor.
    let pd = ParallelDriveBuilder::new(ConversionGain::new(FRAC_PI_2, 0.0))
        .constant_segments(4, 1.5, 0.7)
        .build()?;
    let lifted = coordinates(&pd.unitary())?;
    println!("parallel-driven pulse reaches {lifted} — off the base plane (c3 > 0)");

    // 5. Local equivalence is what matters: CZ and CNOT are the same class.
    assert!(paradrive::weyl::invariants::locally_equivalent(
        &gates::cz(),
        &gates::cnot(),
        1e-9
    )?);
    println!("CZ ≅ CNOT up to 1Q gates — decomposition costs are identical.");
    Ok(())
}

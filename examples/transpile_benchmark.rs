//! Transpile a workload batch end to end on the batched engine and
//! compare the baseline √iSWAP flow against the parallel-drive optimized
//! flow, with cross-circuit decomposition caching.
//!
//! Run with `cargo run --release --example transpile_benchmark [name ...]`
//! where each `name` is one of QV, VQE_L, GHZ, HLF, QFT, Adder, QAOA,
//! VQE_F, Multiplier. With no names the full Table VII suite is submitted
//! as one batch.

use paradrive::circuit::benchmarks::standard_suite;
use paradrive::engine::{run_batch, Batch, EngineConfig};
use paradrive::transpiler::topology::CouplingMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wanted: Vec<String> = std::env::args().skip(1).collect();
    let batch = if wanted.is_empty() {
        Batch::standard(7)
    } else {
        let suite = standard_suite(7);
        let mut batch = Batch::new(CouplingMap::grid(4, 4));
        for want in &wanted {
            let b = suite
                .iter()
                .find(|b| b.name.eq_ignore_ascii_case(want))
                .ok_or_else(|| format!("unknown benchmark `{want}`"))?;
            batch.push(b.name, b.circuit.clone());
        }
        batch
    };

    for job in batch.jobs() {
        println!(
            "{}: {} qubits, {} 2Q gates, depth {}",
            job.name,
            job.circuit.n_qubits(),
            job.circuit.two_q_count(),
            job.circuit.depth()
        );
    }

    // Best-of-10 routing per circuit, as in the paper; circuits and
    // routing seeds fan out over all cores, decomposition costs are
    // memoized across the whole batch.
    let config = EngineConfig::default().routing_seeds(10);
    println!(
        "\nsubmitting {} circuits to the engine on {} threads...\n",
        batch.len(),
        config.workers_for(&batch)
    );
    let report = run_batch(&batch, &config)?;
    print!("{report}");
    if let Some(rate) = report.cache_hit_rate() {
        println!(
            "the decomposition cache answered {:.1}% of cost queries without recomputation",
            rate * 100.0
        );
    }
    Ok(())
}

//! Transpile a workload end to end and compare the baseline √iSWAP flow
//! against the parallel-drive optimized flow.
//!
//! Run with `cargo run --release --example transpile_benchmark [name]`
//! where `name` is one of QV, VQE_L, GHZ, HLF, QFT, Adder, QAOA, VQE_F,
//! Multiplier (default QFT).

use paradrive::circuit::benchmarks::standard_suite;
use paradrive::core::flow::compare_models;
use paradrive::transpiler::fidelity::FidelityModel;
use paradrive::transpiler::topology::CouplingMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let want = std::env::args().nth(1).unwrap_or_else(|| "QFT".to_string());
    let bench = standard_suite(7)
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(&want))
        .ok_or_else(|| format!("unknown benchmark `{want}`"))?;

    println!(
        "{}: {} qubits, {} 2Q gates, depth {}",
        bench.name,
        bench.circuit.n_qubits(),
        bench.circuit.two_q_count(),
        bench.circuit.depth()
    );

    let map = CouplingMap::grid(4, 4);
    let r = compare_models(
        bench.name,
        &bench.circuit,
        &map,
        10,
        0.25,
        FidelityModel::paper(),
    )?;

    println!("SWAPs inserted (best of 10 routing seeds): {}", r.swaps);
    println!("consolidated 2Q blocks: {}", r.blocks);
    println!(
        "baseline duration:  {:.2} iSWAP pulses",
        r.baseline_duration
    );
    println!(
        "optimized duration: {:.2} iSWAP pulses",
        r.optimized_duration
    );
    println!("duration reduction: {:.1}%", r.duration_reduction_pct);
    println!(
        "per-qubit fidelity improvement: {:.2}%",
        r.fq_improvement_pct
    );
    println!(
        "total-circuit fidelity improvement: {:.2}%",
        r.ft_improvement_pct
    );
    Ok(())
}

//! Synthesize a parallel-drive pulse: make one iSWAP-strength pulse act as
//! a CNOT by driving the qubits during the two-qubit interaction.
//!
//! Run with `cargo run --release --example pulse_synthesis`.

use paradrive::hamiltonian::{ConversionGain, ParallelDrive, Segment};
use paradrive::optimizer::{TemplateSpec, TemplateSynthesizer};
use paradrive::weyl::trajectory::Trajectory;
use paradrive::weyl::WeylPoint;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::FRAC_PI_2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One full iSWAP pulse with free pump phases and 4-segment 1Q drives.
    let spec = TemplateSpec::iswap_basis(1);
    println!(
        "template: K=1 iSWAP pulse, {} free parameters (φc, φg, ε1[4], ε2[4])",
        spec.param_count()
    );

    let mut rng = StdRng::seed_from_u64(2);
    let out = TemplateSynthesizer::new(spec)
        .with_restarts(10)
        .with_tolerance(1e-10)
        .synthesize_to_point(WeylPoint::CNOT, &mut rng)?;

    println!("converged: {} (loss {:.2e})", out.converged, out.loss);
    println!("reached {}", out.point);
    println!(
        "pump phases: φc = {:.3}, φg = {:.3}",
        out.params[0], out.params[1]
    );
    println!("ε1(t) = {:?}", &out.params[2..6]);
    println!("ε2(t) = {:?}", &out.params[6..10]);

    // Replay the pulse and print its Cartan trajectory: a curve, not a ray.
    let segs: Vec<Segment> = (0..4)
        .map(|i| Segment::new(out.params[2 + i], out.params[6 + i]))
        .collect();
    let base = ConversionGain::try_new(FRAC_PI_2, 0.0, out.params[0], out.params[1])?;
    let pulse = ParallelDrive::new(base, segs, 1.0)?;
    let traj = Trajectory::from_unitaries(&pulse.accumulate())?;
    println!("\nCartan trajectory (I → CNOT in ONE pulse, no interleaved 1Q stops):");
    for p in traj.points() {
        println!("  {p}");
    }
    println!(
        "chord deviation {:.3} — the parallel drive is what bends the path",
        traj.chord_deviation()
    );
    Ok(())
}

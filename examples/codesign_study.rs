//! Codesign study: which basis gate should *your* coupler calibrate?
//!
//! Characterizes a synthetic speed limit from a simulated monitor-qubit
//! sweep (the way an experimentalist would), then scores the candidate
//! basis gates under the fitted boundary for several 1Q gate speeds.
//!
//! Run with `cargo run --release --example codesign_study`.

use paradrive::core::scoring::{best_basis, duration_table, paper_lambda, Metric};
use paradrive::speedlimit::monitor::MonitorQubitModel;
use paradrive::speedlimit::Characterized;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. "Measure" the coupler: sweep pump amplitudes and watch the
    //    monitor qubit (Fig. 3c methodology) on a SNAIL-like device.
    let ground_truth = Characterized::snail();
    let device = MonitorQubitModel::new(ground_truth, 0.015, 0.01);
    let mut rng = StdRng::seed_from_u64(1);
    let sweep = device.sweep(32, 48, 120, &mut rng);
    let fitted = sweep.fit_boundary()?;
    println!(
        "fitted speed limit: max gc = {:.3}, max gg = {:.3} (conversion {}x stronger)",
        paradrive::speedlimit::SpeedLimit::max_gc(&fitted),
        paradrive::speedlimit::SpeedLimit::max_gg(&fitted),
        (paradrive::speedlimit::SpeedLimit::max_gc(&fitted)
            / paradrive::speedlimit::SpeedLimit::max_gg(&fitted))
        .round()
    );

    // 2. Score the candidate bases under the *fitted* boundary for a range
    //    of 1Q speeds, and report the winner per metric.
    for d1q in [0.0, 0.1, 0.25] {
        let rows = duration_table(&fitted, d1q, paper_lambda())?;
        println!("\nD[1Q] = {d1q}:");
        for metric in [Metric::Haar, Metric::Cnot, Metric::Swap, Metric::W] {
            println!("  best for {metric:?}: {}", best_basis(&rows, metric));
        }
        for r in &rows {
            println!(
                "    {:<12} D_basis {:.2}  E[D[Haar]] {:.2}  D[W] {:.2}",
                r.basis, r.d_basis, r.e_d_haar, r.d_w
            );
        }
    }
    println!("\nconclusion (as in the paper): on a conversion-favoring coupler the");
    println!("iSWAP family wins, and with appreciable 1Q cost √iSWAP is the basis to calibrate.");
    Ok(())
}

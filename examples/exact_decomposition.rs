//! Exact KAK decomposition of an arbitrary two-qubit unitary, verified by
//! simulation: `U = phase · (a1 ⊗ b1) · CAN(c) · (a2 ⊗ b2)`.
//!
//! Run with `cargo run --release --example exact_decomposition`.

use paradrive::linalg::mat::process_fidelity;
use paradrive::linalg::qr::random_unitary;
use paradrive::weyl::kak::kak;
use paradrive::weyl::magic::coordinates;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);
    let u = random_unitary(4, &mut rng);
    println!("target: a Haar-random two-qubit unitary");
    println!("chamber point: {}", coordinates(&u)?);

    let d = kak(&u)?;
    println!("\nKAK factors (all SU(2)):");
    println!("a1 = {:?}", d.a1);
    println!("b1 = {:?}", d.b1);
    println!("a2 = {:?}", d.a2);
    println!("b2 = {:?}", d.b2);
    println!("interaction point: {}", d.point()?);

    let f = process_fidelity(&d.reconstruct(), &u);
    println!("\nreconstruction process fidelity: {:.15}", f);
    assert!(f > 1.0 - 1e-9);

    // This is what a real transpiler does with the paper's basis: the
    // interaction factor is replaced by calibrated (possibly parallel-
    // driven) pulses, and a1/b1/a2/b2 become the exterior 1Q layers whose
    // cost Eq. 7 charges — and which parallel drive absorbs.
    println!("\nthe 4 locals above are exactly the 'interleaved 1Q gates' whose");
    println!("duration the paper's parallel-drive technique absorbs into the 2Q pulse.");
    Ok(())
}

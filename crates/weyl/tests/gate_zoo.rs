//! Pins the two-qubit gate zoo to its known Weyl-chamber coordinates and
//! checks the Haar → chamber pipeline as a property over many seeds.
//!
//! These are the workspace's geometric ground truth: every downstream score
//! (K/D tables, coverage volumes) assumes `coordinates()` maps the named
//! gates of the paper to exactly these canonical points.

use paradrive_weyl::magic::coordinates;
use paradrive_weyl::{gates, haar, WeylPoint};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

const TOL: f64 = 1e-9;

#[test]
fn cnot_coordinates() {
    let pt = coordinates(&gates::cnot()).unwrap();
    assert!(pt.approx_eq(WeylPoint::CNOT, TOL), "CNOT → {pt}");
    assert!(pt.approx_eq(WeylPoint::new(FRAC_PI_2, 0.0, 0.0), TOL));
}

#[test]
fn cz_is_cnot_class() {
    // CZ is locally equivalent to CNOT: same chamber point.
    let pt = coordinates(&gates::cz()).unwrap();
    assert!(pt.approx_eq(WeylPoint::CNOT, TOL), "CZ → {pt}");
}

#[test]
fn iswap_coordinates() {
    let pt = coordinates(&gates::iswap()).unwrap();
    assert!(pt.approx_eq(WeylPoint::ISWAP, TOL), "iSWAP → {pt}");
    assert!(pt.approx_eq(WeylPoint::new(FRAC_PI_2, FRAC_PI_2, 0.0), TOL));
}

#[test]
fn sqrt_iswap_coordinates() {
    let pt = coordinates(&gates::sqrt_iswap()).unwrap();
    assert!(pt.approx_eq(WeylPoint::SQRT_ISWAP, TOL), "√iSWAP → {pt}");
    assert!(pt.approx_eq(WeylPoint::new(FRAC_PI_4, FRAC_PI_4, 0.0), TOL));
}

#[test]
fn b_gate_coordinates() {
    let pt = coordinates(&gates::b_gate()).unwrap();
    assert!(pt.approx_eq(WeylPoint::B, TOL), "B → {pt}");
    assert!(pt.approx_eq(WeylPoint::new(FRAC_PI_2, FRAC_PI_4, 0.0), TOL));
}

#[test]
fn swap_coordinates() {
    let pt = coordinates(&gates::swap()).unwrap();
    assert!(pt.approx_eq(WeylPoint::SWAP, TOL), "SWAP → {pt}");
    assert!(pt.approx_eq(WeylPoint::new(FRAC_PI_2, FRAC_PI_2, FRAC_PI_2), TOL));
}

#[test]
fn sqrt_cnot_and_sqrt_b_coordinates() {
    let pt = coordinates(&gates::sqrt_cnot()).unwrap();
    assert!(pt.approx_eq(WeylPoint::SQRT_CNOT, TOL), "√CNOT → {pt}");
    let pt = coordinates(&gates::sqrt_b()).unwrap();
    assert!(pt.approx_eq(WeylPoint::SQRT_B, TOL), "√B → {pt}");
}

#[test]
fn perfect_entangler_classification_of_the_zoo() {
    // CNOT, iSWAP, √iSWAP and B are perfect entanglers; identity and SWAP
    // are not (Fig. 2 of the paper).
    for (name, u, expect) in [
        ("CNOT", gates::cnot(), true),
        ("iSWAP", gates::iswap(), true),
        ("sqrt_iSWAP", gates::sqrt_iswap(), true),
        ("B", gates::b_gate(), true),
        ("identity", gates::identity(), false),
        ("SWAP", gates::swap(), false),
    ] {
        let pt = coordinates(&u).unwrap();
        assert_eq!(
            pt.is_perfect_entangler(1e-9),
            expect,
            "{name} at {pt} misclassified"
        );
    }
}

#[test]
fn canonical_gate_round_trips_the_zoo() {
    // CAN(p) of each zoo point must map back to exactly that point.
    for p in [
        WeylPoint::CNOT,
        WeylPoint::ISWAP,
        WeylPoint::SQRT_ISWAP,
        WeylPoint::B,
        WeylPoint::SWAP,
    ] {
        let rt = coordinates(&gates::can(p)).unwrap();
        assert!(rt.approx_eq(p, 1e-8), "CAN({p}) → {rt}");
    }
}

#[test]
fn haar_coordinates_always_land_in_the_canonical_chamber() {
    // Property: for any Haar-random 2Q unitary, coordinates() produces a
    // point inside the canonical Weyl chamber (c1 ≥ c2 ≥ c3 ≥ 0, c1 + c2 ≤ π).
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let pt = haar::random_point(&mut rng);
        assert!(pt.in_chamber(1e-7), "seed {seed}: {pt} escaped the chamber");
    }
}

#[test]
fn haar_points_are_mostly_perfect_entanglers() {
    // The Haar measure puts ~79% of gates in the perfect-entangler
    // polytope; a loose statistical check guards the sampler + classifier.
    let mut rng = StdRng::seed_from_u64(42);
    let n = 400;
    let pe = haar::sample_points(n, &mut rng)
        .into_iter()
        .filter(|p| p.is_perfect_entangler(1e-9))
        .count();
    let frac = pe as f64 / n as f64;
    assert!(
        (0.70..0.90).contains(&frac),
        "perfect-entangler fraction {frac} outside [0.70, 0.90]"
    );
}

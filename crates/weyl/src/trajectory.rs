//! Cartan trajectories: the path of the accumulated unitary through the
//! Weyl chamber (Fig. 1 and Fig. 8d of the paper).
//!
//! A 2Q pulse of duration `T` traces a curve `t ↦ coords(U(t))` from the
//! identity vertex to the target class. Without parallel drive the curve is
//! a straight ray for conversion/gain driving; with parallel drive it bends.

use crate::coord::WeylPoint;
use crate::magic::coordinates;
use crate::WeylError;
use paradrive_linalg::CMat;

/// A sampled Cartan trajectory.
#[derive(Debug, Clone)]
pub struct Trajectory {
    points: Vec<WeylPoint>,
}

impl Trajectory {
    /// Maps a sequence of accumulated unitaries `U(t_k)` to chamber points.
    ///
    /// # Errors
    ///
    /// Propagates the first coordinate-extraction failure.
    pub fn from_unitaries<'a>(
        unitaries: impl IntoIterator<Item = &'a CMat>,
    ) -> Result<Self, WeylError> {
        let points = unitaries
            .into_iter()
            .map(coordinates)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Trajectory { points })
    }

    /// Creates a trajectory directly from points.
    pub fn from_points(points: Vec<WeylPoint>) -> Self {
        Trajectory { points }
    }

    /// The sampled points, in time order.
    pub fn points(&self) -> &[WeylPoint] {
        &self.points
    }

    /// Total polyline arc length in coordinate space.
    pub fn arc_length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].dist(w[1])).sum()
    }

    /// Maximum deviation of interior points from the straight chord between
    /// the first and last point — zero for straight (non-parallel-driven)
    /// conversion/gain rays, positive for parallel-driven curves.
    pub fn chord_deviation(&self) -> f64 {
        let (Some(&a), Some(&b)) = (self.points.first(), self.points.last()) else {
            return 0.0;
        };
        let ab = [b.c1 - a.c1, b.c2 - a.c2, b.c3 - a.c3];
        let len_sq: f64 = ab.iter().map(|x| x * x).sum();
        self.points
            .iter()
            .map(|p| {
                let ap = [p.c1 - a.c1, p.c2 - a.c2, p.c3 - a.c3];
                if len_sq < 1e-18 {
                    return (ap.iter().map(|x| x * x).sum::<f64>()).sqrt();
                }
                let t = (ap[0] * ab[0] + ap[1] * ab[1] + ap[2] * ab[2]) / len_sq;
                let proj = [a.c1 + t * ab[0], a.c2 + t * ab[1], a.c3 + t * ab[2]];
                let d = [p.c1 - proj[0], p.c2 - proj[1], p.c3 - proj[2]];
                (d.iter().map(|x| x * x).sum::<f64>()).sqrt()
            })
            .fold(0.0_f64, f64::max)
    }

    /// Final point of the trajectory, if non-empty.
    pub fn end(&self) -> Option<WeylPoint> {
        self.points.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    #[test]
    fn conversion_ray_is_straight() {
        // iSWAP^t for t in [0, 1] walks the straight edge I → iSWAP.
        let us: Vec<CMat> = (0..=10)
            .map(|k| gates::iswap_frac(k as f64 / 10.0))
            .collect();
        let traj = Trajectory::from_unitaries(&us).unwrap();
        assert!(
            traj.chord_deviation() < 1e-7,
            "deviation {}",
            traj.chord_deviation()
        );
        assert!(traj.end().unwrap().approx_eq(WeylPoint::ISWAP, 1e-8));
        // Arc length equals the I→iSWAP distance: π/√2.
        let expected = WeylPoint::IDENTITY.dist(WeylPoint::ISWAP);
        assert!((traj.arc_length() - expected).abs() < 1e-6);
    }

    #[test]
    fn cnot_family_ray_is_straight() {
        let us: Vec<CMat> = (0..=10)
            .map(|k| gates::cnot_frac(k as f64 / 10.0))
            .collect();
        let traj = Trajectory::from_unitaries(&us).unwrap();
        assert!(traj.chord_deviation() < 1e-7);
        assert!(traj.end().unwrap().approx_eq(WeylPoint::CNOT, 1e-8));
    }

    #[test]
    fn empty_trajectory() {
        let traj = Trajectory::from_points(Vec::new());
        assert_eq!(traj.arc_length(), 0.0);
        assert_eq!(traj.chord_deviation(), 0.0);
        assert!(traj.end().is_none());
    }

    #[test]
    fn bent_polyline_has_positive_deviation() {
        let traj = Trajectory::from_points(vec![
            WeylPoint::IDENTITY,
            WeylPoint::new(0.5, 0.4, 0.0),
            WeylPoint::CNOT,
        ]);
        assert!(traj.chord_deviation() > 0.3);
    }
}

//! Exact Cartan (KAK) decomposition of two-qubit unitaries.
//!
//! Factors any `U ∈ U(4)` as `U = g · (a ⊗ b) · CAN(c1,c2,c3) · (c ⊗ d)`
//! with explicit single-qubit gates — the constructive counterpart of the
//! coordinate extraction in [`crate::magic`]. This is what a transpiler
//! needs to emit real 1Q gates around a calibrated basis pulse.
//!
//! Algorithm (standard): move to the magic basis, diagonalize the
//! gamma matrix `γ = M Mᵀ` with a *real orthogonal* eigenbasis `P`
//! (obtained by diagonalizing the commuting real-symmetric `Re γ`, `Im γ`),
//! split `M = P · F · O` with diagonal phases `F` and real orthogonal `O`,
//! and map back: real orthogonal matrices in the magic basis are exactly
//! the `SU(2) ⊗ SU(2)` locals.

use crate::coord::WeylPoint;
use crate::magic::{coordinates, magic_basis, to_su4};
use crate::WeylError;
use paradrive_linalg::eig::eigh;
use paradrive_linalg::{CMat, C64};

/// The result of a KAK decomposition: `U = phase · k1 · CAN(point) · k2`
/// where `k1 = a1 ⊗ b1` and `k2 = a2 ⊗ b2`.
#[derive(Debug, Clone)]
pub struct Kak {
    /// Global phase factor.
    pub phase: C64,
    /// Left local gate on the first qubit.
    pub a1: CMat,
    /// Left local gate on the second qubit.
    pub b1: CMat,
    /// The canonical (interaction) factor's chamber point. Note: this is
    /// the raw factor's coordinate triple, which may be a Weyl-group image
    /// of the canonical representative.
    pub interaction: CMat,
    /// Right local gate on the first qubit.
    pub a2: CMat,
    /// Right local gate on the second qubit.
    pub b2: CMat,
}

impl Kak {
    /// Reassembles the full 4×4 unitary.
    pub fn reconstruct(&self) -> CMat {
        let k1 = self.a1.kron(&self.b1);
        let k2 = self.a2.kron(&self.b2);
        k1.mul(&self.interaction).mul(&k2).scale(self.phase)
    }

    /// The canonical chamber point of the interaction factor.
    ///
    /// # Errors
    ///
    /// Propagates coordinate-extraction failures (cannot occur for a valid
    /// decomposition).
    pub fn point(&self) -> Result<WeylPoint, WeylError> {
        coordinates(&self.interaction)
    }
}

/// Splits a 4×4 tensor product `u ≈ phase · (a ⊗ b)` into its factors.
///
/// # Errors
///
/// Returns [`WeylError::DegenerateSpectrum`] when `u` is not (numerically)
/// a tensor product.
pub fn factor_tensor_product(u: &CMat) -> Result<(C64, CMat, CMat), WeylError> {
    // u[2r+i, 2c+j] = a[r,c]·b[i,j]. Use the largest 2×2 block as the b
    // reference, then read off a from block inner products.
    let block =
        |r: usize, c: usize| -> CMat { CMat::from_fn(2, 2, |i, j| u[(2 * r + i, 2 * c + j)]) };
    let (mut r0, mut c0, mut best) = (0, 0, -1.0);
    for r in 0..2 {
        for c in 0..2 {
            let n = block(r, c).frobenius_norm();
            if n > best {
                best = n;
                r0 = r;
                c0 = c;
            }
        }
    }
    if best < 1e-9 {
        return Err(WeylError::DegenerateSpectrum);
    }
    let bref = block(r0, c0);
    // Normalize b to unit determinant-ish scale: divide by its norm/√2 so
    // b is roughly unitary; absorb the rest into a.
    let scale = bref.frobenius_norm() / std::f64::consts::SQRT_2;
    let b = bref.scale(C64::real(1.0 / scale));
    let bdag_norm = b.hs_inner(&b);
    let mut a = CMat::zeros(2, 2);
    for r in 0..2 {
        for c in 0..2 {
            a[(r, c)] = b.hs_inner(&block(r, c)) / bdag_norm;
        }
    }
    // Fix determinants: push both factors into SU(2), the leftover is a
    // global phase.
    let da = a.det();
    let db = b.det();
    if da.norm() < 1e-12 || db.norm() < 1e-12 {
        return Err(WeylError::DegenerateSpectrum);
    }
    let a_su = a.scale(da.powf(-0.5));
    let b_su = b.scale(db.powf(-0.5));
    // Residual phase: compare one healthy entry.
    let rebuilt = a_su.kron(&b_su);
    let (mut ri, mut ci, mut mag) = (0, 0, -1.0);
    for i in 0..4 {
        for j in 0..4 {
            if rebuilt[(i, j)].norm() > mag {
                mag = rebuilt[(i, j)].norm();
                ri = i;
                ci = j;
            }
        }
    }
    let phase = u[(ri, ci)] / rebuilt[(ri, ci)];
    let check = rebuilt.scale(phase);
    if !check.approx_eq(u, 1e-6) {
        return Err(WeylError::DegenerateSpectrum);
    }
    Ok((phase, a_su, b_su))
}

/// A real-orthogonal eigenbasis of the unitary symmetric `γ` (magic-basis
/// gamma matrix), with `det P = +1`.
fn real_orthogonal_diagonalizer(g: &CMat) -> Result<CMat, WeylError> {
    let re = g.add(&g.adjoint()).scale(C64::real(0.5));
    let im = g.sub(&g.adjoint()).scale(C64::new(0.0, -0.5));
    for mu in [0.319_381_53, 0.104_972_58, 0.782_193_11, 1.330_274_43] {
        let h = re.add(&im.scale(C64::real(mu)));
        let e = eigh(&h).map_err(WeylError::Linalg)?;
        // Re-phase each eigenvector column to be real; verify.
        let mut p = e.vectors.clone();
        let mut ok = true;
        for col in 0..4 {
            // Find the largest-magnitude entry and rotate it onto the reals.
            let (mut idx, mut mag) = (0, -1.0);
            for row in 0..4 {
                if p[(row, col)].norm() > mag {
                    mag = p[(row, col)].norm();
                    idx = row;
                }
            }
            let ph = C64::cis(-p[(idx, col)].arg());
            for row in 0..4 {
                p[(row, col)] *= ph;
                if p[(row, col)].im.abs() > 1e-7 {
                    ok = false;
                }
            }
            if !ok {
                break;
            }
        }
        if !ok {
            continue;
        }
        // Verify P actually diagonalizes γ.
        let d = p.adjoint().mul(g).mul(&p);
        let mut off = 0.0_f64;
        for r in 0..4 {
            for c in 0..4 {
                if r != c {
                    off = off.max(d[(r, c)].norm());
                }
            }
        }
        if off > 1e-7 {
            continue;
        }
        // Make it special orthogonal.
        let mut p = p.map(|z| C64::real(z.re));
        if p.det().re < 0.0 {
            for row in 0..4 {
                let v = p[(row, 0)];
                p[(row, 0)] = -v;
            }
        }
        return Ok(p);
    }
    Err(WeylError::DegenerateSpectrum)
}

/// Computes the KAK decomposition of a two-qubit unitary.
///
/// # Errors
///
/// Returns [`WeylError`] for non-4×4 or non-unitary input, or when the
/// numerical factorization fails (not observed for unitary input).
///
/// # Example
///
/// ```
/// use paradrive_weyl::{gates, kak::kak};
/// use paradrive_linalg::mat::process_fidelity;
///
/// let u = gates::b_gate();
/// let d = kak(&u).unwrap();
/// assert!(process_fidelity(&d.reconstruct(), &u) > 1.0 - 1e-9);
/// ```
pub fn kak(u: &CMat) -> Result<Kak, WeylError> {
    let det = u.det();
    let su4 = to_su4(u)?;
    let global = det.powf(0.25);

    let q = magic_basis();
    let m = q.adjoint().mul(&su4).mul(&q);
    let gamma = m.mul(&m.transpose());
    let p = real_orthogonal_diagonalizer(&gamma)?;

    // D = Pᵀ γ P; F = sqrt(D) with det F = +1.
    let d = p.transpose().mul(&gamma).mul(&p);
    let mut thetas = [0.0_f64; 4];
    for k in 0..4 {
        thetas[k] = d[(k, k)].arg() / 2.0;
    }
    // det γ = 1 → Σ 2θ ≡ 0 (mod 2π) → Σθ ≡ 0 (mod π). Force Σθ ≡ 0 (mod 2π)
    // so det F = 1.
    let sum: f64 = thetas.iter().sum();
    let residue = sum.rem_euclid(2.0 * std::f64::consts::PI);
    if (residue - std::f64::consts::PI).abs() < 0.5 {
        thetas[0] += std::f64::consts::PI;
    }
    let f = CMat::diag(&[
        C64::cis(thetas[0]),
        C64::cis(thetas[1]),
        C64::cis(thetas[2]),
        C64::cis(thetas[3]),
    ]);
    let f_inv = CMat::diag(&[
        C64::cis(-thetas[0]),
        C64::cis(-thetas[1]),
        C64::cis(-thetas[2]),
        C64::cis(-thetas[3]),
    ]);

    // O = F⁻¹ Pᵀ M must be real orthogonal with det +1.
    let mut o = f_inv.mul(&p.transpose()).mul(&m);
    let max_imag = (0..4)
        .flat_map(|r| (0..4).map(move |c| (r, c)))
        .map(|(r, c)| o[(r, c)].im.abs())
        .fold(0.0_f64, f64::max);
    if max_imag > 1e-6 {
        return Err(WeylError::DegenerateSpectrum);
    }
    o = o.map(|z| C64::real(z.re));
    if o.det().re < 0.0 {
        // det O = −1: flip the sign of one θ pair... simplest consistent
        // fix: negate one row of O and the matching F entry (θ → θ + π).
        for c in 0..4 {
            let v = o[(0, c)];
            o[(0, c)] = -v;
        }
        thetas[0] += std::f64::consts::PI;
    }
    let f = {
        let _ = f;
        CMat::diag(&[
            C64::cis(thetas[0]),
            C64::cis(thetas[1]),
            C64::cis(thetas[2]),
            C64::cis(thetas[3]),
        ])
    };

    // Map back to the computational basis.
    let k1 = q.mul(&p).mul(&q.adjoint());
    let canonical = q.mul(&f).mul(&q.adjoint());
    let k2 = q.mul(&o).mul(&q.adjoint());

    let (ph1, a1, b1) = factor_tensor_product(&k1)?;
    let (ph2, a2, b2) = factor_tensor_product(&k2)?;

    Ok(Kak {
        phase: global * ph1 * ph2,
        a1,
        b1,
        interaction: canonical,
        a2,
        b2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use paradrive_linalg::mat::process_fidelity;
    use paradrive_linalg::paulis;
    use paradrive_linalg::qr::{random_su2, random_unitary};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_kak_valid(u: &CMat, label: &str) {
        let d = kak(u).unwrap_or_else(|e| panic!("{label}: kak failed: {e}"));
        let f = process_fidelity(&d.reconstruct(), u);
        assert!(f > 1.0 - 1e-8, "{label}: reconstruction fidelity {f}");
        // Locals are unitary tensor factors in SU(2).
        for (m, name) in [(&d.a1, "a1"), (&d.b1, "b1"), (&d.a2, "a2"), (&d.b2, "b2")] {
            assert!(m.is_unitary(1e-8), "{label}: {name} not unitary");
            assert!(
                m.det().approx_eq(C64::ONE, 1e-7),
                "{label}: {name} not SU(2)"
            );
        }
        // The interaction factor carries the same chamber point as U.
        let pu = coordinates(u).unwrap();
        let pi = d.point().unwrap();
        assert!(
            pu.chamber_dist(pi) < 1e-6,
            "{label}: interaction at {pi}, U at {pu}"
        );
    }

    #[test]
    fn kak_of_named_gates() {
        for (name, u, _) in gates::paper_basis_set() {
            assert_kak_valid(&u, name);
        }
        assert_kak_valid(&gates::swap(), "SWAP");
        assert_kak_valid(&gates::cz(), "CZ");
        assert_kak_valid(&gates::sqrt_swap(), "sqrt_SWAP");
    }

    #[test]
    fn kak_of_local_gate() {
        let u = paulis::tensor(&paulis::h(), &paulis::t());
        let d = kak(&u).unwrap();
        assert!(process_fidelity(&d.reconstruct(), &u) > 1.0 - 1e-9);
        // Interaction is (locally) the identity class.
        let p = d.point().unwrap();
        assert!(
            p.chamber_dist(WeylPoint::IDENTITY) < 1e-6,
            "local gate has interaction {p}"
        );
    }

    #[test]
    fn kak_of_identity() {
        assert_kak_valid(&CMat::identity(4), "I");
    }

    #[test]
    fn factor_tensor_product_round_trip() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let a = random_su2(&mut rng);
            let b = random_su2(&mut rng);
            let u = a.kron(&b).scale(C64::cis(0.7));
            let (phase, fa, fb) = factor_tensor_product(&u).unwrap();
            let rebuilt = fa.kron(&fb).scale(phase);
            assert!(rebuilt.approx_eq(&u, 1e-8));
        }
    }

    #[test]
    fn factor_rejects_entangling_gates() {
        assert!(factor_tensor_product(&gates::cnot()).is_err());
        assert!(factor_tensor_product(&gates::iswap()).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_kak_random_unitaries(seed in 0u64..5000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let u = random_unitary(4, &mut rng);
            let d = kak(&u).unwrap();
            let f = process_fidelity(&d.reconstruct(), &u);
            prop_assert!(f > 1.0 - 1e-7, "fidelity {f}");
        }
    }
}

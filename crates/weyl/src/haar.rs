//! Haar-random two-qubit gates and their chamber statistics.
//!
//! The paper's `E[Haar]` scores average decomposition costs over the Haar
//! measure on `U(4)`. Pushing Haar-random unitaries through the coordinate
//! map induces the (non-uniform) Haar density on the Weyl chamber, which
//! weights the perfect-entangler interior more heavily than the `I` and
//! `SWAP` vertices.

use crate::coord::WeylPoint;
use crate::magic::coordinates;
use paradrive_linalg::qr::random_unitary;
use rand::Rng;
use std::f64::consts::{FRAC_PI_2, PI};

/// Samples a Haar-random two-qubit unitary.
pub fn random_gate<R: Rng + ?Sized>(rng: &mut R) -> paradrive_linalg::CMat {
    random_unitary(4, rng)
}

/// Samples the chamber coordinate of a Haar-random two-qubit gate.
///
/// # Panics
///
/// Panics only if the coordinate extraction fails, which cannot happen for
/// the unitaries produced by [`random_gate`].
pub fn random_point<R: Rng + ?Sized>(rng: &mut R) -> WeylPoint {
    coordinates(&random_gate(rng)).expect("Haar unitary must have coordinates")
}

/// Samples `n` Haar coordinates.
pub fn sample_points<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<WeylPoint> {
    (0..n).map(|_| random_point(rng)).collect()
}

/// Samples a point uniformly (by volume, not Haar) inside the canonical
/// chamber tetrahedron via rejection from the bounding box.
///
/// Useful for seeding coverage-region estimation where uniform spatial
/// coverage matters more than the physical gate distribution.
pub fn uniform_chamber_point<R: Rng + ?Sized>(rng: &mut R) -> WeylPoint {
    loop {
        let c1 = rng.gen_range(0.0..PI);
        let c2 = rng.gen_range(0.0..FRAC_PI_2);
        let c3 = rng.gen_range(0.0..FRAC_PI_2);
        let p = WeylPoint::new(c1, c2, c3);
        if p.in_chamber(0.0) {
            return p;
        }
    }
}

/// Monte-Carlo expectation of `f` over Haar-random chamber coordinates.
pub fn haar_expectation<R: Rng + ?Sized>(
    n: usize,
    rng: &mut R,
    mut f: impl FnMut(WeylPoint) -> f64,
) -> f64 {
    assert!(n > 0, "expectation over zero samples");
    (0..n).map(|_| f(random_point(rng))).sum::<f64>() / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn haar_points_in_chamber() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(random_point(&mut rng).in_chamber(1e-7));
        }
    }

    #[test]
    fn haar_favors_perfect_entanglers() {
        // A Haar-random 2Q gate is a perfect entangler with probability
        // ≈ 84.7% (Watts et al.) — the PE polytope is half the chamber
        // volume but carries most of the Haar mass.
        let mut rng = StdRng::seed_from_u64(2);
        let n = 400;
        let pe = sample_points(n, &mut rng)
            .into_iter()
            .filter(|p| p.is_perfect_entangler(1e-9))
            .count();
        let frac = pe as f64 / n as f64;
        assert!(
            (0.75..0.93).contains(&frac),
            "PE fraction {frac} far from the expected ~0.85"
        );
    }

    #[test]
    fn uniform_chamber_points_valid() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(uniform_chamber_point(&mut rng).in_chamber(0.0));
        }
    }

    #[test]
    fn haar_rarely_near_vertices() {
        // I and SWAP vertices carry vanishing Haar density.
        let mut rng = StdRng::seed_from_u64(4);
        let pts = sample_points(300, &mut rng);
        let near_vertex = pts
            .iter()
            .filter(|p| {
                p.chamber_dist(WeylPoint::IDENTITY) < 0.15 || p.chamber_dist(WeylPoint::SWAP) < 0.15
            })
            .count();
        assert!(near_vertex < 10, "{near_vertex} samples near vertices");
    }

    #[test]
    fn expectation_of_constant() {
        let mut rng = StdRng::seed_from_u64(5);
        let e = haar_expectation(10, &mut rng, |_| 2.5);
        assert!((e - 2.5).abs() < 1e-12);
    }
}

//! The [`WeylPoint`] chamber coordinate.

use serde::{Deserialize, Serialize};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};
use std::fmt;

/// A point `(c1, c2, c3)` in (or near) the Weyl chamber, in radians.
///
/// The canonical chamber is the tetrahedron with vertices
/// `I = (0,0,0)`, `(π,0,0) ≅ I`, `iSWAP = (π/2,π/2,0)` and
/// `SWAP = (π/2,π/2,π/2)`; points on the base plane additionally identify
/// `(c1, c2, 0) ~ (π−c1, c2, 0)`.
///
/// `WeylPoint` is a plain value type — it does not enforce membership of the
/// chamber, because optimizer iterates and raw coordinate arithmetic
/// legitimately wander outside. Use [`WeylPoint::in_chamber`] to test and
/// [`crate::magic::canonicalize`] to reduce.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WeylPoint {
    /// First coordinate, `[0, π]` when canonical.
    pub c1: f64,
    /// Second coordinate, `[0, π/2]` when canonical.
    pub c2: f64,
    /// Third coordinate, `[0, π/2]` when canonical.
    pub c3: f64,
}

impl WeylPoint {
    /// The identity class `(0, 0, 0)`.
    pub const IDENTITY: WeylPoint = WeylPoint::new(0.0, 0.0, 0.0);
    /// The CNOT/CZ class `(π/2, 0, 0)`.
    pub const CNOT: WeylPoint = WeylPoint::new(FRAC_PI_2, 0.0, 0.0);
    /// The √CNOT class `(π/4, 0, 0)`.
    pub const SQRT_CNOT: WeylPoint = WeylPoint::new(FRAC_PI_4, 0.0, 0.0);
    /// The iSWAP/DCNOT-dual class `(π/2, π/2, 0)`.
    pub const ISWAP: WeylPoint = WeylPoint::new(FRAC_PI_2, FRAC_PI_2, 0.0);
    /// The √iSWAP class `(π/4, π/4, 0)`.
    pub const SQRT_ISWAP: WeylPoint = WeylPoint::new(FRAC_PI_4, FRAC_PI_4, 0.0);
    /// The B-gate class `(π/2, π/4, 0)` — the Haar-optimal two-application basis.
    pub const B: WeylPoint = WeylPoint::new(FRAC_PI_2, FRAC_PI_4, 0.0);
    /// The √B class `(π/4, π/8, 0)`.
    pub const SQRT_B: WeylPoint = WeylPoint::new(FRAC_PI_4, FRAC_PI_4 / 2.0, 0.0);
    /// The SWAP class `(π/2, π/2, π/2)`.
    pub const SWAP: WeylPoint = WeylPoint::new(FRAC_PI_2, FRAC_PI_2, FRAC_PI_2);
    /// The √SWAP class `(π/4, π/4, π/4)`.
    pub const SQRT_SWAP: WeylPoint = WeylPoint::new(FRAC_PI_4, FRAC_PI_4, FRAC_PI_4);

    /// Creates a point from raw coordinates (no canonicalization).
    #[inline]
    pub const fn new(c1: f64, c2: f64, c3: f64) -> Self {
        WeylPoint { c1, c2, c3 }
    }

    /// Coordinates as an array `[c1, c2, c3]`.
    #[inline]
    pub fn as_array(self) -> [f64; 3] {
        [self.c1, self.c2, self.c3]
    }

    /// Euclidean distance to another point (raw, without folding the
    /// base-plane mirror identification).
    pub fn dist(self, other: WeylPoint) -> f64 {
        let d1 = self.c1 - other.c1;
        let d2 = self.c2 - other.c2;
        let d3 = self.c3 - other.c3;
        (d1 * d1 + d2 * d2 + d3 * d3).sqrt()
    }

    /// Distance that respects the base-plane mirror identification
    /// `(c1, c2, 0) ~ (π−c1, c2, 0)` so that e.g. a point near `(π, 0, 0)` is
    /// close to the identity.
    pub fn chamber_dist(self, other: WeylPoint) -> f64 {
        let direct = self.dist(other);
        let mirrored = WeylPoint::new(PI - self.c1, self.c2, self.c3).dist(other);
        // The mirror identification is exact only on the base plane; weight
        // it by how far off the base the points are.
        if self.c3.abs() < 1e-9 && other.c3.abs() < 1e-9 {
            direct.min(mirrored)
        } else {
            direct
        }
    }

    /// True when the point lies inside the canonical chamber tetrahedron
    /// (with tolerance `tol` on every face).
    ///
    /// Faces: `c2 ≥ c3 ≥ 0`, `c1 ≥ c2`, `c1 + c2 ≤ π`, and on the boundary
    /// region `c1 ≤ π`.
    pub fn in_chamber(self, tol: f64) -> bool {
        self.c3 >= -tol
            && self.c2 >= self.c3 - tol
            && self.c1 >= self.c2 - tol
            && self.c1 + self.c2 <= PI + tol
            && self.c1 <= PI + tol
    }

    /// The perfect-entangler predicate (Zhang–Vala–Sastry–Whaley):
    /// a canonical point is a perfect entangler iff
    /// `c1 + c2 ≥ π/2`, `c1 − c2 ≤ π/2` and `c2 + c3 ≤ π/2`.
    ///
    /// CNOT, iSWAP, B and √iSWAP are (boundary) perfect entanglers; √CNOT and
    /// SWAP are not.
    pub fn is_perfect_entangler(self, tol: f64) -> bool {
        self.in_chamber(tol)
            && self.c1 + self.c2 >= FRAC_PI_2 - tol
            && self.c1 - self.c2 <= FRAC_PI_2 + tol
            && self.c2 + self.c3 <= FRAC_PI_2 + tol
    }

    /// Approximate equality within `tol` per coordinate (raw comparison).
    pub fn approx_eq(self, other: WeylPoint, tol: f64) -> bool {
        (self.c1 - other.c1).abs() <= tol
            && (self.c2 - other.c2).abs() <= tol
            && (self.c3 - other.c3).abs() <= tol
    }

    /// Linear interpolation `self + t (other − self)` in coordinate space.
    pub fn lerp(self, other: WeylPoint, t: f64) -> WeylPoint {
        WeylPoint::new(
            self.c1 + t * (other.c1 - self.c1),
            self.c2 + t * (other.c2 - self.c2),
            self.c3 + t * (other.c3 - self.c3),
        )
    }

    /// Scales the coordinates by `s` — the Weyl point of a fractional pulse:
    /// `iSWAP^t` has coordinates `t · (π/2, π/2, 0)` for `t ∈ [0, 1]`.
    pub fn scaled(self, s: f64) -> WeylPoint {
        WeylPoint::new(self.c1 * s, self.c2 * s, self.c3 * s)
    }
}

impl fmt::Display for WeylPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({:.4}π, {:.4}π, {:.4}π)",
            self.c1 / PI,
            self.c2 / PI,
            self.c3 / PI
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_points_in_chamber() {
        for p in [
            WeylPoint::IDENTITY,
            WeylPoint::CNOT,
            WeylPoint::SQRT_CNOT,
            WeylPoint::ISWAP,
            WeylPoint::SQRT_ISWAP,
            WeylPoint::B,
            WeylPoint::SQRT_B,
            WeylPoint::SWAP,
            WeylPoint::SQRT_SWAP,
        ] {
            assert!(p.in_chamber(1e-12), "{p} not in chamber");
        }
    }

    #[test]
    fn outside_chamber_detected() {
        assert!(!WeylPoint::new(-0.1, 0.0, 0.0).in_chamber(1e-9));
        assert!(!WeylPoint::new(0.3, 0.5, 0.0).in_chamber(1e-9)); // c2 > c1
        assert!(!WeylPoint::new(3.0, 0.5, 0.0).in_chamber(1e-9)); // c1+c2 > π
        assert!(!WeylPoint::new(0.5, 0.2, 0.3).in_chamber(1e-9)); // c3 > c2
    }

    #[test]
    fn perfect_entangler_classification() {
        assert!(WeylPoint::CNOT.is_perfect_entangler(1e-9));
        assert!(WeylPoint::ISWAP.is_perfect_entangler(1e-9));
        assert!(WeylPoint::B.is_perfect_entangler(1e-9));
        assert!(WeylPoint::SQRT_ISWAP.is_perfect_entangler(1e-9));
        assert!(!WeylPoint::SQRT_CNOT.is_perfect_entangler(1e-9));
        assert!(!WeylPoint::SWAP.is_perfect_entangler(1e-9));
        assert!(!WeylPoint::IDENTITY.is_perfect_entangler(1e-9));
    }

    #[test]
    fn sqrt_swap_is_boundary_pe() {
        // √SWAP sits exactly on two PE faces; with positive tolerance it
        // counts as a perfect entangler (it is one, famously).
        assert!(WeylPoint::SQRT_SWAP.is_perfect_entangler(1e-9));
    }

    #[test]
    fn chamber_dist_folds_base_plane() {
        let near_pi = WeylPoint::new(PI - 1e-3, 0.0, 0.0);
        assert!(near_pi.chamber_dist(WeylPoint::IDENTITY) < 2e-3);
        assert!(near_pi.dist(WeylPoint::IDENTITY) > 3.0);
    }

    #[test]
    fn lerp_and_scale() {
        let mid = WeylPoint::IDENTITY.lerp(WeylPoint::ISWAP, 0.5);
        assert!(mid.approx_eq(WeylPoint::SQRT_ISWAP, 1e-12));
        assert!(WeylPoint::ISWAP
            .scaled(0.5)
            .approx_eq(WeylPoint::SQRT_ISWAP, 1e-12));
    }

    #[test]
    fn display_in_pi_units() {
        let s = format!("{}", WeylPoint::CNOT);
        assert!(s.contains("0.5000π"), "got {s}");
    }
}

//! The named two-qubit gate zoo and the canonical gate constructor.
//!
//! All gates are 4×4 matrices in the computational basis
//! `{|00⟩, |01⟩, |10⟩, |11⟩}` with the first qubit as the high bit.

use crate::coord::WeylPoint;
use paradrive_linalg::expm::expm;
use paradrive_linalg::{paulis, CMat, C64};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

/// The canonical gate `CAN(c1,c2,c3) = exp(+i/2 (c1·XX + c2·YY + c3·ZZ))`.
///
/// The `+i` sign matches the magic-basis coordinate extraction in
/// [`crate::magic::coordinates`], so `coordinates(can(p)) == p` for canonical
/// `p` (e.g. `can(WeylPoint::SQRT_SWAP)` is √SWAP, not its conjugate).
///
/// Every two-qubit unitary is locally equivalent to exactly one canonical
/// gate with chamber coordinates.
///
/// # Example
///
/// ```
/// use paradrive_weyl::{gates, WeylPoint};
/// let u = gates::can(WeylPoint::SQRT_ISWAP);
/// assert!(u.is_unitary(1e-12));
/// ```
pub fn can(p: WeylPoint) -> CMat {
    let gen = paulis::xx()
        .scale(C64::real(p.c1))
        .add(&paulis::yy().scale(C64::real(p.c2)))
        .add(&paulis::zz().scale(C64::real(p.c3)))
        .scale(C64::new(0.0, 0.5));
    expm(&gen)
}

/// The 4×4 identity.
pub fn identity() -> CMat {
    CMat::identity(4)
}

/// CNOT with the first qubit as control.
pub fn cnot() -> CMat {
    let o = C64::ONE;
    let z = C64::ZERO;
    CMat::from_rows(&[&[o, z, z, z], &[z, o, z, z], &[z, z, z, o], &[z, z, o, z]])
}

/// Controlled-Z (symmetric between the qubits; locally equivalent to CNOT).
pub fn cz() -> CMat {
    CMat::diag(&[C64::ONE, C64::ONE, C64::ONE, -C64::ONE])
}

/// Controlled phase gate `CP(θ) = diag(1, 1, 1, e^{iθ})`.
pub fn cphase(theta: f64) -> CMat {
    CMat::diag(&[C64::ONE, C64::ONE, C64::ONE, C64::cis(theta)])
}

/// SWAP.
pub fn swap() -> CMat {
    let o = C64::ONE;
    let z = C64::ZERO;
    CMat::from_rows(&[&[o, z, z, z], &[z, z, o, z], &[z, o, z, z], &[z, z, z, o]])
}

/// iSWAP: swaps `|01⟩ ↔ |10⟩` with a phase of `i`.
pub fn iswap() -> CMat {
    let o = C64::ONE;
    let z = C64::ZERO;
    let i = C64::I;
    CMat::from_rows(&[&[o, z, z, z], &[z, z, i, z], &[z, i, z, z], &[z, z, z, o]])
}

/// The fractional iSWAP pulse `iSWAP^t`, `t ∈ [0, 1]`: the native gate of a
/// conversion-only parametric drive of angle `θc = t·π/2`.
pub fn iswap_frac(t: f64) -> CMat {
    let theta = t * FRAC_PI_2;
    let c = C64::real(theta.cos());
    let s = C64::new(0.0, theta.sin());
    let o = C64::ONE;
    let z = C64::ZERO;
    CMat::from_rows(&[&[o, z, z, z], &[z, c, s, z], &[z, s, c, z], &[z, z, z, o]])
}

/// √iSWAP — the paper's headline basis gate.
pub fn sqrt_iswap() -> CMat {
    iswap_frac(0.5)
}

/// The n-th root of iSWAP, `iSWAP^(1/n)`.
pub fn nth_root_iswap(n: u32) -> CMat {
    iswap_frac(1.0 / n as f64)
}

/// √CNOT (the controlled-√X family representative `CAN(π/4, 0, 0)`).
pub fn sqrt_cnot() -> CMat {
    can(WeylPoint::SQRT_CNOT)
}

/// The fractional CNOT family representative `CAN(t·π/2, 0, 0)`.
pub fn cnot_frac(t: f64) -> CMat {
    can(WeylPoint::new(t * FRAC_PI_2, 0.0, 0.0))
}

/// The B gate `CAN(π/2, π/4, 0)` — spans the chamber in two applications.
pub fn b_gate() -> CMat {
    can(WeylPoint::B)
}

/// √B, `CAN(π/4, π/8, 0)`.
pub fn sqrt_b() -> CMat {
    can(WeylPoint::SQRT_B)
}

/// The fractional B family representative `CAN(t·π/2, t·π/4, 0)`.
pub fn b_frac(t: f64) -> CMat {
    can(WeylPoint::new(t * FRAC_PI_2, t * FRAC_PI_4, 0.0))
}

/// √SWAP, `CAN(π/4, π/4, π/4)`.
pub fn sqrt_swap() -> CMat {
    can(WeylPoint::SQRT_SWAP)
}

/// The six comparative basis gates studied throughout the paper
/// (Fig. 4, Tables I–V), as `(name, unitary, fractional pulse duration)`
/// where duration 1.0 is a full iSWAP-strength pulse.
pub fn paper_basis_set() -> Vec<(&'static str, CMat, f64)> {
    vec![
        ("iSWAP", iswap(), 1.0),
        ("sqrt_iSWAP", sqrt_iswap(), 0.5),
        ("CNOT", cnot(), 1.0),
        ("sqrt_CNOT", sqrt_cnot(), 0.5),
        ("B", b_gate(), 1.0),
        ("sqrt_B", sqrt_b(), 0.5),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradrive_linalg::mat::process_fidelity;

    const TOL: f64 = 1e-12;

    #[test]
    fn all_named_gates_unitary() {
        for (name, u, _) in paper_basis_set() {
            assert!(u.is_unitary(TOL), "{name} not unitary");
        }
        for u in [identity(), cz(), swap(), sqrt_swap(), cphase(0.7)] {
            assert!(u.is_unitary(TOL));
        }
    }

    #[test]
    fn sqrt_gates_square_to_parents() {
        assert!(process_fidelity(&sqrt_iswap().mul(&sqrt_iswap()), &iswap()) > 1.0 - 1e-10);
        let b2 = sqrt_b().mul(&sqrt_b());
        // √B² is locally equivalent (here: equal up to phase) to B.
        assert!(process_fidelity(&b2, &b_gate()) > 1.0 - 1e-10);
        let c2 = sqrt_cnot().mul(&sqrt_cnot());
        assert!(process_fidelity(&c2, &cnot_frac(1.0)) > 1.0 - 1e-10);
    }

    #[test]
    fn nth_roots_compose() {
        let q = nth_root_iswap(4);
        let composed = q.mul(&q).mul(&q).mul(&q);
        assert!(composed.approx_eq(&iswap(), 1e-10));
    }

    #[test]
    fn cphase_pi_is_cz() {
        assert!(cphase(std::f64::consts::PI).approx_eq(&cz(), 1e-12));
    }

    #[test]
    fn swap_conjugates_cnot_direction() {
        // SWAP·CNOT12·SWAP = CNOT21.
        let flipped = swap().mul(&cnot()).mul(&swap());
        let o = C64::ONE;
        let z = C64::ZERO;
        let cnot21 = CMat::from_rows(&[&[o, z, z, z], &[z, z, z, o], &[z, z, o, z], &[z, o, z, z]]);
        assert!(flipped.approx_eq(&cnot21, TOL));
    }

    #[test]
    fn iswap_frac_zero_and_one() {
        assert!(iswap_frac(0.0).approx_eq(&identity(), TOL));
        assert!(iswap_frac(1.0).approx_eq(&iswap(), TOL));
    }

    #[test]
    fn can_of_origin_is_identity() {
        assert!(can(WeylPoint::IDENTITY).approx_eq(&identity(), TOL));
    }
}

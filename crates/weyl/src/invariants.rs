//! Makhlin local invariants `(g1, g2, g3)`.
//!
//! Two two-qubit unitaries are equal up to single-qubit gates iff their
//! Makhlin invariants agree. The invariants double as the optimizer's loss
//! functional (Section III-B of the paper): minimizing the invariant distance
//! to a target drives a parallel-driven template onto the target's
//! local-equivalence class without caring about the local frames.

use crate::coord::WeylPoint;
use crate::magic::{magic_basis, to_su4};
use crate::WeylError;
use paradrive_linalg::CMat;
use serde::{Deserialize, Serialize};

/// The Makhlin invariant triple.
///
/// Reference values: `I → (1, 0, 3)`, `CNOT → (0, 0, 1)`,
/// `iSWAP → (0, 0, -1)`, `SWAP → (-1, 0, -3)`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MakhlinInvariants {
    /// Real part of the first invariant.
    pub g1: f64,
    /// Imaginary part of the first invariant.
    pub g2: f64,
    /// The second (real) invariant.
    pub g3: f64,
}

impl MakhlinInvariants {
    /// Computes the invariants of a 4×4 unitary.
    ///
    /// # Errors
    ///
    /// Returns [`WeylError`] when the input is not a two-qubit unitary.
    pub fn of(u: &CMat) -> Result<Self, WeylError> {
        let su4 = to_su4(u)?;
        let q = magic_basis();
        let m = q.adjoint().mul(&su4).mul(&q);
        let mm = m.transpose().mul(&m);
        let tr = mm.trace();
        let tr2 = mm.mul(&mm).trace();
        let g12 = (tr * tr).scale(1.0 / 16.0);
        let g3 = ((tr * tr) - tr2).scale(0.25);
        Ok(MakhlinInvariants {
            g1: g12.re,
            g2: g12.im,
            g3: g3.re,
        })
    }

    /// Closed-form invariants of a chamber coordinate (Zhang et al.):
    ///
    /// `g1 + i g2 = cos²c1 cos²c2 cos²c3 − sin²c1 sin²c2 sin²c3
    ///              + (i/4)·sin 2c1 · sin 2c2 · sin 2c3`
    /// `g3 = 4 cos²c1 cos²c2 cos²c3 − 4 sin²c1 sin²c2 sin²c3
    ///       − cos 2c1 · cos 2c2 · cos 2c3`
    pub fn of_point(p: WeylPoint) -> Self {
        let (c1, c2, c3) = (p.c1, p.c2, p.c3);
        let cc = (c1.cos() * c2.cos() * c3.cos()).powi(2);
        let ss = (c1.sin() * c2.sin() * c3.sin()).powi(2);
        MakhlinInvariants {
            g1: cc - ss,
            g2: 0.25 * (2.0 * c1).sin() * (2.0 * c2).sin() * (2.0 * c3).sin(),
            g3: 4.0 * cc - 4.0 * ss - (2.0 * c1).cos() * (2.0 * c2).cos() * (2.0 * c3).cos(),
        }
    }

    /// Squared Euclidean distance between invariant triples — the optimizer's
    /// loss functional.
    pub fn dist_sqr(self, other: Self) -> f64 {
        (self.g1 - other.g1).powi(2) + (self.g2 - other.g2).powi(2) + (self.g3 - other.g3).powi(2)
    }
}

/// True when `u` and `v` are locally equivalent (equal Makhlin invariants to
/// tolerance `tol`).
///
/// # Errors
///
/// Returns [`WeylError`] when either input is not a two-qubit unitary.
///
/// # Example
///
/// ```
/// use paradrive_weyl::{gates, invariants::locally_equivalent};
/// // CZ and CNOT are the same gate up to 1Q rotations.
/// assert!(locally_equivalent(&gates::cz(), &gates::cnot(), 1e-9).unwrap());
/// ```
pub fn locally_equivalent(u: &CMat, v: &CMat, tol: f64) -> Result<bool, WeylError> {
    let a = MakhlinInvariants::of(u)?;
    let b = MakhlinInvariants::of(v)?;
    Ok(a.dist_sqr(b).sqrt() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use paradrive_linalg::paulis;
    use paradrive_linalg::qr::random_su2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TOL: f64 = 1e-9;

    fn assert_inv(u: &CMat, g1: f64, g2: f64, g3: f64) {
        let m = MakhlinInvariants::of(u).unwrap();
        assert!(
            (m.g1 - g1).abs() < TOL && (m.g2 - g2).abs() < TOL && (m.g3 - g3).abs() < TOL,
            "got ({}, {}, {}), want ({g1}, {g2}, {g3})",
            m.g1,
            m.g2,
            m.g3
        );
    }

    #[test]
    fn reference_invariants() {
        assert_inv(&gates::identity(), 1.0, 0.0, 3.0);
        assert_inv(&gates::cnot(), 0.0, 0.0, 1.0);
        assert_inv(&gates::cz(), 0.0, 0.0, 1.0);
        assert_inv(&gates::iswap(), 0.0, 0.0, -1.0);
        assert_inv(&gates::swap(), -1.0, 0.0, -3.0);
        // B gate: (0, 0, 0).
        assert_inv(&gates::b_gate(), 0.0, 0.0, 0.0);
        // √iSWAP: (1/4, 0, 1).
        assert_inv(&gates::sqrt_iswap(), 0.25, 0.0, 1.0);
    }

    #[test]
    fn closed_form_matches_matrix_form() {
        for (name, u, _) in gates::paper_basis_set() {
            let from_matrix = MakhlinInvariants::of(&u).unwrap();
            let p = crate::magic::coordinates(&u).unwrap();
            let from_point = MakhlinInvariants::of_point(p);
            assert!(
                from_matrix.dist_sqr(from_point) < 1e-12,
                "{name}: matrix {from_matrix:?} vs point {from_point:?}"
            );
        }
    }

    #[test]
    fn invariants_are_local_invariants() {
        let mut rng = StdRng::seed_from_u64(9);
        let base = MakhlinInvariants::of(&gates::b_gate()).unwrap();
        for _ in 0..10 {
            let k1 = paulis::tensor(&random_su2(&mut rng), &random_su2(&mut rng));
            let k2 = paulis::tensor(&random_su2(&mut rng), &random_su2(&mut rng));
            let dressed = k1.mul(&gates::b_gate()).mul(&k2);
            let m = MakhlinInvariants::of(&dressed).unwrap();
            assert!(m.dist_sqr(base) < 1e-12);
        }
    }

    #[test]
    fn inequivalent_gates_detected() {
        assert!(!locally_equivalent(&gates::cnot(), &gates::iswap(), 1e-6).unwrap());
        assert!(!locally_equivalent(&gates::swap(), &gates::identity(), 1e-6).unwrap());
    }

    #[test]
    fn equivalent_gates_detected() {
        assert!(locally_equivalent(&gates::cz(), &gates::cnot(), 1e-9).unwrap());
        // iSWAP ≅ two √iSWAPs back to back.
        let two = gates::sqrt_iswap().mul(&gates::sqrt_iswap());
        assert!(locally_equivalent(&two, &gates::iswap(), 1e-9).unwrap());
    }
}

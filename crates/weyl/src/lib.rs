//! Weyl chamber geometry for two-qubit gates.
//!
//! Every two-qubit unitary is, up to single-qubit ("local") gates, a
//! *canonical gate* `CAN(c1, c2, c3) = exp(-i/2 (c1·XX + c2·YY + c3·ZZ))`.
//! The triple `(c1, c2, c3)`, reduced to a fundamental domain called the
//! **Weyl chamber**, labels the local-equivalence class of the gate and fully
//! determines its two-qubit "computing power". This crate implements:
//!
//! - [`WeylPoint`] — a chamber coordinate with canonicalization and the
//!   perfect-entangler predicate,
//! - [`coordinates`](magic::coordinates) — the unitary → coordinate map via
//!   the magic-basis gamma-matrix spectrum,
//! - [`WeylKey`] — a hashable quantized coordinate key for memoization,
//! - [`invariants`] — the Makhlin local invariants `(g1, g2, g3)`,
//! - [`gates`] — the named 2Q gate zoo of the paper (iSWAP, √iSWAP, CNOT,
//!   √CNOT, B, √B, SWAP, …) and fractional-pulse variants,
//! - [`haar`] — Haar-random 2Q gate/coordinate sampling,
//! - [`trajectory`] — Cartan trajectories (Fig. 1 of the paper).
//!
//! Units: radians, with `SWAP = (π/2, π/2, π/2)` and the chamber tetrahedron
//! spanned by `I = (0,0,0)`, `CAN(π,0,0) ≅ I`, `iSWAP = (π/2, π/2, 0)` and
//! `SWAP`.
//!
//! # Example
//!
//! ```
//! use paradrive_weyl::{gates, magic::coordinates, WeylPoint};
//!
//! let pt = coordinates(&gates::cnot()).unwrap();
//! assert!(pt.approx_eq(WeylPoint::CNOT, 1e-9));
//! assert!(pt.is_perfect_entangler(1e-9));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coord;
pub mod gates;
pub mod haar;
pub mod invariants;
pub mod kak;
pub mod key;
pub mod magic;
pub mod trajectory;

pub use coord::WeylPoint;
pub use invariants::MakhlinInvariants;
pub use key::WeylKey;

/// Errors produced by Weyl-chamber computations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WeylError {
    /// The input matrix was not 4×4.
    NotTwoQubit(usize, usize),
    /// The input matrix was not unitary to the required tolerance.
    NotUnitary(f64),
    /// An underlying linear-algebra routine failed.
    Linalg(paradrive_linalg::LinalgError),
    /// The gamma-matrix diagonalization failed to produce a clean spectrum.
    DegenerateSpectrum,
}

impl std::fmt::Display for WeylError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeylError::NotTwoQubit(r, c) => {
                write!(f, "expected a 4x4 two-qubit unitary, got {r}x{c}")
            }
            WeylError::NotUnitary(dev) => {
                write!(f, "matrix is not unitary (deviation {dev:.2e})")
            }
            WeylError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            WeylError::DegenerateSpectrum => {
                write!(f, "gamma-matrix spectrum could not be resolved")
            }
        }
    }
}

impl std::error::Error for WeylError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WeylError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<paradrive_linalg::LinalgError> for WeylError {
    fn from(e: paradrive_linalg::LinalgError) -> Self {
        WeylError::Linalg(e)
    }
}

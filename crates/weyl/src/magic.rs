//! Magic-basis machinery: the unitary → Weyl-coordinate map.
//!
//! In the *magic* (phased-Bell) basis, local gates become real orthogonal
//! matrices, so the spectrum of the gamma matrix `γ = M Mᵀ`
//! (with `M = Q† U Q`, `U ∈ SU(4)`) is a complete local invariant. Its four
//! unit-modulus eigenphases, suitably folded, yield the canonical chamber
//! coordinates. This is the classic construction of Makhlin and
//! Zhang–Vala–Sastry–Whaley, implemented here with a simultaneous
//! real-diagonalization eigensolver that is robust to the degenerate spectra
//! of Clifford gates.

use crate::coord::WeylPoint;
use crate::WeylError;
use paradrive_linalg::eig::eigh;
use paradrive_linalg::{CMat, C64};
use std::f64::consts::{FRAC_PI_2, PI};

/// The magic-basis change-of-basis matrix `Q` (Makhlin's convention):
///
/// ```text
///       1  [ 1   0   0   i ]
/// Q = ───  [ 0   i   1   0 ]
///      √2  [ 0   i  -1   0 ]
///          [ 1   0   0  -i ]
/// ```
pub fn magic_basis() -> CMat {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let z = C64::ZERO;
    let r = C64::real(s);
    let i = C64::new(0.0, s);
    CMat::from_rows(&[&[r, z, z, i], &[z, i, r, z], &[z, i, -r, z], &[r, z, z, -i]])
}

/// Projects a 4×4 unitary into `SU(4)` by dividing out `det(U)^{1/4}`.
///
/// # Errors
///
/// Returns [`WeylError::NotTwoQubit`] or [`WeylError::NotUnitary`] on invalid
/// input.
pub fn to_su4(u: &CMat) -> Result<CMat, WeylError> {
    if u.rows() != 4 || u.cols() != 4 {
        return Err(WeylError::NotTwoQubit(u.rows(), u.cols()));
    }
    let dev = u.adjoint().mul(u).sub(&CMat::identity(4)).max_abs();
    if dev > 1e-8 {
        return Err(WeylError::NotUnitary(dev));
    }
    let det = u.det();
    Ok(u.scale(det.powf(-0.25)))
}

/// The gamma matrix `γ = M Mᵀ` with `M = Q† U Q`, `U` already in `SU(4)`.
///
/// `γ` is unitary and symmetric; its spectrum is invariant under local gates.
pub fn gamma(su4: &CMat) -> CMat {
    let q = magic_basis();
    let m = q.adjoint().mul(su4).mul(&q);
    m.mul(&m.transpose())
}

/// Eigenphases of a unitary *symmetric* matrix, via simultaneous
/// diagonalization of its commuting Hermitian real and imaginary parts.
///
/// Robust to the degenerate spectra that defeat polynomial root finding
/// (e.g. the fourfold eigenvalue of the identity's gamma matrix).
fn unitary_symmetric_eigenphases(g: &CMat) -> Result<Vec<f64>, WeylError> {
    let re = g.add(&g.adjoint()).scale(C64::real(0.5));
    let im = g.sub(&g.adjoint()).scale(C64::new(0.0, -0.5));
    // A generic combination splits degeneracies of cos θ while preserving
    // the shared eigenbasis (Re γ and Im γ commute).
    for mu in [0.375_664_68, 0.104_729_33, 0.771_238_11] {
        let h = re.add(&im.scale(C64::real(mu)));
        let e = eigh(&h).map_err(WeylError::Linalg)?;
        let d = e.vectors.adjoint().mul(g).mul(&e.vectors);
        // Check the conjugation actually diagonalized γ.
        let mut off = 0.0_f64;
        for r in 0..4 {
            for c in 0..4 {
                if r != c {
                    off = off.max(d[(r, c)].norm());
                }
            }
        }
        if off < 1e-8 {
            return Ok((0..4).map(|k| d[(k, k)].arg()).collect());
        }
    }
    Err(WeylError::DegenerateSpectrum)
}

/// Computes the canonical Weyl-chamber coordinates of a two-qubit unitary.
///
/// Implements the standard eigenphase-folding recipe: phases of the gamma
/// spectrum are halved, sorted, shifted by the integer winding, and combined
/// pairwise into `(c1, c2, c3)`; a final reflection maps into the chamber.
///
/// # Errors
///
/// Returns [`WeylError`] if the input is not a 4×4 unitary or the spectrum
/// cannot be resolved.
///
/// # Example
///
/// ```
/// use paradrive_weyl::{gates, magic::coordinates, WeylPoint};
/// let pt = coordinates(&gates::iswap()).unwrap();
/// assert!(pt.approx_eq(WeylPoint::ISWAP, 1e-9));
/// ```
pub fn coordinates(u: &CMat) -> Result<WeylPoint, WeylError> {
    let su4 = to_su4(u)?;
    let g = gamma(&su4);
    let phases = unitary_symmetric_eigenphases(&g)?;

    // two_s[k] = arg(λ_k)/π ∈ (-1, 1]; fold into (-1/2, 3/2].
    let mut two_s: Vec<f64> = phases.iter().map(|&p| p / PI).collect();
    for v in &mut two_s {
        if *v <= -0.5 {
            *v += 2.0;
        }
    }
    // s ∈ (-1/4, 3/4]; Σs ≡ 0 (mod 1) because det(γ) = 1.
    let mut s: Vec<f64> = two_s.iter().map(|&v| v / 2.0).collect();
    s.sort_by(|a, b| b.total_cmp(a));
    let n = s.iter().sum::<f64>().round() as i64;
    let n = n.clamp(0, 4) as usize;
    for v in s.iter_mut().take(n) {
        *v -= 1.0;
    }
    // After subtracting 1 from the n largest entries, rotating by n restores
    // decreasing order.
    s.rotate_left(n);

    let mut c1 = PI * (s[0] + s[1]);
    let mut c2 = PI * (s[0] + s[2]);
    let mut c3 = PI * (s[1] + s[2]);
    // Reflect into the chamber when the third coordinate is negative.
    if c3 < 0.0 {
        c1 = PI - c1;
        c3 = -c3;
    }
    // Snap tiny numerical dust so that exact gates land exactly.
    let snap = |x: f64| if x.abs() < 5e-10 { 0.0 } else { x };
    c1 = snap(c1);
    c2 = snap(c2);
    c3 = snap(c3);
    // c2/c3 ordering can be perturbed by noise at degeneracies; restore it.
    if c3 > c2 {
        std::mem::swap(&mut c2, &mut c3);
    }
    // On the base plane the mirror identification (c1,c2,0) ~ (π−c1,c2,0)
    // holds (conjugates share their Makhlin invariants there); fold to the
    // left half for a unique representative.
    if c3 < 1e-9 && c1 > FRAC_PI_2 {
        c1 = PI - c1;
    }
    Ok(WeylPoint::new(c1, c2, c3))
}

/// Canonicalizes raw coordinates by building the canonical gate and mapping
/// it back through [`coordinates`]. Any real triple is accepted.
///
/// # Errors
///
/// Propagates [`WeylError`] from the coordinate extraction (does not occur
/// for finite input).
pub fn canonicalize(raw: WeylPoint) -> Result<WeylPoint, WeylError> {
    coordinates(&crate::gates::can(raw))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use paradrive_linalg::paulis;
    use paradrive_linalg::qr::random_su2;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

    const TOL: f64 = 1e-8;

    #[test]
    fn magic_basis_is_unitary() {
        assert!(magic_basis().is_unitary(1e-14));
    }

    #[test]
    fn to_su4_has_unit_det() {
        let u = gates::cnot();
        let s = to_su4(&u).unwrap();
        assert!(s.det().approx_eq(C64::ONE, 1e-10));
    }

    #[test]
    fn to_su4_rejects_bad_input() {
        assert!(matches!(
            to_su4(&CMat::identity(2)),
            Err(WeylError::NotTwoQubit(2, 2))
        ));
        let junk = CMat::identity(4).scale(C64::real(2.0));
        assert!(matches!(to_su4(&junk), Err(WeylError::NotUnitary(_))));
    }

    #[test]
    fn named_gate_coordinates() {
        let cases = [
            (gates::identity(), WeylPoint::IDENTITY),
            (gates::cnot(), WeylPoint::CNOT),
            (gates::cz(), WeylPoint::CNOT),
            (gates::iswap(), WeylPoint::ISWAP),
            (gates::sqrt_iswap(), WeylPoint::SQRT_ISWAP),
            (gates::swap(), WeylPoint::SWAP),
            (gates::b_gate(), WeylPoint::B),
            (gates::sqrt_cnot(), WeylPoint::SQRT_CNOT),
            (gates::sqrt_b(), WeylPoint::SQRT_B),
            (gates::sqrt_swap(), WeylPoint::SQRT_SWAP),
        ];
        for (u, expected) in cases {
            let pt = coordinates(&u).unwrap();
            assert!(pt.approx_eq(expected, TOL), "expected {expected}, got {pt}");
        }
    }

    #[test]
    fn global_phase_invariance() {
        let u = gates::b_gate().scale(C64::cis(1.234));
        let pt = coordinates(&u).unwrap();
        assert!(pt.approx_eq(WeylPoint::B, TOL));
    }

    #[test]
    fn local_gates_have_identity_coordinates() {
        let u = paulis::tensor(&paulis::h(), &paulis::t());
        let pt = coordinates(&u).unwrap();
        assert!(
            pt.approx_eq(WeylPoint::IDENTITY, TOL) || (pt.c1 - PI).abs() < TOL,
            "local gate mapped to {pt}"
        );
    }

    #[test]
    fn canonicalize_reflects_base_plane() {
        // (3π/4, π/4, 0) is the mirror of √iSWAP‡... it is its own canonical
        // point (the chamber extends to c1 = π on the base plane).
        let p = canonicalize(WeylPoint::new(3.0 * FRAC_PI_4, FRAC_PI_4, 0.0)).unwrap();
        assert!(p.in_chamber(TOL));
        // And a negative c3 must fold back inside.
        let q = canonicalize(WeylPoint::new(FRAC_PI_2, FRAC_PI_4, -FRAC_PI_4 / 2.0)).unwrap();
        assert!(q.in_chamber(TOL), "folded to {q}");
    }

    #[test]
    fn fractional_iswap_moves_linearly() {
        for n in [2u32, 3, 4, 8] {
            let u = gates::nth_root_iswap(n);
            let pt = coordinates(&u).unwrap();
            let expected = WeylPoint::ISWAP.scaled(1.0 / n as f64);
            assert!(pt.approx_eq(expected, TOL), "n={n}: {pt}");
        }
    }

    fn random_local(rng: &mut StdRng) -> CMat {
        paulis::tensor(&random_su2(rng), &random_su2(rng))
    }

    #[test]
    fn local_invariance_of_coordinates() {
        let mut rng = StdRng::seed_from_u64(42);
        for gate in [gates::cnot(), gates::sqrt_iswap(), gates::b_gate()] {
            let base = coordinates(&gate).unwrap();
            for _ in 0..8 {
                let k1 = random_local(&mut rng);
                let k2 = random_local(&mut rng);
                let dressed = k1.mul(&gate).mul(&k2);
                let pt = coordinates(&dressed).unwrap();
                assert!(
                    pt.approx_eq(base, 1e-6),
                    "local dressing moved {base} to {pt}"
                );
            }
        }
    }

    #[test]
    fn conjugate_maps_to_same_point() {
        // U and U† (conjugation ≅ reversed execution) share a canonical point
        // on the base plane via the mirror identification.
        let u = gates::sqrt_iswap();
        let p = coordinates(&u).unwrap();
        let q = coordinates(&u.adjoint()).unwrap();
        assert!(p.chamber_dist(q) < 1e-6, "p={p} q={q}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_can_round_trip(
            a in 0.0..FRAC_PI_2,
            f2 in 0.0..1.0f64,
            f3 in 0.0..1.0f64,
        ) {
            // Build a point already in the chamber: c1 ≥ c2 ≥ c3 ≥ 0, c1+c2 ≤ π.
            let c2 = a * f2;
            let c3 = c2 * f3;
            let p = WeylPoint::new(a, c2, c3);
            let rt = coordinates(&gates::can(p)).unwrap();
            prop_assert!(
                rt.approx_eq(p, 1e-6) || rt.chamber_dist(p) < 1e-6,
                "round trip {} -> {}", p, rt
            );
        }

        #[test]
        fn prop_coordinates_always_in_chamber(seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let u = paradrive_linalg::qr::random_unitary(4, &mut rng);
            let pt = coordinates(&u).unwrap();
            prop_assert!(pt.in_chamber(1e-7), "{} outside chamber", pt);
        }
    }
}

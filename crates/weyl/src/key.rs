//! [`WeylKey`] — a hashable, quantized canonical-coordinate key.
//!
//! [`WeylPoint`] is an `f64` triple and therefore neither `Eq` nor `Hash`,
//! so it cannot index a memoization table directly. `WeylKey` quantizes the
//! coordinates onto an integer lattice of pitch [`WeylKey::DEFAULT_QUANTUM`]
//! (after folding the base-plane mirror identification
//! `(c1, c2, 0) ~ (π−c1, c2, 0)` that [`crate::magic`] already
//! canonicalizes), giving a total-equality key suitable for `HashMap`s —
//! the backbone of the engine crate's cross-circuit decomposition cache.
//!
//! The quantum trades collision resistance against hit rate: points closer
//! than half a quantum per coordinate share a key, points further than a
//! full quantum apart never do. The default of 1 nrad is far below the
//! numerical noise floor of coordinate extraction, so distinct gate classes
//! produced by [`crate::magic::coordinates`] never alias, while repeated
//! extractions of the same block land on the same lattice site.

use crate::WeylPoint;
use std::f64::consts::{FRAC_PI_2, PI};

/// A quantized, hashable key for a canonical [`WeylPoint`].
///
/// Construction folds the base-plane mirror symmetry, then rounds each
/// coordinate to the nearest multiple of the quantum. Two canonical points
/// of the same local-equivalence class map to the same key; points more
/// than one quantum apart (in any folded coordinate) map to different keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WeylKey {
    /// Quantized first coordinate, in quanta.
    q1: i64,
    /// Quantized second coordinate, in quanta.
    q2: i64,
    /// Quantized third coordinate, in quanta.
    q3: i64,
}

impl WeylKey {
    /// The default lattice pitch, in radians: fine enough that distinct
    /// chamber points never alias, coarse enough to absorb extraction noise.
    pub const DEFAULT_QUANTUM: f64 = 1e-9;

    /// Builds the key for `point` at the default quantum.
    pub fn new(point: WeylPoint) -> Self {
        Self::with_quantum(point, Self::DEFAULT_QUANTUM)
    }

    /// Builds the key for `point` with an explicit lattice pitch.
    ///
    /// # Panics
    ///
    /// Panics unless `quantum` is positive and finite.
    pub fn with_quantum(point: WeylPoint, quantum: f64) -> Self {
        assert!(
            quantum > 0.0 && quantum.is_finite(),
            "quantum must be positive and finite"
        );
        let WeylPoint { mut c1, c2, c3 } = point;
        // Rounding also snaps signed zeros and sub-quantum dust onto the
        // lattice origin.
        let q = |x: f64| (x / quantum).round() as i64;
        let q3 = q(c3);
        // Fold the base-plane mirror identification (c1, c2, 0) ~
        // (π−c1, c2, 0) so that both representatives share a key — but
        // only when c3 actually lands on the lattice origin; a point whose
        // third coordinate rounds to a nonzero lattice site is off the
        // base plane, where no identification exists.
        if q3 == 0 && c1 > FRAC_PI_2 {
            c1 = PI - c1;
        }
        WeylKey {
            q1: q(c1),
            q2: q(c2),
            q3,
        }
    }

    /// The lattice coordinates, in quanta.
    pub fn as_lattice(self) -> [i64; 3] {
        [self.q1, self.q2, self.q3]
    }
}

impl From<WeylPoint> for WeylKey {
    fn from(p: WeylPoint) -> Self {
        WeylKey::new(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;
    use std::f64::consts::FRAC_PI_4;

    #[test]
    fn named_points_get_distinct_keys() {
        let points = [
            WeylPoint::IDENTITY,
            WeylPoint::CNOT,
            WeylPoint::SQRT_CNOT,
            WeylPoint::ISWAP,
            WeylPoint::SQRT_ISWAP,
            WeylPoint::B,
            WeylPoint::SQRT_B,
            WeylPoint::SWAP,
            WeylPoint::SQRT_SWAP,
        ];
        let mut seen: HashMap<WeylKey, WeylPoint> = HashMap::new();
        for p in points {
            if let Some(prev) = seen.insert(WeylKey::new(p), p) {
                panic!("{prev} and {p} collided");
            }
        }
    }

    #[test]
    fn base_plane_mirror_folds() {
        // (c1, c2, 0) and (π−c1, c2, 0) are the same local class.
        let p = WeylPoint::new(FRAC_PI_4, 0.1, 0.0);
        let mirror = WeylPoint::new(PI - FRAC_PI_4, 0.1, 0.0);
        assert_eq!(WeylKey::new(p), WeylKey::new(mirror));
        // Off the base plane there is no identification.
        let q = WeylPoint::new(FRAC_PI_4, 0.1, 0.05);
        let off_mirror = WeylPoint::new(PI - FRAC_PI_4, 0.1, 0.05);
        assert_ne!(WeylKey::new(q), WeylKey::new(off_mirror));
    }

    #[test]
    fn extraction_noise_is_absorbed() {
        let p = WeylPoint::CNOT;
        let noisy = WeylPoint::new(p.c1 + 2e-10, p.c2 - 1e-10, p.c3 + 1e-10);
        assert_eq!(WeylKey::new(p), WeylKey::new(noisy));
    }

    #[test]
    fn near_base_plane_but_nonzero_c3_does_not_fold() {
        // c3 = 0.7 quanta is below the old |c3| < quantum fold guard but
        // rounds to a *nonzero* lattice site — these two points are far
        // apart in the chamber and must not share a key.
        let c3 = 0.7 * WeylKey::DEFAULT_QUANTUM;
        let right = WeylPoint::new(FRAC_PI_2 + 0.3, 0.2, c3);
        let left = WeylPoint::new(FRAC_PI_2 - 0.3, 0.2, c3);
        assert_ne!(WeylKey::new(right), WeylKey::new(left));
    }

    #[test]
    fn negative_zero_matches_positive_zero() {
        let p = WeylPoint::new(FRAC_PI_4, 0.0, 0.0);
        let nz = WeylPoint::new(FRAC_PI_4, -0.0, -0.0);
        assert_eq!(WeylKey::new(p), WeylKey::new(nz));
    }

    #[test]
    fn quantum_must_be_positive() {
        let r = std::panic::catch_unwind(|| WeylKey::with_quantum(WeylPoint::CNOT, 0.0));
        assert!(r.is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Canonically-equivalent points — base-plane mirrors, the symmetry
        /// `magic::coordinates` folds — produce equal keys.
        #[test]
        fn prop_mirror_equivalent_points_share_keys(
            a in 0.0..FRAC_PI_2,
            f2 in 0.0..1.0f64,
        ) {
            // A canonical base-plane point: c1 ≥ c2, c3 = 0.
            let p = WeylPoint::new(a, a * f2, 0.0);
            let mirror = WeylPoint::new(PI - p.c1, p.c2, 0.0);
            prop_assert_eq!(WeylKey::new(p), WeylKey::new(mirror));
            // Round-tripping through the canonicalizer lands on the same key.
            let canon = crate::magic::canonicalize(mirror).unwrap();
            let dist = canon.chamber_dist(p);
            // The canonicalizer reports coordinates with numerical noise well
            // below the quantum only when it recovered the same class at all.
            prop_assert!(dist < 1e-7, "canonicalize drifted by {}", dist);
        }

        /// Nearby-but-distinct points (separated by a few quanta) never
        /// collide: rounding moves every coordinate by an exact lattice
        /// offset, so separation ≥ 2 quanta guarantees distinct keys.
        #[test]
        fn prop_distinct_points_do_not_collide(
            a in 0.01..FRAC_PI_2,
            f2 in 0.0..1.0f64,
            f3 in 0.0..1.0f64,
            sep in 2i64..1000,
        ) {
            let quantum = WeylKey::DEFAULT_QUANTUM;
            let c2 = a * f2;
            let c3 = c2 * f3;
            let p = WeylPoint::new(a, c2, c3);
            let delta = sep as f64 * quantum;
            // Perturb each coordinate in turn by an exact multiple of the
            // quantum; the keys must differ in that lattice coordinate.
            let variants = [
                WeylPoint::new(a + delta, c2, c3),
                WeylPoint::new(a, c2 + delta, c3),
                WeylPoint::new(a, c2, c3 + delta),
            ];
            for v in variants {
                // Stay away from the mirror-fold seam, where c1 is remapped.
                if (v.c3.abs() < quantum || p.c3.abs() < quantum)
                    && (v.c1 > FRAC_PI_2 || p.c1 > FRAC_PI_2)
                {
                    continue;
                }
                prop_assert_ne!(WeylKey::new(p), WeylKey::new(v));
            }
        }
    }
}

//! SWAP routing onto a coupling topology.
//!
//! A lookahead-greedy router in the SABRE spirit: whenever the next 2Q gate
//! acts on non-adjacent physical qubits, candidate SWAPs around either
//! operand are scored by the total distance of a window of upcoming 2Q
//! gates, and the best (random tie-break) is inserted. Deterministic for a
//! fixed seed; the paper takes the best of 10 routing runs.

use crate::topology::CouplingMap;
use crate::TranspileError;
use paradrive_circuit::{Circuit, Op, TwoQ};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunable router heuristics (exposed for the ablation studies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterOptions {
    /// How many upcoming 2Q gates the SWAP score looks at (0 = greedy).
    pub lookahead: usize,
    /// Decay applied to later gates in the lookahead window.
    pub decay: f64,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            lookahead: 8,
            decay: 0.7,
        }
    }
}

/// The result of routing: the physical circuit and bookkeeping.
#[derive(Debug, Clone)]
pub struct Routed {
    /// The routed circuit over physical qubits; every 2Q gate is adjacent.
    pub circuit: Circuit,
    /// Number of SWAPs inserted.
    pub swaps_inserted: usize,
    /// Final logical→physical layout.
    pub layout: Vec<usize>,
}

/// Routes a logical circuit onto the coupling map.
///
/// # Errors
///
/// Returns [`TranspileError::TooManyQubits`] when the circuit is wider than
/// the device.
pub fn route(circuit: &Circuit, map: &CouplingMap, seed: u64) -> Result<Routed, TranspileError> {
    route_with_options(circuit, map, seed, RouterOptions::default())
}

/// Routes with explicit heuristic options (see [`RouterOptions`]); the
/// ablation studies sweep the lookahead window through this entry point.
///
/// # Errors
///
/// Returns [`TranspileError::TooManyQubits`] when the circuit is wider than
/// the device, and [`TranspileError::RoutingStuck`] if the SWAP heuristic
/// fails to legalize a gate within `4 × n_qubits` insertions.
pub fn route_with_options(
    circuit: &Circuit,
    map: &CouplingMap,
    seed: u64,
    options: RouterOptions,
) -> Result<Routed, TranspileError> {
    if circuit.n_qubits() > map.n_qubits() {
        return Err(TranspileError::TooManyQubits {
            circuit: circuit.n_qubits(),
            device: map.n_qubits(),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let n_phys = map.n_qubits();
    // logical -> physical (trivial initial layout).
    let mut layout: Vec<usize> = (0..n_phys).collect();

    // Upcoming 2Q gates per op index, for the lookahead score.
    let two_q_indices: Vec<usize> = circuit
        .ops()
        .iter()
        .enumerate()
        .filter_map(|(i, op)| matches!(op, Op::TwoQ { .. }).then_some(i))
        .collect();

    let mut out = Circuit::new(n_phys);
    let mut swaps_inserted = 0usize;
    let mut next_2q_cursor = 0usize; // index into two_q_indices

    for (op_idx, op) in circuit.ops().iter().enumerate() {
        while next_2q_cursor < two_q_indices.len() && two_q_indices[next_2q_cursor] < op_idx {
            next_2q_cursor += 1;
        }
        match op {
            Op::OneQ { gate, q } => {
                out.push_1q(*gate, layout[*q]);
            }
            Op::TwoQ { gate, a, b } => {
                // Insert SWAPs until the operands are adjacent.
                let mut guard = 0;
                while !map.are_adjacent(layout[*a], layout[*b]) {
                    guard += 1;
                    if guard > 4 * n_phys {
                        return Err(TranspileError::RoutingStuck { gate_index: op_idx });
                    }
                    let swap = best_swap(
                        circuit,
                        map,
                        &layout,
                        &two_q_indices[next_2q_cursor..],
                        (*a, *b),
                        options,
                        &mut rng,
                    );
                    out.push_2q(TwoQ::Swap, swap.0, swap.1);
                    swaps_inserted += 1;
                    // Update layout: find logicals at those physicals.
                    let la = layout.iter().position(|&p| p == swap.0);
                    let lb = layout.iter().position(|&p| p == swap.1);
                    if let (Some(la), Some(lb)) = (la, lb) {
                        layout.swap(la, lb);
                    }
                }
                out.push_2q(gate.clone(), layout[*a], layout[*b]);
            }
        }
    }
    Ok(Routed {
        circuit: out,
        swaps_inserted,
        layout,
    })
}

/// Scores candidate SWAPs adjacent to the two operands of the blocked gate
/// and returns the best `(physical, physical)` pair.
fn best_swap(
    circuit: &Circuit,
    map: &CouplingMap,
    layout: &[usize],
    upcoming: &[usize],
    blocked: (usize, usize),
    options: RouterOptions,
    rng: &mut StdRng,
) -> (usize, usize) {
    let (la, lb) = blocked;
    let pa = layout[la];
    let pb = layout[lb];
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for &p in [pa, pb].iter() {
        for &nb in map.neighbors(p) {
            let c = (p.min(nb), p.max(nb));
            if !candidates.contains(&c) {
                candidates.push(c);
            }
        }
    }

    let mut best: Vec<(usize, usize)> = Vec::new();
    let mut best_score = f64::INFINITY;
    for &(x, y) in &candidates {
        // Apply the candidate swap to a scratch layout.
        let mut scratch = layout.to_vec();
        let lx = scratch.iter().position(|&p| p == x);
        let ly = scratch.iter().position(|&p| p == y);
        if let (Some(lx), Some(ly)) = (lx, ly) {
            scratch.swap(lx, ly);
        }
        // Primary term: the blocked gate's distance; lookahead term: the
        // decayed distances of upcoming 2Q gates.
        let mut score = map.distance(scratch[la], scratch[lb]) as f64 * 2.0;
        let mut weight = 1.0;
        for &gi in upcoming.iter().take(options.lookahead) {
            if let Op::TwoQ { a, b, .. } = &circuit.ops()[gi] {
                score += weight * map.distance(scratch[*a], scratch[*b]) as f64;
                weight *= options.decay;
            }
        }
        if score < best_score - 1e-12 {
            best_score = score;
            best = vec![(x, y)];
        } else if (score - best_score).abs() <= 1e-12 {
            best.push((x, y));
        }
    }
    best[rng.gen_range(0..best.len())]
}

/// Routes with `n_seeds` different seeds and returns the run with the
/// fewest inserted SWAPs — the paper's "best outcome from 10 transpiler
/// runs".
///
/// # Errors
///
/// Propagates the first routing failure.
pub fn route_best_of(
    circuit: &Circuit,
    map: &CouplingMap,
    n_seeds: u64,
) -> Result<Routed, TranspileError> {
    let mut best: Option<Routed> = None;
    for seed in 0..n_seeds.max(1) {
        let r = route(circuit, map, seed)?;
        if best
            .as_ref()
            .is_none_or(|b| r.swaps_inserted < b.swaps_inserted)
        {
            best = Some(r);
        }
    }
    Ok(best.expect("at least one seed"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradrive_circuit::benchmarks;
    use paradrive_circuit::OneQ;

    fn all_2q_adjacent(c: &Circuit, map: &CouplingMap) -> bool {
        c.ops().iter().all(|op| match op {
            Op::TwoQ { a, b, .. } => map.are_adjacent(*a, *b),
            _ => true,
        })
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let map = CouplingMap::grid(4, 4);
        let mut c = Circuit::new(16);
        c.push_2q(TwoQ::Cx, 0, 1);
        c.push_2q(TwoQ::Cx, 5, 9);
        let r = route(&c, &map, 0).unwrap();
        assert_eq!(r.swaps_inserted, 0);
        assert!(all_2q_adjacent(&r.circuit, &map));
    }

    #[test]
    fn distant_gate_gets_routed() {
        let map = CouplingMap::grid(4, 4);
        let mut c = Circuit::new(16);
        c.push_2q(TwoQ::Cx, 0, 15); // distance 6
        let r = route(&c, &map, 0).unwrap();
        assert!(r.swaps_inserted >= 5, "too few swaps: {}", r.swaps_inserted);
        assert!(all_2q_adjacent(&r.circuit, &map));
    }

    #[test]
    fn one_q_gates_pass_through() {
        let map = CouplingMap::grid(2, 2);
        let mut c = Circuit::new(4);
        c.push_1q(OneQ::H, 2);
        let r = route(&c, &map, 0).unwrap();
        assert_eq!(r.circuit.one_q_count(), 1);
    }

    #[test]
    fn too_wide_circuit_rejected() {
        let map = CouplingMap::grid(2, 2);
        let c = Circuit::new(9);
        assert!(matches!(
            route(&c, &map, 0),
            Err(TranspileError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn full_benchmark_routes_cleanly() {
        let map = CouplingMap::grid(4, 4);
        let c = benchmarks::qft(16);
        let r = route(&c, &map, 1).unwrap();
        assert!(all_2q_adjacent(&r.circuit, &map));
        // QFT's all-to-all CPhases on a lattice need plenty of SWAPs.
        assert!(r.swaps_inserted > 20);
        // 2Q gate count grows exactly by the inserted swaps.
        assert_eq!(r.circuit.two_q_count(), c.two_q_count() + r.swaps_inserted);
    }

    #[test]
    fn best_of_seeds_not_worse_than_first() {
        let map = CouplingMap::grid(4, 4);
        let c = benchmarks::qft(16);
        let first = route(&c, &map, 0).unwrap();
        let best = route_best_of(&c, &map, 10).unwrap();
        assert!(best.swaps_inserted <= first.swaps_inserted);
    }

    #[test]
    fn ghz_on_line_needs_no_swaps() {
        let map = CouplingMap::line(16);
        let c = benchmarks::ghz(16);
        let r = route(&c, &map, 0).unwrap();
        assert_eq!(r.swaps_inserted, 0);
    }
}

//! SWAP routing onto a coupling topology, optionally noise-aware.
//!
//! A lookahead-greedy router in the SABRE spirit: whenever the next 2Q gate
//! acts on non-adjacent physical qubits, candidate SWAPs around either
//! operand are scored by the total distance of a window of upcoming 2Q
//! gates, and the best (random tie-break) is inserted. Deterministic for a
//! fixed seed; the paper takes the best of 10 routing runs.
//!
//! With a [`Calibration`] ([`route_calibrated`]) the router becomes
//! **noise-aware**: distances are replaced by effective distances over a
//! weighted graph where crossing edge `e` costs
//! `1 + noise_weight · (−ln(1 − error(e)))`, and edges whose error rate
//! reaches [`RouterOptions::dead_edge_threshold`] are excluded outright —
//! no SWAP or gate is ever scheduled on a dead edge. On a uniform
//! calibration every weight is exactly `1.0`, and the noise-aware router
//! reproduces the noise-blind router bit for bit.

use crate::calibration::Calibration;
use crate::topology::CouplingMap;
use crate::TranspileError;
use paradrive_circuit::{Circuit, Op, TwoQ};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunable router heuristics (exposed for the ablation studies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterOptions {
    /// How many upcoming 2Q gates the SWAP score looks at (0 = greedy).
    pub lookahead: usize,
    /// Decay applied to later gates in the lookahead window.
    pub decay: f64,
    /// Weight of the per-edge log-infidelity term in noise-aware
    /// effective distances (ignored without a calibration).
    pub noise_weight: f64,
    /// Error rate at or above which a noise-aware route treats an edge as
    /// dead: never crossed, never hosts a gate (ignored without a
    /// calibration).
    pub dead_edge_threshold: f64,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            lookahead: 8,
            decay: 0.7,
            noise_weight: 4.0,
            dead_edge_threshold: 0.1,
        }
    }
}

/// The noise-aware router's precomputed view of one calibrated device:
/// which edges are usable and the all-pairs effective distances over the
/// healthy weighted graph.
///
/// Construction costs an all-pairs shortest-path solve; it is a pure
/// function of `(map, calibration, options)`, so batch drivers build one
/// oracle per job and share it across every routing seed
/// ([`route_with_oracle`]) instead of paying the solve per seed.
#[derive(Debug, Clone)]
pub struct NoiseOracle {
    usable: Vec<Vec<bool>>,
    dist: Vec<Vec<f64>>,
}

impl NoiseOracle {
    /// Builds the healthy-edge set and effective distance matrix for a
    /// calibrated device.
    pub fn new(map: &CouplingMap, cal: &Calibration, options: RouterOptions) -> Self {
        let n = map.n_qubits();
        let mut usable = vec![vec![false; n]; n];
        let mut weight = vec![vec![f64::INFINITY; n]; n];
        for (a, row) in usable.iter_mut().enumerate() {
            for (b, slot) in row.iter_mut().enumerate() {
                if map.are_adjacent(a, b) && cal.edge(a, b).error_rate < options.dead_edge_threshold
                {
                    *slot = true;
                    weight[a][b] = 1.0 + options.noise_weight * cal.edge_noise_cost(a, b);
                }
            }
        }
        // All-pairs Dijkstra over the healthy weighted graph (devices are
        // tens of qubits, so the O(n³) dense form is plenty). Unreachable
        // pairs stay at infinity and surface as `RoutingStuck`.
        let mut dist = vec![vec![f64::INFINITY; n]; n];
        for s in 0..n {
            let d = &mut dist[s];
            d[s] = 0.0;
            let mut done = vec![false; n];
            for _ in 0..n {
                let Some(u) = (0..n)
                    .filter(|&u| !done[u] && d[u].is_finite())
                    .min_by(|&x, &y| d[x].partial_cmp(&d[y]).expect("finite distances"))
                else {
                    break;
                };
                done[u] = true;
                for &v in map.neighbors(u) {
                    if usable[u][v] && d[u] + weight[u][v] < d[v] {
                        d[v] = d[u] + weight[u][v];
                    }
                }
            }
        }
        NoiseOracle { usable, dist }
    }
}

/// The distance/adjacency oracle the scoring loop runs against: plain BFS
/// distances when noise-blind, effective healthy-graph distances when
/// noise-aware.
struct View<'a> {
    map: &'a CouplingMap,
    noise: Option<&'a NoiseOracle>,
}

impl View<'_> {
    fn distance(&self, a: usize, b: usize) -> f64 {
        match &self.noise {
            // Uniform calibrations yield unit weights, so these are the
            // same integer-valued floats BFS would produce.
            Some(v) => v.dist[a][b],
            None => self.map.distance(a, b) as f64,
        }
    }

    /// True when a gate (or SWAP) may execute on the physical pair.
    fn usable(&self, a: usize, b: usize) -> bool {
        match &self.noise {
            Some(v) => v.usable[a][b],
            None => self.map.are_adjacent(a, b),
        }
    }
}

/// The result of routing: the physical circuit and bookkeeping.
#[derive(Debug, Clone)]
pub struct Routed {
    /// The routed circuit over physical qubits; every 2Q gate is adjacent.
    pub circuit: Circuit,
    /// Number of SWAPs inserted.
    pub swaps_inserted: usize,
    /// Final logical→physical layout.
    pub layout: Vec<usize>,
}

/// Routes a logical circuit onto the coupling map.
///
/// # Errors
///
/// Returns [`TranspileError::TooManyQubits`] when the circuit is wider than
/// the device.
pub fn route(circuit: &Circuit, map: &CouplingMap, seed: u64) -> Result<Routed, TranspileError> {
    route_with_options(circuit, map, seed, RouterOptions::default())
}

/// Routes with explicit heuristic options (see [`RouterOptions`]); the
/// ablation studies sweep the lookahead window through this entry point.
///
/// # Errors
///
/// Returns [`TranspileError::TooManyQubits`] when the circuit is wider than
/// the device, and [`TranspileError::RoutingStuck`] if the SWAP heuristic
/// fails to legalize a gate within `4 × n_qubits` insertions.
pub fn route_with_options(
    circuit: &Circuit,
    map: &CouplingMap,
    seed: u64,
    options: RouterOptions,
) -> Result<Routed, TranspileError> {
    route_calibrated(circuit, map, None, seed, options)
}

/// Routes noise-aware when a [`Calibration`] is supplied: SWAP scoring
/// uses effective distances that penalize high-error edges, and edges at
/// or above [`RouterOptions::dead_edge_threshold`] never host a gate. With
/// `None` (or a uniform calibration) this is exactly the noise-blind
/// router, bit for bit.
///
/// # Errors
///
/// As [`route_with_options`]; additionally returns
/// [`TranspileError::RoutingStuck`] when the healthy (non-dead) edges no
/// longer connect a gate's operands.
pub fn route_calibrated(
    circuit: &Circuit,
    map: &CouplingMap,
    calibration: Option<&Calibration>,
    seed: u64,
    options: RouterOptions,
) -> Result<Routed, TranspileError> {
    let oracle = calibration.map(|cal| NoiseOracle::new(map, cal, options));
    route_with_oracle(circuit, map, oracle.as_ref(), seed, options)
}

/// [`route_calibrated`] with a prebuilt [`NoiseOracle`], for callers that
/// route the same calibrated device many times (one oracle per job, many
/// seeds).
///
/// # Errors
///
/// As [`route_calibrated`].
pub fn route_with_oracle(
    circuit: &Circuit,
    map: &CouplingMap,
    oracle: Option<&NoiseOracle>,
    seed: u64,
    options: RouterOptions,
) -> Result<Routed, TranspileError> {
    if circuit.n_qubits() > map.n_qubits() {
        return Err(TranspileError::TooManyQubits {
            circuit: circuit.n_qubits(),
            device: map.n_qubits(),
        });
    }
    let view = View { map, noise: oracle };
    let mut rng = StdRng::seed_from_u64(seed);
    let n_phys = map.n_qubits();
    // logical -> physical (trivial initial layout).
    let mut layout: Vec<usize> = (0..n_phys).collect();

    // Upcoming 2Q gates per op index, for the lookahead score.
    let two_q_indices: Vec<usize> = circuit
        .ops()
        .iter()
        .enumerate()
        .filter_map(|(i, op)| matches!(op, Op::TwoQ { .. }).then_some(i))
        .collect();

    let mut out = Circuit::new(n_phys);
    let mut swaps_inserted = 0usize;
    let mut next_2q_cursor = 0usize; // index into two_q_indices

    for (op_idx, op) in circuit.ops().iter().enumerate() {
        while next_2q_cursor < two_q_indices.len() && two_q_indices[next_2q_cursor] < op_idx {
            next_2q_cursor += 1;
        }
        match op {
            Op::OneQ { gate, q } => {
                out.push_1q(*gate, layout[*q]);
            }
            Op::TwoQ { gate, a, b } => {
                // Insert SWAPs until the operands share a usable edge.
                let mut guard = 0;
                while !view.usable(layout[*a], layout[*b]) {
                    guard += 1;
                    if guard > 4 * n_phys {
                        return Err(TranspileError::RoutingStuck { gate_index: op_idx });
                    }
                    let Some(swap) = best_swap(
                        circuit,
                        &view,
                        &layout,
                        &two_q_indices[next_2q_cursor..],
                        (*a, *b),
                        options,
                        &mut rng,
                    ) else {
                        // Every candidate edge is dead: the healthy graph
                        // cannot move the operands together.
                        return Err(TranspileError::RoutingStuck { gate_index: op_idx });
                    };
                    out.push_2q(TwoQ::Swap, swap.0, swap.1);
                    swaps_inserted += 1;
                    // Update layout: find logicals at those physicals.
                    let la = layout.iter().position(|&p| p == swap.0);
                    let lb = layout.iter().position(|&p| p == swap.1);
                    if let (Some(la), Some(lb)) = (la, lb) {
                        layout.swap(la, lb);
                    }
                }
                out.push_2q(gate.clone(), layout[*a], layout[*b]);
            }
        }
    }
    Ok(Routed {
        circuit: out,
        swaps_inserted,
        layout,
    })
}

/// Scores candidate SWAPs on usable edges adjacent to the two operands of
/// the blocked gate and returns the best `(physical, physical)` pair, or
/// `None` when every adjacent edge is dead.
fn best_swap(
    circuit: &Circuit,
    view: &View<'_>,
    layout: &[usize],
    upcoming: &[usize],
    blocked: (usize, usize),
    options: RouterOptions,
    rng: &mut StdRng,
) -> Option<(usize, usize)> {
    let (la, lb) = blocked;
    let pa = layout[la];
    let pb = layout[lb];
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for &p in [pa, pb].iter() {
        for &nb in view.map.neighbors(p) {
            let c = (p.min(nb), p.max(nb));
            if view.usable(c.0, c.1) && !candidates.contains(&c) {
                candidates.push(c);
            }
        }
    }

    let mut best: Vec<(usize, usize)> = Vec::new();
    let mut best_score = f64::INFINITY;
    for &(x, y) in &candidates {
        // Apply the candidate swap to a scratch layout.
        let mut scratch = layout.to_vec();
        let lx = scratch.iter().position(|&p| p == x);
        let ly = scratch.iter().position(|&p| p == y);
        if let (Some(lx), Some(ly)) = (lx, ly) {
            scratch.swap(lx, ly);
        }
        // Primary term: the blocked gate's distance; lookahead term: the
        // decayed distances of upcoming 2Q gates.
        let mut score = view.distance(scratch[la], scratch[lb]) * 2.0;
        let mut weight = 1.0;
        for &gi in upcoming.iter().take(options.lookahead) {
            if let Op::TwoQ { a, b, .. } = &circuit.ops()[gi] {
                score += weight * view.distance(scratch[*a], scratch[*b]);
                weight *= options.decay;
            }
        }
        if score < best_score - 1e-12 {
            best_score = score;
            best = vec![(x, y)];
        } else if (score - best_score).abs() <= 1e-12 {
            best.push((x, y));
        }
    }
    if best.is_empty() || !best_score.is_finite() {
        return None;
    }
    Some(best[rng.gen_range(0..best.len())])
}

/// Routes with `n_seeds` different seeds and returns the run with the
/// fewest inserted SWAPs — the paper's "best outcome from 10 transpiler
/// runs".
///
/// # Errors
///
/// Propagates the first routing failure.
pub fn route_best_of(
    circuit: &Circuit,
    map: &CouplingMap,
    n_seeds: u64,
) -> Result<Routed, TranspileError> {
    let mut best: Option<Routed> = None;
    for seed in 0..n_seeds.max(1) {
        let r = route(circuit, map, seed)?;
        if best
            .as_ref()
            .is_none_or(|b| r.swaps_inserted < b.swaps_inserted)
        {
            best = Some(r);
        }
    }
    Ok(best.expect("at least one seed"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradrive_circuit::benchmarks;
    use paradrive_circuit::OneQ;

    fn all_2q_adjacent(c: &Circuit, map: &CouplingMap) -> bool {
        c.ops().iter().all(|op| match op {
            Op::TwoQ { a, b, .. } => map.are_adjacent(*a, *b),
            _ => true,
        })
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let map = CouplingMap::grid(4, 4);
        let mut c = Circuit::new(16);
        c.push_2q(TwoQ::Cx, 0, 1);
        c.push_2q(TwoQ::Cx, 5, 9);
        let r = route(&c, &map, 0).unwrap();
        assert_eq!(r.swaps_inserted, 0);
        assert!(all_2q_adjacent(&r.circuit, &map));
    }

    #[test]
    fn distant_gate_gets_routed() {
        let map = CouplingMap::grid(4, 4);
        let mut c = Circuit::new(16);
        c.push_2q(TwoQ::Cx, 0, 15); // distance 6
        let r = route(&c, &map, 0).unwrap();
        assert!(r.swaps_inserted >= 5, "too few swaps: {}", r.swaps_inserted);
        assert!(all_2q_adjacent(&r.circuit, &map));
    }

    #[test]
    fn one_q_gates_pass_through() {
        let map = CouplingMap::grid(2, 2);
        let mut c = Circuit::new(4);
        c.push_1q(OneQ::H, 2);
        let r = route(&c, &map, 0).unwrap();
        assert_eq!(r.circuit.one_q_count(), 1);
    }

    #[test]
    fn too_wide_circuit_rejected() {
        let map = CouplingMap::grid(2, 2);
        let c = Circuit::new(9);
        assert!(matches!(
            route(&c, &map, 0),
            Err(TranspileError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn full_benchmark_routes_cleanly() {
        let map = CouplingMap::grid(4, 4);
        let c = benchmarks::qft(16);
        let r = route(&c, &map, 1).unwrap();
        assert!(all_2q_adjacent(&r.circuit, &map));
        // QFT's all-to-all CPhases on a lattice need plenty of SWAPs.
        assert!(r.swaps_inserted > 20);
        // 2Q gate count grows exactly by the inserted swaps.
        assert_eq!(r.circuit.two_q_count(), c.two_q_count() + r.swaps_inserted);
    }

    #[test]
    fn best_of_seeds_not_worse_than_first() {
        let map = CouplingMap::grid(4, 4);
        let c = benchmarks::qft(16);
        let first = route(&c, &map, 0).unwrap();
        let best = route_best_of(&c, &map, 10).unwrap();
        assert!(best.swaps_inserted <= first.swaps_inserted);
    }

    #[test]
    fn ghz_on_line_needs_no_swaps() {
        let map = CouplingMap::line(16);
        let c = benchmarks::ghz(16);
        let r = route(&c, &map, 0).unwrap();
        assert_eq!(r.swaps_inserted, 0);
    }

    #[test]
    fn uniform_calibration_routes_identically_to_blind() {
        use crate::calibration::Calibration;
        use crate::fidelity::FidelityModel;
        let map = CouplingMap::grid(4, 4);
        let cal = Calibration::uniform(&map, FidelityModel::paper());
        let c = benchmarks::qft(16);
        for seed in 0..4 {
            let blind = route(&c, &map, seed).unwrap();
            let aware =
                route_calibrated(&c, &map, Some(&cal), seed, RouterOptions::default()).unwrap();
            assert_eq!(blind.circuit, aware.circuit, "seed {seed}");
            assert_eq!(blind.swaps_inserted, aware.swaps_inserted);
            assert_eq!(blind.layout, aware.layout);
        }
    }

    /// The planted-dead-edge regression: noise-aware routing never touches
    /// an edge whose error rate crosses the dead threshold, while the
    /// noise-blind router routes straight through it.
    #[test]
    fn noise_aware_avoids_planted_dead_edge() {
        use crate::calibration::{Calibration, EdgeCalibration};
        use crate::fidelity::FidelityModel;
        let map = CouplingMap::grid(3, 3);
        // Kill the (1,2) edge in the top row; plenty of healthy detours.
        let dead = (1usize, 2usize);
        let cal = Calibration::uniform(&map, FidelityModel::paper()).with_edge(
            dead.0,
            dead.1,
            EdgeCalibration {
                duration_factor: 3.0,
                error_rate: 0.25,
            },
        );
        let uses_dead = |r: &Routed| {
            r.circuit.ops().iter().any(|op| match op {
                Op::TwoQ { a, b, .. } => (*a.min(b), *a.max(b)) == dead,
                _ => false,
            })
        };
        // A gate between the dead edge's endpoints plus traffic across it.
        let mut c = Circuit::new(9);
        c.push_2q(TwoQ::Cx, 1, 2);
        c.push_2q(TwoQ::Cx, 0, 2);
        c.push_2q(TwoQ::Cx, 2, 6);
        let blind_hits = (0..6)
            .filter(|&s| uses_dead(&route(&c, &map, s).unwrap()))
            .count();
        assert!(blind_hits > 0, "blind routing should cross the dead edge");
        for seed in 0..6 {
            let aware =
                route_calibrated(&c, &map, Some(&cal), seed, RouterOptions::default()).unwrap();
            assert!(!uses_dead(&aware), "seed {seed} touched the dead edge");
            // Still a legal routing: every 2Q op on a coupled pair.
            assert!(all_2q_adjacent(&aware.circuit, &map));
        }
    }

    /// High-but-not-dead error rates are penalized softly: the router
    /// prefers clean detours but may still cross when forced.
    #[test]
    fn degraded_edges_are_soft_penalties() {
        use crate::calibration::{Calibration, EdgeCalibration};
        use crate::fidelity::FidelityModel;
        // On a line there is no detour: routing must cross the degraded
        // edge and still succeeds.
        let map = CouplingMap::line(4);
        let cal = Calibration::uniform(&map, FidelityModel::paper()).with_edge(
            1,
            2,
            EdgeCalibration {
                duration_factor: 2.0,
                error_rate: 0.05,
            },
        );
        let mut c = Circuit::new(4);
        c.push_2q(TwoQ::Cx, 0, 3);
        let r = route_calibrated(&c, &map, Some(&cal), 0, RouterOptions::default()).unwrap();
        assert!(all_2q_adjacent(&r.circuit, &map));
    }

    #[test]
    fn fully_dead_cut_is_routing_stuck() {
        use crate::calibration::{Calibration, EdgeCalibration};
        use crate::fidelity::FidelityModel;
        // Killing the only edge of a 2-qubit device leaves no healthy path.
        let map = CouplingMap::line(2);
        let cal = Calibration::uniform(&map, FidelityModel::paper()).with_edge(
            0,
            1,
            EdgeCalibration {
                duration_factor: 1.0,
                error_rate: 0.9,
            },
        );
        let mut c = Circuit::new(2);
        c.push_2q(TwoQ::Cx, 0, 1);
        let r = route_calibrated(&c, &map, Some(&cal), 0, RouterOptions::default());
        assert!(matches!(r, Err(TranspileError::RoutingStuck { .. })));
    }
}

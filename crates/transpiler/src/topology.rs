//! Device coupling topologies.

use crate::TranspileError;

/// An undirected qubit-coupling graph with an all-pairs distance matrix.
#[derive(Debug, Clone)]
pub struct CouplingMap {
    n: usize,
    adjacency: Vec<Vec<usize>>,
    dist: Vec<Vec<usize>>,
}

impl CouplingMap {
    /// Builds a coupling map from an edge list.
    ///
    /// # Errors
    ///
    /// Returns [`TranspileError::DisconnectedTopology`] when the graph does
    /// not connect all `n` qubits.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, TranspileError> {
        let mut adjacency = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n && a != b, "invalid edge ({a},{b})");
            if !adjacency[a].contains(&b) {
                adjacency[a].push(b);
                adjacency[b].push(a);
            }
        }
        // BFS all-pairs distances.
        let mut dist = vec![vec![usize::MAX; n]; n];
        #[allow(clippy::needless_range_loop)] // `s` is both index and BFS source
        for s in 0..n {
            let mut queue = std::collections::VecDeque::new();
            dist[s][s] = 0;
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                for &v in &adjacency[u] {
                    if dist[s][v] == usize::MAX {
                        dist[s][v] = dist[s][u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            if dist[s].contains(&usize::MAX) {
                return Err(TranspileError::DisconnectedTopology);
            }
        }
        Ok(CouplingMap { n, adjacency, dist })
    }

    /// The `rows × cols` square-lattice topology (the paper uses 4×4).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn grid(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0);
        let n = rows * cols;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let q = r * cols + c;
                if c + 1 < cols {
                    edges.push((q, q + 1));
                }
                if r + 1 < rows {
                    edges.push((q, q + cols));
                }
            }
        }
        CouplingMap::from_edges(n, &edges).expect("grid is connected")
    }

    /// A linear chain of `n` qubits.
    pub fn line(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        CouplingMap::from_edges(n, &edges).expect("line is connected")
    }

    /// Number of physical qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Shortest-path distance between two physical qubits.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        self.dist[a][b]
    }

    /// True when two physical qubits are directly coupled.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        self.dist[a][b] == 1
    }

    /// Neighbors of a physical qubit.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adjacency[q]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_4x4_shape() {
        let g = CouplingMap::grid(4, 4);
        assert_eq!(g.n_qubits(), 16);
        // Corner has 2 neighbors, edge 3, interior 4.
        assert_eq!(g.neighbors(0).len(), 2);
        assert_eq!(g.neighbors(1).len(), 3);
        assert_eq!(g.neighbors(5).len(), 4);
        // Manhattan distances.
        assert_eq!(g.distance(0, 15), 6);
        assert_eq!(g.distance(0, 3), 3);
        assert!(g.are_adjacent(0, 1));
        assert!(g.are_adjacent(0, 4));
        assert!(!g.are_adjacent(0, 5));
    }

    #[test]
    fn line_distances() {
        let l = CouplingMap::line(5);
        assert_eq!(l.distance(0, 4), 4);
        assert!(l.are_adjacent(2, 3));
    }

    #[test]
    fn disconnected_rejected() {
        let r = CouplingMap::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(matches!(r, Err(TranspileError::DisconnectedTopology)));
    }

    #[test]
    fn duplicate_edges_ignored() {
        let g = CouplingMap::from_edges(2, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.neighbors(0), &[1]);
    }
}

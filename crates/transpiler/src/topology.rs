//! Device coupling topologies — the "topology zoo".
//!
//! The paper evaluates its speed-limited parallel-drive gates on the 4×4
//! square lattice, but the headline claims are topology-sensitive: sparse
//! coupling maps pay more routing SWAPs, and every inserted SWAP is a 2Q
//! block whose decomposition cost the optimized rules discount. The zoo
//! spans that spectrum:
//!
//! - [`CouplingMap::grid`] — the paper's square lattice (degree ≤ 4);
//! - [`CouplingMap::line`] / [`CouplingMap::ring`] — minimal connectivity,
//!   the worst case for all-to-all workloads;
//! - [`CouplingMap::heavy_hex`] — the degree-≤3 heavy-hexagon lattice of
//!   IBM-style devices (a hexagonal lattice with every edge subdivided);
//! - [`CouplingMap::modular`] — dense chips joined by a few inter-chip
//!   links, the regime where routing cost is dominated by the sparse
//!   links and parallel-drive wins are largest.
//!
//! Every map carries a human-readable [`CouplingMap::label`] so batch
//! reports can aggregate results per topology.

use crate::TranspileError;

/// An undirected qubit-coupling graph with an all-pairs distance matrix.
#[derive(Debug, Clone)]
pub struct CouplingMap {
    n: usize,
    label: String,
    adjacency: Vec<Vec<usize>>,
    dist: Vec<Vec<usize>>,
}

impl CouplingMap {
    /// Builds a coupling map from an edge list.
    ///
    /// A single qubit with no edges is a valid (trivially connected) map.
    ///
    /// # Errors
    ///
    /// - [`TranspileError::InvalidEdge`] for a self-loop or an endpoint
    ///   `>= n`;
    /// - [`TranspileError::DisconnectedTopology`] when the graph does not
    ///   connect all `n` qubits.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, TranspileError> {
        let mut adjacency = vec![Vec::new(); n];
        for &(a, b) in edges {
            if a >= n || b >= n || a == b {
                return Err(TranspileError::InvalidEdge { a, b, n });
            }
            if !adjacency[a].contains(&b) {
                adjacency[a].push(b);
                adjacency[b].push(a);
            }
        }
        // BFS all-pairs distances.
        let mut dist = vec![vec![usize::MAX; n]; n];
        #[allow(clippy::needless_range_loop)] // `s` is both index and BFS source
        for s in 0..n {
            let mut queue = std::collections::VecDeque::new();
            dist[s][s] = 0;
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                for &v in &adjacency[u] {
                    if dist[s][v] == usize::MAX {
                        dist[s][v] = dist[s][u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            if dist[s].contains(&usize::MAX) {
                return Err(TranspileError::DisconnectedTopology);
            }
        }
        Ok(CouplingMap {
            n,
            label: format!("custom-{n}q"),
            adjacency,
            dist,
        })
    }

    /// Replaces the report label (constructors set a descriptive default).
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The `rows × cols` square-lattice topology (the paper uses 4×4).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn grid(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0);
        let n = rows * cols;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let q = r * cols + c;
                if c + 1 < cols {
                    edges.push((q, q + 1));
                }
                if r + 1 < rows {
                    edges.push((q, q + cols));
                }
            }
        }
        CouplingMap::from_edges(n, &edges)
            .expect("grid is connected")
            .with_label(format!("grid{rows}x{cols}"))
    }

    /// A linear chain of `n` qubits.
    pub fn line(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        CouplingMap::from_edges(n, &edges)
            .expect("line is connected")
            .with_label(format!("line{n}"))
    }

    /// A cycle of `n` qubits: a line with the ends joined, halving the
    /// worst-case routing distance relative to [`CouplingMap::line`].
    ///
    /// `ring(1)` is a single isolated qubit and `ring(2)` a single edge.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn ring(n: usize) -> Self {
        assert!(n > 0, "ring needs at least one qubit");
        let edges: Vec<(usize, usize)> = match n {
            1 => Vec::new(),
            2 => vec![(0, 1)],
            _ => (0..n).map(|i| (i, (i + 1) % n)).collect(),
        };
        CouplingMap::from_edges(n, &edges)
            .expect("ring is connected")
            .with_label(format!("ring{n}"))
    }

    /// The heavy-hexagon lattice of linear size `d`: a `d × d` brick-wall
    /// hexagonal lattice (rows are chains; vertical rungs connect rows at
    /// alternating parity) with **every edge subdivided** by an extra
    /// qubit — the "heavy" transformation that caps the degree at 3, as on
    /// IBM heavy-hex devices.
    ///
    /// Qubit count is `d² + 3d(d−1)/2 = (5d² − 3d)/2`: `heavy_hex(3)` has
    /// 18 qubits, enough for the paper's 16-qubit suite. Lattice vertices
    /// occupy indices `0..d²` (row-major); subdivision qubits follow.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn heavy_hex(d: usize) -> Self {
        assert!(d > 0, "heavy-hex needs a positive size");
        // Brick-wall hexagonal lattice on d×d vertices: full horizontal
        // chains, vertical rungs where (row + col) is even.
        let mut brick = Vec::new();
        for r in 0..d {
            for c in 0..d {
                let v = r * d + c;
                if c + 1 < d {
                    brick.push((v, v + 1));
                }
                if r + 1 < d && (r + c) % 2 == 0 {
                    brick.push((v, v + d));
                }
            }
        }
        // Subdivide every edge with a fresh qubit.
        let mut edges = Vec::with_capacity(2 * brick.len());
        let mut next = d * d;
        for (a, b) in brick {
            edges.push((a, next));
            edges.push((next, b));
            next += 1;
        }
        CouplingMap::from_edges(next, &edges)
            .expect("heavy-hex is connected")
            .with_label(format!("heavy-hex{d}"))
    }

    /// A multi-chip topology: `chips` dense modules of `chip_size` qubits
    /// each (all-to-all within a chip, as in trapped-ion QCCD modules),
    /// joined in a chain by `links` inter-chip couplings between
    /// consecutive chips. Link `j` joins qubit `⌊j·chip_size/links⌋` of
    /// both chips, spreading the links across each module.
    ///
    /// Intra-chip routing is free (distance 1) while inter-chip routes
    /// funnel through the few links — the regime where routing cost is
    /// dominated by topology and the paper's per-SWAP savings compound.
    ///
    /// # Errors
    ///
    /// Returns [`TranspileError::InvalidTopology`] when `chips` or
    /// `chip_size` is zero, or when more than one chip is requested with
    /// `links == 0` (disconnected) or `links > chip_size` (duplicate link
    /// endpoints).
    pub fn modular(chips: usize, chip_size: usize, links: usize) -> Result<Self, TranspileError> {
        if chips == 0 || chip_size == 0 {
            return Err(TranspileError::InvalidTopology(format!(
                "modular topology needs at least one chip with at least one qubit \
                 (got {chips} chips of {chip_size})"
            )));
        }
        if chips > 1 && links == 0 {
            return Err(TranspileError::InvalidTopology(
                "multi-chip topology needs at least one inter-chip link".into(),
            ));
        }
        if chips > 1 && links > chip_size {
            return Err(TranspileError::InvalidTopology(format!(
                "{links} inter-chip links cannot anchor on {chip_size}-qubit chips"
            )));
        }
        let n = chips * chip_size;
        let mut edges = Vec::new();
        for chip in 0..chips {
            let base = chip * chip_size;
            for a in 0..chip_size {
                for b in (a + 1)..chip_size {
                    edges.push((base + a, base + b));
                }
            }
            if chip + 1 < chips {
                for j in 0..links {
                    let q = j * chip_size / links;
                    edges.push((base + q, base + chip_size + q));
                }
            }
        }
        Ok(CouplingMap::from_edges(n, &edges)
            .expect("linked chips are connected")
            .with_label(format!("modular{chips}x{chip_size}x{links}")))
    }

    /// Human-readable topology name, carried into batch reports.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of physical qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Number of undirected coupling edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Every undirected edge as a normalized `(low, high)` pair, sorted —
    /// the deterministic iteration order seeded calibration generators
    /// consume edges in.
    ///
    /// ```
    /// use paradrive_transpiler::topology::CouplingMap;
    ///
    /// let line = CouplingMap::line(4);
    /// assert_eq!(line.edges(), vec![(0, 1), (1, 2), (2, 3)]);
    /// ```
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut edges: Vec<(usize, usize)> = self
            .adjacency
            .iter()
            .enumerate()
            .flat_map(|(a, nbrs)| nbrs.iter().filter(move |&&b| a < b).map(move |&b| (a, b)))
            .collect();
        edges.sort_unstable();
        edges
    }

    /// Largest vertex degree (0 for a single isolated qubit).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Longest shortest-path distance between any two qubits.
    pub fn diameter(&self) -> usize {
        self.dist
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// Shortest-path distance between two physical qubits.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        self.dist[a][b]
    }

    /// True when two physical qubits are directly coupled.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        self.dist[a][b] == 1
    }

    /// Neighbors of a physical qubit.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adjacency[q]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_4x4_shape() {
        let g = CouplingMap::grid(4, 4);
        assert_eq!(g.n_qubits(), 16);
        assert_eq!(g.label(), "grid4x4");
        // Corner has 2 neighbors, edge 3, interior 4.
        assert_eq!(g.neighbors(0).len(), 2);
        assert_eq!(g.neighbors(1).len(), 3);
        assert_eq!(g.neighbors(5).len(), 4);
        // Manhattan distances.
        assert_eq!(g.distance(0, 15), 6);
        assert_eq!(g.distance(0, 3), 3);
        assert!(g.are_adjacent(0, 1));
        assert!(g.are_adjacent(0, 4));
        assert!(!g.are_adjacent(0, 5));
        assert_eq!(g.diameter(), 6);
    }

    #[test]
    fn line_distances() {
        let l = CouplingMap::line(5);
        assert_eq!(l.distance(0, 4), 4);
        assert!(l.are_adjacent(2, 3));
        assert_eq!(l.label(), "line5");
    }

    #[test]
    fn disconnected_rejected() {
        let r = CouplingMap::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(matches!(r, Err(TranspileError::DisconnectedTopology)));
    }

    #[test]
    fn duplicate_edges_ignored() {
        let g = CouplingMap::from_edges(2, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn single_qubit_no_edges_is_valid() {
        let g = CouplingMap::from_edges(1, &[]).unwrap();
        assert_eq!(g.n_qubits(), 1);
        assert_eq!(g.distance(0, 0), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn self_loop_is_typed_error() {
        let r = CouplingMap::from_edges(3, &[(0, 1), (2, 2)]);
        assert!(matches!(
            r,
            Err(TranspileError::InvalidEdge { a: 2, b: 2, n: 3 })
        ));
    }

    #[test]
    fn out_of_range_endpoint_is_typed_error() {
        let r = CouplingMap::from_edges(3, &[(0, 1), (1, 7)]);
        assert!(matches!(
            r,
            Err(TranspileError::InvalidEdge { a: 1, b: 7, n: 3 })
        ));
        let msg = r.unwrap_err().to_string();
        assert!(msg.contains('7'), "error should name the endpoint: {msg}");
    }

    #[test]
    fn ring_shape_degree_distance() {
        let r = CouplingMap::ring(16);
        assert_eq!(r.n_qubits(), 16);
        assert_eq!(r.edge_count(), 16);
        assert_eq!(r.max_degree(), 2);
        assert_eq!(r.label(), "ring16");
        // Opposite points are n/2 apart; the ring closes.
        assert_eq!(r.distance(0, 8), 8);
        assert_eq!(r.distance(0, 15), 1);
        assert_eq!(r.diameter(), 8);
        // Degenerate sizes.
        assert_eq!(CouplingMap::ring(1).n_qubits(), 1);
        let two = CouplingMap::ring(2);
        assert_eq!(two.edge_count(), 1);
        assert!(two.are_adjacent(0, 1));
    }

    #[test]
    fn heavy_hex_shape_degree_distance() {
        for d in [1usize, 2, 3, 5] {
            let h = CouplingMap::heavy_hex(d);
            assert_eq!(h.n_qubits(), (5 * d * d - 3 * d) / 2, "d = {d}");
            // The defining heavy-hex property: degree never exceeds 3.
            assert!(h.max_degree() <= 3, "d = {d}: degree {}", h.max_degree());
            // Subdivision qubits (indices >= d²) have degree exactly 2.
            for q in d * d..h.n_qubits() {
                assert_eq!(h.neighbors(q).len(), 2, "subdivision qubit {q}");
            }
        }
        let h3 = CouplingMap::heavy_hex(3);
        assert_eq!(h3.n_qubits(), 18);
        assert_eq!(h3.label(), "heavy-hex3");
        // Adjacent lattice vertices are 2 apart (through their bridge).
        assert_eq!(h3.distance(0, 1), 2);
        // Subdividing doubles every lattice distance.
        assert!(h3.diameter() >= 8);
    }

    #[test]
    fn modular_shape_degree_distance() {
        let m = CouplingMap::modular(3, 4, 1).unwrap();
        assert_eq!(m.n_qubits(), 12);
        assert_eq!(m.label(), "modular3x4x1");
        // Intra-chip is all-to-all.
        assert_eq!(m.distance(0, 3), 1);
        assert_eq!(m.distance(4, 7), 1);
        // Inter-chip routes funnel through the single link (qubit 0 of
        // each chip): link endpoints are adjacent, everyone else detours.
        assert!(m.are_adjacent(0, 4));
        assert_eq!(m.distance(1, 5), 3);
        // Two chip hops: 1 (to link) + 1 + 1 (link to link) + 1 (out) = 4.
        assert_eq!(m.distance(1, 9), 4);
        assert_eq!(m.diameter(), 4);

        // More links shorten nothing intra-chip but spread the funnel.
        let wide = CouplingMap::modular(2, 8, 4).unwrap();
        assert_eq!(wide.edge_count(), 2 * 28 + 4);
        assert_eq!(wide.distance(1, 9), 3);

        // A single chip is a clique with no link requirement.
        let solo = CouplingMap::modular(1, 5, 0).unwrap();
        assert_eq!(solo.diameter(), 1);
    }

    #[test]
    fn modular_rejects_bad_specs() {
        for (chips, size, links) in [(0, 4, 1), (2, 0, 1), (2, 4, 0), (2, 4, 5)] {
            assert!(
                matches!(
                    CouplingMap::modular(chips, size, links),
                    Err(TranspileError::InvalidTopology(_))
                ),
                "({chips}, {size}, {links}) should be rejected"
            );
        }
    }
}

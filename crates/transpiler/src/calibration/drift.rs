//! Calibration drift: seeded random-walk timelines over an initial
//! [`Calibration`].
//!
//! Real parametrically coupled devices are recalibrated on a cadence, and
//! between recalibrations their parameters wander: `T1`/`T2` drift, edge
//! error rates creep, and occasionally a coupler dies outright. A
//! [`CalibrationTimeline`] models one such interval as a sequence of
//! epoch-stamped snapshots grown from an initial calibration by a
//! [`DriftSpec`]:
//!
//! - per epoch, every qubit's `T1` and `T2` take a **lognormal
//!   multiplicative step** with shape [`DriftSpec::qubit_sigma`], and
//!   every edge's error rate takes one with shape
//!   [`DriftSpec::edge_sigma`] (clamped to `0.5`, matching the spread
//!   generator's ceiling);
//! - [`DriftSpec::dead_edges`] **abrupt dead-edge events** fire at seeded
//!   onset epochs: the edge becomes dead
//!   ([`HOTSPOT_DEAD_ERROR`], 3× slower) when the surviving healthy edges
//!   still connect the device, and merely degraded
//!   ([`HOTSPOT_DEGRADED_ERROR`], 2× slower) when it is a bridge — the
//!   same discipline as [`Calibration::hotspot`], so a noise-aware route
//!   that refuses dead edges always exists.
//!
//! Everything is a pure function of `(initial, spec)` — the walk draws
//! from one seeded [`StdRng`] in a fixed order — so timelines are
//! bit-identical across thread counts, shards and resumes.
//!
//! # Zero volatility ≡ static, bit for bit
//!
//! With `qubit_sigma = edge_sigma = 0` and no dead edges
//! ([`DriftSpec::calm`]), every multiplicative step is *exactly* `1.0`
//! (`exp(0·z) == 1.0`) and `x * 1.0` preserves every finite or infinite
//! bit pattern, so every snapshot is bit-identical to the initial
//! calibration — a uniform calibration stays
//! [uniform](Calibration::is_uniform) and the whole pipeline degrades to
//! the static path without perturbing a single bit.
//!
//! ```
//! use paradrive_transpiler::calibration::drift::{CalibrationTimeline, DriftSpec};
//! use paradrive_transpiler::calibration::Calibration;
//! use paradrive_transpiler::fidelity::FidelityModel;
//! use paradrive_transpiler::topology::CouplingMap;
//!
//! let map = CouplingMap::grid(4, 4);
//! let cal = Calibration::uniform(&map, FidelityModel::paper());
//! let timeline = CalibrationTimeline::generate(&cal, &map, &DriftSpec::calm(3, 7)).unwrap();
//! assert_eq!(timeline.epochs(), 3);
//! assert!(timeline.snapshot(2).is_uniform());
//! ```

use super::{
    connected_without, lognormal, Calibration, EdgeCalibration, HOTSPOT_DEAD_ERROR,
    HOTSPOT_DEGRADED_ERROR,
};
use crate::topology::CouplingMap;
use crate::TranspileError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Parameters of one seeded drift timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSpec {
    /// Total number of epochs, including epoch 0 (the initial
    /// calibration). Must be at least 1.
    pub epochs: usize,
    /// Lognormal shape of the per-epoch multiplicative step on every
    /// qubit's `T1` and `T2`. Zero freezes the qubits.
    pub qubit_sigma: f64,
    /// Lognormal shape of the per-epoch multiplicative step on every
    /// edge's error rate. Zero freezes the edges.
    pub edge_sigma: f64,
    /// Number of abrupt dead-edge events over the timeline, each with a
    /// seeded onset epoch in `1..epochs`.
    pub dead_edges: usize,
    /// Seed for the walk and the event schedule.
    pub seed: u64,
}

impl DriftSpec {
    /// The zero-volatility spec: no walks, no events — every snapshot is
    /// bit-identical to the initial calibration.
    pub fn calm(epochs: usize, seed: u64) -> Self {
        DriftSpec {
            epochs,
            qubit_sigma: 0.0,
            edge_sigma: 0.0,
            dead_edges: 0,
            seed,
        }
    }

    /// A symmetric random walk: `sigma` on both qubit lifetimes and edge
    /// error rates, with `dead_edges` seeded failure events.
    pub fn walk(epochs: usize, sigma: f64, dead_edges: usize, seed: u64) -> Self {
        DriftSpec {
            epochs,
            qubit_sigma: sigma,
            edge_sigma: sigma,
            dead_edges,
            seed,
        }
    }
}

/// A sequence of epoch-stamped [`Calibration`] snapshots grown from an
/// initial calibration by one [`DriftSpec`]. Snapshot 0 is the initial
/// calibration itself; snapshots share the initial label so drift runs
/// group under the same scenario name in reports.
#[derive(Debug, Clone)]
pub struct CalibrationTimeline {
    snapshots: Vec<Arc<Calibration>>,
}

impl CalibrationTimeline {
    /// Grows the timeline: validates `initial` against `map`, then walks
    /// it forward `spec.epochs - 1` times.
    ///
    /// # Errors
    ///
    /// - [`TranspileError::CalibrationMismatch`] /
    ///   [`TranspileError::InvalidCalibration`] when `initial` was not
    ///   built for `map`;
    /// - [`TranspileError::InvalidCalibration`] when a sigma is negative
    ///   or non-finite, `epochs` is zero, `dead_edges` exceeds the map's
    ///   edge count, or dead-edge events are requested on a timeline too
    ///   short to schedule them (`epochs < 2`).
    pub fn generate(
        initial: &Calibration,
        map: &CouplingMap,
        spec: &DriftSpec,
    ) -> Result<Self, TranspileError> {
        initial.validate_for(map)?;
        let invalid = |why: String| Err(TranspileError::InvalidCalibration(why));
        if spec.epochs == 0 {
            return invalid("drift timeline needs at least one epoch".to_string());
        }
        for (what, sigma) in [
            ("qubit_sigma", spec.qubit_sigma),
            ("edge_sigma", spec.edge_sigma),
        ] {
            if !(sigma >= 0.0 && sigma.is_finite()) {
                return invalid(format!(
                    "drift {what} must be finite and non-negative, got {sigma}"
                ));
            }
        }
        let all_edges = map.edges();
        if spec.dead_edges > all_edges.len() {
            return invalid(format!(
                "{} dead-edge events requested but the map has only {} edges",
                spec.dead_edges,
                all_edges.len()
            ));
        }
        if spec.dead_edges > 0 && spec.epochs < 2 {
            return invalid(format!(
                "{} dead-edge events need at least 2 epochs to fire in",
                spec.dead_edges
            ));
        }

        let mut rng = StdRng::seed_from_u64(spec.seed);
        // The event schedule is drawn up front so the per-epoch walk
        // consumes a fixed number of draws regardless of when events fire.
        let mut remaining = all_edges;
        let events: Vec<((usize, usize), usize)> = (0..spec.dead_edges)
            .map(|_| {
                let edge = remaining.remove(rng.gen_range(0..remaining.len()));
                let onset = rng.gen_range(1..spec.epochs);
                (edge, onset)
            })
            .collect();

        let mut current = initial.clone();
        let mut snapshots = vec![Arc::new(initial.clone())];
        for epoch in 1..spec.epochs {
            for qc in &mut current.qubits {
                // `x * 1.0` is exact for every positive value including
                // `T2 = ∞`, so a zero-sigma walk preserves bits.
                qc.t1_ns *= lognormal(&mut rng, spec.qubit_sigma);
                qc.t2_ns *= lognormal(&mut rng, spec.qubit_sigma);
            }
            for ec in current.edges.values_mut() {
                ec.error_rate = (ec.error_rate * lognormal(&mut rng, spec.edge_sigma)).min(0.5);
            }
            for &(edge, onset) in &events {
                if onset != epoch {
                    continue;
                }
                // Dead if the still-healthy edges keep the device
                // connected, degraded (a bridge) otherwise — counting
                // edges already driven to the dead threshold by earlier
                // events or the walk itself.
                let mut without: Vec<(usize, usize)> = current
                    .edges
                    .iter()
                    .filter(|(_, c)| c.error_rate >= HOTSPOT_DEAD_ERROR)
                    .map(|(&e, _)| e)
                    .collect();
                if !without.contains(&edge) {
                    without.push(edge);
                }
                let entry = current
                    .edges
                    .get_mut(&edge)
                    .expect("events are drawn from the map's edge list");
                *entry = if connected_without(map, &without) {
                    EdgeCalibration {
                        duration_factor: 3.0,
                        error_rate: HOTSPOT_DEAD_ERROR,
                    }
                } else {
                    EdgeCalibration {
                        duration_factor: 2.0,
                        error_rate: HOTSPOT_DEGRADED_ERROR,
                    }
                };
            }
            snapshots.push(Arc::new(current.clone()));
        }
        Ok(CalibrationTimeline { snapshots })
    }

    /// Number of epochs (snapshots), at least 1.
    pub fn epochs(&self) -> usize {
        self.snapshots.len()
    }

    /// The calibration at `epoch` (0 is the initial calibration).
    ///
    /// # Panics
    ///
    /// Panics if `epoch >= self.epochs()`.
    pub fn snapshot(&self, epoch: usize) -> &Calibration {
        &self.snapshots[epoch]
    }

    /// The calibration at `epoch`, shareable across jobs without cloning
    /// the table.
    ///
    /// # Panics
    ///
    /// Panics if `epoch >= self.epochs()`.
    pub fn snapshot_shared(&self, epoch: usize) -> Arc<Calibration> {
        Arc::clone(&self.snapshots[epoch])
    }

    /// Iterates the snapshots in epoch order.
    pub fn iter(&self) -> impl Iterator<Item = &Calibration> {
        self.snapshots.iter().map(Arc::as_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::FidelityModel;

    fn paper() -> FidelityModel {
        FidelityModel::paper()
    }

    #[test]
    fn calm_timeline_is_bit_identical_to_the_initial_calibration() {
        let map = CouplingMap::grid(4, 4);
        for initial in [
            Calibration::uniform(&map, paper()),
            Calibration::hotspot(&map, paper(), 2, 11).unwrap(),
            Calibration::spread(&map, paper(), 0.3, 7).unwrap(),
        ] {
            let t = CalibrationTimeline::generate(&initial, &map, &DriftSpec::calm(4, 9)).unwrap();
            assert_eq!(t.epochs(), 4);
            for e in 0..4 {
                let snap = t.snapshot(e);
                assert_eq!(snap, &initial, "epoch {e} of {}", initial.label());
                for q in 0..map.n_qubits() {
                    assert_eq!(
                        snap.qubit(q).unwrap().t1_ns.to_bits(),
                        initial.qubit(q).unwrap().t1_ns.to_bits()
                    );
                    assert_eq!(
                        snap.qubit(q).unwrap().t2_ns.to_bits(),
                        initial.qubit(q).unwrap().t2_ns.to_bits()
                    );
                }
            }
        }
        let uniform = Calibration::uniform(&map, paper());
        let t = CalibrationTimeline::generate(&uniform, &map, &DriftSpec::calm(3, 1)).unwrap();
        assert!(t.iter().all(Calibration::is_uniform));
    }

    #[test]
    fn same_seed_same_timeline_different_seed_differs() {
        let map = CouplingMap::grid(4, 4);
        let initial = Calibration::uniform(&map, paper());
        let spec = DriftSpec::walk(5, 0.1, 2, 42);
        let a = CalibrationTimeline::generate(&initial, &map, &spec).unwrap();
        let b = CalibrationTimeline::generate(&initial, &map, &spec).unwrap();
        for e in 0..5 {
            assert_eq!(a.snapshot(e), b.snapshot(e), "epoch {e}");
        }
        let other =
            CalibrationTimeline::generate(&initial, &map, &DriftSpec::walk(5, 0.1, 2, 43)).unwrap();
        assert_ne!(a.snapshot(4), other.snapshot(4));
    }

    #[test]
    fn dead_edge_events_fire_once_and_keep_the_device_routable() {
        let map = CouplingMap::grid(4, 4);
        let initial = Calibration::uniform(&map, paper());
        let spec = DriftSpec {
            epochs: 6,
            qubit_sigma: 0.0,
            edge_sigma: 0.0,
            dead_edges: 3,
            seed: 11,
        };
        let t = CalibrationTimeline::generate(&initial, &map, &spec).unwrap();
        let dead_at = |e: usize| {
            map.edges()
                .into_iter()
                .filter(|&(a, b)| t.snapshot(e).edge(a, b).error_rate >= HOTSPOT_DEAD_ERROR)
                .collect::<Vec<_>>()
        };
        assert!(dead_at(0).is_empty(), "epoch 0 is the clean initial");
        let final_dead = dead_at(5);
        assert_eq!(final_dead.len(), 3, "grid edges are never bridges");
        assert!(connected_without(&map, &final_dead));
        // Events are monotone: once dead, an edge stays dead.
        for e in 1..6 {
            let prev = dead_at(e - 1);
            assert!(dead_at(e).iter().filter(|x| prev.contains(x)).count() == prev.len());
        }
    }

    #[test]
    fn walked_snapshots_always_validate_for_their_map() {
        let map = CouplingMap::heavy_hex(2);
        let initial = Calibration::spread(&map, paper(), 0.2, 3).unwrap();
        let spec = DriftSpec::walk(4, 0.25, 2, 5);
        let t = CalibrationTimeline::generate(&initial, &map, &spec).unwrap();
        for (e, snap) in t.iter().enumerate() {
            snap.validate_for(&map).unwrap_or_else(|err| {
                panic!("epoch {e} failed validation: {err}");
            });
            for &(a, b) in &map.edges() {
                let ec = snap.edge(a, b);
                assert!(ec.error_rate >= 0.0 && ec.error_rate <= 0.5);
                assert!(ec.duration_factor > 0.0 && ec.duration_factor.is_finite());
            }
            for q in 0..map.n_qubits() {
                let qc = snap.qubit(q).unwrap();
                assert!(qc.t1_ns > 0.0 && qc.t1_ns.is_finite());
                assert!(qc.t2_ns > 0.0);
            }
        }
    }

    #[test]
    fn invalid_specs_are_typed_errors() {
        let map = CouplingMap::grid(2, 2);
        let initial = Calibration::uniform(&map, paper());
        let bad = |spec: DriftSpec| {
            matches!(
                CalibrationTimeline::generate(&initial, &map, &spec),
                Err(TranspileError::InvalidCalibration(_))
            )
        };
        assert!(bad(DriftSpec::calm(0, 1)));
        assert!(bad(DriftSpec::walk(3, f64::NAN, 0, 1)));
        assert!(bad(DriftSpec::walk(3, -0.1, 0, 1)));
        assert!(bad(DriftSpec::walk(3, 0.1, 1000, 1)));
        assert!(bad(DriftSpec::walk(1, 0.1, 1, 1)), "no epoch to fire in");
        // Mismatched map is the calibration-validation error.
        let other = CouplingMap::ring(4);
        assert!(CalibrationTimeline::generate(&initial, &other, &DriftSpec::calm(2, 1)).is_err());
    }
}

//! Consolidation: merge gate runs into two-qubit unitary blocks and
//! extract each block's Weyl-chamber target.
//!
//! Consecutive gates on the same qubit pair — including any 1Q gates on
//! those qubits in between — collapse into a single 4×4 block whose
//! canonical coordinates drive the decomposition cost lookup. This is how a
//! `CNOT` immediately followed by a `SWAP` on the same pair becomes a
//! single iSWAP-class block (the paper's Fig. 3b footnote), and why QFT's
//! small controlled phases appear as CNOT-family points near the identity.

use crate::TranspileError;
use paradrive_circuit::{Circuit, Op};
use paradrive_linalg::{paulis, CMat};
use paradrive_weyl::magic::coordinates;
use paradrive_weyl::WeylPoint;

/// One element of a consolidated circuit.
#[derive(Debug, Clone)]
pub enum Item {
    /// A standalone 1Q gate run on one qubit (already merged; `virtual_only`
    /// marks runs realizable purely as frame updates).
    OneQRun {
        /// The physical qubit.
        q: usize,
        /// Merged 2×2 unitary of the run.
        unitary: CMat,
        /// True when every gate in the run was a virtual-Z.
        virtual_only: bool,
    },
    /// A consolidated two-qubit block.
    Block {
        /// First physical qubit.
        a: usize,
        /// Second physical qubit.
        b: usize,
        /// Merged 4×4 unitary.
        unitary: CMat,
        /// Canonical Weyl point of the block.
        point: WeylPoint,
        /// Number of primitive 2Q gates merged into this block.
        merged_gates: usize,
    },
}

impl Item {
    /// The qubits this item touches.
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Item::OneQRun { q, .. } => vec![*q],
            Item::Block { a, b, .. } => vec![*a, *b],
        }
    }
}

/// Consolidates a routed circuit into blocks and 1Q runs.
///
/// # Errors
///
/// Returns [`TranspileError::Weyl`] if a block's coordinates cannot be
/// extracted (cannot happen for unitary IR gates).
pub fn consolidate(circuit: &Circuit) -> Result<Vec<Item>, TranspileError> {
    let n = circuit.n_qubits();
    // Open 2Q blocks keyed by qubit pair, plus per-qubit membership.
    struct Open {
        a: usize,
        b: usize,
        u: CMat,
        merged: usize,
    }
    let mut open: Vec<Open> = Vec::new();
    let mut qubit_block: Vec<Option<usize>> = vec![None; n];
    // Pending standalone 1Q runs.
    let mut pending_1q: Vec<Option<(CMat, bool)>> = vec![None; n];
    let mut out: Vec<Item> = Vec::new();

    // Emission preserves program order well enough for scheduling because
    // items are re-ordered per-qubit there anyway.
    let close_block = |open: &mut Vec<Open>,
                       qubit_block: &mut Vec<Option<usize>>,
                       out: &mut Vec<Item>,
                       idx: usize|
     -> Result<(), TranspileError> {
        let blk = open.swap_remove(idx);
        // Fix up the index of the block that swapped into `idx`.
        if idx < open.len() {
            let moved = &open[idx];
            qubit_block[moved.a] = Some(idx);
            qubit_block[moved.b] = Some(idx);
        }
        qubit_block[blk.a] = None;
        qubit_block[blk.b] = None;
        let point = coordinates(&blk.u).map_err(|e| TranspileError::Weyl(e.to_string()))?;
        out.push(Item::Block {
            a: blk.a,
            b: blk.b,
            unitary: blk.u,
            point,
            merged_gates: blk.merged,
        });
        Ok(())
    };

    for op in circuit.ops() {
        match op {
            Op::OneQ { gate, q } => {
                if let Some(bi) = qubit_block[*q] {
                    // Fold into the open block.
                    let blk = &mut open[bi];
                    let g = gate.unitary();
                    let full = if *q == blk.a {
                        paulis::tensor(&g, &CMat::identity(2))
                    } else {
                        paulis::tensor(&CMat::identity(2), &g)
                    };
                    blk.u = full.mul(&blk.u);
                } else {
                    let g = gate.unitary();
                    let entry = pending_1q[*q].take();
                    pending_1q[*q] = Some(match entry {
                        Some((u, v)) => (g.mul(&u), v && gate.is_virtual_z()),
                        None => (g, gate.is_virtual_z()),
                    });
                }
            }
            Op::TwoQ { gate, a, b } => {
                let same_pair = match (qubit_block[*a], qubit_block[*b]) {
                    (Some(x), Some(y)) if x == y => Some(x),
                    _ => None,
                };
                if let Some(bi) = same_pair {
                    let g4 = if open[bi].a == *a {
                        gate.unitary()
                    } else {
                        // Operands reversed relative to the block: conjugate
                        // by SWAP.
                        let s = paradrive_weyl::gates::swap();
                        s.mul(&gate.unitary()).mul(&s)
                    };
                    let blk = &mut open[bi];
                    blk.u = g4.mul(&blk.u);
                    blk.merged += 1;
                } else {
                    // Close any blocks touching a or b.
                    for q in [*a, *b] {
                        if let Some(bi) = qubit_block[q] {
                            close_block(&mut open, &mut qubit_block, &mut out, bi)?;
                        }
                    }
                    // Flush pending 1Q runs on a and b by absorbing them
                    // into the new block (exterior 1Q gates merge with the
                    // decomposition template's own exterior layers).
                    let mut u = gate.unitary();
                    for (idx, q) in [(0usize, *a), (1usize, *b)] {
                        if let Some((g, _virtual)) = pending_1q[q].take() {
                            let lead = if idx == 0 {
                                paulis::tensor(&g, &CMat::identity(2))
                            } else {
                                paulis::tensor(&CMat::identity(2), &g)
                            };
                            u = u.mul(&lead);
                        }
                    }
                    let bi = open.len();
                    open.push(Open {
                        a: *a,
                        b: *b,
                        u,
                        merged: 1,
                    });
                    qubit_block[*a] = Some(bi);
                    qubit_block[*b] = Some(bi);
                }
            }
        }
    }
    // Close remaining blocks.
    while !open.is_empty() {
        close_block(&mut open, &mut qubit_block, &mut out, 0)?;
    }
    // Flush remaining 1Q runs.
    for (q, entry) in pending_1q.iter_mut().enumerate() {
        if let Some((u, virtual_only)) = entry.take() {
            out.push(Item::OneQRun {
                q,
                unitary: u,
                virtual_only,
            });
        }
    }
    Ok(out)
}

/// Counts consolidated blocks by named Weyl class — the data behind the
/// paper's Fig. 3b shot chart and the λ fit of Eq. 6.
pub fn class_histogram(items: &[Item]) -> Vec<(String, usize)> {
    let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
    for item in items {
        if let Item::Block { point, .. } = item {
            let label = classify_point(*point);
            *counts.entry(label).or_insert(0) += 1;
        }
    }
    let mut v: Vec<(String, usize)> = counts.into_iter().collect();
    v.sort_by_key(|(_, count)| std::cmp::Reverse(*count));
    v
}

/// The λ ratio of Eq. 6: CNOT-class blocks over CNOT + SWAP blocks.
pub fn lambda_fit(items: &[Item]) -> Option<f64> {
    let hist = class_histogram(items);
    let get = |name: &str| -> usize {
        hist.iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    };
    let cnot = get("CNOT");
    let swap = get("SWAP");
    if cnot + swap == 0 {
        None
    } else {
        Some(cnot as f64 / (cnot + swap) as f64)
    }
}

fn classify_point(p: WeylPoint) -> String {
    const TOL: f64 = 1e-6;
    for (name, q) in [
        ("I", WeylPoint::IDENTITY),
        ("CNOT", WeylPoint::CNOT),
        ("iSWAP", WeylPoint::ISWAP),
        ("SWAP", WeylPoint::SWAP),
        ("sqrt_iSWAP", WeylPoint::SQRT_ISWAP),
        ("B", WeylPoint::B),
        ("sqrt_CNOT", WeylPoint::SQRT_CNOT),
    ] {
        if p.chamber_dist(q) < TOL {
            return name.to_string();
        }
    }
    if p.c3 < TOL && p.c2 < TOL {
        "CNOT-family".to_string()
    } else {
        "other".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradrive_circuit::{OneQ, TwoQ};

    /// Asserts an [`Item`] matches a pattern and runs a body with its
    /// bindings — one shared failure arm instead of a `panic!` per site.
    macro_rules! expect_item {
        ($item:expr, $pat:pat => $body:expr) => {
            match $item {
                $pat => $body,
                other => panic!("unexpected item: {other:?}"),
            }
        };
    }

    #[test]
    fn cnot_swap_merges_to_iswap() {
        let mut c = Circuit::new(2);
        c.push_2q(TwoQ::Cx, 0, 1);
        c.push_2q(TwoQ::Swap, 0, 1);
        let items = consolidate(&c).unwrap();
        assert_eq!(items.len(), 1);
        expect_item!(&items[0], Item::Block { point, merged_gates, .. } => {
            assert_eq!(*merged_gates, 2);
            assert!(
                point.chamber_dist(WeylPoint::ISWAP) < 1e-7,
                "CNOT·SWAP should be iSWAP class, got {point}"
            );
        });
    }

    #[test]
    fn interleaved_1q_folds_into_block() {
        let mut c = Circuit::new(2);
        c.push_2q(TwoQ::Cx, 0, 1);
        c.push_1q(OneQ::H, 0);
        c.push_2q(TwoQ::Cx, 0, 1);
        let items = consolidate(&c).unwrap();
        assert_eq!(items.len(), 1, "items: {items:?}");
    }

    #[test]
    fn different_pairs_break_blocks() {
        let mut c = Circuit::new(3);
        c.push_2q(TwoQ::Cx, 0, 1);
        c.push_2q(TwoQ::Cx, 1, 2);
        c.push_2q(TwoQ::Cx, 0, 1);
        let items = consolidate(&c).unwrap();
        let blocks = items
            .iter()
            .filter(|i| matches!(i, Item::Block { .. }))
            .count();
        assert_eq!(blocks, 3);
    }

    #[test]
    fn reversed_operands_merge() {
        // CX(0,1) then CX(1,0): same pair, orientation handled by SWAP
        // conjugation; together they form a non-CNOT class (DCNOT family).
        let mut c = Circuit::new(2);
        c.push_2q(TwoQ::Cx, 0, 1);
        c.push_2q(TwoQ::Cx, 1, 0);
        let items = consolidate(&c).unwrap();
        assert_eq!(items.len(), 1);
        expect_item!(&items[0], Item::Block { point, .. } => {
            // CX(0,1)·CX(1,0) ≅ DCNOT ≅ CAN(π/2, π/4, ... ) — at any
            // rate NOT the CNOT class and NOT identity.
            assert!(point.chamber_dist(WeylPoint::CNOT) > 0.1);
            assert!(point.chamber_dist(WeylPoint::IDENTITY) > 0.1);
        });
    }

    #[test]
    fn standalone_1q_runs_merge() {
        let mut c = Circuit::new(1);
        c.push_1q(OneQ::Rz(0.2), 0);
        c.push_1q(OneQ::S, 0);
        let items = consolidate(&c).unwrap();
        assert_eq!(items.len(), 1);
        expect_item!(&items[0], Item::OneQRun { virtual_only, .. } => assert!(virtual_only));
    }

    #[test]
    fn non_virtual_1q_flagged() {
        let mut c = Circuit::new(1);
        c.push_1q(OneQ::Rz(0.2), 0);
        c.push_1q(OneQ::H, 0);
        let items = consolidate(&c).unwrap();
        expect_item!(&items[0], Item::OneQRun { virtual_only, .. } => assert!(!virtual_only));
    }

    #[test]
    fn leading_1q_absorbed_into_block() {
        let mut c = Circuit::new(2);
        c.push_1q(OneQ::H, 0);
        c.push_2q(TwoQ::Cx, 0, 1);
        let items = consolidate(&c).unwrap();
        // The H is absorbed: one block, no standalone run, class unchanged.
        assert_eq!(items.len(), 1);
        expect_item!(&items[0], Item::Block { point, .. } => {
            assert!(point.chamber_dist(WeylPoint::CNOT) < 1e-7);
        });
    }

    #[test]
    fn lambda_fit_counts_cnot_vs_swap() {
        let mut c = Circuit::new(4);
        c.push_2q(TwoQ::Cx, 0, 1);
        c.push_2q(TwoQ::Cz, 2, 3);
        c.push_2q(TwoQ::Swap, 1, 2);
        let items = consolidate(&c).unwrap();
        let lambda = lambda_fit(&items).unwrap();
        assert!((lambda - 2.0 / 3.0).abs() < 1e-12);
    }
}

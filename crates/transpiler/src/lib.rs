//! Transpilation passes for basis-gate codesign studies.
//!
//! The pipeline mirrors the paper's Section IV-B flow:
//!
//! 1. **Routing** ([`routing::route`]) — map a logical circuit onto a
//!    coupling topology (the paper's 4×4 square lattice,
//!    [`topology::CouplingMap::grid`]), inserting SWAPs with a
//!    lookahead heuristic; best-of-N seeds as in the paper.
//! 2. **Consolidation** ([`consolidate::consolidate`]) — merge runs of
//!    gates on the same qubit pair into unitary blocks and extract each
//!    block's Weyl-chamber target point (a CNOT followed by a SWAP on the
//!    same pair collapses into an iSWAP-class block, the paper's footnote).
//! 3. **Scheduling** ([`schedule::schedule`]) — charge every block its
//!    decomposition cost from a [`CostModel`] and compute the circuit
//!    duration (Eq. 8) with 1Q-layer merging between adjacent blocks.
//! 4. **Fidelity** ([`fidelity::FidelityModel`]) — the decoherence model of
//!    Eqs. 10–11: `F_Q = exp(-D/T1)`, `F_T = Π F_Q`.
//!
//! The [`CostModel`] trait is the seam where `paradrive-core` plugs in the
//! baseline (√iSWAP analytic) and optimized (parallel-drive) decomposition
//! rules.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod consolidate;
pub mod fidelity;
pub mod routing;
pub mod schedule;
pub mod topology;

use paradrive_weyl::WeylPoint;

/// The decomposition cost of realizing one two-qubit target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateCost {
    /// Total two-qubit pulse time, in normalized iSWAP-pulse units.
    pub two_q_time: f64,
    /// Number of 1Q gate layers the template needs (interior plus
    /// exterior; the generic template of Eq. 7 uses `K + 1`).
    pub one_q_layers: usize,
}

/// A decomposition cost model: what does it cost to realize a target
/// two-qubit class on this hardware with this basis?
pub trait CostModel {
    /// Cost of one two-qubit target class.
    fn cost(&self, target: WeylPoint) -> GateCost;

    /// Duration of one 1Q gate layer (normalized iSWAP-pulse units).
    fn d_1q(&self) -> f64;

    /// Name for reports.
    fn name(&self) -> &str {
        "cost-model"
    }
}

/// Errors produced by transpilation passes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TranspileError {
    /// The circuit is wider than the coupling map.
    TooManyQubits {
        /// Circuit width.
        circuit: usize,
        /// Device size.
        device: usize,
    },
    /// A qubit index fell outside the device a calibration covers.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// Number of qubits the calibration covers.
        device: usize,
    },
    /// The coupling graph is disconnected, so routing cannot succeed.
    DisconnectedTopology,
    /// An edge list names a self-loop or an endpoint outside `0..n`.
    InvalidEdge {
        /// First endpoint.
        a: usize,
        /// Second endpoint.
        b: usize,
        /// Number of qubits in the map under construction.
        n: usize,
    },
    /// A topology constructor was given inconsistent parameters.
    InvalidTopology(String),
    /// The router failed to make progress on a gate (a topology whose
    /// SWAP heuristic oscillates, or a noise-aware route on a device whose
    /// healthy edges no longer connect the operands).
    RoutingStuck {
        /// Index of the gate the router could not legalize.
        gate_index: usize,
    },
    /// A consolidated block failed Weyl-coordinate extraction.
    Weyl(String),
    /// A fidelity-model timing parameter was zero, negative or non-finite.
    InvalidFidelity {
        /// Which parameter was rejected.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A calibration generator was given inconsistent parameters.
    InvalidCalibration(String),
    /// A job's calibration was built for a different device size than its
    /// coupling map.
    CalibrationMismatch {
        /// Qubits in the calibration.
        cal: usize,
        /// Qubits in the coupling map.
        device: usize,
    },
}

impl std::fmt::Display for TranspileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranspileError::TooManyQubits { circuit, device } => {
                write!(f, "circuit has {circuit} qubits but device has {device}")
            }
            TranspileError::QubitOutOfRange { qubit, device } => {
                write!(
                    f,
                    "qubit {qubit} is out of range for a {device}-qubit calibration"
                )
            }
            TranspileError::DisconnectedTopology => {
                write!(f, "coupling topology is disconnected")
            }
            TranspileError::InvalidEdge { a, b, n } => {
                write!(f, "invalid edge ({a},{b}) for a {n}-qubit coupling map")
            }
            TranspileError::InvalidTopology(why) => write!(f, "invalid topology: {why}"),
            TranspileError::RoutingStuck { gate_index } => {
                write!(f, "router failed to converge on gate {gate_index}")
            }
            TranspileError::Weyl(e) => write!(f, "Weyl extraction failed: {e}"),
            TranspileError::InvalidFidelity { what, value } => {
                write!(f, "fidelity model rejects {what} = {value}")
            }
            TranspileError::InvalidCalibration(why) => {
                write!(f, "invalid calibration: {why}")
            }
            TranspileError::CalibrationMismatch { cal, device } => {
                write!(
                    f,
                    "calibration covers {cal} qubits but the device has {device}"
                )
            }
        }
    }
}

impl std::error::Error for TranspileError {}

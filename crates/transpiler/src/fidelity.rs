//! The decoherence fidelity model of Eqs. 10–11.
//!
//! Fidelity decays exponentially with the ratio of circuit duration to the
//! qubit lifetime `T1`: `F_Q = exp(-D/T1)` per qubit wire, and the total
//! circuit fidelity is the product over all qubits, `F_T = Π F_Q` —
//! exponential in the number of qubits, which is why small duration savings
//! cascade (Table VII's `F_T` column).

use crate::TranspileError;
use serde::{Deserialize, Serialize};

/// Physical timing assumptions converting normalized pulse units to time.
///
/// The paper's choices: `D[iSWAP] = 100 ns`, `D[1Q] = 25 ns`,
/// `T1 = 100 µs` — consistent with transmons on a SNAIL modulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FidelityModel {
    /// Duration of one full iSWAP pulse, in nanoseconds.
    pub iswap_ns: f64,
    /// Qubit relaxation time `T1`, in nanoseconds.
    pub t1_ns: f64,
}

impl FidelityModel {
    /// The paper's Table VI/VII parameters.
    pub fn paper() -> Self {
        FidelityModel {
            iswap_ns: 100.0,
            t1_ns: 100_000.0,
        }
    }

    /// Creates a model from explicit timings.
    ///
    /// ```
    /// use paradrive_transpiler::fidelity::FidelityModel;
    /// use paradrive_transpiler::TranspileError;
    ///
    /// let fast = FidelityModel::new(60.0, 200_000.0)?;
    /// assert!(fast.qubit_fidelity(1.0) > FidelityModel::paper().qubit_fidelity(1.0));
    /// // Non-physical timings are typed errors, not panics.
    /// assert!(matches!(
    ///     FidelityModel::new(-1.0, 200_000.0),
    ///     Err(TranspileError::InvalidFidelity { what: "iswap_ns", .. })
    /// ));
    /// # Ok::<(), TranspileError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`TranspileError::InvalidFidelity`] unless both timings are
    /// positive and finite.
    pub fn new(iswap_ns: f64, t1_ns: f64) -> Result<Self, TranspileError> {
        if !(iswap_ns > 0.0 && iswap_ns.is_finite()) {
            return Err(TranspileError::InvalidFidelity {
                what: "iswap_ns",
                value: iswap_ns,
            });
        }
        if !(t1_ns > 0.0 && t1_ns.is_finite()) {
            return Err(TranspileError::InvalidFidelity {
                what: "t1_ns",
                value: t1_ns,
            });
        }
        Ok(FidelityModel { iswap_ns, t1_ns })
    }

    /// Converts a normalized duration (iSWAP pulses) to nanoseconds.
    pub fn to_ns(&self, pulses: f64) -> f64 {
        pulses * self.iswap_ns
    }

    /// Per-qubit wire fidelity `F_Q = exp(-D/T1)` (Eq. 10) for a duration
    /// in normalized pulse units.
    pub fn qubit_fidelity(&self, duration_pulses: f64) -> f64 {
        (-self.to_ns(duration_pulses) / self.t1_ns).exp()
    }

    /// Total circuit fidelity `F_T = F_Q^N` (Eq. 11) for `n_qubits` wires
    /// all spanning the circuit duration.
    pub fn total_fidelity(&self, duration_pulses: f64, n_qubits: usize) -> f64 {
        self.qubit_fidelity(duration_pulses).powi(n_qubits as i32)
    }

    /// Gate infidelity `1 − F_Q` of a single decomposed gate — the Table VI
    /// metric.
    pub fn gate_infidelity(&self, duration_pulses: f64) -> f64 {
        1.0 - self.qubit_fidelity(duration_pulses)
    }
}

/// Relative percentage improvement from `baseline` to `optimized`
/// (positive when optimized is better for "larger is better" quantities).
pub fn relative_improvement_pct(baseline: f64, optimized: f64) -> f64 {
    (optimized - baseline) / baseline * 100.0
}

/// Relative percentage *reduction* from `baseline` to `optimized`
/// (positive when optimized is smaller — used for durations).
pub fn relative_reduction_pct(baseline: f64, optimized: f64) -> f64 {
    (baseline - optimized) / baseline * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters() {
        let m = FidelityModel::paper();
        assert_eq!(m.to_ns(1.0), 100.0);
        // One CNOT via the paper's baseline: duration 3.5 pulses = 350 ns
        // on T1 = 100 µs → F ≈ e^{-0.0035} ≈ 0.99651 → infidelity ≈ 0.0035
        // (the Table VI baseline CNOT row).
        let inf = m.gate_infidelity(3.5);
        assert!((inf - 0.0035).abs() < 2e-4, "infidelity {inf}");
    }

    #[test]
    fn fidelity_monotone_in_duration() {
        let m = FidelityModel::paper();
        assert!(m.qubit_fidelity(1.0) > m.qubit_fidelity(2.0));
        assert!(m.qubit_fidelity(0.0) == 1.0);
    }

    #[test]
    fn total_fidelity_is_power() {
        let m = FidelityModel::paper();
        let fq = m.qubit_fidelity(10.0);
        let ft = m.total_fidelity(10.0, 16);
        assert!((ft - fq.powi(16)).abs() < 1e-15);
        assert!(ft < fq);
    }

    #[test]
    fn bad_timings_are_typed_errors() {
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                FidelityModel::new(bad, 100_000.0),
                Err(TranspileError::InvalidFidelity {
                    what: "iswap_ns",
                    ..
                })
            ));
            assert!(matches!(
                FidelityModel::new(100.0, bad),
                Err(TranspileError::InvalidFidelity { what: "t1_ns", .. })
            ));
        }
        let ok = FidelityModel::new(100.0, 100_000.0).unwrap();
        assert_eq!(ok, FidelityModel::paper());
        let msg = FidelityModel::new(100.0, -1.0).unwrap_err().to_string();
        assert!(msg.contains("t1_ns") && msg.contains("-1"), "{msg}");
    }

    #[test]
    fn improvement_helpers() {
        assert!((relative_reduction_pct(100.0, 80.0) - 20.0).abs() < 1e-12);
        assert!((relative_improvement_pct(0.8, 0.9) - 12.5).abs() < 1e-12);
    }

    #[test]
    fn small_duration_gains_cascade_exponentially() {
        // The paper's observation: a 1.5% path-fidelity gain becomes ~20%+
        // in total fidelity at 16 qubits when fidelities are low.
        let m = FidelityModel::paper();
        let base_d = 133.0; // QV baseline duration in pulses
        let opt_d = 118.4;
        let fq_gain = relative_improvement_pct(m.qubit_fidelity(base_d), m.qubit_fidelity(opt_d));
        let ft_gain =
            relative_improvement_pct(m.total_fidelity(base_d, 16), m.total_fidelity(opt_d, 16));
        assert!(fq_gain > 1.0 && fq_gain < 3.0, "FQ gain {fq_gain}");
        assert!(ft_gain > 20.0 && ft_gain < 35.0, "FT gain {ft_gain}");
    }
}

//! Per-device calibration: heterogeneous qubit lifetimes, gate durations
//! and edge error rates, with seeded scenario generators.
//!
//! The paper's fidelity story (Eqs. 10–11) assumes a *homogeneous* device:
//! one global `T1` and one iSWAP duration ([`FidelityModel`]). Real
//! parametrically coupled devices are heterogeneous — per-qubit lifetimes
//! and per-edge gate errors vary by multiples — so a [`Calibration`]
//! attaches to a [`CouplingMap`]:
//!
//! - per **qubit**: relaxation `T1`, dephasing `T2`, and a 1Q-duration
//!   factor ([`QubitCalibration`]);
//! - per **edge**: a 2Q-duration factor and a per-gate error rate
//!   ([`EdgeCalibration`]).
//!
//! Four deterministic scenario families generate calibrations:
//!
//! | Generator | Scenario |
//! |---|---|
//! | [`Calibration::uniform`] | the paper's homogeneous device — bit-identical to the legacy [`FidelityModel`] pipeline |
//! | [`Calibration::spread`] | seeded lognormal variation on every qubit and edge |
//! | [`Calibration::hotspot`] | a few dead/degraded edges on an otherwise clean device |
//! | [`Calibration::gradient`] | quality decays across the qubit index — on [`CouplingMap::modular`], later chips and inter-chip links pay most |
//!
//! Every generator is a pure function of its inputs (seeded [`StdRng`],
//! no ambient randomness), so batch reports built from calibrations stay
//! bit-identical at any thread count.
//!
//! # Uniform calibration ≡ legacy model
//!
//! ```
//! use paradrive_transpiler::calibration::Calibration;
//! use paradrive_transpiler::fidelity::FidelityModel;
//! use paradrive_transpiler::topology::CouplingMap;
//!
//! let map = CouplingMap::grid(4, 4);
//! let model = FidelityModel::paper();
//! let cal = Calibration::uniform(&map, model);
//! // Same bits, not just "close": the calibrated path degrades to Eq. 11.
//! assert_eq!(
//!     cal.total_fidelity(118.4, 16).unwrap().to_bits(),
//!     model.total_fidelity(118.4, 16).to_bits(),
//! );
//! ```
//!
//! Calibrations drift between recalibrations: the [`drift`] submodule
//! grows a seeded random-walk [`drift::CalibrationTimeline`] of
//! epoch-stamped snapshots out of any initial calibration.

pub mod drift;

use crate::consolidate::Item;
use crate::fidelity::FidelityModel;
use crate::topology::CouplingMap;
use crate::TranspileError;
use paradrive_circuit::{Circuit, Op};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Calibrated per-qubit properties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QubitCalibration {
    /// Relaxation time `T1`, in nanoseconds.
    pub t1_ns: f64,
    /// Dephasing time `T2`, in nanoseconds (`INFINITY` disables the
    /// dephasing term, recovering Eq. 10 exactly).
    pub t2_ns: f64,
    /// Multiplier on the device's nominal 1Q-layer duration.
    pub d1q_factor: f64,
}

/// Calibrated per-edge properties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeCalibration {
    /// Multiplier on the nominal 2Q pulse duration for gates on this edge.
    pub duration_factor: f64,
    /// Per-2Q-gate error probability in `[0, 1)`.
    pub error_rate: f64,
}

impl EdgeCalibration {
    /// The clean-edge default: nominal speed, no gate error.
    pub fn nominal() -> Self {
        EdgeCalibration {
            duration_factor: 1.0,
            error_rate: 0.0,
        }
    }
}

/// A device calibration: a [`FidelityModel`] baseline plus per-qubit and
/// per-edge deviations, attached to one [`CouplingMap`]'s shape.
///
/// The baseline supplies the nominal iSWAP duration and `T1`; qubits and
/// edges record deviations from it. [`Calibration::uniform`] has no
/// deviations and reproduces the homogeneous pipeline bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    label: String,
    base: FidelityModel,
    qubits: Vec<QubitCalibration>,
    edges: BTreeMap<(usize, usize), EdgeCalibration>,
}

/// Error rate on a dead [`Calibration::hotspot`] edge; noise-aware routing
/// refuses to schedule gates on edges at or above
/// [`crate::routing::RouterOptions::dead_edge_threshold`].
pub const HOTSPOT_DEAD_ERROR: f64 = 0.25;

/// Error rate on a degraded hotspot edge (a bridge that cannot be killed
/// without disconnecting the device) — below the default dead-edge
/// threshold, so routing may still cross it at a penalty.
pub const HOTSPOT_DEGRADED_ERROR: f64 = 0.05;

fn edge_key(a: usize, b: usize) -> (usize, usize) {
    (a.min(b), a.max(b))
}

impl Calibration {
    /// The homogeneous calibration: every qubit at the baseline `T1` (no
    /// dephasing), every edge at nominal speed with zero error. The whole
    /// calibrated pipeline — scheduling, fidelity, routing — degrades to
    /// the legacy homogeneous arithmetic bit for bit.
    pub fn uniform(map: &CouplingMap, base: FidelityModel) -> Self {
        let qubits = vec![
            QubitCalibration {
                t1_ns: base.t1_ns,
                t2_ns: f64::INFINITY,
                d1q_factor: 1.0,
            };
            map.n_qubits()
        ];
        let edges = map
            .edges()
            .into_iter()
            .map(|e| (e, EdgeCalibration::nominal()))
            .collect();
        Calibration {
            label: "uniform".to_string(),
            base,
            qubits,
            edges,
        }
    }

    /// Seeded lognormal spread: each qubit's `T1` and 1Q duration and each
    /// edge's 2Q duration and error rate vary multiplicatively with shape
    /// parameter `sigma` (`sigma = 0` reproduces near-uniform values).
    /// `T2` is pinned at `1.5 × T1` and per-edge errors spread around the
    /// single-pulse decoherence floor `1 − exp(−2·D[iSWAP]/T1)`.
    ///
    /// # Errors
    ///
    /// Returns [`TranspileError::InvalidCalibration`] when `sigma` is
    /// negative or non-finite.
    pub fn spread(
        map: &CouplingMap,
        base: FidelityModel,
        sigma: f64,
        seed: u64,
    ) -> Result<Self, TranspileError> {
        if !(sigma >= 0.0 && sigma.is_finite()) {
            return Err(TranspileError::InvalidCalibration(format!(
                "spread sigma must be finite and non-negative, got {sigma}"
            )));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cal = Calibration::uniform(map, base);
        // `{}` on f64 prints the shortest string that parses back to the
        // same value, so labels round-trip through `parse_calibration`.
        cal.label = format!("spread{sigma}");
        for q in &mut cal.qubits {
            let t1 = base.t1_ns * lognormal(&mut rng, sigma);
            q.t1_ns = t1;
            q.t2_ns = 1.5 * t1;
            q.d1q_factor = lognormal(&mut rng, sigma / 2.0);
        }
        let floor = pulse_error_floor(base);
        for e in cal.edges.values_mut() {
            e.duration_factor = lognormal(&mut rng, sigma / 2.0);
            e.error_rate = (floor * lognormal(&mut rng, sigma)).min(0.5);
        }
        Ok(cal)
    }

    /// A clean device with `k` seeded hotspot edges. Each picked edge is
    /// **dead** ([`HOTSPOT_DEAD_ERROR`], 3× slower) when the remaining
    /// healthy edges still connect the device, and merely **degraded**
    /// ([`HOTSPOT_DEGRADED_ERROR`], 2× slower) when it is a bridge — so a
    /// noise-aware route that refuses dead edges always exists, even on a
    /// ring or line where every edge is a bridge.
    ///
    /// # Errors
    ///
    /// Returns [`TranspileError::InvalidCalibration`] when `k` exceeds the
    /// map's edge count.
    pub fn hotspot(
        map: &CouplingMap,
        base: FidelityModel,
        k: usize,
        seed: u64,
    ) -> Result<Self, TranspileError> {
        let all = map.edges();
        if k > all.len() {
            return Err(TranspileError::InvalidCalibration(format!(
                "{k} hotspot edges requested but the map has only {}",
                all.len()
            )));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cal = Calibration::uniform(map, base);
        cal.label = format!("hotspot{k}");
        let mut remaining = all;
        let mut dead: Vec<(usize, usize)> = Vec::new();
        for _ in 0..k {
            let pick = remaining.remove(rng.gen_range(0..remaining.len()));
            let entry = cal.edges.get_mut(&pick).expect("picked a real edge");
            let mut without = dead.clone();
            without.push(pick);
            if connected_without(map, &without) {
                dead.push(pick);
                *entry = EdgeCalibration {
                    duration_factor: 3.0,
                    error_rate: HOTSPOT_DEAD_ERROR,
                };
            } else {
                *entry = EdgeCalibration {
                    duration_factor: 2.0,
                    error_rate: HOTSPOT_DEGRADED_ERROR,
                };
            }
        }
        Ok(cal)
    }

    /// A deterministic quality gradient across the qubit index: `T1`
    /// shrinks as `T1 / (1 + strength·q/(n−1))`, 1Q gates slow down with
    /// the same fraction, and each edge's error grows with both its
    /// midpoint position and its index **span** `|a − b|/n`. On
    /// [`CouplingMap::modular`] the inter-chip links are exactly the
    /// long-span edges, so this family models chip-boundary penalties.
    ///
    /// # Errors
    ///
    /// Returns [`TranspileError::InvalidCalibration`] when `strength` is
    /// negative or non-finite.
    pub fn gradient(
        map: &CouplingMap,
        base: FidelityModel,
        strength: f64,
    ) -> Result<Self, TranspileError> {
        if !(strength >= 0.0 && strength.is_finite()) {
            return Err(TranspileError::InvalidCalibration(format!(
                "gradient strength must be finite and non-negative, got {strength}"
            )));
        }
        let mut cal = Calibration::uniform(map, base);
        cal.label = format!("gradient{strength}");
        let n = map.n_qubits();
        let frac = |q: usize| {
            if n > 1 {
                q as f64 / (n - 1) as f64
            } else {
                0.0
            }
        };
        for (q, qc) in cal.qubits.iter_mut().enumerate() {
            let depth = 1.0 + strength * frac(q);
            qc.t1_ns = base.t1_ns / depth;
            qc.t2_ns = 1.5 * qc.t1_ns;
            qc.d1q_factor = depth.sqrt();
        }
        let floor = pulse_error_floor(base);
        for (&(a, b), e) in cal.edges.iter_mut() {
            let mid = (frac(a) + frac(b)) / 2.0;
            let span = (b - a) as f64 / n as f64;
            e.error_rate = (floor * strength * (mid + 4.0 * span)).min(0.5);
            e.duration_factor = 1.0 + strength * span;
        }
        Ok(cal)
    }

    /// Overrides one qubit's calibration (builder for tests and custom
    /// devices).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range, if either lifetime is not positive
    /// (`T2 = INFINITY` is allowed — it disables dephasing), or if the 1Q
    /// duration factor is not positive and finite.
    #[must_use]
    pub fn with_qubit(mut self, q: usize, qc: QubitCalibration) -> Self {
        assert!(
            qc.t1_ns > 0.0 && !qc.t1_ns.is_nan() && qc.t2_ns > 0.0 && !qc.t2_ns.is_nan(),
            "qubit {q}: lifetimes must be positive (T1 = {}, T2 = {})",
            qc.t1_ns,
            qc.t2_ns
        );
        assert!(
            qc.d1q_factor > 0.0 && qc.d1q_factor.is_finite(),
            "qubit {q}: 1Q duration factor must be positive and finite, got {}",
            qc.d1q_factor
        );
        self.qubits[q] = qc;
        self
    }

    /// Overrides one edge's calibration (builder for tests and custom
    /// devices). The pair is normalized, so `(a, b)` and `(b, a)` name the
    /// same edge.
    ///
    /// # Panics
    ///
    /// Panics if `(a, b)` is not an edge of the underlying map, if the
    /// duration factor is not positive and finite, or if the error rate is
    /// outside `[0, 1)` (NaN included) — a NaN error rate would otherwise
    /// silently read as dead to noise-aware routing and crash
    /// [`Calibration::worst_edge`].
    #[must_use]
    pub fn with_edge(mut self, a: usize, b: usize, ec: EdgeCalibration) -> Self {
        assert!(
            ec.duration_factor > 0.0 && ec.duration_factor.is_finite(),
            "edge ({a},{b}): duration factor must be positive and finite, got {}",
            ec.duration_factor
        );
        assert!(
            (0.0..1.0).contains(&ec.error_rate),
            "edge ({a},{b}): error rate must be in [0, 1), got {}",
            ec.error_rate
        );
        let slot = self
            .edges
            .get_mut(&edge_key(a, b))
            .unwrap_or_else(|| panic!("({a},{b}) is not a coupled edge"));
        *slot = ec;
        self
    }

    /// Replaces the report label.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Human-readable scenario label, carried into batch reports.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The homogeneous baseline model deviations are measured against.
    pub fn base(&self) -> FidelityModel {
        self.base
    }

    /// Number of qubits this calibration covers.
    pub fn n_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// One qubit's calibration.
    ///
    /// # Errors
    ///
    /// Returns [`TranspileError::QubitOutOfRange`] when `q` is not a
    /// qubit of the calibrated device (this accessor used to panic;
    /// callers that have already validated the index can `expect` on the
    /// documented invariant).
    pub fn qubit(&self, q: usize) -> Result<&QubitCalibration, TranspileError> {
        self.qubits.get(q).ok_or(TranspileError::QubitOutOfRange {
            qubit: q,
            device: self.qubits.len(),
        })
    }

    /// One edge's calibration; clean nominal values for pairs the map does
    /// not couple (routing scratch layouts may probe non-edges).
    pub fn edge(&self, a: usize, b: usize) -> EdgeCalibration {
        self.edges
            .get(&edge_key(a, b))
            .copied()
            .unwrap_or_else(EdgeCalibration::nominal)
    }

    /// Checks that this calibration was built for `map`'s exact shape:
    /// same qubit count *and* same edge set. A same-size calibration from
    /// a different topology would otherwise be silently read as nominal
    /// on every edge it does not know.
    ///
    /// # Errors
    ///
    /// [`TranspileError::CalibrationMismatch`] on a qubit-count mismatch,
    /// [`TranspileError::InvalidCalibration`] on an edge-set mismatch.
    pub fn validate_for(&self, map: &CouplingMap) -> Result<(), TranspileError> {
        if self.n_qubits() != map.n_qubits() {
            return Err(TranspileError::CalibrationMismatch {
                cal: self.n_qubits(),
                device: map.n_qubits(),
            });
        }
        let device_edges = map.edges();
        if self.edges.len() != device_edges.len()
            || !device_edges.iter().all(|e| self.edges.contains_key(e))
        {
            return Err(TranspileError::InvalidCalibration(format!(
                "calibration `{}` was built for a different {}-qubit topology \
                 (edge sets differ)",
                self.label,
                self.n_qubits()
            )));
        }
        Ok(())
    }

    /// True when every qubit and edge sits exactly at the baseline — the
    /// case the calibrated pipeline answers with legacy homogeneous
    /// arithmetic, bit for bit.
    pub fn is_uniform(&self) -> bool {
        self.qubits
            .iter()
            .all(|q| q.t1_ns == self.base.t1_ns && q.t2_ns == f64::INFINITY && q.d1q_factor == 1.0)
            && self
                .edges
                .values()
                .all(|e| e.duration_factor == 1.0 && e.error_rate == 0.0)
    }

    /// The additive routing penalty for crossing edge `(a, b)`:
    /// `−ln(1 − error_rate)`, the log-infidelity a route pays per gate on
    /// the edge. Zero on clean edges.
    pub fn edge_noise_cost(&self, a: usize, b: usize) -> f64 {
        let e = self.edge(a, b).error_rate.clamp(0.0, 0.999_999);
        -(1.0 - e).ln()
    }

    /// Per-wire fidelity for a duration in normalized pulse units:
    /// `exp(−D·(1/T1 + 1/(2·T2)))` on qubit `q`, reducing to Eq. 10 when
    /// `T2 = ∞`.
    ///
    /// # Errors
    ///
    /// Returns [`TranspileError::QubitOutOfRange`] when `q` is not a
    /// qubit of the calibrated device (this accessor used to panic).
    pub fn wire_fidelity(&self, q: usize, duration_pulses: f64) -> Result<f64, TranspileError> {
        Ok(self.wire_fidelity_of(self.qubit(q)?, duration_pulses))
    }

    /// The wire-fidelity arithmetic for one already-resolved qubit entry.
    fn wire_fidelity_of(&self, qc: &QubitCalibration, duration_pulses: f64) -> f64 {
        let d_ns = self.base.to_ns(duration_pulses);
        (-(d_ns / qc.t1_ns + d_ns / (2.0 * qc.t2_ns))).exp()
    }

    /// Total decoherence fidelity over wires `0..n_wires` (Eq. 11 with
    /// per-wire lifetimes): the product of [`Calibration::wire_fidelity`].
    /// The wires are the router's initial-layout homes — logical qubit `q`
    /// starts on physical qubit `q`.
    ///
    /// A uniform calibration answers with the homogeneous closed form
    /// `F_Q^N`, so the legacy pipeline's bits are reproduced exactly.
    ///
    /// # Errors
    ///
    /// Returns [`TranspileError::TooManyQubits`] when the circuit is wider
    /// than the calibrated device. (This used to clamp `n_wires` to the
    /// device size and report an optimistically truncated product.)
    pub fn total_fidelity(
        &self,
        duration_pulses: f64,
        n_wires: usize,
    ) -> Result<f64, TranspileError> {
        if n_wires > self.qubits.len() {
            return Err(TranspileError::TooManyQubits {
                circuit: n_wires,
                device: self.qubits.len(),
            });
        }
        if self.is_uniform() {
            return Ok(self.base.total_fidelity(duration_pulses, n_wires));
        }
        Ok(self.qubits[..n_wires]
            .iter()
            .map(|qc| self.wire_fidelity_of(qc, duration_pulses))
            .product())
    }

    /// The survival probability of a consolidated circuit through per-edge
    /// gate errors: `Π (1 − error_rate)` over every 2Q block. Exactly
    /// `1.0` on a uniform calibration, so multiplying it into a total
    /// fidelity never perturbs the homogeneous bits.
    pub fn gate_error_product(&self, items: &[Item]) -> f64 {
        let mut p = 1.0;
        for item in items {
            if let Item::Block { a, b, .. } = item {
                p *= 1.0 - self.edge(*a, *b).error_rate;
            }
        }
        p
    }

    /// The gate-error survival product of a *routed* circuit:
    /// `Π (1 − error_rate)` over every 2Q op, read straight off the
    /// physical gates before consolidation. Batch drivers rank best-of-N
    /// routing seeds by this (exactly `1.0` on a uniform calibration, so
    /// the legacy fewest-SWAPs rule takes over there).
    pub fn routed_survival(&self, routed: &Circuit) -> f64 {
        let mut p = 1.0;
        for op in routed.ops() {
            if let Op::TwoQ { a, b, .. } = op {
                p *= 1.0 - self.edge(*a, *b).error_rate;
            }
        }
        p
    }

    /// The worst (highest) per-edge error rate, with its edge — a quick
    /// scenario diagnostic for reports. Ties break to the lowest edge key
    /// (lexicographic on the normalized `(min, max)` pair), so the
    /// reported edge stays stable as drift perturbs error rates — `max_by`
    /// would keep the *last* maximal entry in map order instead.
    pub fn worst_edge(&self) -> Option<((usize, usize), f64)> {
        // BTreeMap iterates in ascending key order; keeping only strictly
        // greater entries pins ties to the first (lowest) edge key.
        let mut worst: Option<((usize, usize), f64)> = None;
        for (&edge, c) in &self.edges {
            if worst.is_none_or(|(_, rate)| c.error_rate > rate) {
                worst = Some((edge, c.error_rate));
            }
        }
        worst
    }
}

/// Standard normal via Box–Muller on the seeded generator (two uniform
/// draws per sample, deterministic).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]: keep ln finite
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A lognormal multiplier with median 1 and shape `sigma`.
fn lognormal(rng: &mut StdRng, sigma: f64) -> f64 {
    (sigma * standard_normal(rng)).exp()
}

/// The decoherence-limited error of one nominal 2Q pulse (both wires decay
/// for one iSWAP duration) — the floor heterogeneous error rates spread
/// around.
fn pulse_error_floor(base: FidelityModel) -> f64 {
    1.0 - (-2.0 * base.iswap_ns / base.t1_ns).exp()
}

/// True when the map stays connected after removing `excluded` edges.
fn connected_without(map: &CouplingMap, excluded: &[(usize, usize)]) -> bool {
    let n = map.n_qubits();
    let banned = |a: usize, b: usize| excluded.contains(&edge_key(a, b));
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::from([0usize]);
    seen[0] = true;
    let mut count = 1;
    while let Some(u) = queue.pop_front() {
        for &v in map.neighbors(u) {
            if !seen[v] && !banned(u, v) {
                seen[v] = true;
                count += 1;
                queue.push_back(v);
            }
        }
    }
    count == n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> FidelityModel {
        FidelityModel::paper()
    }

    #[test]
    fn uniform_is_uniform_and_matches_legacy_bits() {
        let map = CouplingMap::grid(4, 4);
        let cal = Calibration::uniform(&map, paper());
        assert!(cal.is_uniform());
        assert_eq!(cal.label(), "uniform");
        assert_eq!(cal.n_qubits(), 16);
        for d in [0.0, 1.0, 3.5, 118.4, 450.0] {
            for n in [1usize, 2, 8, 16] {
                assert_eq!(
                    cal.total_fidelity(d, n).unwrap().to_bits(),
                    paper().total_fidelity(d, n).to_bits(),
                    "d = {d}, n = {n}"
                );
            }
        }
        assert_eq!(cal.edge_noise_cost(0, 1), 0.0);
        assert_eq!(cal.edge(0, 1), EdgeCalibration::nominal());
    }

    #[test]
    fn spread_varies_but_stays_physical() {
        let map = CouplingMap::grid(4, 4);
        let cal = Calibration::spread(&map, paper(), 0.3, 7).unwrap();
        assert!(!cal.is_uniform());
        assert_eq!(cal.label(), "spread0.3");
        let t1s: Vec<f64> = (0..16).map(|q| cal.qubit(q).unwrap().t1_ns).collect();
        assert!(t1s.iter().all(|&t| t > 0.0 && t.is_finite()));
        let spread = t1s.iter().cloned().fold(f64::MIN, f64::max)
            / t1s.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread > 1.05,
            "sigma 0.3 should visibly spread T1: {spread}"
        );
        for &(a, b) in &map.edges() {
            let e = cal.edge(a, b);
            assert!(e.duration_factor > 0.0 && e.error_rate >= 0.0 && e.error_rate < 1.0);
        }
        // Deterministic per seed; different seeds differ.
        let again = Calibration::spread(&map, paper(), 0.3, 7).unwrap();
        assert_eq!(cal, again);
        let other = Calibration::spread(&map, paper(), 0.3, 8).unwrap();
        assert_ne!(cal, other);
        assert!(Calibration::spread(&map, paper(), -0.1, 7).is_err());
    }

    #[test]
    fn hotspot_plants_dead_edges_without_disconnecting() {
        let map = CouplingMap::grid(4, 4);
        let cal = Calibration::hotspot(&map, paper(), 3, 11).unwrap();
        assert_eq!(cal.label(), "hotspot3");
        let dead: Vec<(usize, usize)> = map
            .edges()
            .into_iter()
            .filter(|&(a, b)| cal.edge(a, b).error_rate >= HOTSPOT_DEAD_ERROR)
            .collect();
        assert_eq!(dead.len(), 3, "grid edges are never bridges");
        assert!(connected_without(&map, &dead));
        let (_, worst) = cal.worst_edge().unwrap();
        assert_eq!(worst, HOTSPOT_DEAD_ERROR);
        assert!(Calibration::hotspot(&map, paper(), 1000, 0).is_err());
    }

    #[test]
    fn hotspot_on_a_ring_only_degrades_bridges() {
        // Every ring edge is a bridge once one edge is dead; the first pick
        // can die, later picks must stay usable.
        let map = CouplingMap::ring(8);
        let cal = Calibration::hotspot(&map, paper(), 3, 5).unwrap();
        let dead = map
            .edges()
            .iter()
            .filter(|&&(a, b)| cal.edge(a, b).error_rate >= HOTSPOT_DEAD_ERROR)
            .count();
        let degraded = map
            .edges()
            .iter()
            .filter(|&&(a, b)| {
                let e = cal.edge(a, b).error_rate;
                e > 0.0 && e < HOTSPOT_DEAD_ERROR
            })
            .count();
        assert_eq!(dead, 1, "only the first pick may die on a ring");
        assert_eq!(degraded, 2);
    }

    #[test]
    fn gradient_monotone_in_index() {
        let map = CouplingMap::modular(2, 8, 2).unwrap();
        let cal = Calibration::gradient(&map, paper(), 1.5).unwrap();
        assert_eq!(cal.label(), "gradient1.5");
        assert!(cal.qubit(0).unwrap().t1_ns > cal.qubit(15).unwrap().t1_ns);
        assert!(cal.qubit(0).unwrap().d1q_factor < cal.qubit(15).unwrap().d1q_factor);
        // Inter-chip links (span 8) pay more than intra-chip edges at the
        // same depth.
        let link = cal.edge(0, 8).error_rate;
        let intra = cal.edge(0, 7).error_rate;
        assert!(
            link > intra,
            "chip-boundary link {link} should exceed intra-chip {intra}"
        );
        assert!(Calibration::gradient(&map, paper(), f64::NAN).is_err());
    }

    #[test]
    fn validate_for_checks_shape_not_just_size() {
        let grid = CouplingMap::grid(4, 4);
        let ring = CouplingMap::ring(16);
        let line = CouplingMap::line(4);
        let cal = Calibration::uniform(&grid, paper());
        assert!(cal.validate_for(&grid).is_ok());
        // Wrong qubit count.
        assert!(matches!(
            cal.validate_for(&line),
            Err(TranspileError::CalibrationMismatch { cal: 16, device: 4 })
        ));
        // Same qubit count, different edge set.
        assert!(matches!(
            cal.validate_for(&ring),
            Err(TranspileError::InvalidCalibration(_))
        ));
    }

    #[test]
    fn builders_override_and_unset_uniformity() {
        let map = CouplingMap::line(3);
        let cal = Calibration::uniform(&map, paper())
            .with_edge(
                2,
                1,
                EdgeCalibration {
                    duration_factor: 2.0,
                    error_rate: 0.1,
                },
            )
            .with_qubit(
                0,
                QubitCalibration {
                    t1_ns: 50_000.0,
                    t2_ns: 60_000.0,
                    d1q_factor: 1.2,
                },
            )
            .with_label("custom");
        assert!(!cal.is_uniform());
        assert_eq!(cal.label(), "custom");
        // (2, 1) normalized to (1, 2).
        assert_eq!(cal.edge(1, 2).error_rate, 0.1);
        assert!(cal.edge_noise_cost(1, 2) > 0.0);
        assert_eq!(cal.qubit(0).unwrap().t1_ns, 50_000.0);
        // Non-edges read as nominal.
        assert_eq!(cal.edge(0, 2), EdgeCalibration::nominal());
    }

    #[test]
    fn builders_reject_non_physical_values() {
        use std::panic::catch_unwind;
        let map = CouplingMap::line(3);
        let base = paper();
        let bad_edge = |ec: EdgeCalibration| {
            catch_unwind(|| Calibration::uniform(&map, base).with_edge(0, 1, ec)).is_err()
        };
        for error_rate in [f64::NAN, -0.1, 1.0, 2.0] {
            assert!(bad_edge(EdgeCalibration {
                duration_factor: 1.0,
                error_rate,
            }));
        }
        for duration_factor in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(bad_edge(EdgeCalibration {
                duration_factor,
                error_rate: 0.0,
            }));
        }
        let bad_qubit = |qc: QubitCalibration| {
            catch_unwind(|| Calibration::uniform(&map, base).with_qubit(0, qc)).is_err()
        };
        assert!(bad_qubit(QubitCalibration {
            t1_ns: f64::NAN,
            t2_ns: 1.0,
            d1q_factor: 1.0,
        }));
        assert!(bad_qubit(QubitCalibration {
            t1_ns: 1.0,
            t2_ns: 1.0,
            d1q_factor: 0.0,
        }));
        // T2 = INFINITY stays legal (it disables dephasing).
        let ok = Calibration::uniform(&map, base).with_qubit(
            0,
            QubitCalibration {
                t1_ns: 50_000.0,
                t2_ns: f64::INFINITY,
                d1q_factor: 1.0,
            },
        );
        assert_eq!(ok.qubit(0).unwrap().t1_ns, 50_000.0);
    }

    #[test]
    fn routed_survival_reads_physical_two_q_ops() {
        use paradrive_circuit::TwoQ;
        let map = CouplingMap::line(3);
        let cal = Calibration::uniform(&map, paper()).with_edge(
            0,
            1,
            EdgeCalibration {
                duration_factor: 1.0,
                error_rate: 0.1,
            },
        );
        let mut c = Circuit::new(3);
        c.push_2q(TwoQ::Cx, 0, 1);
        c.push_2q(TwoQ::Swap, 0, 1);
        c.push_2q(TwoQ::Cx, 1, 2);
        // Two crossings of the 10%-error edge, one clean.
        assert!((cal.routed_survival(&c) - 0.81).abs() < 1e-12);
        // Uniform survival is exactly 1.
        let uni = Calibration::uniform(&map, paper());
        assert_eq!(uni.routed_survival(&c).to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn gate_error_product_multiplies_block_edges() {
        use paradrive_circuit::{Circuit, TwoQ};
        let map = CouplingMap::line(3);
        let cal = Calibration::uniform(&map, paper()).with_edge(
            0,
            1,
            EdgeCalibration {
                duration_factor: 1.0,
                error_rate: 0.1,
            },
        );
        let mut c = Circuit::new(3);
        c.push_2q(TwoQ::Cx, 0, 1);
        c.push_2q(TwoQ::Cx, 1, 2);
        let items = crate::consolidate::consolidate(&c).unwrap();
        let p = cal.gate_error_product(&items);
        assert!((p - 0.9).abs() < 1e-12, "p = {p}");
    }

    #[test]
    fn wire_fidelity_uses_t2() {
        let map = CouplingMap::line(2);
        let cal = Calibration::uniform(&map, paper()).with_qubit(
            0,
            QubitCalibration {
                t1_ns: 100_000.0,
                t2_ns: 100_000.0,
                d1q_factor: 1.0,
            },
        );
        // Finite T2 decays faster than the T1-only wire.
        assert!(cal.wire_fidelity(0, 10.0).unwrap() < cal.wire_fidelity(1, 10.0).unwrap());
    }

    #[test]
    fn total_fidelity_rejects_circuits_wider_than_the_device() {
        // Regression: the old code clamped `n_wires` to the device size and
        // reported an optimistically truncated product for a 32-wide
        // circuit on a 16-qubit calibration.
        let map = CouplingMap::grid(4, 4);
        for cal in [
            Calibration::uniform(&map, paper()),
            Calibration::spread(&map, paper(), 0.3, 7).unwrap(),
        ] {
            assert!(cal.total_fidelity(118.4, 16).is_ok());
            assert!(matches!(
                cal.total_fidelity(118.4, 32),
                Err(TranspileError::TooManyQubits {
                    circuit: 32,
                    device: 16
                })
            ));
        }
    }

    #[test]
    fn out_of_range_qubit_indices_are_typed_errors() {
        let map = CouplingMap::line(3);
        let cal = Calibration::uniform(&map, paper());
        assert!(cal.qubit(2).is_ok());
        assert!(matches!(
            cal.qubit(3),
            Err(TranspileError::QubitOutOfRange {
                qubit: 3,
                device: 3
            })
        ));
        assert!(cal.wire_fidelity(2, 1.0).is_ok());
        assert!(matches!(
            cal.wire_fidelity(7, 1.0),
            Err(TranspileError::QubitOutOfRange {
                qubit: 7,
                device: 3
            })
        ));
    }

    #[test]
    fn worst_edge_tie_breaks_to_the_lowest_edge_key() {
        let map = CouplingMap::line(4);
        let bad = EdgeCalibration {
            duration_factor: 2.0,
            error_rate: 0.2,
        };
        // Two edges tie for worst; the report must name the lowest key, not
        // whichever the map iterates last.
        let cal = Calibration::uniform(&map, paper())
            .with_edge(1, 2, bad)
            .with_edge(2, 3, bad);
        assert_eq!(cal.worst_edge(), Some(((1, 2), 0.2)));
        // Same ties planted in the opposite builder order: same answer.
        let cal = Calibration::uniform(&map, paper())
            .with_edge(2, 3, bad)
            .with_edge(1, 2, bad);
        assert_eq!(cal.worst_edge(), Some(((1, 2), 0.2)));
    }
}

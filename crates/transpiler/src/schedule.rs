//! Duration scheduling: Eq. 8 — sum the decomposition durations along the
//! critical path, merging adjacent 1Q layers.
//!
//! Every consolidated 2Q block is charged its [`CostModel`] cost: the total
//! 2Q pulse time plus its 1Q layers. When two blocks follow each other on a
//! qubit, the trailing exterior layer of the first and the leading layer of
//! the second merge into one (the paper notes this merging makes measured
//! improvements exceed the per-gate predictions). Virtual-Z runs are free.

use crate::calibration::Calibration;
use crate::consolidate::Item;
use crate::{CostModel, GateCost};

/// The outcome of scheduling a consolidated circuit.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Circuit duration: the latest qubit finish time (Eq. 8), in
    /// normalized iSWAP-pulse units.
    pub duration: f64,
    /// Per-qubit busy spans (finish times).
    pub qubit_finish: Vec<f64>,
    /// Total 2Q pulse time accumulated (diagnostic).
    pub total_two_q_time: f64,
    /// Total 1Q layer time accumulated after merging (diagnostic).
    pub total_one_q_time: f64,
}

/// Options controlling the scheduler (exposed for ablation studies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleOptions {
    /// Merge adjacent 1Q layers between consecutive blocks (the paper's
    /// consolidation of exterior template layers). Disabling this charges
    /// every template its full `K + 1` layers.
    pub merge_1q_layers: bool,
    /// Treat virtual-Z runs as free frame updates.
    pub free_virtual_z: bool,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            merge_1q_layers: true,
            free_virtual_z: true,
        }
    }
}

/// Schedules consolidated items under a cost model.
///
/// Uses ASAP scheduling over per-qubit availability. Each block occupies
/// `two_q_time + one_q_layers·d1q` on both its qubits, except that a
/// leading 1Q layer is dropped when both operand timelines already end in a
/// 1Q layer (layer merging).
pub fn schedule(items: &[Item], model: &dyn CostModel, n_qubits: usize) -> Schedule {
    schedule_with(items, model, n_qubits, ScheduleOptions::default())
}

/// Schedules with explicit options (see [`ScheduleOptions`]).
pub fn schedule_with(
    items: &[Item],
    model: &dyn CostModel,
    n_qubits: usize,
    options: ScheduleOptions,
) -> Schedule {
    schedule_impl(items, model, n_qubits, options, None)
}

/// Schedules under a device [`Calibration`]: each block's 2Q pulse time is
/// scaled by its edge's duration factor, and 1Q layers by the slower
/// operand's per-qubit factor. A uniform calibration has every factor at
/// exactly `1.0`, so the result is bit-identical to [`schedule_with`].
pub fn schedule_with_calibration(
    items: &[Item],
    model: &dyn CostModel,
    n_qubits: usize,
    options: ScheduleOptions,
    calibration: &Calibration,
) -> Schedule {
    schedule_impl(items, model, n_qubits, options, Some(calibration))
}

fn schedule_impl(
    items: &[Item],
    model: &dyn CostModel,
    n_qubits: usize,
    options: ScheduleOptions,
    calibration: Option<&Calibration>,
) -> Schedule {
    let d1q = model.d_1q();
    let qubit_factor = |q: usize| {
        calibration.map_or(1.0, |c| {
            c.qubit(q)
                .expect("job admission validates the circuit fits its calibrated device")
                .d1q_factor
        })
    };
    let edge_factor =
        |a: usize, b: usize| calibration.map_or(1.0, |c| c.edge(a, b).duration_factor);
    let mut ready = vec![0.0_f64; n_qubits];
    let mut ends_with_1q = vec![false; n_qubits];
    let mut total_two_q = 0.0;
    let mut total_one_q = 0.0;

    for item in items {
        match item {
            Item::OneQRun {
                q, virtual_only, ..
            } => {
                if *virtual_only && options.free_virtual_z {
                    continue; // free frame update
                }
                if ends_with_1q[*q] && options.merge_1q_layers {
                    continue; // merges with the preceding layer
                }
                let layer = d1q * qubit_factor(*q);
                ready[*q] += layer;
                total_one_q += layer;
                ends_with_1q[*q] = true;
            }
            Item::Block { a, b, point, .. } => {
                let GateCost {
                    two_q_time,
                    one_q_layers,
                } = model.cost(*point);
                let mut layers = one_q_layers as f64;
                if options.merge_1q_layers && layers > 0.0 && ends_with_1q[*a] && ends_with_1q[*b] {
                    layers -= 1.0; // merge the leading exterior layer
                }
                // Calibrated devices run this block at the edge's speed and
                // its slower qubit's 1Q cadence; uniform factors are 1.0
                // exactly, leaving the homogeneous arithmetic untouched.
                let two_q = two_q_time * edge_factor(*a, *b);
                let layer = d1q * qubit_factor(*a).max(qubit_factor(*b));
                let dur = two_q + layers * layer;
                let start = ready[*a].max(ready[*b]);
                let end = start + dur;
                ready[*a] = end;
                ready[*b] = end;
                total_two_q += two_q;
                total_one_q += layers * layer;
                let trailing_layer = one_q_layers > 0;
                ends_with_1q[*a] = trailing_layer;
                ends_with_1q[*b] = trailing_layer;
            }
        }
    }

    Schedule {
        duration: ready.iter().copied().fold(0.0, f64::max),
        qubit_finish: ready,
        total_two_q_time: total_two_q,
        total_one_q_time: total_one_q,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradrive_weyl::WeylPoint;

    /// A toy model: every block costs `k·1.0` 2Q time with `k+1` layers,
    /// where k = 1 for CNOT-class, 3 for SWAP, 2 otherwise.
    struct Toy;
    impl CostModel for Toy {
        fn cost(&self, target: WeylPoint) -> GateCost {
            let k = if target.chamber_dist(WeylPoint::CNOT) < 1e-6 {
                1
            } else if target.chamber_dist(WeylPoint::SWAP) < 1e-6 {
                3
            } else {
                2
            };
            GateCost {
                two_q_time: k as f64,
                one_q_layers: k + 1,
            }
        }
        fn d_1q(&self) -> f64 {
            0.25
        }
    }

    fn block(a: usize, b: usize, point: WeylPoint) -> Item {
        Item::Block {
            a,
            b,
            unitary: paradrive_weyl::gates::can(point),
            point,
            merged_gates: 1,
        }
    }

    #[test]
    fn single_block_duration() {
        let items = vec![block(0, 1, WeylPoint::CNOT)];
        let s = schedule(&items, &Toy, 2);
        // 1·1.0 + 2·0.25 = 1.5.
        assert!((s.duration - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sequential_blocks_merge_one_layer() {
        let items = vec![block(0, 1, WeylPoint::CNOT), block(0, 1, WeylPoint::CNOT)];
        let s = schedule(&items, &Toy, 2);
        // Without merging: 2 × 1.5 = 3.0; the second block's leading layer
        // merges → 3.0 − 0.25 = 2.75.
        assert!((s.duration - 2.75).abs() < 1e-12, "duration {}", s.duration);
    }

    #[test]
    fn parallel_blocks_do_not_stack() {
        let items = vec![block(0, 1, WeylPoint::CNOT), block(2, 3, WeylPoint::SWAP)];
        let s = schedule(&items, &Toy, 4);
        // CNOT: 1.5; SWAP: 3 + 4·0.25 = 4.0; they run in parallel.
        assert!((s.duration - 4.0).abs() < 1e-12);
        assert!((s.qubit_finish[0] - 1.5).abs() < 1e-12);
        assert!((s.qubit_finish[2] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn virtual_z_is_free() {
        let items = vec![Item::OneQRun {
            q: 0,
            unitary: paradrive_linalg::paulis::rz(0.3),
            virtual_only: true,
        }];
        let s = schedule(&items, &Toy, 1);
        assert_eq!(s.duration, 0.0);
    }

    #[test]
    fn standalone_1q_charges_one_layer() {
        let items = vec![Item::OneQRun {
            q: 0,
            unitary: paradrive_linalg::paulis::h(),
            virtual_only: false,
        }];
        let s = schedule(&items, &Toy, 1);
        assert!((s.duration - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_circuit_has_zero_duration() {
        use crate::consolidate::consolidate;
        use paradrive_circuit::Circuit;
        let items = consolidate(&Circuit::new(3)).unwrap();
        assert!(items.is_empty());
        let s = schedule(&items, &Toy, 3);
        assert_eq!(s.duration, 0.0);
        assert!(s.qubit_finish.iter().all(|&t| t == 0.0));
        assert_eq!(s.total_two_q_time, 0.0);
        assert_eq!(s.total_one_q_time, 0.0);
    }

    #[test]
    fn one_q_only_circuit_charges_single_layers() {
        use crate::consolidate::consolidate;
        use paradrive_circuit::{Circuit, OneQ};
        // Two physical H runs on different qubits, plus a virtual-Z run:
        // each H run is exactly one merged layer (d1q = 0.25), the Rz run
        // is a free frame update. Closed form: D = 1·0.25.
        let mut c = Circuit::new(3);
        c.push_1q(OneQ::H, 0);
        c.push_1q(OneQ::H, 0); // merges into qubit 0's run at consolidation
        c.push_1q(OneQ::H, 1);
        c.push_1q(OneQ::Rz(0.4), 2);
        let items = consolidate(&c).unwrap();
        assert_eq!(items.len(), 3);
        let s = schedule(&items, &Toy, 3);
        assert!((s.duration - 0.25).abs() < 1e-12, "duration {}", s.duration);
        assert!((s.qubit_finish[0] - 0.25).abs() < 1e-12);
        assert!((s.qubit_finish[1] - 0.25).abs() < 1e-12);
        assert_eq!(s.qubit_finish[2], 0.0, "virtual-Z must be free");
        assert!((s.total_one_q_time - 0.5).abs() < 1e-12);
        assert_eq!(s.total_two_q_time, 0.0);
    }

    #[test]
    fn single_two_q_block_closed_form() {
        use crate::consolidate::consolidate;
        use paradrive_circuit::{Circuit, TwoQ};
        // One CX consolidates to one CNOT-class block. Toy model closed
        // form: D = k·1.0 + (k+1)·d1q with k = 1 → 1 + 2·0.25 = 1.5,
        // on both operand qubits; spectators stay at 0.
        let mut c = Circuit::new(3);
        c.push_2q(TwoQ::Cx, 0, 1);
        let items = consolidate(&c).unwrap();
        assert_eq!(items.len(), 1);
        let s = schedule(&items, &Toy, 3);
        assert!((s.duration - 1.5).abs() < 1e-12, "duration {}", s.duration);
        assert!((s.qubit_finish[0] - 1.5).abs() < 1e-12);
        assert!((s.qubit_finish[1] - 1.5).abs() < 1e-12);
        assert_eq!(s.qubit_finish[2], 0.0);
        assert!((s.total_two_q_time - 1.0).abs() < 1e-12);
        assert!((s.total_one_q_time - 0.5).abs() < 1e-12);
    }

    #[test]
    fn uniform_calibration_schedules_bit_identically() {
        use crate::calibration::Calibration;
        use crate::fidelity::FidelityModel;
        use crate::topology::CouplingMap;
        let map = CouplingMap::grid(2, 2);
        let cal = Calibration::uniform(&map, FidelityModel::paper());
        let items = vec![
            block(0, 1, WeylPoint::CNOT),
            block(1, 2, WeylPoint::SWAP),
            block(0, 1, WeylPoint::CNOT),
        ];
        let plain = schedule(&items, &Toy, 4);
        let calibrated =
            schedule_with_calibration(&items, &Toy, 4, ScheduleOptions::default(), &cal);
        assert_eq!(plain.duration.to_bits(), calibrated.duration.to_bits());
        assert_eq!(
            plain.total_two_q_time.to_bits(),
            calibrated.total_two_q_time.to_bits()
        );
        assert_eq!(
            plain.total_one_q_time.to_bits(),
            calibrated.total_one_q_time.to_bits()
        );
        for (p, c) in plain.qubit_finish.iter().zip(&calibrated.qubit_finish) {
            assert_eq!(p.to_bits(), c.to_bits());
        }
    }

    #[test]
    fn calibrated_edge_and_qubit_factors_slow_blocks() {
        use crate::calibration::{Calibration, EdgeCalibration, QubitCalibration};
        use crate::fidelity::FidelityModel;
        use crate::topology::CouplingMap;
        let map = CouplingMap::line(2);
        let cal = Calibration::uniform(&map, FidelityModel::paper())
            .with_edge(
                0,
                1,
                EdgeCalibration {
                    duration_factor: 2.0,
                    error_rate: 0.0,
                },
            )
            .with_qubit(
                1,
                QubitCalibration {
                    t1_ns: 100_000.0,
                    t2_ns: f64::INFINITY,
                    d1q_factor: 3.0,
                },
            );
        let items = vec![block(0, 1, WeylPoint::CNOT)];
        let s = schedule_with_calibration(&items, &Toy, 2, ScheduleOptions::default(), &cal);
        // CNOT under Toy: 1.0 2Q time × 2.0, two layers at 0.25 × max(1, 3).
        assert!(
            (s.duration - (2.0 + 2.0 * 0.75)).abs() < 1e-12,
            "{}",
            s.duration
        );
    }

    #[test]
    fn chained_dependency_is_critical_path() {
        // (0,1) then (1,2): the second block waits for the first.
        let items = vec![block(0, 1, WeylPoint::CNOT), block(1, 2, WeylPoint::CNOT)];
        let s = schedule(&items, &Toy, 3);
        // Second block merges its leading layer? Qubit 1 ends with a layer
        // but qubit 2 does not → no merge. 1.5 + 1.5 = 3.0.
        assert!((s.duration - 3.0).abs() < 1e-12, "duration {}", s.duration);
    }
}

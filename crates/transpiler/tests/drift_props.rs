//! Drift-timeline determinism, as properties: a [`CalibrationTimeline`] is
//! a pure function of `(initial, spec)` — same bits from any thread — and
//! the zero-volatility walk is not "approximately" static, it *is* the
//! static pipeline, bit for bit.

use paradrive_circuit::{Circuit, TwoQ};
use paradrive_transpiler::calibration::drift::{CalibrationTimeline, DriftSpec};
use paradrive_transpiler::calibration::Calibration;
use paradrive_transpiler::consolidate::consolidate;
use paradrive_transpiler::fidelity::FidelityModel;
use paradrive_transpiler::routing::{route_calibrated, RouterOptions};
use paradrive_transpiler::schedule::{schedule_with_calibration, ScheduleOptions};
use paradrive_transpiler::topology::CouplingMap;
use paradrive_transpiler::{CostModel, GateCost};
use paradrive_weyl::WeylPoint;
use proptest::prelude::*;
use std::sync::Arc;

/// A stand-in cost model with irregular (but deterministic) costs.
struct Jagged;

impl CostModel for Jagged {
    fn cost(&self, target: WeylPoint) -> GateCost {
        let spread = 1.0 + (target.c1 * 37.0).sin().abs();
        GateCost {
            two_q_time: 0.7 * spread,
            one_q_layers: 2 + (target.c2 > 0.1) as usize,
        }
    }
    fn d_1q(&self) -> f64 {
        0.25
    }
}

fn initial_for(map: &CouplingMap, kind: u8, seed: u64) -> Calibration {
    let base = FidelityModel::paper();
    match kind % 3 {
        0 => Calibration::uniform(map, base),
        1 => Calibration::spread(map, base, 0.25, seed).expect("valid sigma"),
        _ => Calibration::hotspot(map, base, 2, seed).expect("valid k"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (a) The same drift seed yields bit-identical timelines no matter
    /// how many threads generate them concurrently.
    #[test]
    fn prop_timeline_is_bit_identical_across_threads(
        drift_seed in 0u64..10_000,
        cal_kind in 0u8..3,
        cal_seed in 0u64..1000,
        sigma in 0.0..0.4f64,
        epochs in 2usize..6,
    ) {
        let map = CouplingMap::grid(3, 3);
        let initial = initial_for(&map, cal_kind, cal_seed);
        let spec = DriftSpec::walk(epochs, sigma, 1, drift_seed);
        let reference = CalibrationTimeline::generate(&initial, &map, &spec).expect("valid spec");

        let shared = Arc::new((initial, map, spec));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let (initial, map, spec) = &*shared;
                    CalibrationTimeline::generate(initial, map, spec).expect("valid spec")
                })
            })
            .collect();
        for handle in handles {
            let timeline = handle.join().expect("no panic");
            prop_assert_eq!(timeline.epochs(), reference.epochs());
            for e in 0..reference.epochs() {
                // Calibration's PartialEq compares the raw f64 payloads, so
                // equality here is bit equality for every non-NaN field (and
                // the walk never produces NaN).
                prop_assert_eq!(timeline.snapshot(e), reference.snapshot(e), "epoch {}", e);
            }
        }
    }

    /// (b) Zero-volatility drift over a `uniform` calibration reproduces
    /// the static pipeline bit for bit at every epoch: same routes, same
    /// schedules, same fidelities.
    #[test]
    fn prop_calm_drift_over_uniform_is_the_static_pipeline(
        drift_seed in 0u64..10_000,
        route_seed in 0u64..1000,
        epochs in 1usize..5,
        n_gates in 1usize..=16,
        gates in proptest::collection::vec((0usize..9, 0usize..9, 0.1..3.0f64), 16),
    ) {
        let map = CouplingMap::grid(3, 3);
        let model = FidelityModel::paper();
        let initial = Calibration::uniform(&map, model);
        let timeline =
            CalibrationTimeline::generate(&initial, &map, &DriftSpec::calm(epochs, drift_seed))
                .expect("valid spec");

        let mut c = Circuit::new(9);
        for &(a, b, theta) in gates.iter().take(n_gates) {
            if a != b {
                c.push_2q(TwoQ::CPhase(theta), a, b);
            }
        }
        let run = |cal: &Calibration| {
            let routed = route_calibrated(&c, &map, Some(cal), route_seed, RouterOptions::default())
                .expect("routable");
            let items = consolidate(&routed.circuit).expect("consolidates");
            let s = schedule_with_calibration(&items, &Jagged, 9, ScheduleOptions::default(), cal);
            let ft = cal.total_fidelity(s.duration, 9).expect("fits the device")
                * cal.gate_error_product(&items);
            (routed.circuit, routed.swaps_inserted, s.duration, ft)
        };
        let (static_circuit, static_swaps, static_duration, static_ft) = run(&initial);
        for epoch in 0..timeline.epochs() {
            let snap = timeline.snapshot(epoch);
            prop_assert!(snap.is_uniform(), "epoch {} lost uniformity", epoch);
            let (circuit, swaps, duration, ft) = run(snap);
            prop_assert_eq!(&circuit, &static_circuit);
            prop_assert_eq!(swaps, static_swaps);
            prop_assert_eq!(duration.to_bits(), static_duration.to_bits());
            prop_assert_eq!(ft.to_bits(), static_ft.to_bits());
        }
    }

    /// (c) Drifted calibrations always pass `validate_for` against their
    /// map, whatever the walk or event schedule did.
    #[test]
    fn prop_drifted_calibrations_validate_for_their_map(
        drift_seed in 0u64..10_000,
        cal_kind in 0u8..3,
        cal_seed in 0u64..1000,
        sigma in 0.0..0.5f64,
        dead_edges in 0usize..4,
        epochs in 2usize..6,
    ) {
        let map = CouplingMap::grid(3, 3);
        let initial = initial_for(&map, cal_kind, cal_seed);
        let spec = DriftSpec {
            epochs,
            qubit_sigma: sigma,
            edge_sigma: sigma,
            dead_edges,
            seed: drift_seed,
        };
        let timeline = CalibrationTimeline::generate(&initial, &map, &spec).expect("valid spec");
        for (epoch, snap) in timeline.iter().enumerate() {
            prop_assert!(snap.validate_for(&map).is_ok(), "epoch {} failed validation", epoch);
            prop_assert_eq!(snap.label(), initial.label());
        }
    }
}

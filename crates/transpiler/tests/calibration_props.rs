//! The calibration subsystem's backwards-compatibility guarantee, as
//! properties: a **uniform** calibration is not "approximately" the legacy
//! homogeneous pipeline — it is the same arithmetic, bit for bit, for any
//! model parameters, any duration, any circuit.

use paradrive_circuit::{Circuit, TwoQ};
use paradrive_transpiler::calibration::Calibration;
use paradrive_transpiler::consolidate::consolidate;
use paradrive_transpiler::fidelity::FidelityModel;
use paradrive_transpiler::routing::{route, route_calibrated, RouterOptions};
use paradrive_transpiler::schedule::{schedule, schedule_with_calibration, ScheduleOptions};
use paradrive_transpiler::topology::CouplingMap;
use paradrive_transpiler::{CostModel, GateCost};
use paradrive_weyl::WeylPoint;
use proptest::prelude::*;

/// A stand-in cost model with irregular (but deterministic) costs, so the
/// scheduling comparison exercises non-trivial floats.
struct Jagged;

impl CostModel for Jagged {
    fn cost(&self, target: WeylPoint) -> GateCost {
        let spread = 1.0 + (target.c1 * 37.0).sin().abs();
        GateCost {
            two_q_time: 0.7 * spread,
            one_q_layers: 2 + (target.c2 > 0.1) as usize,
        }
    }
    fn d_1q(&self) -> f64 {
        0.25
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 10/11 under a uniform calibration reproduce the homogeneous
    /// model's exact bits for arbitrary (valid) timings and durations.
    #[test]
    fn prop_uniform_fidelity_is_bit_identical(
        iswap_ns in 10.0..500.0f64,
        t1_us in 10.0..1000.0f64,
        duration in 0.0..2000.0f64,
        n_wires in 1usize..=16,
    ) {
        let model = FidelityModel::new(iswap_ns, t1_us * 1000.0).expect("valid timings");
        let map = CouplingMap::grid(4, 4);
        let cal = Calibration::uniform(&map, model);
        prop_assert!(cal.is_uniform());
        prop_assert_eq!(
            cal.wire_fidelity(0, duration).unwrap().to_bits(),
            model.qubit_fidelity(duration).to_bits()
        );
        prop_assert_eq!(
            cal.total_fidelity(duration, n_wires).unwrap().to_bits(),
            model.total_fidelity(duration, n_wires).to_bits()
        );
    }

    /// Routing, scheduling and the gate-error survival product under a
    /// uniform calibration reproduce the legacy pipeline exactly on random
    /// circuits.
    #[test]
    fn prop_uniform_pipeline_is_bit_identical(
        seed in 0u64..1000,
        n_gates in 1usize..=24,
        gates in proptest::collection::vec((0usize..9, 0usize..9, 0.1..3.0f64), 24),
    ) {
        let map = CouplingMap::grid(3, 3);
        let model = FidelityModel::paper();
        let cal = Calibration::uniform(&map, model);
        let mut c = Circuit::new(9);
        for &(a, b, theta) in gates.iter().take(n_gates) {
            if a != b {
                c.push_2q(TwoQ::CPhase(theta), a, b);
            }
        }
        // Noise-aware routing over a uniform calibration degrades to the
        // noise-blind router: same SWAPs, same circuit, same layout.
        let blind = route(&c, &map, seed).expect("routable");
        let aware = route_calibrated(&c, &map, Some(&cal), seed, RouterOptions::default())
            .expect("routable");
        prop_assert_eq!(&blind.circuit, &aware.circuit);
        prop_assert_eq!(blind.swaps_inserted, aware.swaps_inserted);

        let items = consolidate(&blind.circuit).expect("consolidates");
        let plain = schedule(&items, &Jagged, 9);
        let calibrated =
            schedule_with_calibration(&items, &Jagged, 9, ScheduleOptions::default(), &cal);
        prop_assert_eq!(plain.duration.to_bits(), calibrated.duration.to_bits());
        prop_assert_eq!(
            plain.total_two_q_time.to_bits(),
            calibrated.total_two_q_time.to_bits()
        );
        for (p, q) in plain.qubit_finish.iter().zip(&calibrated.qubit_finish) {
            prop_assert_eq!(p.to_bits(), q.to_bits());
        }
        // Zero-error edges survive with probability exactly 1, so the
        // calibrated F_T multiplier never perturbs the homogeneous bits.
        prop_assert_eq!(cal.gate_error_product(&items).to_bits(), 1.0f64.to_bits());
        prop_assert_eq!(
            (cal.total_fidelity(plain.duration, 9).unwrap() * cal.gate_error_product(&items))
                .to_bits(),
            model.total_fidelity(plain.duration, 9).to_bits()
        );
    }
}

//! The constant conversion–gain drive (Eq. 1 / Eq. 2 of the paper).

use crate::DriveError;
use paradrive_linalg::expm::evolve;
use paradrive_linalg::{paulis, CMat, C64};
use paradrive_weyl::WeylPoint;

/// Pulse angles `(θc, θg) = (gc·t, gg·t)` that identify a gate family.
///
/// The *family* of a base-plane gate is the ray `gg = β·gc` with
/// `β = θg/θc`; walking along the ray at the speed-limit boundary changes
/// the pulse time but not the family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriveAngles {
    /// Conversion angle `θc = gc·t`.
    pub theta_c: f64,
    /// Gain angle `θg = gg·t`.
    pub theta_g: f64,
}

impl DriveAngles {
    /// Creates a pair of pulse angles.
    pub const fn new(theta_c: f64, theta_g: f64) -> Self {
        DriveAngles { theta_c, theta_g }
    }

    /// The drive-ratio `β = θg/θc` (∞ for pure gain).
    pub fn ratio(self) -> f64 {
        self.theta_g / self.theta_c
    }

    /// Total pulse angle `θc + θg` — the color scale of Fig. 3a.
    pub fn total(self) -> f64 {
        self.theta_c + self.theta_g
    }

    /// The base-plane Weyl point these angles produce:
    /// `(θc + θg, |θc − θg|, 0)`.
    pub fn weyl_point(self) -> WeylPoint {
        WeylPoint::new(self.total(), (self.theta_c - self.theta_g).abs(), 0.0)
    }
}

/// Converts a base-plane chamber point into the drive angles that natively
/// produce it: `θc = (c1+c2)/2`, `θg = (c1−c2)/2`.
///
/// # Errors
///
/// Returns [`DriveError::OffBasePlane`] when `|c3| > 1e-9` — constant
/// conversion/gain drives cannot leave the chamber floor.
///
/// # Example
///
/// ```
/// use paradrive_hamiltonian::angles_for_base_point;
/// use paradrive_weyl::WeylPoint;
/// let a = angles_for_base_point(WeylPoint::CNOT).unwrap();
/// assert!((a.theta_c - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
/// assert!((a.theta_g - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
/// ```
pub fn angles_for_base_point(p: WeylPoint) -> Result<DriveAngles, DriveError> {
    if p.c3.abs() > 1e-9 {
        return Err(DriveError::OffBasePlane(p.c3));
    }
    Ok(DriveAngles::new((p.c1 + p.c2) / 2.0, (p.c1 - p.c2) / 2.0))
}

/// A constant conversion–gain drive configuration.
///
/// `gc`, `gg` are the pump-controlled interaction strengths (rad/unit-time)
/// and `φc`, `φg` the pump phases of Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConversionGain {
    gc: f64,
    gg: f64,
    phi_c: f64,
    phi_g: f64,
}

impl ConversionGain {
    /// Creates a zero-phase conversion–gain drive.
    ///
    /// # Panics
    ///
    /// Panics if a strength is negative or non-finite; use
    /// [`ConversionGain::try_new`] for a fallible constructor.
    pub fn new(gc: f64, gg: f64) -> Self {
        Self::try_new(gc, gg, 0.0, 0.0).expect("invalid drive strengths")
    }

    /// Creates a conversion–gain drive with explicit pump phases.
    ///
    /// # Errors
    ///
    /// Returns [`DriveError::InvalidParameter`] for negative or non-finite
    /// strengths or non-finite phases.
    pub fn try_new(gc: f64, gg: f64, phi_c: f64, phi_g: f64) -> Result<Self, DriveError> {
        if !gc.is_finite() || gc < 0.0 {
            return Err(DriveError::InvalidParameter("gc", gc));
        }
        if !gg.is_finite() || gg < 0.0 {
            return Err(DriveError::InvalidParameter("gg", gg));
        }
        if !phi_c.is_finite() {
            return Err(DriveError::InvalidParameter("phi_c", phi_c));
        }
        if !phi_g.is_finite() {
            return Err(DriveError::InvalidParameter("phi_g", phi_g));
        }
        Ok(ConversionGain {
            gc,
            gg,
            phi_c,
            phi_g,
        })
    }

    /// Creates the drive that realizes the given pulse angles in time `t`.
    ///
    /// # Errors
    ///
    /// Returns [`DriveError::InvalidParameter`] if `t ≤ 0` or the implied
    /// strengths are invalid.
    pub fn for_angles(angles: DriveAngles, t: f64) -> Result<Self, DriveError> {
        if t <= 0.0 || !t.is_finite() {
            return Err(DriveError::InvalidParameter("t", t));
        }
        Self::try_new(angles.theta_c / t, angles.theta_g / t, 0.0, 0.0)
    }

    /// Conversion strength `gc`.
    pub fn gc(&self) -> f64 {
        self.gc
    }

    /// Gain strength `gg`.
    pub fn gg(&self) -> f64 {
        self.gg
    }

    /// Conversion pump phase `φc`.
    pub fn phi_c(&self) -> f64 {
        self.phi_c
    }

    /// Gain pump phase `φg`.
    pub fn phi_g(&self) -> f64 {
        self.phi_g
    }

    /// The 4×4 Hamiltonian matrix of Eq. 1 on two-level qubits, in the
    /// computational basis `{|00⟩, |01⟩, |10⟩, |11⟩}`.
    pub fn hamiltonian(&self) -> CMat {
        let a = paulis::sigma_minus().kron(&paulis::i2());
        let b = paulis::i2().kron(&paulis::sigma_minus());
        let a_dag = a.adjoint();
        let b_dag = b.adjoint();

        let conv = a_dag
            .mul(&b)
            .scale(C64::cis(self.phi_c))
            .add(&a.mul(&b_dag).scale(C64::cis(-self.phi_c)))
            .scale(C64::real(self.gc));
        let gain = a
            .mul(&b)
            .scale(C64::cis(self.phi_g))
            .add(&a_dag.mul(&b_dag).scale(C64::cis(-self.phi_g)))
            .scale(C64::real(self.gg));
        conv.add(&gain)
    }

    /// Time evolution `U(t) = exp(-i H t)` by matrix exponential.
    pub fn unitary(&self, t: f64) -> CMat {
        evolve(&self.hamiltonian(), t)
    }

    /// The closed-form unitary (the paper's Eq. 2, generalized to nonzero
    /// pump phases): block rotations on `{|00⟩,|11⟩}` by `θg = gg·t` and on
    /// `{|01⟩,|10⟩}` by `θc = gc·t`.
    pub fn closed_form_unitary(&self, t: f64) -> CMat {
        let theta_c = self.gc * t;
        let theta_g = self.gg * t;
        let (cc, sc) = (theta_c.cos(), theta_c.sin());
        let (cg, sg) = (theta_g.cos(), theta_g.sin());
        let mi = C64::new(0.0, -1.0);
        let z = C64::ZERO;
        // ⟨00|U|11⟩ = -i e^{iφg} sin θg ; ⟨11|U|00⟩ = -i e^{-iφg} sin θg
        // ⟨01|U|10⟩ = -i e^{-iφc} sin θc ; ⟨10|U|01⟩ = -i e^{iφc} sin θc
        CMat::from_rows(&[
            &[C64::real(cg), z, z, mi * C64::cis(self.phi_g) * sg],
            &[z, C64::real(cc), mi * C64::cis(-self.phi_c) * sc, z],
            &[z, mi * C64::cis(self.phi_c) * sc, C64::real(cc), z],
            &[mi * C64::cis(-self.phi_g) * sg, z, z, C64::real(cg)],
        ])
    }

    /// The pulse angles accumulated after time `t`.
    pub fn angles(&self, t: f64) -> DriveAngles {
        DriveAngles::new(self.gc * t, self.gg * t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradrive_weyl::magic::coordinates;
    use paradrive_weyl::{gates, invariants::locally_equivalent};
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

    #[test]
    fn hamiltonian_is_hermitian() {
        let h = ConversionGain::try_new(0.7, 0.3, 0.4, -1.1)
            .unwrap()
            .hamiltonian();
        assert!(h.is_hermitian(1e-12));
    }

    #[test]
    fn closed_form_matches_expm() {
        for (gc, gg, pc, pg) in [
            (0.5, 0.0, 0.0, 0.0),
            (0.0, 0.8, 0.0, 0.0),
            (0.6, 0.4, 0.0, 0.0),
            (0.6, 0.4, 1.2, -0.7),
        ] {
            let d = ConversionGain::try_new(gc, gg, pc, pg).unwrap();
            for t in [0.1, 1.0, 2.5] {
                assert!(
                    d.unitary(t).approx_eq(&d.closed_form_unitary(t), 1e-10),
                    "mismatch at gc={gc} gg={gg} φc={pc} φg={pg} t={t}"
                );
            }
        }
    }

    #[test]
    fn conversion_pulse_is_iswap_family() {
        // θc = π/2 → iSWAP class (conversion side).
        let u = ConversionGain::new(FRAC_PI_2, 0.0).unitary(1.0);
        assert!(locally_equivalent(&u, &gates::iswap(), 1e-9).unwrap());
    }

    #[test]
    fn gain_pulse_is_also_iswap_family() {
        // θg = π/2 → iSWAP class (gain side, the "bSWAP").
        let u = ConversionGain::new(0.0, FRAC_PI_2).unitary(1.0);
        assert!(locally_equivalent(&u, &gates::iswap(), 1e-9).unwrap());
    }

    #[test]
    fn balanced_pulse_is_cnot_family() {
        // θc = θg = π/4 → CNOT class (the paper's Eq. 4).
        let u = ConversionGain::new(FRAC_PI_4, FRAC_PI_4).unitary(1.0);
        assert!(locally_equivalent(&u, &gates::cnot(), 1e-9).unwrap());
    }

    #[test]
    fn b_gate_ratio() {
        // θc = 3π/8, θg = π/8 → B class (ratio 1:3).
        let u = ConversionGain::new(3.0 * FRAC_PI_4 / 2.0, FRAC_PI_4 / 2.0).unitary(1.0);
        assert!(locally_equivalent(&u, &gates::b_gate(), 1e-9).unwrap());
    }

    #[test]
    fn angles_for_named_points() {
        let cnot = angles_for_base_point(paradrive_weyl::WeylPoint::CNOT).unwrap();
        assert!((cnot.ratio() - 1.0).abs() < 1e-12);
        let b = angles_for_base_point(paradrive_weyl::WeylPoint::B).unwrap();
        assert!((b.ratio() - 1.0 / 3.0).abs() < 1e-12);
        let iswap = angles_for_base_point(paradrive_weyl::WeylPoint::ISWAP).unwrap();
        assert!(iswap.ratio().abs() < 1e-12);
        assert!((iswap.theta_c - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn angles_reject_off_plane() {
        assert!(matches!(
            angles_for_base_point(paradrive_weyl::WeylPoint::SWAP),
            Err(DriveError::OffBasePlane(_))
        ));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ConversionGain::try_new(-1.0, 0.0, 0.0, 0.0).is_err());
        assert!(ConversionGain::try_new(0.0, f64::NAN, 0.0, 0.0).is_err());
        assert!(ConversionGain::for_angles(DriveAngles::new(1.0, 1.0), 0.0).is_err());
    }

    #[test]
    fn strength_time_tradeoff() {
        // Doubling strengths and halving time gives the same unitary.
        let slow = ConversionGain::new(0.3, 0.2).unitary(2.0);
        let fast = ConversionGain::new(0.6, 0.4).unitary(1.0);
        assert!(slow.approx_eq(&fast, 1e-10));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_base_plane_coordinates(
            theta_c in 0.0..FRAC_PI_2,
            theta_g in 0.0..FRAC_PI_2,
        ) {
            // Constant drives land at canonical (θc+θg, |θc−θg|, 0) —
            // possibly folded when θc+θg > π/2... the fold keeps c1 ≥ c2.
            let d = ConversionGain::new(theta_c, theta_g);
            let u = d.unitary(1.0);
            let p = coordinates(&u).unwrap();
            prop_assert!(p.c3.abs() < 1e-7, "left base plane: {}", p);
            let expected = DriveAngles::new(theta_c, theta_g).weyl_point();
            let canonical = paradrive_weyl::magic::canonicalize(expected).unwrap();
            prop_assert!(
                p.approx_eq(canonical, 1e-6),
                "drive ({theta_c},{theta_g}) → {} ≠ {}", p, canonical
            );
        }

        #[test]
        fn prop_unitarity(gc in 0.0..2.0f64, gg in 0.0..2.0f64, t in 0.01..3.0f64) {
            let u = ConversionGain::new(gc, gg).unitary(t);
            prop_assert!(u.is_unitary(1e-9));
        }
    }
}

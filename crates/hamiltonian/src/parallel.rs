//! Parallel-driven evolution (the paper's Eq. 9).
//!
//! While the modulator pumps the two-qubit conversion/gain interaction, the
//! qubits themselves are driven with piecewise-constant X amplitudes
//! `ε1(t), ε2(t)`. Each time step evolves under
//!
//! ```text
//! H_k = H_conversion-gain + ε1[k]·(X⊗I) + ε2[k]·(I⊗X)
//! ```
//!
//! and the gate is the time-ordered product of the segment exponentials.
//! Four segments (`D[1Q] = 0.25` per full pulse) match the paper's choice.

use crate::conversion_gain::ConversionGain;
use crate::DriveError;
use paradrive_linalg::expm::evolve;
use paradrive_linalg::{paulis, CMat, C64};

/// One piecewise-constant segment of the parallel 1Q drives.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Segment {
    /// X-drive amplitude on the first qubit during this segment.
    pub eps1: f64,
    /// X-drive amplitude on the second qubit during this segment.
    pub eps2: f64,
}

impl Segment {
    /// Creates a segment with the given drive amplitudes.
    pub const fn new(eps1: f64, eps2: f64) -> Self {
        Segment { eps1, eps2 }
    }
}

/// A parallel-driven two-qubit pulse: a conversion–gain drive plus
/// piecewise-constant single-qubit X drives over a total pulse time.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelDrive {
    base: ConversionGain,
    segments: Vec<Segment>,
    total_time: f64,
}

impl ParallelDrive {
    /// Creates a parallel-driven pulse.
    ///
    /// # Errors
    ///
    /// Returns [`DriveError::EmptySegments`] when `segments` is empty and
    /// [`DriveError::InvalidParameter`] for a non-positive total time or a
    /// non-finite drive amplitude.
    pub fn new(
        base: ConversionGain,
        segments: Vec<Segment>,
        total_time: f64,
    ) -> Result<Self, DriveError> {
        if segments.is_empty() {
            return Err(DriveError::EmptySegments);
        }
        if total_time <= 0.0 || !total_time.is_finite() {
            return Err(DriveError::InvalidParameter("total_time", total_time));
        }
        for s in &segments {
            if !s.eps1.is_finite() {
                return Err(DriveError::InvalidParameter("eps1", s.eps1));
            }
            if !s.eps2.is_finite() {
                return Err(DriveError::InvalidParameter("eps2", s.eps2));
            }
        }
        Ok(ParallelDrive {
            base,
            segments,
            total_time,
        })
    }

    /// The underlying conversion–gain drive.
    pub fn base(&self) -> &ConversionGain {
        &self.base
    }

    /// The 1Q drive segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total pulse time.
    pub fn total_time(&self) -> f64 {
        self.total_time
    }

    /// The Hamiltonian during segment `k` (Eq. 9 with the segment's
    /// `ε1, ε2` values).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn segment_hamiltonian(&self, k: usize) -> CMat {
        let s = self.segments[k];
        let x1 = paulis::x().kron(&paulis::i2()).scale(C64::real(s.eps1));
        let x2 = paulis::i2().kron(&paulis::x()).scale(C64::real(s.eps2));
        self.base.hamiltonian().add(&x1).add(&x2)
    }

    /// The full pulse unitary: the time-ordered product of segment
    /// exponentials, `U = U_{n-1} ··· U_1 U_0`.
    pub fn unitary(&self) -> CMat {
        let dt = self.total_time / self.segments.len() as f64;
        let mut u = CMat::identity(4);
        for k in 0..self.segments.len() {
            u = evolve(&self.segment_hamiltonian(k), dt).mul(&u);
        }
        u
    }

    /// Accumulated unitaries at each segment boundary (including the final
    /// gate) — the sampled Cartan trajectory of the pulse.
    pub fn accumulate(&self) -> Vec<CMat> {
        let dt = self.total_time / self.segments.len() as f64;
        let mut acc = Vec::with_capacity(self.segments.len() + 1);
        let mut u = CMat::identity(4);
        acc.push(u.clone());
        for k in 0..self.segments.len() {
            u = evolve(&self.segment_hamiltonian(k), dt).mul(&u);
            acc.push(u.clone());
        }
        acc
    }
}

/// Builder for [`ParallelDrive`] pulses.
///
/// # Example
///
/// ```
/// use paradrive_hamiltonian::{ConversionGain, ParallelDriveBuilder};
/// use std::f64::consts::FRAC_PI_2;
///
/// let pulse = ParallelDriveBuilder::new(ConversionGain::new(FRAC_PI_2, 0.0))
///     .segment(3.0, 0.0)
///     .segment(3.0, 0.0)
///     .segment(3.0, 0.0)
///     .segment(3.0, 0.0)
///     .total_time(1.0)
///     .build()
///     .unwrap();
/// assert!(pulse.unitary().is_unitary(1e-10));
/// ```
#[derive(Debug, Clone)]
pub struct ParallelDriveBuilder {
    base: ConversionGain,
    segments: Vec<Segment>,
    total_time: f64,
}

impl ParallelDriveBuilder {
    /// Starts a builder for the given conversion–gain base drive.
    pub fn new(base: ConversionGain) -> Self {
        ParallelDriveBuilder {
            base,
            segments: Vec::new(),
            total_time: 1.0,
        }
    }

    /// Appends a segment with the given `(ε1, ε2)` amplitudes.
    #[must_use]
    pub fn segment(mut self, eps1: f64, eps2: f64) -> Self {
        self.segments.push(Segment::new(eps1, eps2));
        self
    }

    /// Appends `n` segments all carrying the same amplitudes — the paper's
    /// "suitable solution ε1 = 3, ε2 = 0 for all time steps" style.
    #[must_use]
    pub fn constant_segments(mut self, n: usize, eps1: f64, eps2: f64) -> Self {
        self.segments
            .extend(std::iter::repeat_n(Segment::new(eps1, eps2), n));
        self
    }

    /// Sets the total pulse time (default 1.0).
    #[must_use]
    pub fn total_time(mut self, t: f64) -> Self {
        self.total_time = t;
        self
    }

    /// Builds the pulse.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`ParallelDrive::new`].
    pub fn build(self) -> Result<ParallelDrive, DriveError> {
        ParallelDrive::new(self.base, self.segments, self.total_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradrive_weyl::magic::coordinates;
    use paradrive_weyl::trajectory::Trajectory;
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

    fn pd(gc: f64, gg: f64, eps: &[(f64, f64)]) -> ParallelDrive {
        let mut b = ParallelDriveBuilder::new(ConversionGain::new(gc, gg));
        for &(e1, e2) in eps {
            b = b.segment(e1, e2);
        }
        b.total_time(1.0).build().unwrap()
    }

    #[test]
    fn zero_drive_matches_plain_pulse() {
        let plain = ConversionGain::new(0.8, 0.3).unitary(1.0);
        let parallel = pd(0.8, 0.3, &[(0.0, 0.0); 4]).unitary();
        assert!(parallel.approx_eq(&plain, 1e-10));
    }

    #[test]
    fn empty_segments_rejected() {
        assert_eq!(
            ParallelDrive::new(ConversionGain::new(1.0, 0.0), vec![], 1.0).unwrap_err(),
            DriveError::EmptySegments
        );
    }

    #[test]
    fn invalid_time_rejected() {
        assert!(matches!(
            ParallelDrive::new(
                ConversionGain::new(1.0, 0.0),
                vec![Segment::default()],
                -1.0
            ),
            Err(DriveError::InvalidParameter("total_time", _))
        ));
    }

    #[test]
    fn parallel_drive_leaves_base_plane() {
        // Constant conversion/gain stays on the chamber floor; adding 1Q X
        // drives lifts the endpoint off it (the Fig. 7 phenomenon).
        let u = pd(FRAC_PI_2, FRAC_PI_4, &[(1.3, 0.4); 4]).unitary();
        let p = coordinates(&u).unwrap();
        assert!(p.c3 > 0.01, "stayed on base plane: {p}");
    }

    #[test]
    fn trajectory_bends_under_parallel_drive() {
        let straight = pd(FRAC_PI_2, 0.0, &[(0.0, 0.0); 8]);
        let curved = pd(FRAC_PI_2, 0.0, &[(2.0, 1.0); 8]);
        let t_straight = Trajectory::from_unitaries(&straight.accumulate()).unwrap();
        let t_curved = Trajectory::from_unitaries(&curved.accumulate()).unwrap();
        assert!(t_straight.chord_deviation() < 1e-6);
        assert!(t_curved.chord_deviation() > 0.05);
    }

    #[test]
    fn accumulate_ends_at_unitary() {
        let pulse = pd(0.9, 0.1, &[(0.5, -0.5), (1.0, 0.0), (0.0, 1.0), (0.3, 0.3)]);
        let acc = pulse.accumulate();
        assert_eq!(acc.len(), 5);
        assert!(acc[0].approx_eq(&CMat::identity(4), 1e-12));
        assert!(acc[4].approx_eq(&pulse.unitary(), 1e-10));
    }

    #[test]
    fn builder_constant_segments() {
        let pulse = ParallelDriveBuilder::new(ConversionGain::new(1.0, 0.0))
            .constant_segments(4, 3.0, 0.0)
            .build()
            .unwrap();
        assert_eq!(pulse.segments().len(), 4);
        assert!(pulse
            .segments()
            .iter()
            .all(|s| s.eps1 == 3.0 && s.eps2 == 0.0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_parallel_drive_unitary(
            gc in 0.0..2.0f64,
            gg in 0.0..2.0f64,
            e1 in -4.0..4.0f64,
            e2 in -4.0..4.0f64,
            n in 1usize..6,
        ) {
            let pulse = ParallelDriveBuilder::new(ConversionGain::new(gc, gg))
                .constant_segments(n, e1, e2)
                .build()
                .unwrap();
            prop_assert!(pulse.unitary().is_unitary(1e-9));
        }
    }
}

//! Conversion–gain coupler Hamiltonians and parallel-driven evolution.
//!
//! A parametrically driven modulator (e.g. a SNAIL coupler) realizes the
//! two-body Hamiltonian of the paper's Eq. 1:
//!
//! ```text
//! H = gc (e^{iφc} a†b + e^{-iφc} a b†)   — photon exchange / conversion
//!   + gg (e^{iφg} a b  + e^{-iφg} a†b†)  — two-mode squeezing / gain
//! ```
//!
//! On two-level qubits, conversion generates the `(XX+YY)/2` interaction and
//! gain the `(XX−YY)/2` interaction, so constant drives sweep the entire
//! base plane of the Weyl chamber (Fig. 3a). The *parallel-drive* extension
//! (Eq. 9) adds piecewise-constant single-qubit X drives `ε1(t), ε2(t)`
//! during the two-qubit pulse, which bends the Cartan trajectory off the
//! base plane (Fig. 7) and lets interleaved 1Q gates be absorbed into the 2Q
//! operation.
//!
//! # Example
//!
//! ```
//! use paradrive_hamiltonian::ConversionGain;
//! use paradrive_weyl::{magic::coordinates, WeylPoint};
//! use std::f64::consts::FRAC_PI_2;
//!
//! // A conversion-only pulse of angle θc = π/2 is an iSWAP.
//! let drive = ConversionGain::new(FRAC_PI_2, 0.0);
//! let u = drive.unitary(1.0);
//! assert!(coordinates(&u).unwrap().approx_eq(WeylPoint::ISWAP, 1e-9));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conversion_gain;
mod parallel;

pub use conversion_gain::{angles_for_base_point, ConversionGain, DriveAngles};
pub use parallel::{ParallelDrive, ParallelDriveBuilder, Segment};

/// Errors produced when constructing or evolving drive Hamiltonians.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DriveError {
    /// A drive strength or duration was negative or non-finite.
    InvalidParameter(&'static str, f64),
    /// A parallel drive was configured with zero time segments.
    EmptySegments,
    /// The requested target point lies off the base plane and cannot be
    /// produced by constant conversion/gain driving alone.
    OffBasePlane(f64),
}

impl std::fmt::Display for DriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriveError::InvalidParameter(name, v) => {
                write!(f, "drive parameter `{name}` is invalid: {v}")
            }
            DriveError::EmptySegments => write!(f, "parallel drive requires at least one segment"),
            DriveError::OffBasePlane(c3) => write!(
                f,
                "target has c3 = {c3:.4} ≠ 0; constant conversion/gain drives only reach the base plane"
            ),
        }
    }
}

impl std::error::Error for DriveError {}

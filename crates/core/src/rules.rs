//! Decomposition cost models: the baseline analytic √iSWAP flow and the
//! parallel-drive optimized rules (Section IV, Figs. 10–12, Table V).
//!
//! Both models implement [`CostModel`] so the transpiler can schedule the
//! same consolidated circuit under either and compare (Table VII).
//!
//! Costs are expressed in normalized iSWAP-pulse units (`D[iSWAP] = 1`),
//! assuming the linear speed limit of the paper's evaluation section, i.e.
//! `D[√iSWAP] = 0.5`.

use paradrive_coverage::scores::{build_stack, BuildOptions};
use paradrive_coverage::CoverageStack;
use paradrive_optimizer::{TemplateSpec, TemplateSynthesizer};
use paradrive_transpiler::{CostModel, GateCost};
use paradrive_weyl::WeylPoint;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::FRAC_PI_2;
use std::sync::OnceLock;

const CLASS_TOL: f64 = 1e-6;

/// True for base-plane CNOT-family points `(θ, 0, 0)`.
pub fn is_cnot_family(p: WeylPoint) -> bool {
    p.c2.abs() < CLASS_TOL && p.c3.abs() < CLASS_TOL
}

/// True for base-plane iSWAP-family points `(θ, θ, 0)`.
pub fn is_iswap_family(p: WeylPoint) -> bool {
    (p.c1 - p.c2).abs() < CLASS_TOL && p.c3.abs() < CLASS_TOL && p.c1 > CLASS_TOL
}

/// True for the identity class.
pub fn is_identity(p: WeylPoint) -> bool {
    p.chamber_dist(WeylPoint::IDENTITY) < CLASS_TOL
}

/// True for the SWAP class.
pub fn is_swap(p: WeylPoint) -> bool {
    p.chamber_dist(WeylPoint::SWAP) < CLASS_TOL
}

fn baseline_stack() -> &'static CoverageStack {
    static STACK: OnceLock<CoverageStack> = OnceLock::new();
    STACK.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x5157_1547);
        build_stack(
            "sqrt_iSWAP",
            WeylPoint::SQRT_ISWAP,
            |k| TemplateSpec::sqrt_iswap_basis(k).without_parallel_drive(),
            BuildOptions {
                max_k: 3,
                samples_per_k: 1600,
                exterior_restarts: 4,
                full_coverage_probe: 0,
            },
            &mut rng,
        )
        .expect("baseline stack construction cannot fail")
    })
}

fn iswap_pd_stack() -> &'static CoverageStack {
    static STACK: OnceLock<CoverageStack> = OnceLock::new();
    STACK.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x1547_9d00);
        build_stack(
            "iSWAP+PD",
            WeylPoint::ISWAP,
            TemplateSpec::iswap_basis,
            BuildOptions {
                max_k: 2,
                samples_per_k: 1200,
                exterior_restarts: 4,
                full_coverage_probe: 0,
            },
            &mut rng,
        )
        .expect("iSWAP PD stack construction cannot fail")
    })
}

fn sqrt_pd_stack() -> &'static CoverageStack {
    static STACK: OnceLock<CoverageStack> = OnceLock::new();
    STACK.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x5153_9d00);
        build_stack(
            "sqrt_iSWAP+PD",
            WeylPoint::SQRT_ISWAP,
            TemplateSpec::sqrt_iswap_basis,
            BuildOptions {
                max_k: 3,
                samples_per_k: 1200,
                exterior_restarts: 4,
                full_coverage_probe: 0,
            },
            &mut rng,
        )
        .expect("√iSWAP PD stack construction cannot fail")
    })
}

/// The baseline: analytic √iSWAP decomposition without parallel drive
/// (the previously derived rules the paper compares against, Huang et al.).
///
/// Known classes get their analytic `K`; everything else queries the
/// Monte-Carlo coverage stack (K = 2 where covered, else the universal
/// K = 3).
#[derive(Debug, Clone, Copy)]
pub struct BaselineSqrtIswap {
    d_1q: f64,
}

impl BaselineSqrtIswap {
    /// Creates the model with the given 1Q layer duration (the paper's
    /// evaluation uses `0.25`).
    pub fn new(d_1q: f64) -> Self {
        BaselineSqrtIswap { d_1q }
    }

    fn k_of(&self, target: WeylPoint) -> usize {
        if target.chamber_dist(WeylPoint::SQRT_ISWAP) < CLASS_TOL {
            return 1;
        }
        if is_cnot_family(target) || is_iswap_family(target) {
            return 2;
        }
        if is_swap(target) {
            return 3;
        }
        baseline_stack()
            .min_k(target, paradrive_coverage::scores::CONTAINMENT_TOL)
            .unwrap_or(3)
            .min(3)
    }
}

impl CostModel for BaselineSqrtIswap {
    fn cost(&self, target: WeylPoint) -> GateCost {
        if is_identity(target) {
            return GateCost {
                two_q_time: 0.0,
                one_q_layers: 0,
            };
        }
        let k = self.k_of(target);
        GateCost {
            two_q_time: k as f64 * 0.5,
            one_q_layers: k + 1,
        }
    }

    fn d_1q(&self) -> f64 {
        self.d_1q
    }

    fn name(&self) -> &str {
        "baseline-sqrt-iswap"
    }
}

/// The optimized parallel-drive rules (Figs. 10–12):
///
/// - CNOT-family targets ride a fractional parallel-driven iSWAP pulse of
///   matching duration with no interior 1Q layers (Fig. 10 / Fig. 12),
/// - iSWAP-family targets are direct fractional pulses,
/// - SWAP uses the Fig. 11 template (1.5 pulses, one interior layer),
/// - everything else takes the cheapest covering template from the joint
///   parallel-driven iSWAP / √iSWAP stacks.
#[derive(Debug, Clone, Copy)]
pub struct ParallelDriveRules {
    d_1q: f64,
}

impl ParallelDriveRules {
    /// Creates the model with the given 1Q layer duration.
    pub fn new(d_1q: f64) -> Self {
        ParallelDriveRules { d_1q }
    }
}

impl CostModel for ParallelDriveRules {
    fn cost(&self, target: WeylPoint) -> GateCost {
        if is_identity(target) {
            return GateCost {
                two_q_time: 0.0,
                one_q_layers: 0,
            };
        }
        // Fractional families: the 2Q time is bounded below by the
        // computational invariant (1 full pulse for CNOT, 1.5 for SWAP) and
        // parallel drive removes all interior steering.
        if is_cnot_family(target) || is_iswap_family(target) {
            return GateCost {
                two_q_time: (target.c1 / FRAC_PI_2).min(1.0),
                one_q_layers: 2,
            };
        }
        if is_swap(target) {
            return GateCost {
                two_q_time: 1.5,
                one_q_layers: 3,
            };
        }
        // Joint stacks: cheapest covering template.
        let tol = paradrive_coverage::scores::CONTAINMENT_TOL;
        let mut best = GateCost {
            two_q_time: 1.5,
            one_q_layers: 4,
        }; // universal fallback: K = 3 √iSWAP
        let mut best_d = best.two_q_time + best.one_q_layers as f64 * self.d_1q;
        let candidates = [(iswap_pd_stack(), 1.0_f64), (sqrt_pd_stack(), 0.5_f64)];
        for (stack, t_basis) in candidates {
            if let Some(k) = stack.min_k(target, tol) {
                let cost = GateCost {
                    two_q_time: k as f64 * t_basis,
                    one_q_layers: k + 1,
                };
                let d = cost.two_q_time + cost.one_q_layers as f64 * self.d_1q;
                if d < best_d {
                    best_d = d;
                    best = cost;
                }
            }
        }
        best
    }

    fn d_1q(&self) -> f64 {
        self.d_1q
    }

    fn name(&self) -> &str {
        "parallel-drive"
    }
}

/// Total Eq.-7 duration of a cost (2Q time plus 1Q layers).
pub fn total_duration(cost: GateCost, d_1q: f64) -> f64 {
    cost.two_q_time + cost.one_q_layers as f64 * d_1q
}

/// Parallel-drive costing by **per-target template synthesis** — the
/// paper's Algorithm-1 discipline applied to every block, rather than the
/// precomputed Monte-Carlo coverage hulls [`ParallelDriveRules`] queries.
///
/// Named classes keep their analytic fast paths (they are exact), but any
/// general target is costed by actually running multi-start Nelder–Mead
/// synthesis of the candidate templates, cheapest first, until one
/// converges onto the target's local-equivalence class. That makes each
/// general-class query *milliseconds* instead of nanoseconds — faithful to
/// what a calibration-grade transpiler pays per block, and exactly the
/// workload the engine crate's decomposition cache exists to amortize
/// across circuits.
///
/// Deterministic: the synthesis RNG is seeded from the target's quantized
/// [`WeylKey`](paradrive_weyl::WeylKey), so the same target always costs
/// the same — on any thread, in any order.
#[derive(Debug, Clone, Copy)]
pub struct SynthesizedParallelDrive {
    d_1q: f64,
    seed: u64,
    restarts: usize,
    max_iter: usize,
}

impl SynthesizedParallelDrive {
    /// Creates the model with the given 1Q layer duration and a default
    /// synthesis budget (2 restarts × 400 iterations per candidate).
    pub fn new(d_1q: f64) -> Self {
        SynthesizedParallelDrive {
            d_1q,
            seed: 0x5044_a1b0,
            restarts: 2,
            max_iter: 400,
        }
    }

    /// Overrides the per-candidate synthesis budget.
    #[must_use]
    pub fn with_budget(mut self, restarts: usize, max_iter: usize) -> Self {
        self.restarts = restarts.max(1);
        self.max_iter = max_iter.max(1);
        self
    }

    /// A per-target RNG seed: a pure function of the quantized target, so
    /// costing is order- and thread-independent.
    fn target_seed(&self, target: WeylPoint) -> u64 {
        let [a, b, c] = paradrive_weyl::WeylKey::new(target).as_lattice();
        let mut h = self.seed;
        for v in [a, b, c] {
            h ^= v as u64;
            h = h.wrapping_mul(0x100_0000_01b3); // FNV-style mix
        }
        h
    }
}

impl CostModel for SynthesizedParallelDrive {
    fn cost(&self, target: WeylPoint) -> GateCost {
        if is_identity(target) {
            return GateCost {
                two_q_time: 0.0,
                one_q_layers: 0,
            };
        }
        if is_cnot_family(target) || is_iswap_family(target) {
            return GateCost {
                two_q_time: (target.c1 / FRAC_PI_2).min(1.0),
                one_q_layers: 2,
            };
        }
        if is_swap(target) {
            return GateCost {
                two_q_time: 1.5,
                one_q_layers: 3,
            };
        }
        // General class: synthesize candidate templates cheapest-first.
        // (K applications of √iSWAP cost 0.5 each, of iSWAP 1.0 each; a
        // template of K applications uses K + 1 layers.)
        let candidates = [
            (TemplateSpec::sqrt_iswap_basis(1), 0.5, 2usize),
            (TemplateSpec::iswap_basis(1), 1.0, 2),
            (TemplateSpec::sqrt_iswap_basis(2), 1.0, 3),
            (TemplateSpec::sqrt_iswap_basis(3), 1.5, 4),
        ];
        let mut rng = StdRng::seed_from_u64(self.target_seed(target));
        for (spec, two_q_time, one_q_layers) in candidates {
            let synth = TemplateSynthesizer::new(spec)
                .with_restarts(self.restarts)
                .with_options(paradrive_optimizer::Options {
                    max_iter: self.max_iter,
                    ..Default::default()
                });
            if let Ok(outcome) = synth.synthesize_to_point(target, &mut rng) {
                if outcome.converged {
                    return GateCost {
                        two_q_time,
                        one_q_layers,
                    };
                }
            }
        }
        // Universal fallback: the K = 3 √iSWAP template covers the chamber.
        GateCost {
            two_q_time: 1.5,
            one_q_layers: 4,
        }
    }

    fn d_1q(&self) -> f64 {
        self.d_1q
    }

    fn name(&self) -> &str {
        "synthesized-parallel-drive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D1Q: f64 = 0.25;

    #[test]
    fn class_predicates() {
        assert!(is_cnot_family(WeylPoint::CNOT));
        assert!(is_cnot_family(WeylPoint::SQRT_CNOT));
        assert!(!is_cnot_family(WeylPoint::B));
        assert!(is_iswap_family(WeylPoint::ISWAP));
        assert!(is_iswap_family(WeylPoint::SQRT_ISWAP));
        assert!(!is_iswap_family(WeylPoint::IDENTITY));
        assert!(is_swap(WeylPoint::SWAP));
        assert!(is_identity(WeylPoint::IDENTITY));
    }

    #[test]
    fn baseline_reference_durations() {
        // Table III, √iSWAP column (linear SLF, D[1Q] = 0.25):
        // D[CNOT] = 1.75, D[SWAP] = 2.5.
        let m = BaselineSqrtIswap::new(D1Q);
        let cnot = total_duration(m.cost(WeylPoint::CNOT), D1Q);
        assert!((cnot - 1.75).abs() < 1e-9, "D[CNOT] = {cnot}");
        let swap = total_duration(m.cost(WeylPoint::SWAP), D1Q);
        assert!((swap - 2.5).abs() < 1e-9, "D[SWAP] = {swap}");
        // The basis itself costs one pulse: 0.5 + 2·0.25 = 1.0.
        let self_cost = total_duration(m.cost(WeylPoint::SQRT_ISWAP), D1Q);
        assert!((self_cost - 1.0).abs() < 1e-9);
    }

    #[test]
    fn optimized_reference_durations() {
        // Table V (D[1Q] = 0.25): D[CNOT] = 1.5, D[SWAP] = 2.25.
        let m = ParallelDriveRules::new(D1Q);
        let cnot = total_duration(m.cost(WeylPoint::CNOT), D1Q);
        assert!((cnot - 1.5).abs() < 1e-9, "D[CNOT] = {cnot}");
        let swap = total_duration(m.cost(WeylPoint::SWAP), D1Q);
        assert!((swap - 2.25).abs() < 1e-9, "D[SWAP] = {swap}");
    }

    #[test]
    fn fractional_cnot_family_scales() {
        // A QFT-style small controlled phase: CAN(π/8, 0, 0) costs a
        // quarter pulse of 2Q time under parallel drive.
        let m = ParallelDriveRules::new(D1Q);
        let p = WeylPoint::new(FRAC_PI_2 / 4.0, 0.0, 0.0);
        let c = m.cost(p);
        assert!((c.two_q_time - 0.25).abs() < 1e-9);
        assert_eq!(c.one_q_layers, 2);
        // The baseline charges the full 2-application template.
        let b = BaselineSqrtIswap::new(D1Q).cost(p);
        assert!((b.two_q_time - 1.0).abs() < 1e-9);
        assert_eq!(b.one_q_layers, 3);
    }

    #[test]
    fn identity_is_free_for_both() {
        for model in [
            &BaselineSqrtIswap::new(D1Q) as &dyn CostModel,
            &ParallelDriveRules::new(D1Q) as &dyn CostModel,
        ] {
            let c = model.cost(WeylPoint::IDENTITY);
            assert_eq!(c.two_q_time, 0.0);
            assert_eq!(c.one_q_layers, 0);
        }
    }

    #[test]
    fn optimized_never_slower_on_named_gates() {
        let b = BaselineSqrtIswap::new(D1Q);
        let o = ParallelDriveRules::new(D1Q);
        for p in [
            WeylPoint::CNOT,
            WeylPoint::SQRT_CNOT,
            WeylPoint::ISWAP,
            WeylPoint::SQRT_ISWAP,
            WeylPoint::SWAP,
        ] {
            let bd = total_duration(b.cost(p), D1Q);
            let od = total_duration(o.cost(p), D1Q);
            assert!(od <= bd + 1e-9, "{p}: optimized {od} > baseline {bd}");
        }
    }

    #[test]
    fn synthesized_model_matches_analytic_fast_paths() {
        let s = SynthesizedParallelDrive::new(D1Q);
        let p = ParallelDriveRules::new(D1Q);
        for point in [
            WeylPoint::IDENTITY,
            WeylPoint::CNOT,
            WeylPoint::SQRT_CNOT,
            WeylPoint::ISWAP,
            WeylPoint::SQRT_ISWAP,
            WeylPoint::SWAP,
        ] {
            assert_eq!(s.cost(point), p.cost(point), "{point}");
        }
    }

    #[test]
    fn synthesized_general_target_is_deterministic_and_bounded() {
        let s = SynthesizedParallelDrive::new(D1Q).with_budget(2, 300);
        let p = WeylPoint::new(1.2, 0.6, 0.3);
        let first = s.cost(p);
        let again = s.cost(p);
        assert_eq!(first, again, "synthesis costing must be deterministic");
        let d = total_duration(first, D1Q);
        assert!((1.0..=2.5 + 1e-9).contains(&d), "cost {d}");
    }

    #[test]
    fn general_target_costs_are_bounded() {
        // Haar-ish interior point must cost at most the universal fallback.
        let m = ParallelDriveRules::new(D1Q);
        let p = WeylPoint::new(1.2, 0.6, 0.3);
        let d = total_duration(m.cost(p), D1Q);
        assert!(d <= 2.5 + 1e-9, "cost {d}");
        assert!(d >= 1.0, "cost {d} suspiciously cheap");
    }
}

//! The paper's headline methodology, end to end.
//!
//! `paradrive-core` glues the substrate crates into the two flows the paper
//! evaluates:
//!
//! - **Codesign** ([`codesign`]): given a speed limit function and a 1Q gate
//!   duration, score candidate basis gates by `E[D[Haar]]`, `D[CNOT]`,
//!   `D[SWAP]` and the workload-weighted `D[W(λ)]` (Eqs. 5–7, Tables II–III,
//!   Figs. 5–6), and pick the best drive ratio.
//! - **Transpilation** ([`flow`]): route the benchmark suite onto the 4×4
//!   lattice, consolidate into 2Q blocks, and charge each block either the
//!   baseline analytic √iSWAP decomposition or the parallel-drive optimized
//!   rules ([`rules`]), then compare durations and fidelities (Tables VI–VII).
//!
//! # Example
//!
//! ```
//! use paradrive_core::rules::{BaselineSqrtIswap, ParallelDriveRules};
//! use paradrive_transpiler::CostModel;
//! use paradrive_weyl::WeylPoint;
//!
//! let baseline = BaselineSqrtIswap::new(0.25);
//! let optimized = ParallelDriveRules::new(0.25);
//! // Parallel drive turns CNOT from 2 pulses + 3 layers into 1 pulse + 2.
//! let b = baseline.cost(WeylPoint::CNOT);
//! let o = optimized.cost(WeylPoint::CNOT);
//! assert!(o.two_q_time + 2.0 * 0.25 < b.two_q_time + 3.0 * 0.25);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codesign;
pub mod flow;
pub mod rules;
pub mod scoring;

/// Errors produced by the codesign and transpilation flows.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A transpiler pass failed.
    Transpile(String),
    /// A coverage computation failed.
    Coverage(String),
    /// A speed-limit computation failed.
    SpeedLimit(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Transpile(e) => write!(f, "transpile failure: {e}"),
            CoreError::Coverage(e) => write!(f, "coverage failure: {e}"),
            CoreError::SpeedLimit(e) => write!(f, "speed-limit failure: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

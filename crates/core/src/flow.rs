//! The end-to-end transpilation comparison (Tables VI and VII).
//!
//! Route → consolidate → schedule under the baseline and optimized cost
//! models → durations and decoherence fidelities. Both models see exactly
//! the same routed, consolidated circuit, so the comparison isolates the
//! decomposition rules (as in the paper).

use crate::rules::{BaselineSqrtIswap, ParallelDriveRules};
use crate::CoreError;
use paradrive_circuit::benchmarks::{standard_suite, Benchmark};
use paradrive_circuit::Circuit;
use paradrive_transpiler::calibration::Calibration;
use paradrive_transpiler::consolidate::{consolidate, lambda_fit, Item};
use paradrive_transpiler::fidelity::{
    relative_improvement_pct, relative_reduction_pct, FidelityModel,
};
use paradrive_transpiler::routing::route_best_of;
use paradrive_transpiler::schedule::{schedule, schedule_with_calibration, ScheduleOptions};
use paradrive_transpiler::topology::CouplingMap;
use paradrive_transpiler::CostModel;
use serde::{Deserialize, Serialize};

/// The transpilation outcome for one benchmark (one Table VII row).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchmarkResult {
    /// Benchmark name.
    pub name: String,
    /// Inserted SWAP count (routing diagnostic).
    pub swaps: usize,
    /// Number of consolidated 2Q blocks.
    pub blocks: usize,
    /// Baseline circuit duration in normalized pulses.
    pub baseline_duration: f64,
    /// Optimized (parallel-drive) duration.
    pub optimized_duration: f64,
    /// Relative duration reduction, percent.
    pub duration_reduction_pct: f64,
    /// Relative per-qubit fidelity improvement, percent.
    pub fq_improvement_pct: f64,
    /// Relative total-circuit fidelity improvement, percent.
    pub ft_improvement_pct: f64,
    /// Absolute total fidelity `F_T` under the baseline rules — per-wire
    /// lifetimes and per-edge gate errors when a calibration is attached.
    pub baseline_total_fidelity: f64,
    /// Absolute total fidelity `F_T` under the optimized rules.
    pub optimized_total_fidelity: f64,
}

/// Transpiles one circuit under both cost models.
///
/// # Errors
///
/// Propagates routing/consolidation failures as [`CoreError::Transpile`].
pub fn compare_models(
    name: &str,
    circuit: &Circuit,
    map: &CouplingMap,
    routing_seeds: u64,
    d_1q: f64,
    fidelity: FidelityModel,
) -> Result<BenchmarkResult, CoreError> {
    let routed = route_best_of(circuit, map, routing_seeds)
        .map_err(|e| CoreError::Transpile(e.to_string()))?;
    let items = consolidate(&routed.circuit).map_err(|e| CoreError::Transpile(e.to_string()))?;
    let baseline = BaselineSqrtIswap::new(d_1q);
    let optimized = ParallelDriveRules::new(d_1q);
    Ok(evaluate_consolidated(
        name,
        &items,
        routed.swaps_inserted,
        &baseline,
        &optimized,
        map.n_qubits(),
        circuit.n_qubits(),
        fidelity,
    ))
}

/// Scores an already routed-and-consolidated circuit under a baseline and
/// an optimized cost model — the back half of [`compare_models`], exposed
/// so batch drivers (the `paradrive-engine` crate) share the exact same
/// arithmetic and stay bit-for-bit comparable with the sequential path.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_consolidated(
    name: &str,
    items: &[Item],
    swaps: usize,
    baseline: &dyn CostModel,
    optimized: &dyn CostModel,
    device_qubits: usize,
    circuit_qubits: usize,
    fidelity: FidelityModel,
) -> BenchmarkResult {
    evaluate_with_calibration(
        name,
        items,
        swaps,
        baseline,
        optimized,
        device_qubits,
        circuit_qubits,
        fidelity,
        None,
    )
}

/// [`evaluate_consolidated`] under an optional device [`Calibration`].
///
/// With a calibration, scheduling charges per-edge 2Q durations and
/// per-qubit 1Q factors, and the `F_T` columns use per-wire lifetimes
/// times the per-edge gate-error survival product (the calibration's own
/// baseline model supersedes `fidelity` there). With `None` — or a
/// [uniform](Calibration::uniform) calibration whose baseline equals
/// `fidelity` — every output field is bit-identical to the homogeneous
/// path.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_with_calibration(
    name: &str,
    items: &[Item],
    swaps: usize,
    baseline: &dyn CostModel,
    optimized: &dyn CostModel,
    device_qubits: usize,
    circuit_qubits: usize,
    fidelity: FidelityModel,
    calibration: Option<&Calibration>,
) -> BenchmarkResult {
    let blocks = items
        .iter()
        .filter(|i| matches!(i, Item::Block { .. }))
        .count();
    let run = |model: &dyn CostModel| match calibration {
        Some(cal) => {
            schedule_with_calibration(items, model, device_qubits, ScheduleOptions::default(), cal)
        }
        None => schedule(items, model, device_qubits),
    };
    let base = run(baseline);
    let opt = run(optimized);

    let fq_base = fidelity.qubit_fidelity(base.duration);
    let fq_opt = fidelity.qubit_fidelity(opt.duration);
    let (ft_base, ft_opt) = match calibration {
        Some(cal) => {
            // Both models route/consolidate identically, so they share one
            // gate-error survival product.
            let survival = cal.gate_error_product(items);
            let ft = |d: f64| {
                cal.total_fidelity(d, circuit_qubits)
                    .expect("job admission validates the circuit fits its calibrated device")
            };
            (ft(base.duration) * survival, ft(opt.duration) * survival)
        }
        None => (
            fidelity.total_fidelity(base.duration, circuit_qubits),
            fidelity.total_fidelity(opt.duration, circuit_qubits),
        ),
    };

    BenchmarkResult {
        name: name.to_string(),
        swaps,
        blocks,
        baseline_duration: base.duration,
        optimized_duration: opt.duration,
        duration_reduction_pct: relative_reduction_pct(base.duration, opt.duration),
        fq_improvement_pct: relative_improvement_pct(fq_base, fq_opt),
        ft_improvement_pct: relative_improvement_pct(ft_base, ft_opt),
        baseline_total_fidelity: ft_base,
        optimized_total_fidelity: ft_opt,
    }
}

/// Runs the full Table VII study: the standard 16-qubit suite on the 4×4
/// lattice with best-of-`routing_seeds` routing.
///
/// # Errors
///
/// Propagates the first benchmark failure.
pub fn run_suite(
    workload_seed: u64,
    routing_seeds: u64,
    d_1q: f64,
) -> Result<Vec<BenchmarkResult>, CoreError> {
    let map = CouplingMap::grid(4, 4);
    let fidelity = FidelityModel::paper();
    standard_suite(workload_seed)
        .into_iter()
        .map(|Benchmark { name, circuit }| {
            compare_models(name, &circuit, &map, routing_seeds, d_1q, fidelity)
        })
        .collect()
}

/// Average duration reduction across suite results (the paper's headline
/// 17.8% number).
pub fn average_reduction_pct(results: &[BenchmarkResult]) -> f64 {
    if results.is_empty() {
        return f64::NAN;
    }
    results
        .iter()
        .map(|r| r.duration_reduction_pct)
        .sum::<f64>()
        / results.len() as f64
}

/// Fits λ (CNOT share of CNOT+SWAP blocks) over the routed suite — the
/// paper's Fig. 3b / Eq. 6 fit that yields λ ≈ 0.47.
///
/// # Errors
///
/// Propagates routing/consolidation failures.
pub fn fit_lambda_over_suite(workload_seed: u64, routing_seeds: u64) -> Result<f64, CoreError> {
    let map = CouplingMap::grid(4, 4);
    let mut cnot_weight = 0.0;
    let mut total_weight = 0.0;
    for Benchmark { circuit, .. } in standard_suite(workload_seed) {
        let routed = route_best_of(&circuit, &map, routing_seeds)
            .map_err(|e| CoreError::Transpile(e.to_string()))?;
        let items =
            consolidate(&routed.circuit).map_err(|e| CoreError::Transpile(e.to_string()))?;
        if let Some(lambda) = lambda_fit(&items) {
            // Weight by the number of CNOT+SWAP blocks in this workload.
            let hist = paradrive_transpiler::consolidate::class_histogram(&items);
            let w: usize = hist
                .iter()
                .filter(|(n, _)| n == "CNOT" || n == "SWAP")
                .map(|(_, c)| *c)
                .sum();
            cnot_weight += lambda * w as f64;
            total_weight += w as f64;
        }
    }
    if total_weight == 0.0 {
        return Err(CoreError::Transpile("no CNOT/SWAP blocks found".into()));
    }
    Ok(cnot_weight / total_weight)
}

/// One Table VI row: gate infidelity baseline vs optimized.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InfidelityRow {
    /// Target name.
    pub target: String,
    /// Baseline infidelity `1 − F`.
    pub baseline: f64,
    /// Optimized infidelity.
    pub optimized: f64,
    /// Relative improvement, percent.
    pub improved_pct: f64,
}

/// Computes Table VI: two-qubit gate infidelities under the decoherence
/// model (both qubit wires decay for the gate's duration).
pub fn gate_infidelities(d_1q: f64, fidelity: FidelityModel) -> Vec<InfidelityRow> {
    use crate::rules::total_duration;
    use paradrive_weyl::WeylPoint;
    let baseline = BaselineSqrtIswap::new(d_1q);
    let optimized = ParallelDriveRules::new(d_1q);
    // E[Haar] and W(λ) rows use the paper's expected-K values on the
    // baseline and the Table V references on the optimized side; CNOT and
    // SWAP are exact model outputs.
    let two_q_inf = |d: f64| 1.0 - fidelity.total_fidelity(d, 2);
    let mut rows = Vec::new();
    for (name, point) in [("CNOT", WeylPoint::CNOT), ("SWAP", WeylPoint::SWAP)] {
        let b = total_duration(baseline.cost(point), d_1q);
        let o = total_duration(optimized.cost(point), d_1q);
        rows.push(InfidelityRow {
            target: name.to_string(),
            baseline: two_q_inf(b),
            optimized: two_q_inf(o),
            improved_pct: relative_reduction_pct(two_q_inf(b), two_q_inf(o)),
        });
    }
    // E[Haar]: baseline E[D] = 2.21·0.5 + 3.21·D[1Q] (Table III: 1.91 at
    // 0.25). Optimized: the joint parallel-drive templates keep the same 2Q
    // time but absorb interior layers — the Table V fit 1.085 + 2.5·D[1Q]
    // reproduces 1.71 at D[1Q] = 0.25.
    let haar_b = two_q_inf(0.5 * 2.21 + 3.21 * d_1q);
    let haar_o = two_q_inf(1.085 + 2.5 * d_1q);
    rows.push(InfidelityRow {
        target: "E[Haar]".to_string(),
        baseline: haar_b,
        optimized: haar_o,
        improved_pct: relative_reduction_pct(haar_b, haar_o),
    });
    let lambda = paradrive_coverage::PAPER_LAMBDA;
    let w_b = lambda * two_q_inf(total_duration(baseline.cost(WeylPoint::CNOT), d_1q))
        + (1.0 - lambda) * two_q_inf(total_duration(baseline.cost(WeylPoint::SWAP), d_1q));
    let w_o = lambda * two_q_inf(total_duration(optimized.cost(WeylPoint::CNOT), d_1q))
        + (1.0 - lambda) * two_q_inf(total_duration(optimized.cost(WeylPoint::SWAP), d_1q));
    rows.push(InfidelityRow {
        target: "W(0.47)".to_string(),
        baseline: w_b,
        optimized: w_o,
        improved_pct: relative_reduction_pct(w_b, w_o),
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradrive_circuit::benchmarks;

    #[test]
    fn ghz_improves_under_parallel_drive() {
        let map = CouplingMap::grid(4, 4);
        let c = benchmarks::ghz(16);
        let r = compare_models("GHZ", &c, &map, 3, 0.25, FidelityModel::paper()).unwrap();
        assert!(r.optimized_duration < r.baseline_duration);
        assert!(r.duration_reduction_pct > 5.0, "{r:?}");
        assert!(r.ft_improvement_pct > 0.0);
    }

    #[test]
    fn qft_improves_substantially() {
        // QFT is full of small controlled phases — fractional parallel-drive
        // pulses shine here.
        let map = CouplingMap::grid(4, 4);
        let c = benchmarks::qft(16);
        let r = compare_models("QFT", &c, &map, 3, 0.25, FidelityModel::paper()).unwrap();
        assert!(
            r.duration_reduction_pct > 10.0,
            "reduction {}",
            r.duration_reduction_pct
        );
    }

    #[test]
    fn calibrated_uniform_evaluation_is_bit_identical() {
        let map = CouplingMap::grid(4, 4);
        let c = benchmarks::ghz(16);
        let routed = route_best_of(&c, &map, 3).unwrap();
        let items = consolidate(&routed.circuit).unwrap();
        let baseline = BaselineSqrtIswap::new(0.25);
        let optimized = ParallelDriveRules::new(0.25);
        let fidelity = FidelityModel::paper();
        let legacy = evaluate_consolidated(
            "GHZ",
            &items,
            routed.swaps_inserted,
            &baseline,
            &optimized,
            16,
            16,
            fidelity,
        );
        let cal = Calibration::uniform(&map, fidelity);
        let calibrated = evaluate_with_calibration(
            "GHZ",
            &items,
            routed.swaps_inserted,
            &baseline,
            &optimized,
            16,
            16,
            fidelity,
            Some(&cal),
        );
        assert_eq!(
            legacy.baseline_duration.to_bits(),
            calibrated.baseline_duration.to_bits()
        );
        assert_eq!(
            legacy.optimized_duration.to_bits(),
            calibrated.optimized_duration.to_bits()
        );
        assert_eq!(
            legacy.ft_improvement_pct.to_bits(),
            calibrated.ft_improvement_pct.to_bits()
        );
        assert_eq!(
            legacy.optimized_total_fidelity.to_bits(),
            calibrated.optimized_total_fidelity.to_bits()
        );
    }

    #[test]
    fn hotspot_calibration_penalizes_total_fidelity() {
        let map = CouplingMap::grid(4, 4);
        let c = benchmarks::qft(16);
        let routed = route_best_of(&c, &map, 3).unwrap();
        let items = consolidate(&routed.circuit).unwrap();
        let baseline = BaselineSqrtIswap::new(0.25);
        let optimized = ParallelDriveRules::new(0.25);
        let fidelity = FidelityModel::paper();
        let eval = |cal: Option<&Calibration>| {
            evaluate_with_calibration(
                "QFT",
                &items,
                routed.swaps_inserted,
                &baseline,
                &optimized,
                16,
                16,
                fidelity,
                cal,
            )
        };
        let clean = eval(None);
        // Every edge dead would be extreme; 6 seeded hotspots on a QFT that
        // blankets the lattice will almost surely be crossed.
        let cal = Calibration::hotspot(&map, fidelity, 6, 3).unwrap();
        let hot = eval(Some(&cal));
        assert!(
            hot.optimized_total_fidelity < clean.optimized_total_fidelity,
            "hotspot {} should cost fidelity vs clean {}",
            hot.optimized_total_fidelity,
            clean.optimized_total_fidelity
        );
        // Durations grow too: dead edges are slower, not just noisier.
        assert!(hot.optimized_duration > clean.optimized_duration);
    }

    #[test]
    fn table6_values_match_paper() {
        let rows = gate_infidelities(0.25, FidelityModel::paper());
        let get = |n: &str| rows.iter().find(|r| r.target == n).unwrap();
        let cnot = get("CNOT");
        assert!((cnot.baseline - 0.0035).abs() < 2e-4, "{}", cnot.baseline);
        assert!((cnot.optimized - 0.0030).abs() < 2e-4);
        assert!((cnot.improved_pct - 14.3).abs() < 2.0);
        let swap = get("SWAP");
        assert!((swap.baseline - 0.0050).abs() < 2e-4);
        assert!((swap.optimized - 0.0045).abs() < 2e-4);
        let haar = get("E[Haar]");
        assert!((haar.baseline - 0.0038).abs() < 2e-4);
        assert!((haar.optimized - 0.0034).abs() < 2e-4);
    }

    #[test]
    fn lambda_fit_is_near_half() {
        // The paper fits λ ≈ 0.47 from its workloads; our router/suite
        // should land in the same neighbourhood.
        let lambda = fit_lambda_over_suite(7, 2).unwrap();
        assert!(
            (0.25..0.75).contains(&lambda),
            "λ = {lambda} far from the paper's 0.47"
        );
    }
}

//! Codesign sweeps: which basis gate should a modulator calibrate?
//!
//! Two studies from the paper:
//!
//! - [`fig5_summary`] — for each SLF and 1Q duration, the winning basis per
//!   metric (the information content of Fig. 5's intersection plots).
//! - [`fractional_iswap_curve`] — the Fig. 6 study: expected Haar duration
//!   of the fractional basis `iSWAP^(1/x)` as the fraction shrinks, for
//!   several 1Q durations; the optimum moves from near-identity pulses at
//!   `D[1Q] = 0` to √iSWAP at appreciable 1Q cost.

use crate::scoring::{best_basis, duration_table, DurationRow, Metric};
use crate::CoreError;
use paradrive_coverage::scores::{build_stack, BuildOptions, CONTAINMENT_TOL};
use paradrive_optimizer::TemplateSpec;
use paradrive_speedlimit::{SpeedLimit, StandardSlf};
use paradrive_weyl::WeylPoint;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::f64::consts::FRAC_PI_2;

/// One cell of the Fig. 5 summary: the winning basis for a metric under an
/// SLF at a 1Q duration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Cell {
    /// Speed-limit name.
    pub slf: String,
    /// 1Q gate duration as a fraction of a full pulse.
    pub d_1q: f64,
    /// The metric.
    pub metric: Metric,
    /// The winning basis.
    pub best: String,
    /// The winning duration value.
    pub value: f64,
}

/// Computes the Fig. 5 summary over the standard SLFs and the paper's
/// `D[1Q] ∈ {0, 0.1, 0.25}` grid.
///
/// # Errors
///
/// Propagates duration-table failures.
pub fn fig5_summary(lambda: f64) -> Result<Vec<Fig5Cell>, CoreError> {
    let mut cells = Vec::new();
    for slf in StandardSlf::all() {
        for &d1q in &[0.0, 0.1, 0.25] {
            let rows = duration_table(slf.as_slf(), d1q, lambda)?;
            for metric in [Metric::Haar, Metric::Cnot, Metric::Swap, Metric::W] {
                let best = best_basis(&rows, metric).to_string();
                let value = metric_value(&rows, &best, metric);
                cells.push(Fig5Cell {
                    slf: slf.as_slf().name().to_string(),
                    d_1q: d1q,
                    metric,
                    best,
                    value,
                });
            }
        }
    }
    Ok(cells)
}

fn metric_value(rows: &[DurationRow], basis: &str, metric: Metric) -> f64 {
    let r = rows
        .iter()
        .find(|r| r.basis == basis)
        .expect("basis exists");
    match metric {
        Metric::Haar => r.e_d_haar,
        Metric::Cnot => r.d_cnot,
        Metric::Swap => r.d_swap,
        Metric::W => r.d_w,
    }
}

/// One point of the Fig. 6 curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Point {
    /// The basis fraction `1/x` (basis is `iSWAP^(1/x)`).
    pub fraction: f64,
    /// Measured `E[K[Haar]]` for this fractional basis.
    pub e_k_haar: f64,
    /// `E[D[Haar]]` per 1Q duration, in the same order as the input list.
    pub e_d_haar: Vec<f64>,
}

/// Builds the Fig. 6 study: for each fraction, Monte-Carlo the coverage
/// stack of the plain `iSWAP^f` basis, measure `E[K[Haar]]` against a
/// shared Haar sample, and convert to durations for each 1Q cost
/// (linear-SLF pulse duration of `iSWAP^f` is `f`).
///
/// # Errors
///
/// Propagates coverage-construction failures.
pub fn fractional_iswap_curve<R: Rng + ?Sized>(
    fractions: &[f64],
    d1q_values: &[f64],
    samples_per_k: usize,
    haar_n: usize,
    rng: &mut R,
) -> Result<Vec<Fig6Point>, CoreError> {
    let haar = paradrive_weyl::haar::sample_points(haar_n, rng);
    let mut out = Vec::with_capacity(fractions.len());
    for &f in fractions {
        assert!(f > 0.0 && f <= 1.0, "fraction must be in (0, 1]");
        let max_k = ((3.2 / f).ceil() as usize).clamp(3, 14);
        let stack = build_stack(
            &format!("iSWAP^{f:.3}"),
            WeylPoint::new(f * FRAC_PI_2, f * FRAC_PI_2, 0.0),
            |k| TemplateSpec::for_basis_angles(f * FRAC_PI_2, 0.0, k).without_parallel_drive(),
            BuildOptions {
                max_k,
                samples_per_k,
                exterior_restarts: 0,
                full_coverage_probe: 50,
            },
            rng,
        )
        .map_err(|e| CoreError::Coverage(e.to_string()))?;
        let e_k = haar
            .iter()
            .map(|p| {
                stack
                    .min_k(*p, CONTAINMENT_TOL)
                    .unwrap_or(stack.max_k() + 1) as f64
            })
            .sum::<f64>()
            / haar.len() as f64;
        let e_d = d1q_values
            .iter()
            .map(|&d1q| e_k * f + (e_k + 1.0) * d1q)
            .collect();
        out.push(Fig6Point {
            fraction: f,
            e_k_haar: e_k,
            e_d_haar: e_d,
        });
    }
    Ok(out)
}

/// Finds the fraction minimizing `E[D[Haar]]` for a given 1Q index into
/// the curve's `d1q_values`.
pub fn optimal_fraction(curve: &[Fig6Point], d1q_index: usize) -> f64 {
    curve
        .iter()
        .min_by(|a, b| a.e_d_haar[d1q_index].total_cmp(&b.e_d_haar[d1q_index]))
        .expect("curve non-empty")
        .fraction
}

/// Best drive ratio under an arbitrary (e.g. characterized) SLF for a
/// base-plane family: sweeps the family ray's pulse duration and reports
/// `(duration of one pulse, the family's Weyl point)` — the building block
/// of the Fig. 5 intersection plots.
pub fn family_pulse_duration(
    slf: &dyn SpeedLimit,
    family_point: WeylPoint,
) -> Result<f64, CoreError> {
    let scale = paradrive_speedlimit::DurationScale::new(slf);
    scale
        .pulse_duration(family_point)
        .map_err(|e| CoreError::SpeedLimit(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradrive_coverage::PAPER_LAMBDA;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fig5_summary_covers_grid() {
        let cells = fig5_summary(PAPER_LAMBDA).unwrap();
        // 3 SLFs × 3 d1q × 4 metrics.
        assert_eq!(cells.len(), 36);
        // With appreciable 1Q cost on the linear SLF, √iSWAP wins Haar.
        let cell = cells
            .iter()
            .find(|c| c.slf == "linear" && c.d_1q == 0.25 && c.metric == Metric::Haar)
            .unwrap();
        assert_eq!(cell.best, "sqrt_iSWAP");
    }

    #[test]
    fn fig6_fractional_curve_shape() {
        let mut rng = StdRng::seed_from_u64(77);
        let fractions = [1.0, 0.5, 0.25];
        let curve = fractional_iswap_curve(&fractions, &[0.0, 0.25], 250, 120, &mut rng).unwrap();
        assert_eq!(curve.len(), 3);
        // Full iSWAP: E[K] = 3 (base plane at K=2 has Haar measure zero);
        // MC hulls at modest sample counts slightly overestimate.
        assert!(
            (curve[0].e_k_haar - 3.0).abs() < 0.35,
            "{}",
            curve[0].e_k_haar
        );
        // Smaller fractions need more applications.
        assert!(curve[2].e_k_haar > curve[1].e_k_haar);
        // At D[1Q] = 0, fractional pulses are not worse than the full pulse
        // (they waste less computing power).
        assert!(curve[1].e_d_haar[0] <= curve[0].e_d_haar[0] + 0.1);
        // At D[1Q] = 0.25, the many-application small fraction pays a large
        // 1Q overhead: √iSWAP (0.5) beats iSWAP^(1/4).
        assert!(
            curve[1].e_d_haar[1] < curve[2].e_d_haar[1],
            "sqrt {} vs quarter {}",
            curve[1].e_d_haar[1],
            curve[2].e_d_haar[1]
        );
    }

    #[test]
    fn optimal_fraction_moves_with_1q_cost() {
        let curve = vec![
            Fig6Point {
                fraction: 1.0,
                e_k_haar: 3.0,
                e_d_haar: vec![3.0, 4.0],
            },
            Fig6Point {
                fraction: 0.5,
                e_k_haar: 2.2,
                e_d_haar: vec![1.1, 1.9],
            },
            Fig6Point {
                fraction: 0.125,
                e_k_haar: 8.0,
                e_d_haar: vec![1.0, 3.25],
            },
        ];
        assert_eq!(optimal_fraction(&curve, 0), 0.125); // free 1Q → tiny pulses
        assert_eq!(optimal_fraction(&curve, 1), 0.5); // costly 1Q → √iSWAP
    }
}

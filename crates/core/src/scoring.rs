//! Gate-score tables: speed-limit-scaled decomposition durations
//! (Tables II, III and V) and the weighted `W(λ)` metric of Eqs. 5–6.

use crate::CoreError;
use paradrive_coverage::PAPER_LAMBDA;
use paradrive_speedlimit::{DurationScale, SpeedLimit};
use paradrive_weyl::WeylPoint;
use serde::{Deserialize, Serialize};

/// A candidate basis gate with its decomposition-count facts (Table I).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BasisSpec {
    /// Display name.
    pub name: String,
    /// Chamber point of the basis gate.
    pub point: WeylPoint,
    /// `K[CNOT]`.
    pub k_cnot: usize,
    /// `K[SWAP]`.
    pub k_swap: usize,
    /// `E[K[Haar]]`.
    pub e_k_haar: f64,
}

/// The six comparative bases with the paper's Table I counts.
pub fn paper_bases() -> Vec<BasisSpec> {
    let spec = |name: &str, point, k_cnot, k_swap, e_k_haar| BasisSpec {
        name: name.to_string(),
        point,
        k_cnot,
        k_swap,
        e_k_haar,
    };
    vec![
        spec("iSWAP", WeylPoint::ISWAP, 2, 3, 3.00),
        spec("sqrt_iSWAP", WeylPoint::SQRT_ISWAP, 2, 3, 2.21),
        spec("CNOT", WeylPoint::CNOT, 1, 3, 3.00),
        spec("sqrt_CNOT", WeylPoint::SQRT_CNOT, 2, 6, 3.54),
        spec("B", WeylPoint::B, 2, 2, 2.00),
        spec("sqrt_B", WeylPoint::SQRT_B, 2, 4, 2.50),
    ]
}

/// One row of a duration table (Tables II / III).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DurationRow {
    /// Basis name.
    pub basis: String,
    /// Normalized single-pulse duration under the SLF (`D_Basis`).
    pub d_basis: f64,
    /// `D[CNOT]` (Eq. 7).
    pub d_cnot: f64,
    /// `D[SWAP]`.
    pub d_swap: f64,
    /// `E[D[Haar]]`.
    pub e_d_haar: f64,
    /// `D[W(λ)]`.
    pub d_w: f64,
}

/// Eq. 7 with a real-valued (expected) `K`.
fn eq7(k: f64, d_basis: f64, d_1q: f64) -> f64 {
    k * d_basis + (k + 1.0) * d_1q
}

/// Computes the speed-limit-scaled duration table for the six paper bases
/// under a given SLF and 1Q layer duration (`d_1q = 0` reproduces
/// Table II; `0.25` with the linear SLF reproduces Table III).
///
/// # Errors
///
/// Returns [`CoreError::SpeedLimit`] if a basis pulse duration cannot be
/// computed under the SLF.
pub fn duration_table(
    slf: &dyn SpeedLimit,
    d_1q: f64,
    lambda: f64,
) -> Result<Vec<DurationRow>, CoreError> {
    let scale = DurationScale::new(slf);
    paper_bases()
        .into_iter()
        .map(|b| {
            let d_basis = scale
                .pulse_duration(b.point)
                .map_err(|e| CoreError::SpeedLimit(e.to_string()))?;
            let d_cnot = eq7(b.k_cnot as f64, d_basis, d_1q);
            let d_swap = eq7(b.k_swap as f64, d_basis, d_1q);
            let e_d_haar = eq7(b.e_k_haar, d_basis, d_1q);
            Ok(DurationRow {
                basis: b.name,
                d_basis,
                d_cnot,
                d_swap,
                e_d_haar,
                d_w: lambda * d_cnot + (1.0 - lambda) * d_swap,
            })
        })
        .collect()
}

/// The extended (parallel-drive) `K` counts of Table IV.
pub fn paper_table4_reference() -> Vec<(&'static str, usize, usize, f64, f64)> {
    // (basis, K'[CNOT], K'[SWAP], E[K'[Haar]], K'[W(.47)])
    vec![
        ("iSWAP", 1, 2, 1.35, 1.53),
        ("sqrt_iSWAP", 2, 3, 2.17, 2.53),
        ("CNOT", 1, 3, 2.33, 2.06),
        ("sqrt_CNOT", 2, 6, 3.52, 3.65),
        ("B", 1, 2, 1.75, 1.53),
        ("sqrt_B", 2, 4, 2.50, 3.06),
    ]
}

/// The parallel-drive duration costs of Table V (`D[1Q] = 0.25`, linear
/// SLF, joint fractional templates).
pub fn paper_table5_reference() -> Vec<(&'static str, f64, f64, f64, f64)> {
    // (basis, D[CNOT], D[SWAP], E[D[Haar]], D[W(.47)])
    vec![
        ("iSWAP", 1.5, 2.75, 1.94, 2.16),
        ("sqrt_iSWAP", 1.5, 2.25, 1.71, 1.90),
        ("CNOT", 1.5, 4.0, 3.16, 2.83),
        ("sqrt_CNOT", 1.5, 4.0, 2.88, 2.83),
        ("B", 1.5, 2.75, 2.44, 2.16),
        ("sqrt_B", 1.5, 2.75, 2.06, 2.16),
    ]
}

/// The basis minimizing a column of the duration table; used to summarize
/// Fig. 5 ("which basis wins for each metric under each SLF?").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Expected Haar-random target duration.
    Haar,
    /// CNOT target duration.
    Cnot,
    /// SWAP target duration.
    Swap,
    /// Workload-weighted duration `D[W(λ)]`.
    W,
}

/// Returns the best basis name for the metric.
pub fn best_basis(rows: &[DurationRow], metric: Metric) -> &str {
    let value = |r: &DurationRow| match metric {
        Metric::Haar => r.e_d_haar,
        Metric::Cnot => r.d_cnot,
        Metric::Swap => r.d_swap,
        Metric::W => r.d_w,
    };
    &rows
        .iter()
        .min_by(|a, b| value(a).total_cmp(&value(b)))
        .expect("table is non-empty")
        .basis
}

/// The default λ of the paper's workload fit.
pub fn paper_lambda() -> f64 {
    PAPER_LAMBDA
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradrive_speedlimit::{Characterized, Linear, Squared};

    fn row<'a>(rows: &'a [DurationRow], name: &str) -> &'a DurationRow {
        rows.iter().find(|r| r.basis == name).unwrap()
    }

    #[test]
    fn table2_linear_rows() {
        let slf = Linear::normalized();
        let rows = duration_table(&slf, 0.0, PAPER_LAMBDA).unwrap();
        let s = row(&rows, "sqrt_iSWAP");
        assert!((s.d_basis - 0.5).abs() < 1e-9);
        assert!((s.d_cnot - 1.0).abs() < 1e-9);
        assert!((s.d_swap - 1.5).abs() < 1e-9);
        assert!((s.e_d_haar - 1.105).abs() < 0.01); // paper: 1.05–1.11
        assert!((s.d_w - 1.27).abs() < 0.01);
        let b = row(&rows, "B");
        assert!((b.e_d_haar - 2.0).abs() < 1e-9);
        assert!((b.d_w - 2.0).abs() < 1e-9);
    }

    #[test]
    fn table2_squared_rows() {
        let slf = Squared::normalized();
        let rows = duration_table(&slf, 0.0, PAPER_LAMBDA).unwrap();
        let c = row(&rows, "CNOT");
        assert!((c.d_basis - 0.71).abs() < 0.005);
        assert!((c.d_cnot - 0.71).abs() < 0.005);
        assert!((c.d_swap - 2.12).abs() < 0.01);
        let sb = row(&rows, "sqrt_B");
        assert!((sb.e_d_haar - 0.99).abs() < 0.01);
        assert!((sb.d_w - 1.21).abs() < 0.01);
    }

    #[test]
    fn table2_snail_rows() {
        let slf = Characterized::snail();
        let rows = duration_table(&slf, 0.0, PAPER_LAMBDA).unwrap();
        let c = row(&rows, "CNOT");
        assert!((c.d_basis - 1.8).abs() < 0.01);
        assert!((c.d_swap - 5.35).abs() < 0.06, "D[SWAP] = {}", c.d_swap);
        let b = row(&rows, "B");
        assert!((b.d_basis - 1.4).abs() < 0.01);
        assert!((b.e_d_haar - 2.81).abs() < 0.03);
    }

    #[test]
    fn table3_linear_rows() {
        let slf = Linear::normalized();
        let rows = duration_table(&slf, 0.25, PAPER_LAMBDA).unwrap();
        let i = row(&rows, "iSWAP");
        assert!((i.d_cnot - 2.75).abs() < 1e-9);
        assert!((i.d_swap - 4.0).abs() < 1e-9);
        assert!((i.e_d_haar - 4.0).abs() < 1e-9);
        assert!((i.d_w - 3.41).abs() < 0.01);
        let s = row(&rows, "sqrt_iSWAP");
        assert!((s.e_d_haar - 1.91).abs() < 0.01);
        assert!((s.d_w - 2.15).abs() < 0.01);
        let sc = row(&rows, "sqrt_CNOT");
        assert!((sc.d_swap - 4.75).abs() < 1e-9);
    }

    #[test]
    fn sqrt_iswap_wins_haar_with_appreciable_1q() {
        // The paper's core claim: with D[1Q] = 0.25 under the linear SLF,
        // √iSWAP is the duration-optimal basis for Haar and W.
        let slf = Linear::normalized();
        let rows = duration_table(&slf, 0.25, PAPER_LAMBDA).unwrap();
        assert_eq!(best_basis(&rows, Metric::Haar), "sqrt_iSWAP");
        assert_eq!(best_basis(&rows, Metric::W), "sqrt_iSWAP");
    }

    #[test]
    fn b_family_wins_haar_on_squared_slf_without_1q() {
        // Table II squared: √B has the best Haar score (0.99).
        let slf = Squared::normalized();
        let rows = duration_table(&slf, 0.0, PAPER_LAMBDA).unwrap();
        assert_eq!(best_basis(&rows, Metric::Haar), "sqrt_B");
    }

    #[test]
    fn snail_pins_everything_to_iswap_family() {
        // On the characterized SLF, conversion is cheap and the iSWAP
        // family dominates every metric.
        let slf = Characterized::snail();
        let rows = duration_table(&slf, 0.0, PAPER_LAMBDA).unwrap();
        for m in [Metric::Haar, Metric::Cnot, Metric::Swap, Metric::W] {
            let best = best_basis(&rows, m);
            assert!(
                best.contains("iSWAP"),
                "{m:?} won by {best}, expected an iSWAP-family basis"
            );
        }
    }

    #[test]
    fn reference_tables_internally_consistent() {
        for (name, kc, ks, _e, kw) in paper_table4_reference() {
            // The paper's Table IV √CNOT row reports K[W] = 3.65, which only
            // matches the λ-mix with K[CNOT] = 1 — an inconsistency in the
            // published table (its own K[CNOT] column says 2). We keep the
            // published value and skip the consistency check for that row.
            if name == "sqrt_CNOT" {
                continue;
            }
            let mix = PAPER_LAMBDA * kc as f64 + (1.0 - PAPER_LAMBDA) * ks as f64;
            assert!((mix - kw).abs() < 0.02, "{name}: {mix} vs {kw}");
        }
    }
}

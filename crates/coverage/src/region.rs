//! Coverage sets: convex regions of the Weyl chamber reachable by a
//! decomposition template.
//!
//! Following the paper's Algorithm 2, the sampled coordinates are split at
//! the `c1 = π/2` plane into left and right clouds before hull construction
//! — local-equivalence geometry guarantees convexity only within each half.

use crate::hull::{ConvexRegion, P3};
use paradrive_weyl::WeylPoint;
use std::f64::consts::{FRAC_PI_2, PI};

/// Volume of the canonical Weyl chamber tetrahedron, `π³/24`.
pub const CHAMBER_VOLUME: f64 = PI * PI * PI / 24.0;

/// The region of the chamber spanned by one template size `K`.
#[derive(Debug, Clone)]
pub struct CoverageSet {
    left: ConvexRegion,
    right: ConvexRegion,
    sample_count: usize,
}

impl CoverageSet {
    /// Builds the coverage set of a point cloud.
    pub fn from_points(points: &[WeylPoint]) -> Self {
        const MARGIN: f64 = 1e-9;
        let mut left: Vec<P3> = Vec::new();
        let mut right: Vec<P3> = Vec::new();
        for p in points {
            let arr = p.as_array();
            if p.c1 <= FRAC_PI_2 + MARGIN {
                left.push(arr);
            }
            if p.c1 >= FRAC_PI_2 - MARGIN {
                right.push(arr);
            }
        }
        CoverageSet {
            left: ConvexRegion::from_points(&left, 1e-7),
            right: ConvexRegion::from_points(&right, 1e-7),
            sample_count: points.len(),
        }
    }

    /// An empty coverage set.
    pub fn empty() -> Self {
        CoverageSet {
            left: ConvexRegion::Empty,
            right: ConvexRegion::Empty,
            sample_count: 0,
        }
    }

    /// True when the point lies in either half's region (within `tol`).
    pub fn contains(&self, p: WeylPoint, tol: f64) -> bool {
        let arr = p.as_array();
        self.left.contains(arr, tol) || self.right.contains(arr, tol)
    }

    /// Total 3-d volume of the region (left + right halves).
    pub fn volume(&self) -> f64 {
        self.left.volume() + self.right.volume()
    }

    /// The volume as a fraction of the full chamber.
    pub fn chamber_fraction(&self) -> f64 {
        (self.volume() / CHAMBER_VOLUME).min(1.0)
    }

    /// Number of sample points the set was built from.
    pub fn sample_count(&self) -> usize {
        self.sample_count
    }

    /// Largest affine dimension among the two halves (`None` when empty).
    pub fn affine_dim(&self) -> Option<usize> {
        match (self.left.affine_dim(), self.right.affine_dim()) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }
}

/// A per-`K` stack of coverage sets for one basis gate.
#[derive(Debug, Clone)]
pub struct CoverageStack {
    name: String,
    basis_point: WeylPoint,
    sets: Vec<CoverageSet>,
}

impl CoverageStack {
    /// Creates a stack from per-`K` sets (`sets[0]` is `K = 1`).
    pub fn new(name: impl Into<String>, basis_point: WeylPoint, sets: Vec<CoverageSet>) -> Self {
        CoverageStack {
            name: name.into(),
            basis_point,
            sets,
        }
    }

    /// The basis-gate name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The basis gate's chamber point.
    pub fn basis_point(&self) -> WeylPoint {
        self.basis_point
    }

    /// The largest template size available.
    pub fn max_k(&self) -> usize {
        self.sets.len()
    }

    /// The coverage set for template size `k` (1-based).
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero or exceeds [`CoverageStack::max_k`].
    pub fn set(&self, k: usize) -> &CoverageSet {
        assert!(k >= 1 && k <= self.sets.len(), "k out of range");
        &self.sets[k - 1]
    }

    /// The smallest `K` whose region contains the target, if any.
    pub fn min_k(&self, target: WeylPoint, tol: f64) -> Option<usize> {
        (1..=self.sets.len()).find(|&k| self.set(k).contains(target, tol))
    }

    /// Merges another stack (e.g. verified exterior points) by unioning the
    /// per-`K` containment: `min_k` over the joint stack.
    pub fn min_k_joint(&self, other: &CoverageStack, target: WeylPoint, tol: f64) -> Option<usize> {
        let a = self.min_k(target, tol);
        let b = other.min_k(target, tol);
        match (a, b) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (Some(x), None) => Some(x),
            (None, Some(y)) => Some(y),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_plane_cloud() -> Vec<WeylPoint> {
        // A triangle covering the folded base plane: I, CNOT, iSWAP.
        let mut pts = vec![WeylPoint::IDENTITY, WeylPoint::CNOT, WeylPoint::ISWAP];
        // Fill interior.
        for i in 0..10 {
            for j in 0..=i {
                let c1 = FRAC_PI_2 * i as f64 / 10.0;
                let c2 = c1 * j as f64 / (i.max(1)) as f64;
                pts.push(WeylPoint::new(c1, c2, 0.0));
            }
        }
        pts
    }

    #[test]
    fn base_plane_coverage_is_2d() {
        let set = CoverageSet::from_points(&base_plane_cloud());
        assert_eq!(set.affine_dim(), Some(2));
        assert_eq!(set.volume(), 0.0);
        assert!(set.contains(WeylPoint::SQRT_ISWAP, 1e-6));
        assert!(set.contains(WeylPoint::CNOT, 1e-6));
        assert!(!set.contains(WeylPoint::SWAP, 1e-3));
        assert!(!set.contains(WeylPoint::SQRT_SWAP, 1e-3));
    }

    #[test]
    fn full_chamber_coverage() {
        // Vertices of the chamber (left & right) plus interior points.
        let pts = vec![
            WeylPoint::IDENTITY,
            WeylPoint::new(PI, 0.0, 0.0),
            WeylPoint::CNOT,
            WeylPoint::ISWAP,
            WeylPoint::SWAP,
            WeylPoint::new(FRAC_PI_2, FRAC_PI_2 / 2.0, FRAC_PI_2 / 4.0),
            WeylPoint::new(FRAC_PI_2 * 0.9, FRAC_PI_2 * 0.5, FRAC_PI_2 * 0.2),
            WeylPoint::new(FRAC_PI_2 * 1.1, FRAC_PI_2 * 0.5, FRAC_PI_2 * 0.2),
            WeylPoint::SQRT_SWAP,
            WeylPoint::new(PI - 0.78, 0.78, 0.7),
        ];
        let set = CoverageSet::from_points(&pts);
        assert_eq!(set.affine_dim(), Some(3));
        assert!(set.volume() > 0.0);
        // The chamber fraction is capped at 1.
        assert!(set.chamber_fraction() <= 1.0);
        assert!(set.contains(WeylPoint::B, 1e-6));
    }

    #[test]
    fn empty_set() {
        let set = CoverageSet::empty();
        assert_eq!(set.affine_dim(), None);
        assert!(!set.contains(WeylPoint::IDENTITY, 1.0));
    }

    #[test]
    fn stack_min_k() {
        let k1 = CoverageSet::from_points(&[WeylPoint::SQRT_ISWAP]);
        let k2 = CoverageSet::from_points(&base_plane_cloud());
        let stack = CoverageStack::new("test", WeylPoint::SQRT_ISWAP, vec![k1, k2]);
        assert_eq!(stack.min_k(WeylPoint::SQRT_ISWAP, 1e-6), Some(1));
        assert_eq!(stack.min_k(WeylPoint::CNOT, 1e-6), Some(2));
        assert_eq!(stack.min_k(WeylPoint::SWAP, 1e-6), None);
        assert_eq!(stack.max_k(), 2);
    }

    #[test]
    fn joint_min_k_takes_minimum() {
        let a = CoverageStack::new(
            "a",
            WeylPoint::ISWAP,
            vec![CoverageSet::from_points(&[WeylPoint::ISWAP])],
        );
        let b = CoverageStack::new(
            "b",
            WeylPoint::ISWAP,
            vec![CoverageSet::from_points(&[WeylPoint::CNOT])],
        );
        assert_eq!(a.min_k_joint(&b, WeylPoint::CNOT, 1e-6), Some(1));
        assert_eq!(a.min_k_joint(&b, WeylPoint::ISWAP, 1e-6), Some(1));
        assert_eq!(a.min_k_joint(&b, WeylPoint::SWAP, 1e-6), None);
    }
}

//! Convex regions of arbitrary affine dimension in 3-space.
//!
//! Coverage sets of decomposition templates are convex in Weyl-chamber
//! coordinates (monodromy-polytope theory), but their affine dimension
//! varies: a `K = 1` template without parallel drive covers a single point,
//! `K = 2` iSWAP covers the 2-d base plane, and parallel-driven templates
//! cover full 3-d polytopes. [`ConvexRegion`] detects the dimension and
//! dispatches to the right hull construction, mirroring the paper's use of
//! `lrs` convex hulls in Algorithm 2.

/// A 3-vector alias used throughout the hull code.
pub type P3 = [f64; 3];

fn sub(a: P3, b: P3) -> P3 {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn dot(a: P3, b: P3) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

fn cross(a: P3, b: P3) -> P3 {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn norm(a: P3) -> f64 {
    dot(a, a).sqrt()
}

fn scale(a: P3, s: f64) -> P3 {
    [a[0] * s, a[1] * s, a[2] * s]
}

/// A convex region spanned by a point cloud, of whatever affine dimension
/// the cloud actually has.
#[derive(Debug, Clone)]
pub enum ConvexRegion {
    /// No points at all.
    Empty,
    /// All points coincide.
    Point(P3),
    /// All points lie on a line segment.
    Segment {
        /// Base point of the segment.
        origin: P3,
        /// Unit direction.
        dir: P3,
        /// Parameter range along `dir`.
        t_range: (f64, f64),
    },
    /// All points lie in a plane; the convex polygon is stored in an
    /// orthonormal 2-d frame of that plane.
    Polygon {
        /// A point in the plane.
        origin: P3,
        /// First in-plane unit axis.
        u: P3,
        /// Second in-plane unit axis.
        v: P3,
        /// Counter-clockwise polygon vertices in `(u, v)` coordinates.
        verts: Vec<[f64; 2]>,
    },
    /// A full-dimensional convex polytope.
    Polytope(Hull3),
}

impl ConvexRegion {
    /// Builds the convex region of a point cloud. `tol` controls the
    /// degeneracy detection (distances below `tol` count as zero).
    pub fn from_points(points: &[P3], tol: f64) -> Self {
        if points.is_empty() {
            return ConvexRegion::Empty;
        }
        let p0 = points[0];

        // Affine basis by greedy Gram–Schmidt.
        let mut basis: Vec<P3> = Vec::new();
        for &p in points {
            let mut d = sub(p, p0);
            for b in &basis {
                let proj = dot(d, *b);
                d = sub(d, scale(*b, proj));
            }
            let len = norm(d);
            if len > tol {
                basis.push(scale(d, 1.0 / len));
                if basis.len() == 3 {
                    break;
                }
            }
        }

        match basis.len() {
            0 => ConvexRegion::Point(p0),
            1 => {
                let dir = basis[0];
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for &p in points {
                    let t = dot(sub(p, p0), dir);
                    lo = lo.min(t);
                    hi = hi.max(t);
                }
                ConvexRegion::Segment {
                    origin: p0,
                    dir,
                    t_range: (lo, hi),
                }
            }
            2 => {
                let (u, v) = (basis[0], basis[1]);
                let pts2: Vec<[f64; 2]> = points
                    .iter()
                    .map(|&p| {
                        let d = sub(p, p0);
                        [dot(d, u), dot(d, v)]
                    })
                    .collect();
                let verts = hull_2d(&pts2);
                ConvexRegion::Polygon {
                    origin: p0,
                    u,
                    v,
                    verts,
                }
            }
            _ => match Hull3::build(points) {
                Some(h) => ConvexRegion::Polytope(h),
                // Numerically three-dimensional but too thin to seed a
                // tetrahedron — fall back to a planar treatment.
                None => {
                    let (u, v) = (basis[0], basis[1]);
                    let pts2: Vec<[f64; 2]> = points
                        .iter()
                        .map(|&p| {
                            let d = sub(p, p0);
                            [dot(d, u), dot(d, v)]
                        })
                        .collect();
                    ConvexRegion::Polygon {
                        origin: p0,
                        u,
                        v,
                        verts: hull_2d(&pts2),
                    }
                }
            },
        }
    }

    /// The affine dimension of the region (0–3), or `None` when empty.
    pub fn affine_dim(&self) -> Option<usize> {
        match self {
            ConvexRegion::Empty => None,
            ConvexRegion::Point(_) => Some(0),
            ConvexRegion::Segment { .. } => Some(1),
            ConvexRegion::Polygon { .. } => Some(2),
            ConvexRegion::Polytope(_) => Some(3),
        }
    }

    /// True when `p` lies inside (or within `tol` of) the region.
    pub fn contains(&self, p: P3, tol: f64) -> bool {
        match self {
            ConvexRegion::Empty => false,
            ConvexRegion::Point(q) => norm(sub(p, *q)) <= tol,
            ConvexRegion::Segment {
                origin,
                dir,
                t_range,
            } => {
                let d = sub(p, *origin);
                let t = dot(d, *dir);
                let perp = sub(d, scale(*dir, t));
                norm(perp) <= tol && t >= t_range.0 - tol && t <= t_range.1 + tol
            }
            ConvexRegion::Polygon {
                origin,
                u,
                v,
                verts,
            } => {
                let d = sub(p, *origin);
                let x = dot(d, *u);
                let y = dot(d, *v);
                let off_plane = norm(sub(sub(d, scale(*u, x)), scale(*v, y)));
                off_plane <= tol && point_in_polygon(&[x, y], verts, tol)
            }
            ConvexRegion::Polytope(h) => h.contains(p, tol),
        }
    }

    /// Full 3-d volume (zero for lower-dimensional regions).
    pub fn volume(&self) -> f64 {
        match self {
            ConvexRegion::Polytope(h) => h.volume(),
            _ => 0.0,
        }
    }

    /// Area of the planar hull (zero unless the region is a polygon).
    pub fn area(&self) -> f64 {
        match self {
            ConvexRegion::Polygon { verts, .. } => polygon_area(verts),
            ConvexRegion::Polytope(_) => 0.0,
            _ => 0.0,
        }
    }
}

/// Andrew's monotone-chain 2-d convex hull; returns CCW vertices.
fn hull_2d(points: &[[f64; 2]]) -> Vec<[f64; 2]> {
    let mut pts = points.to_vec();
    pts.sort_by(|a, b| a[0].total_cmp(&b[0]).then(a[1].total_cmp(&b[1])));
    pts.dedup_by(|a, b| (a[0] - b[0]).abs() < 1e-15 && (a[1] - b[1]).abs() < 1e-15);
    let n = pts.len();
    if n <= 2 {
        return pts;
    }
    let cross2 = |o: [f64; 2], a: [f64; 2], b: [f64; 2]| -> f64 {
        (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])
    };
    let mut lower: Vec<[f64; 2]> = Vec::new();
    for &p in &pts {
        while lower.len() >= 2 && cross2(lower[lower.len() - 2], lower[lower.len() - 1], p) <= 0.0 {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<[f64; 2]> = Vec::new();
    for &p in pts.iter().rev() {
        while upper.len() >= 2 && cross2(upper[upper.len() - 2], upper[upper.len() - 1], p) <= 0.0 {
            upper.pop();
        }
        upper.push(p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    lower
}

/// Point-in-convex-polygon with tolerance (vertices CCW).
fn point_in_polygon(p: &[f64; 2], verts: &[[f64; 2]], tol: f64) -> bool {
    let n = verts.len();
    if n == 0 {
        return false;
    }
    if n == 1 {
        return ((p[0] - verts[0][0]).powi(2) + (p[1] - verts[0][1]).powi(2)).sqrt() <= tol;
    }
    if n == 2 {
        // Segment containment.
        let (a, b) = (verts[0], verts[1]);
        let ab = [b[0] - a[0], b[1] - a[1]];
        let len = (ab[0] * ab[0] + ab[1] * ab[1]).sqrt();
        if len < 1e-15 {
            return ((p[0] - a[0]).powi(2) + (p[1] - a[1]).powi(2)).sqrt() <= tol;
        }
        let t = ((p[0] - a[0]) * ab[0] + (p[1] - a[1]) * ab[1]) / (len * len);
        let proj = [a[0] + t * ab[0], a[1] + t * ab[1]];
        let d = ((p[0] - proj[0]).powi(2) + (p[1] - proj[1]).powi(2)).sqrt();
        d <= tol && (-tol / len..=1.0 + tol / len).contains(&t)
    } else {
        for i in 0..n {
            let a = verts[i];
            let b = verts[(i + 1) % n];
            let edge = [b[0] - a[0], b[1] - a[1]];
            let elen = (edge[0] * edge[0] + edge[1] * edge[1]).sqrt().max(1e-15);
            let crossv = edge[0] * (p[1] - a[1]) - edge[1] * (p[0] - a[0]);
            if crossv < -tol * elen {
                return false;
            }
        }
        true
    }
}

/// Signed area of a CCW polygon.
fn polygon_area(verts: &[[f64; 2]]) -> f64 {
    let n = verts.len();
    if n < 3 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..n {
        let a = verts[i];
        let b = verts[(i + 1) % n];
        acc += a[0] * b[1] - b[0] * a[1];
    }
    acc.abs() / 2.0
}

/// A full-dimensional 3-d convex hull built incrementally.
#[derive(Debug, Clone)]
pub struct Hull3 {
    faces: Vec<Face>,
    interior: P3,
}

#[derive(Debug, Clone, Copy)]
struct Face {
    verts: [P3; 3],
    normal: P3,
    offset: f64,
}

impl Face {
    fn new(a: P3, b: P3, c: P3, interior: P3) -> Option<Face> {
        let n = cross(sub(b, a), sub(c, a));
        let len = norm(n);
        if len < 1e-14 {
            return None;
        }
        let mut normal = scale(n, 1.0 / len);
        let mut offset = dot(normal, a);
        // Point the normal away from the interior reference.
        if dot(normal, interior) > offset {
            normal = scale(normal, -1.0);
            offset = -offset;
        }
        Some(Face {
            verts: [a, b, c],
            normal,
            offset,
        })
    }

    fn signed_dist(&self, p: P3) -> f64 {
        dot(self.normal, p) - self.offset
    }
}

impl Hull3 {
    /// Builds the hull; returns `None` when the cloud is (numerically)
    /// lower-dimensional.
    pub fn build(points: &[P3]) -> Option<Hull3> {
        if points.len() < 4 {
            return None;
        }
        // Seed tetrahedron: extreme pair, then farthest from line, then
        // farthest from plane.
        let (mut i0, mut i1, mut best) = (0, 0, -1.0);
        for d in 0..3 {
            let lo = (0..points.len())
                .min_by(|&a, &b| points[a][d].total_cmp(&points[b][d]))
                .unwrap();
            let hi = (0..points.len())
                .max_by(|&a, &b| points[a][d].total_cmp(&points[b][d]))
                .unwrap();
            let dist = norm(sub(points[hi], points[lo]));
            if dist > best {
                best = dist;
                i0 = lo;
                i1 = hi;
            }
        }
        if best < 1e-12 {
            return None;
        }
        let dir = scale(sub(points[i1], points[i0]), 1.0 / best);
        let i2 = (0..points.len()).max_by(|&a, &b| {
            let da = sub(points[a], points[i0]);
            let db = sub(points[b], points[i0]);
            let pa = norm(sub(da, scale(dir, dot(da, dir))));
            let pb = norm(sub(db, scale(dir, dot(db, dir))));
            pa.total_cmp(&pb)
        })?;
        let d2 = sub(points[i2], points[i0]);
        if norm(sub(d2, scale(dir, dot(d2, dir)))) < 1e-10 {
            return None;
        }
        let plane_n = cross(sub(points[i1], points[i0]), d2);
        let plane_n = scale(plane_n, 1.0 / norm(plane_n));
        let i3 = (0..points.len()).max_by(|&a, &b| {
            let da = dot(sub(points[a], points[i0]), plane_n).abs();
            let db = dot(sub(points[b], points[i0]), plane_n).abs();
            da.total_cmp(&db)
        })?;
        if dot(sub(points[i3], points[i0]), plane_n).abs() < 1e-10 {
            return None;
        }

        let seed = [points[i0], points[i1], points[i2], points[i3]];
        let interior = [
            (seed[0][0] + seed[1][0] + seed[2][0] + seed[3][0]) / 4.0,
            (seed[0][1] + seed[1][1] + seed[2][1] + seed[3][1]) / 4.0,
            (seed[0][2] + seed[1][2] + seed[2][2] + seed[3][2]) / 4.0,
        ];
        let mut faces = Vec::new();
        for (a, b, c) in [(0, 1, 2), (0, 1, 3), (0, 2, 3), (1, 2, 3)] {
            faces.push(Face::new(seed[a], seed[b], seed[c], interior)?);
        }
        let mut hull = Hull3 { faces, interior };

        for (idx, &p) in points.iter().enumerate() {
            if idx == i0 || idx == i1 || idx == i2 || idx == i3 {
                continue;
            }
            hull.add_point(p);
        }
        Some(hull)
    }

    /// Incrementally adds a point, expanding the hull if it is outside.
    pub fn add_point(&mut self, p: P3) {
        const EPS: f64 = 1e-10;
        let visible: Vec<usize> = (0..self.faces.len())
            .filter(|&i| self.faces[i].signed_dist(p) > EPS)
            .collect();
        if visible.is_empty() {
            return;
        }
        // Horizon edges: edges of visible faces shared with no other
        // visible face. Key edges by quantized endpoints.
        let key = |a: P3, b: P3| -> String {
            let q = |v: P3| format!("{:.10}:{:.10}:{:.10}", v[0], v[1], v[2]);
            let (ka, kb) = (q(a), q(b));
            if ka < kb {
                format!("{ka}|{kb}")
            } else {
                format!("{kb}|{ka}")
            }
        };
        let mut edge_count: std::collections::HashMap<String, (P3, P3, usize)> =
            std::collections::HashMap::new();
        for &fi in &visible {
            let f = &self.faces[fi];
            for (a, b) in [(0, 1), (1, 2), (2, 0)] {
                let e = edge_count
                    .entry(key(f.verts[a], f.verts[b]))
                    .or_insert((f.verts[a], f.verts[b], 0));
                e.2 += 1;
            }
        }
        // Remove visible faces (descending index).
        let mut vis_sorted = visible.clone();
        vis_sorted.sort_unstable_by(|a, b| b.cmp(a));
        for fi in vis_sorted {
            self.faces.swap_remove(fi);
        }
        // New faces from horizon edges to p.
        for (_, (a, b, count)) in edge_count {
            if count == 1 {
                if let Some(f) = Face::new(a, b, p, self.interior) {
                    self.faces.push(f);
                }
            }
        }
    }

    /// True when `p` is inside the hull (within `tol` of every face plane).
    pub fn contains(&self, p: P3, tol: f64) -> bool {
        self.faces.iter().all(|f| f.signed_dist(p) <= tol)
    }

    /// Hull volume by summing signed tetrahedra against the interior point.
    pub fn volume(&self) -> f64 {
        let mut acc = 0.0;
        for f in &self.faces {
            let a = sub(f.verts[0], self.interior);
            let b = sub(f.verts[1], self.interior);
            let c = sub(f.verts[2], self.interior);
            acc += dot(a, cross(b, c)).abs() / 6.0;
        }
        acc
    }

    /// Number of faces (diagnostic).
    pub fn face_count(&self) -> usize {
        self.faces.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn unit_cube_hull() {
        let mut pts = Vec::new();
        for x in [0.0, 1.0] {
            for y in [0.0, 1.0] {
                for z in [0.0, 1.0] {
                    pts.push([x, y, z]);
                }
            }
        }
        // A few interior points must not change anything.
        pts.push([0.5, 0.5, 0.5]);
        pts.push([0.2, 0.7, 0.9]);
        let region = ConvexRegion::from_points(&pts, 1e-9);
        assert_eq!(region.affine_dim(), Some(3));
        assert!(
            (region.volume() - 1.0).abs() < 1e-9,
            "volume {}",
            region.volume()
        );
        assert!(region.contains([0.5, 0.5, 0.5], 1e-9));
        assert!(region.contains([0.0, 0.0, 0.0], 1e-9));
        assert!(!region.contains([1.2, 0.5, 0.5], 1e-9));
        assert!(!region.contains([-0.1, 0.5, 0.5], 1e-9));
    }

    #[test]
    fn tetrahedron_volume() {
        let pts = vec![
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ];
        let region = ConvexRegion::from_points(&pts, 1e-9);
        assert!((region.volume() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn planar_cloud_is_polygon() {
        let pts = vec![
            [0.0, 0.0, 0.5],
            [1.0, 0.0, 0.5],
            [1.0, 1.0, 0.5],
            [0.0, 1.0, 0.5],
            [0.5, 0.5, 0.5],
        ];
        let region = ConvexRegion::from_points(&pts, 1e-9);
        assert_eq!(region.affine_dim(), Some(2));
        assert!((region.area() - 1.0).abs() < 1e-9);
        assert!(region.contains([0.5, 0.5, 0.5], 1e-6));
        assert!(!region.contains([0.5, 0.5, 0.7], 1e-6)); // off the plane
        assert!(!region.contains([1.5, 0.5, 0.5], 1e-6)); // outside in-plane
    }

    #[test]
    fn collinear_cloud_is_segment() {
        let pts = vec![[0.0, 0.0, 0.0], [1.0, 1.0, 1.0], [0.5, 0.5, 0.5]];
        let region = ConvexRegion::from_points(&pts, 1e-9);
        assert_eq!(region.affine_dim(), Some(1));
        assert!(region.contains([0.25, 0.25, 0.25], 1e-6));
        assert!(!region.contains([1.5, 1.5, 1.5], 1e-6));
        assert!(!region.contains([0.5, 0.5, 0.6], 1e-6));
    }

    #[test]
    fn coincident_cloud_is_point() {
        let pts = vec![[0.3, 0.2, 0.1]; 5];
        let region = ConvexRegion::from_points(&pts, 1e-9);
        assert_eq!(region.affine_dim(), Some(0));
        assert!(region.contains([0.3, 0.2, 0.1], 1e-9));
        assert!(!region.contains([0.4, 0.2, 0.1], 1e-3));
    }

    #[test]
    fn empty_cloud() {
        let region = ConvexRegion::from_points(&[], 1e-9);
        assert_eq!(region.affine_dim(), None);
        assert!(!region.contains([0.0; 3], 1.0));
        assert_eq!(region.volume(), 0.0);
    }

    #[test]
    fn random_sphere_hull_volume() {
        // Hull of many random points on a unit sphere approaches 4π/3.
        let mut rng = StdRng::seed_from_u64(11);
        let mut pts = Vec::new();
        for _ in 0..600 {
            let z: f64 = rng.gen_range(-1.0..1.0);
            let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let r = (1.0 - z * z).sqrt();
            pts.push([r * phi.cos(), r * phi.sin(), z]);
        }
        let region = ConvexRegion::from_points(&pts, 1e-9);
        let v = region.volume();
        let ball = 4.0 * std::f64::consts::PI / 3.0;
        assert!(v > 0.9 * ball && v <= ball + 1e-9, "volume {v} vs {ball}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_hull_contains_inputs(seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let pts: Vec<P3> = (0..40)
                .map(|_| [rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
                .collect();
            let region = ConvexRegion::from_points(&pts, 1e-9);
            for &p in &pts {
                prop_assert!(region.contains(p, 1e-7), "input point escaped hull");
            }
        }

        #[test]
        fn prop_hull_contains_convex_combos(seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let pts: Vec<P3> = (0..20)
                .map(|_| [rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
                .collect();
            let region = ConvexRegion::from_points(&pts, 1e-9);
            // Midpoint of two inputs must be inside.
            let m = [
                (pts[0][0] + pts[1][0]) / 2.0,
                (pts[0][1] + pts[1][1]) / 2.0,
                (pts[0][2] + pts[1][2]) / 2.0,
            ];
            prop_assert!(region.contains(m, 1e-7));
        }
    }
}

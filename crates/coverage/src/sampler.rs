//! Sampling the Weyl-chamber points reachable by decomposition templates —
//! the randomized stage of the paper's Algorithm 2.

use crate::CoverageError;
use paradrive_linalg::paulis;
use paradrive_linalg::qr::random_su2;
use paradrive_linalg::CMat;
use paradrive_optimizer::{TemplateSpec, TemplateSynthesizer};
use paradrive_weyl::magic::coordinates;
use paradrive_weyl::WeylPoint;
use rand::Rng;

/// The exterior targets the paper optimizes towards when bounding coverage
/// regions: gates unlikely to be hit by random sampling because they sit at
/// chamber vertices.
pub const EXTERIOR_TARGETS: [(&str, WeylPoint); 4] = [
    ("I", WeylPoint::IDENTITY),
    ("CNOT", WeylPoint::CNOT),
    ("iSWAP", WeylPoint::ISWAP),
    ("SWAP", WeylPoint::SWAP),
];

/// Samples coverage points for a template by randomizing its free
/// parameters.
///
/// - With parallel drive: random pump phases and 1Q drive envelopes via
///   [`TemplateSpec::evaluate`].
/// - Without parallel drive: the basis pulse interleaved with Haar-random
///   local gates (pump phases are absorbed by locals and add nothing).
///
/// # Errors
///
/// Returns [`CoverageError`] if the template is degenerate or a coordinate
/// extraction fails.
pub fn sample_template_points<R: Rng + ?Sized>(
    spec: &TemplateSpec,
    n: usize,
    rng: &mut R,
) -> Result<Vec<WeylPoint>, CoverageError> {
    // `n` randomized points plus the deterministic seed point; the
    // parallel-drive branch then extends with the plain template's
    // (recursively sampled) cloud beyond this hint.
    let mut pts = Vec::with_capacity(n + 1);
    if spec.parallel_drive {
        for _ in 0..n {
            let params = spec.random_params(rng);
            let u = spec
                .evaluate(&params)
                .map_err(|e| CoverageError::Template(e.to_string()))?;
            pts.push(coordinates(&u).map_err(|e| CoverageError::Weyl(e.to_string()))?);
        }
        // ε = 0 is a legal parallel-drive setting, so the plain template's
        // cloud is a subset of the PD coverage — sample it too (it reaches
        // corner classes like SWAP that random ε draws almost never hit).
        // Keep at least one plain draw even for n ≤ 1, or small-n calls
        // would silently drop the plain subset entirely.
        let plain = spec.without_parallel_drive();
        pts.extend(sample_template_points(&plain, (n / 2).max(1), rng)?);
    } else {
        let basis = basis_unitary(spec)?;
        for _ in 0..n {
            let u = interleaved_product(&basis, spec.k, rng);
            pts.push(coordinates(&u).map_err(|e| CoverageError::Weyl(e.to_string()))?);
        }
        // Clifford-interleave seeds: random Haar interleaves almost never
        // land exactly on chamber corners (SWAP, CNOT, I), but products with
        // Clifford 1Q layers do. A modest extra batch sharpens the hulls.
        let dict = clifford_dictionary();
        for _ in 0..(n / 3).max(8) {
            let mut u = basis.clone();
            for _ in 1..spec.k {
                let l = &dict[rng.gen_range(0..dict.len())];
                u = basis.mul(l).mul(&u);
            }
            pts.push(coordinates(&u).map_err(|e| CoverageError::Weyl(e.to_string()))?);
        }
        // Structured alternating patterns [d1, d2, d1, …] hit textbook
        // compositions exactly, e.g. SWAP = CX·(H⊗H)·CX·(H⊗H)·CX realized
        // at K = 6 of √CNOT with the pattern [I, H⊗H, I, H⊗H, I].
        if spec.k >= 2 {
            for d1 in &dict {
                for d2 in &dict {
                    let mut u = basis.clone();
                    for slot in 1..spec.k {
                        let l = if slot % 2 == 1 { d1 } else { d2 };
                        u = basis.mul(l).mul(&u);
                    }
                    pts.push(coordinates(&u).map_err(|e| CoverageError::Weyl(e.to_string()))?);
                }
            }
        }
    }
    // Deterministic seeds: the bare K-fold product (all interleaves set to
    // the identity) pins the "straight line" extremity of the region, and
    // the basis point itself pins K = 1 behaviour.
    let basis = basis_unitary(spec)?;
    let mut u = CMat::identity(4);
    for _ in 0..spec.k {
        u = basis.mul(&u);
    }
    pts.push(coordinates(&u).map_err(|e| CoverageError::Weyl(e.to_string()))?);
    Ok(pts)
}

/// The plain (no parallel drive, zero phases) basis pulse of a template.
fn basis_unitary(spec: &TemplateSpec) -> Result<CMat, CoverageError> {
    use paradrive_hamiltonian::ConversionGain;
    let drive = ConversionGain::try_new(spec.gc, spec.gg, 0.0, 0.0)
        .map_err(|e| CoverageError::Template(e.to_string()))?;
    Ok(drive.unitary(spec.total_time))
}

/// A small dictionary of 1Q⊗1Q Clifford layers used to seed hull corners.
fn clifford_dictionary() -> Vec<CMat> {
    let h = paulis::h();
    let x = paulis::x();
    let s = paulis::s();
    let i = paulis::i2();
    let hs = h.mul(&s);
    let sh = s.mul(&h);
    vec![
        paulis::tensor(&i, &i),
        paulis::tensor(&h, &h),
        paulis::tensor(&h, &i),
        paulis::tensor(&i, &h),
        paulis::tensor(&x, &i),
        paulis::tensor(&i, &x),
        paulis::tensor(&x, &x),
        paulis::tensor(&s, &s),
        paulis::tensor(&hs, &hs),
        paulis::tensor(&sh, &sh),
        paulis::tensor(&hs, &sh),
    ]
}

/// `K` applications of `basis` interleaved with Haar-random local gates.
fn interleaved_product<R: Rng + ?Sized>(basis: &CMat, k: usize, rng: &mut R) -> CMat {
    let mut u = basis.clone();
    for _ in 1..k {
        let local = paulis::tensor(&random_su2(rng), &random_su2(rng));
        u = basis.mul(&local).mul(&u);
    }
    u
}

/// The outcome of querying one exterior target for one template size.
#[derive(Debug, Clone)]
pub struct ExteriorQuery {
    /// Target name (one of [`EXTERIOR_TARGETS`]).
    pub target: String,
    /// Whether the optimizer converged onto the target class.
    pub reachable: bool,
    /// The best point found (the converged coordinate when `reachable`).
    pub best_point: WeylPoint,
    /// Final invariant loss.
    pub loss: f64,
}

/// Runs the paper's exterior-point optimization: for each target in
/// [`EXTERIOR_TARGETS`], drive the template onto the target class and record
/// whether it is reachable. Converged coordinates should be appended to the
/// coverage cloud before hull construction.
///
/// `restarts` bounds the optimizer effort per target.
pub fn exterior_queries<R: Rng + ?Sized>(
    spec: &TemplateSpec,
    restarts: usize,
    rng: &mut R,
) -> Vec<ExteriorQuery> {
    EXTERIOR_TARGETS
        .iter()
        .map(|(name, target)| {
            // Parallel-driven templates have far more free parameters;
            // give the simplex a correspondingly larger iteration budget.
            let options = paradrive_optimizer::Options {
                max_iter: if spec.parallel_drive { 4000 } else { 1500 },
                ..paradrive_optimizer::Options::default()
            };
            let synth = TemplateSynthesizer::new(*spec)
                .with_options(options)
                .with_restarts(restarts)
                .with_tolerance(1e-8);
            match synth.synthesize_to_point(*target, rng) {
                Ok(out) => ExteriorQuery {
                    target: (*name).to_string(),
                    reachable: out.converged,
                    best_point: out.point,
                    loss: out.loss,
                },
                Err(_) => ExteriorQuery {
                    target: (*name).to_string(),
                    reachable: false,
                    best_point: WeylPoint::IDENTITY,
                    loss: f64::MAX,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn k1_plain_template_is_single_point() {
        let spec = TemplateSpec::iswap_basis(1).without_parallel_drive();
        let mut rng = StdRng::seed_from_u64(1);
        let pts = sample_template_points(&spec, 20, &mut rng).unwrap();
        for p in &pts {
            assert!(
                p.chamber_dist(WeylPoint::ISWAP) < 1e-6,
                "K=1 iSWAP template wandered to {p}"
            );
        }
    }

    #[test]
    fn k2_plain_iswap_fills_base_plane() {
        let spec = TemplateSpec::iswap_basis(2).without_parallel_drive();
        let mut rng = StdRng::seed_from_u64(2);
        let pts = sample_template_points(&spec, 60, &mut rng).unwrap();
        // All points on the base plane...
        for p in &pts {
            assert!(p.c3.abs() < 1e-6, "left base plane: {p}");
        }
        // ...and they spread over it (c1 varies substantially).
        let c1_min = pts.iter().map(|p| p.c1).fold(f64::INFINITY, f64::min);
        let c1_max = pts.iter().map(|p| p.c1).fold(0.0_f64, f64::max);
        assert!(c1_max - c1_min > 0.5, "no spread: [{c1_min}, {c1_max}]");
    }

    #[test]
    fn k2_plain_sqrt_iswap_leaves_base_plane() {
        let spec = TemplateSpec::sqrt_iswap_basis(2).without_parallel_drive();
        let mut rng = StdRng::seed_from_u64(3);
        let pts = sample_template_points(&spec, 60, &mut rng).unwrap();
        assert!(
            pts.iter().any(|p| p.c3 > 0.05),
            "√iSWAP K=2 should reach 3-d volume"
        );
    }

    #[test]
    fn parallel_k1_iswap_leaves_base_plane() {
        let spec = TemplateSpec::iswap_basis(1);
        let mut rng = StdRng::seed_from_u64(4);
        let pts = sample_template_points(&spec, 40, &mut rng).unwrap();
        assert!(
            pts.iter().any(|p| p.c3 > 0.02),
            "parallel-driven K=1 iSWAP should have volume"
        );
    }

    #[test]
    fn small_n_keeps_the_plain_template_subset() {
        // Regression: the parallel-drive branch used to recurse with
        // `n / 2`, so `n <= 1` dropped the plain template's own random
        // draw entirely. The recursion must behave exactly like a direct
        // plain call with one sample: `n` PD points + the full plain
        // cloud + the deterministic seed point.
        for n in [0usize, 1] {
            let spec = TemplateSpec::iswap_basis(1);
            let mut rng = StdRng::seed_from_u64(7);
            let pd = sample_template_points(&spec, n, &mut rng).unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            let plain =
                sample_template_points(&spec.without_parallel_drive(), 1, &mut rng).unwrap();
            assert_eq!(
                pd.len(),
                n + plain.len() + 1,
                "n = {n}: plain-template subset was dropped"
            );
        }
    }

    #[test]
    fn exterior_query_reports_reachability() {
        // K=2 plain √iSWAP reaches CNOT but not SWAP.
        let spec = TemplateSpec::sqrt_iswap_basis(2).without_parallel_drive();
        let mut rng = StdRng::seed_from_u64(5);
        let queries = exterior_queries(&spec, 8, &mut rng);
        let by_name = |n: &str| queries.iter().find(|q| q.target == n).unwrap();
        assert!(
            by_name("CNOT").reachable,
            "CNOT loss {}",
            by_name("CNOT").loss
        );
        assert!(!by_name("SWAP").reachable);
        assert!(by_name("I").reachable, "I loss {}", by_name("I").loss);
    }

    #[test]
    fn deterministic_seed_point_present() {
        // The bare 2-fold √iSWAP product (= iSWAP) must be in the cloud.
        let spec = TemplateSpec::sqrt_iswap_basis(2).without_parallel_drive();
        let mut rng = StdRng::seed_from_u64(6);
        let pts = sample_template_points(&spec, 5, &mut rng).unwrap();
        assert!(pts
            .iter()
            .any(|p| p.chamber_dist(WeylPoint::new(FRAC_PI_2, FRAC_PI_2, 0.0)) < 1e-6));
    }
}

//! Coverage sets for two-qubit decomposition templates.
//!
//! A *basis template* is `K` applications of a basis gate interleaved with
//! free 1Q gates (and, with parallel drive, free pump phases and 1Q drive
//! envelopes). Its **coverage set** is the region of the Weyl chamber it
//! spans: every target inside decomposes with `K` applications. This crate
//! implements the paper's Algorithm 2 — Monte-Carlo sampling plus exterior
//! -point optimization plus convex hulls (split at `c1 = π/2`) — and the
//! score functions built on top:
//!
//! - [`scores::k_scores`] — `K[CNOT]`, `K[SWAP]`, `E[K[Haar]]`, `K[W(λ)]`
//!   (Tables I and IV),
//! - [`scores::d_scores`] — speed-limit-scaled durations via Eq. 7
//!   (Tables II, III and V),
//! - [`region::CoverageSet::chamber_fraction`] — the coverage volumes of
//!   Figs. 4 and 9.
//!
//! # Example
//!
//! ```
//! use paradrive_coverage::region::CoverageSet;
//! use paradrive_weyl::WeylPoint;
//!
//! // The base-plane triangle I–CNOT–iSWAP (what K=2 iSWAP spans).
//! let set = CoverageSet::from_points(&[
//!     WeylPoint::IDENTITY,
//!     WeylPoint::CNOT,
//!     WeylPoint::ISWAP,
//! ]);
//! assert!(set.contains(WeylPoint::SQRT_ISWAP, 1e-6));
//! assert!(!set.contains(WeylPoint::SWAP, 1e-3));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hull;
pub mod region;
pub mod sampler;
pub mod scores;

pub use region::{CoverageSet, CoverageStack, CHAMBER_VOLUME};
pub use scores::{BuildOptions, DScores, KScores, PAPER_LAMBDA};

/// Errors produced while building coverage sets.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoverageError {
    /// The underlying template could not be evaluated.
    Template(String),
    /// A Weyl-chamber computation failed.
    Weyl(String),
}

impl std::fmt::Display for CoverageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoverageError::Template(e) => write!(f, "template evaluation failed: {e}"),
            CoverageError::Weyl(e) => write!(f, "Weyl computation failed: {e}"),
        }
    }
}

impl std::error::Error for CoverageError {}

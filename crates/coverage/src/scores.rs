//! Decomposition scores: `K` counts, Haar expectations, the weighted `W(λ)`
//! metric and the speed-limit-scaled duration costs of Eq. 7.

use crate::region::{CoverageSet, CoverageStack};
use crate::sampler::{exterior_queries, sample_template_points};
use crate::CoverageError;
use paradrive_optimizer::TemplateSpec;
use paradrive_weyl::WeylPoint;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The paper's CNOT:SWAP mix fitted from benchmark workloads (Section II-B):
/// `λ = 731/(731+828) ≈ 0.47`.
pub const PAPER_LAMBDA: f64 = 731.0 / (731.0 + 828.0);

/// Duration of a `K`-template under Eq. 7:
/// `D = K·D_basis + (K+1)·D[1Q]`.
pub fn duration_cost(k: usize, d_basis: f64, d_1q: f64) -> f64 {
    k as f64 * d_basis + (k + 1) as f64 * d_1q
}

/// Containment tolerance used when testing chamber points against hulls.
pub const CONTAINMENT_TOL: f64 = 2e-3;

/// Options controlling coverage-stack construction.
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Largest template size to build.
    pub max_k: usize,
    /// Random samples per template size (the paper uses 3000).
    pub samples_per_k: usize,
    /// Optimizer restarts per exterior target (0 disables the exterior
    /// stage).
    pub exterior_restarts: usize,
    /// Stop growing `K` once a Haar probe of this size is fully covered
    /// (0 disables early stopping).
    pub full_coverage_probe: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            max_k: 6,
            samples_per_k: 3000,
            exterior_restarts: 6,
            full_coverage_probe: 200,
        }
    }
}

/// Builds the per-`K` coverage stack for a template family (the paper's
/// Algorithm 2): random sampling, exterior-point optimization, convex hulls.
///
/// `spec_for_k` must return the template spec for a given `K` (this lets
/// callers toggle parallel drive or interleaving per size).
///
/// # Errors
///
/// Propagates sampling failures as [`CoverageError`].
pub fn build_stack<R: Rng + ?Sized>(
    name: &str,
    basis_point: WeylPoint,
    spec_for_k: impl Fn(usize) -> TemplateSpec,
    options: BuildOptions,
    rng: &mut R,
) -> Result<CoverageStack, CoverageError> {
    let mut sets = Vec::with_capacity(options.max_k);
    let mut probe: Vec<WeylPoint> = Vec::new();
    if options.full_coverage_probe > 0 {
        probe = paradrive_weyl::haar::sample_points(options.full_coverage_probe, rng);
    }
    for k in 1..=options.max_k {
        let spec = spec_for_k(k);
        let mut pts = sample_template_points(&spec, options.samples_per_k, rng)?;
        if options.exterior_restarts > 0 {
            for q in exterior_queries(&spec, options.exterior_restarts, rng) {
                if q.reachable {
                    pts.push(q.best_point);
                }
            }
        }
        let set = CoverageSet::from_points(&pts);
        // Stop early only when the Haar probe is covered AND the SWAP
        // vertex is inside — SWAP is always the last gate to be reached
        // (Section III-C), and it carries zero Haar mass.
        let full = !probe.is_empty()
            && probe.iter().all(|p| set.contains(*p, CONTAINMENT_TOL))
            && set.contains(WeylPoint::SWAP, CONTAINMENT_TOL);
        sets.push(set);
        if full {
            break;
        }
    }
    Ok(CoverageStack::new(name, basis_point, sets))
}

/// The `K`-count scores of Table I / Table IV.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KScores {
    /// Basis name.
    pub basis: String,
    /// `K[CNOT]` — template size to reach the CNOT class.
    pub k_cnot: Option<usize>,
    /// `K[SWAP]`.
    pub k_swap: Option<usize>,
    /// `E[K[Haar]]` — expected size over Haar-random targets.
    pub e_k_haar: f64,
    /// `K[W(λ)] = λ·K[CNOT] + (1−λ)·K[SWAP]`.
    pub k_w: f64,
}

/// Computes the `K` scores of a coverage stack against a shared Haar sample.
///
/// Haar targets not covered at the stack's maximum size are charged
/// `max_k + 1` (they would need at least one more application).
pub fn k_scores(stack: &CoverageStack, haar: &[WeylPoint], lambda: f64) -> KScores {
    let k_cnot = stack.min_k(WeylPoint::CNOT, CONTAINMENT_TOL);
    let k_swap = stack.min_k(WeylPoint::SWAP, CONTAINMENT_TOL);
    let e_k_haar = if haar.is_empty() {
        f64::NAN
    } else {
        haar.iter()
            .map(|p| {
                stack
                    .min_k(*p, CONTAINMENT_TOL)
                    .unwrap_or(stack.max_k() + 1) as f64
            })
            .sum::<f64>()
            / haar.len() as f64
    };
    let k_w = match (k_cnot, k_swap) {
        (Some(c), Some(s)) => lambda * c as f64 + (1.0 - lambda) * s as f64,
        _ => f64::NAN,
    };
    KScores {
        basis: stack.name().to_string(),
        k_cnot,
        k_swap,
        e_k_haar,
        k_w,
    }
}

/// The duration scores of Tables II / III / V.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DScores {
    /// Basis name.
    pub basis: String,
    /// Normalized pulse duration of one basis application (`D_Basis`).
    pub d_basis: f64,
    /// `D[CNOT]` under Eq. 7.
    pub d_cnot: f64,
    /// `D[SWAP]`.
    pub d_swap: f64,
    /// `E[D[Haar]]`.
    pub e_d_haar: f64,
    /// `D[W(λ)]`.
    pub d_w: f64,
}

/// Computes duration scores from `K` data via Eq. 7.
///
/// For targets identical to stacked copies of the basis itself (e.g. iSWAP
/// from two √iSWAPs) the caller should instead use the fractional-stacking
/// rules in `paradrive-core`; this function charges the generic template
/// costs of the paper's Tables II–III.
pub fn d_scores(
    stack: &CoverageStack,
    haar: &[WeylPoint],
    d_basis: f64,
    d_1q: f64,
    lambda: f64,
) -> DScores {
    let charge = |k: Option<usize>| -> f64 {
        k.map(|k| duration_cost(k, d_basis, d_1q))
            .unwrap_or(f64::NAN)
    };
    let d_cnot = charge(stack.min_k(WeylPoint::CNOT, CONTAINMENT_TOL));
    let d_swap = charge(stack.min_k(WeylPoint::SWAP, CONTAINMENT_TOL));
    let e_d_haar = if haar.is_empty() {
        f64::NAN
    } else {
        haar.iter()
            .map(|p| {
                let k = stack
                    .min_k(*p, CONTAINMENT_TOL)
                    .unwrap_or(stack.max_k() + 1);
                duration_cost(k, d_basis, d_1q)
            })
            .sum::<f64>()
            / haar.len() as f64
    };
    let d_w = if d_cnot.is_nan() || d_swap.is_nan() {
        f64::NAN
    } else {
        lambda * d_cnot + (1.0 - lambda) * d_swap
    };
    DScores {
        basis: stack.name().to_string(),
        d_basis,
        d_cnot,
        d_swap,
        e_d_haar,
        d_w,
    }
}

/// A coverage set paired with known analytic facts, used as a cross-check
/// oracle in tests and reports: the paper's Table I values.
pub fn paper_table1_reference() -> Vec<(&'static str, usize, usize, f64, f64)> {
    // (basis, K[CNOT], K[SWAP], E[K[Haar]], K[W(.47)])
    vec![
        ("iSWAP", 2, 3, 3.00, 2.53),
        ("sqrt_iSWAP", 2, 3, 2.21, 2.53),
        ("CNOT", 1, 3, 3.00, 2.06),
        ("sqrt_CNOT", 2, 6, 3.54, 4.12),
        ("B", 2, 2, 2.00, 2.00),
        ("sqrt_B", 2, 4, 2.50, 3.06),
    ]
}

/// Convenience: a `CoverageSet` from explicit points (re-exported for
/// harness code building joint/fractional regions).
pub fn set_from_points(points: &[WeylPoint]) -> CoverageSet {
    CoverageSet::from_points(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_options() -> BuildOptions {
        BuildOptions {
            max_k: 3,
            samples_per_k: 250,
            exterior_restarts: 5,
            full_coverage_probe: 60,
        }
    }

    #[test]
    fn lambda_matches_paper() {
        assert!((PAPER_LAMBDA - 0.47).abs() < 0.005);
    }

    #[test]
    fn duration_cost_formula() {
        // Table III spot check: iSWAP D[CNOT] with D[1Q]=0.25 and K=2:
        // 2·1 + 3·0.25 = 2.75.
        assert!((duration_cost(2, 1.0, 0.25) - 2.75).abs() < 1e-12);
        // √iSWAP K=3 SWAP: 3·0.5 + 4·0.25 = 2.5.
        assert!((duration_cost(3, 0.5, 0.25) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn iswap_stack_k_scores() {
        let mut rng = StdRng::seed_from_u64(10);
        let stack = build_stack(
            "iSWAP",
            WeylPoint::ISWAP,
            |k| TemplateSpec::iswap_basis(k).without_parallel_drive(),
            quick_options(),
            &mut rng,
        )
        .unwrap();
        let haar = paradrive_weyl::haar::sample_points(150, &mut rng);
        let s = k_scores(&stack, &haar, PAPER_LAMBDA);
        assert_eq!(s.k_cnot, Some(2), "K[CNOT] for iSWAP");
        assert_eq!(s.k_swap, Some(3), "K[SWAP] for iSWAP");
        // E[K[Haar]] = 3 exactly (base plane has Haar measure zero).
        assert!(
            (s.e_k_haar - 3.0).abs() < 0.15,
            "E[K[Haar]] = {}",
            s.e_k_haar
        );
    }

    #[test]
    fn sqrt_iswap_stack_k_scores() {
        let mut rng = StdRng::seed_from_u64(11);
        let stack = build_stack(
            "sqrt_iSWAP",
            WeylPoint::SQRT_ISWAP,
            |k| TemplateSpec::sqrt_iswap_basis(k).without_parallel_drive(),
            quick_options(),
            &mut rng,
        )
        .unwrap();
        let haar = paradrive_weyl::haar::sample_points(200, &mut rng);
        let s = k_scores(&stack, &haar, PAPER_LAMBDA);
        assert_eq!(s.k_cnot, Some(2));
        assert_eq!(s.k_swap, Some(3));
        // Paper: 2.21. MC hulls give a slight overestimate; accept a band.
        assert!(
            (2.0..2.6).contains(&s.e_k_haar),
            "E[K[Haar]] = {}",
            s.e_k_haar
        );
        // And the W score: 0.47·2 + 0.53·3 ≈ 2.53.
        assert!((s.k_w - 2.53).abs() < 0.02, "K[W] = {}", s.k_w);
    }

    #[test]
    fn d_scores_from_stack() {
        let mut rng = StdRng::seed_from_u64(12);
        let stack = build_stack(
            "iSWAP",
            WeylPoint::ISWAP,
            |k| TemplateSpec::iswap_basis(k).without_parallel_drive(),
            quick_options(),
            &mut rng,
        )
        .unwrap();
        let haar = paradrive_weyl::haar::sample_points(100, &mut rng);
        // Linear SLF: D_basis(iSWAP) = 1.0, D[1Q] = 0.25 → Table III row.
        let d = d_scores(&stack, &haar, 1.0, 0.25, PAPER_LAMBDA);
        assert!((d.d_cnot - 2.75).abs() < 1e-9);
        assert!((d.d_swap - 4.0).abs() < 1e-9);
        assert!((d.e_d_haar - 4.0).abs() < 0.3);
        assert!((d.d_w - 3.41).abs() < 0.02);
    }

    #[test]
    fn reference_table_is_consistent() {
        for (basis, kc, ks, _e, kw) in paper_table1_reference() {
            let expect = PAPER_LAMBDA * kc as f64 + (1.0 - PAPER_LAMBDA) * ks as f64;
            assert!(
                (expect - kw).abs() < 0.02,
                "{basis}: λ-mix {expect} vs table {kw}"
            );
        }
    }
}

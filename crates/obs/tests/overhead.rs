//! The disabled-recorder contract: opening spans, incrementing counter
//! handles, and adding keyed counters on a disabled [`Recorder`] must not
//! touch the heap and must leave nothing behind in the drained trace.
//!
//! The whole file is one test function: the allocation counter is a
//! process global, and the default test harness runs `#[test]`s on
//! parallel threads whose allocations would bleed into each other's
//! counts.

// The workspace denies unsafe code; this counting allocator is the one
// sanctioned exception (`GlobalAlloc` is an unsafe trait). It only
// increments an atomic and defers to the system allocator.
#![allow(unsafe_code)]

use paradrive_obs::{span, Recorder};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations performed while running `f`.
fn allocations(f: impl FnOnce()) -> usize {
    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    f();
    ALLOC_CALLS.load(Ordering::SeqCst) - before
}

#[test]
fn disabled_recorder_neither_allocates_nor_records() {
    // Warm-up: registering counter handles allocates (by design — once
    // per site), and the first span on this thread initialises the
    // thread-ordinal thread-local. Pay both up front on an *enabled*
    // recorder so the measured section sees only steady-state costs.
    let rec = Recorder::new();
    let hits = rec.counter("cache.hits");
    let dispatch = rec.counter("kernel.dispatch");
    drop(rec.span_full("warmup", 0, || "warm".to_string()));
    rec.add("warmup.keyed", 1);
    let _ = rec.take();

    rec.set_enabled(false);

    let count = allocations(|| {
        for i in 0..1000 {
            let _route = rec.span("route");
            let _labeled = span!(rec, "verify", "job-{i}#{}", i * 3);
            let _keyed = rec.span_full("schedule", i, || format!("job-{i}"));
            hits.incr(1);
            dispatch.incr(2);
            rec.add("verify.samples", 5);
        }
    });
    assert_eq!(count, 0, "disabled recorder path allocated");

    // And nothing was recorded: no spans, every counter still zero.
    let trace = rec.take();
    assert!(
        trace.spans.is_empty(),
        "disabled recorder buffered spans: {:?}",
        trace.spans
    );
    assert!(
        trace.counters.iter().all(|(_, v)| *v == 0),
        "disabled recorder counted: {:?}",
        trace.counters
    );
    assert_eq!(hits.get(), 0);

    // Sanity: the counter itself works — re-enabled, the same calls do
    // buffer spans (and span labels do allocate).
    rec.set_enabled(true);
    let count = allocations(|| {
        let _span = span!(rec, "route", "job#{}", 1);
        hits.incr(1);
    });
    assert!(count > 0, "counter failed to observe enabled-path work");
    let trace = rec.take();
    assert_eq!(trace.spans.len(), 1);
    assert_eq!(trace.counter("cache.hits"), Some(1));
}

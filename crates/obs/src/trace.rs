//! The drained snapshot of a [`Recorder`](crate::Recorder): spans plus
//! counters, with the two exporters and the stage-time rollup.

use crate::SpanEvent;
use std::fmt::Write as _;
use std::path::Path;

/// A snapshot of recorded spans and counters (see
/// [`Recorder::take`](crate::Recorder::take)).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Recorded spans, sorted by start time.
    pub spans: Vec<SpanEvent>,
    /// Counter snapshot, sorted by name.
    pub counters: Vec<(String, u64)>,
}

/// Per-stage duration statistics over every span sharing one name.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Stage name.
    pub name: &'static str,
    /// Number of spans.
    pub count: usize,
    /// Summed duration, nanoseconds.
    pub total_ns: u64,
    /// Median span duration (nearest rank), nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile span duration (nearest rank), nanoseconds.
    pub p95_ns: u64,
    /// Longest span, nanoseconds.
    pub max_ns: u64,
}

impl Trace {
    /// Looks a counter up by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Sets (or overwrites) a counter — for folding externally held
    /// statistics (e.g. per-shard cache counters) into a trace.
    pub fn set_counter(&mut self, name: impl Into<String>, value: u64) {
        let name = name.into();
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v = value,
            None => {
                self.counters.push((name, value));
                self.counters.sort();
            }
        }
    }

    /// Merges another trace in: spans are appended and re-sorted,
    /// counters with equal names are summed.
    pub fn merge(&mut self, other: Trace) {
        self.spans.extend(other.spans);
        self.spans
            .sort_by_key(|s| (s.start_ns, std::cmp::Reverse(s.dur_ns), s.tid));
        for (name, value) in other.counters {
            match self.counters.iter_mut().find(|(n, _)| *n == name) {
                Some((_, v)) => *v += value,
                None => self.counters.push((name, value)),
            }
        }
        self.counters.sort();
    }

    /// Shifts every span by `offset_ns` — used when concatenating traces
    /// of sequential runs that each started their own epoch at zero.
    pub fn shift(&mut self, offset_ns: u64) {
        for span in &mut self.spans {
            span.start_ns += offset_ns;
        }
    }

    /// Prefixes every counter name — namespacing a run's counters before
    /// merging several runs into one file.
    pub fn prefix_counters(&mut self, prefix: &str) {
        for (name, _) in &mut self.counters {
            *name = format!("{prefix}{name}");
        }
        self.counters.sort();
    }

    /// End of the latest span, nanoseconds (zero for an empty trace).
    pub fn end_ns(&self) -> u64 {
        self.spans
            .iter()
            .map(|s| s.start_ns + s.dur_ns)
            .max()
            .unwrap_or(0)
    }

    /// Per-stage duration statistics, grouped by span name in first-seen
    /// order.
    pub fn stage_summary(&self) -> Vec<StageStats> {
        let mut names: Vec<&'static str> = Vec::new();
        for s in &self.spans {
            if !names.contains(&s.name) {
                names.push(s.name);
            }
        }
        names
            .into_iter()
            .map(|name| {
                let mut durs: Vec<u64> = self
                    .spans
                    .iter()
                    .filter(|s| s.name == name)
                    .map(|s| s.dur_ns)
                    .collect();
                durs.sort_unstable();
                let rank = |p: f64| -> u64 {
                    // Nearest-rank percentile on the sorted durations.
                    let idx = ((p * durs.len() as f64).ceil() as usize).clamp(1, durs.len()) - 1;
                    durs[idx]
                };
                StageStats {
                    name,
                    count: durs.len(),
                    total_ns: durs.iter().sum(),
                    p50_ns: rank(0.50),
                    p95_ns: rank(0.95),
                    max_ns: *durs.last().expect("non-empty by construction"),
                }
            })
            .collect()
    }

    /// Renders the trace as line-oriented JSONL (one object per span,
    /// then one per counter) — the same one-entry-per-line convention as
    /// the repo's `BENCH_*.json` files, parseable with no JSON
    /// dependency.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"name\":\"{}\",\"label\":\"{}\",\"key\":{},\"tid\":{},\
                 \"start_ns\":{},\"dur_ns\":{}}}",
                escape(s.name),
                escape(&s.label),
                s.key,
                s.tid,
                s.start_ns,
                s.dur_ns
            );
        }
        for (name, value) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
                escape(name),
                value
            );
        }
        out
    }

    /// Renders the trace in the Chrome trace-event format (JSON object
    /// form), loadable in Perfetto or `chrome://tracing`.
    ///
    /// Every span becomes a balanced `"B"`/`"E"` pair on its thread's
    /// timeline (`ts` in microseconds); counters become `"C"` events at
    /// the end of the trace. Nested spans close before their parents, so
    /// the per-thread event stream is a well-formed stack.
    pub fn to_chrome_json(&self) -> String {
        // Per-span edges: open at start, close at end. Ties: closes sort
        // before opens; among simultaneous opens the longer span (the
        // parent) opens first; among simultaneous closes the shorter one
        // (the child) closes first.
        enum Edge<'a> {
            Begin(&'a SpanEvent),
            End,
        }
        let mut edges: Vec<(u64, u32, u8, u64, Edge)> = Vec::with_capacity(2 * self.spans.len());
        for s in &self.spans {
            edges.push((s.start_ns, s.tid, 1, u64::MAX - s.dur_ns, Edge::Begin(s)));
            edges.push((s.start_ns + s.dur_ns, s.tid, 0, s.dur_ns, Edge::End));
        }
        edges.sort_by_key(|(ts, tid, kind, dur, _)| (*ts, *tid, *kind, *dur));

        let mut out = String::from("{\"traceEvents\":[\n");
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"paradrive\"}}}}"
        );
        for (ts, tid, _, _, edge) in &edges {
            let us = *ts as f64 / 1e3;
            match edge {
                Edge::Begin(s) => {
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"B\",\"pid\":1,\"tid\":{tid},\"ts\":{us:.3},\
                         \"name\":\"{}\",\"args\":{{\"label\":\"{}\",\"key\":{}}}}}",
                        escape(s.name),
                        escape(&s.label),
                        s.key
                    );
                }
                Edge::End => {
                    let _ = write!(
                        out,
                        ",\n{{\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\"ts\":{us:.3}}}"
                    );
                }
            }
        }
        let counter_ts = self.end_ns() as f64 / 1e3;
        for (name, value) in &self.counters {
            let _ = write!(
                out,
                ",\n{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{counter_ts:.3},\"name\":\"{}\",\
                 \"args\":{{\"value\":{value}}}}}",
                escape(name)
            );
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes [`Trace::to_chrome_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_chrome(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }

    /// Writes [`Trace::to_jsonl`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Parses a [`Trace::to_jsonl`] export back into a trace — the import
    /// half of the shard-merge workflow, where each shard's trace file is
    /// re-read, namespaced and spliced into one timeline.
    ///
    /// Span names are interned into a process-global table (they are
    /// `&'static str` on [`SpanEvent`]); the set of distinct stage names
    /// is small and fixed, so the table stays bounded. Nanosecond fields
    /// ride through an `f64` (the JSON number type) and are exact up to
    /// 2^53 ns ≈ 104 days — far past any real trace.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn from_jsonl(text: &str) -> Result<Trace, String> {
        let mut trace = Trace::default();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let bad = |what: &str| format!("trace line {}: {what}", i + 1);
            let v = crate::json::parse(line).map_err(|e| bad(&e.to_string()))?;
            let field_u64 = |key: &str| -> Result<u64, String> {
                v.get(key)
                    .and_then(crate::json::Value::as_f64)
                    .map(|x| x as u64)
                    .ok_or_else(|| bad(&format!("missing numeric `{key}`")))
            };
            let field_str = |key: &str| -> Result<&str, String> {
                v.get(key)
                    .and_then(crate::json::Value::as_str)
                    .ok_or_else(|| bad(&format!("missing string `{key}`")))
            };
            match field_str("type")? {
                "span" => trace.spans.push(SpanEvent {
                    name: intern(field_str("name")?),
                    label: field_str("label")?.to_string(),
                    key: field_u64("key")?,
                    tid: field_u64("tid")? as u32,
                    start_ns: field_u64("start_ns")?,
                    dur_ns: field_u64("dur_ns")?,
                }),
                "counter" => trace
                    .counters
                    .push((field_str("name")?.to_string(), field_u64("value")?)),
                other => return Err(bad(&format!("unknown entry type `{other}`"))),
            }
        }
        trace
            .spans
            .sort_by_key(|s| (s.start_ns, std::cmp::Reverse(s.dur_ns), s.tid));
        trace.counters.sort();
        Ok(trace)
    }
}

/// Deduplicating `&'static str` intern table for imported span names.
/// Leaks at most one allocation per *distinct* name ever imported — the
/// pipeline's stage vocabulary, not per-span data.
fn intern(name: &str) -> &'static str {
    static NAMES: std::sync::OnceLock<std::sync::Mutex<Vec<&'static str>>> =
        std::sync::OnceLock::new();
    let mut table = NAMES
        .get_or_init(|| std::sync::Mutex::new(Vec::new()))
        .lock()
        .expect("intern table poisoned");
    match table.iter().find(|n| **n == name) {
        Some(n) => n,
        None => {
            let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
            table.push(leaked);
            leaked
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};

    fn span(name: &'static str, tid: u32, start_ns: u64, dur_ns: u64) -> SpanEvent {
        SpanEvent {
            name,
            label: format!("{name}-label"),
            key: 0,
            tid,
            start_ns,
            dur_ns,
        }
    }

    fn nested_trace() -> Trace {
        Trace {
            spans: vec![
                span("outer", 1, 0, 1000),
                span("inner", 1, 100, 200),
                span("other", 2, 50, 500),
            ],
            counters: vec![("cache.hits".to_string(), 42)],
        }
    }

    /// Replays a chrome export's B/E events per tid and asserts stack
    /// discipline; returns the number of completed spans.
    fn assert_balanced(chrome: &str) -> usize {
        let v = json::parse(chrome).expect("chrome export parses");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let mut stacks: std::collections::BTreeMap<i64, Vec<String>> = Default::default();
        let mut completed = 0;
        for e in events {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            let tid = e.get("tid").unwrap().as_f64().unwrap() as i64;
            match ph {
                "B" => stacks
                    .entry(tid)
                    .or_default()
                    .push(e.get("name").unwrap().as_str().unwrap().to_string()),
                "E" => {
                    assert!(
                        stacks.entry(tid).or_default().pop().is_some(),
                        "E without matching B on tid {tid}"
                    );
                    completed += 1;
                }
                _ => {}
            }
        }
        for (tid, stack) in stacks {
            assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
        }
        completed
    }

    #[test]
    fn chrome_export_is_valid_and_balanced() {
        let trace = nested_trace();
        let chrome = trace.to_chrome_json();
        assert_eq!(assert_balanced(&chrome), 3);
        let v = json::parse(&chrome).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        // Counter event present with its value.
        let counter = events
            .iter()
            .find(|e| matches!(e.get("ph"), Some(Value::Str(s)) if s == "C"))
            .expect("counter event");
        assert_eq!(
            counter.get("args").unwrap().get("value").unwrap().as_f64(),
            Some(42.0)
        );
    }

    #[test]
    fn simultaneous_edges_keep_stack_discipline() {
        // Parent and child share both start and end timestamps: the
        // parent must open first and close last.
        let trace = Trace {
            spans: vec![span("parent", 1, 0, 100), span("child", 1, 0, 100)],
            counters: vec![],
        };
        assert_eq!(assert_balanced(&trace.to_chrome_json()), 2);
    }

    #[test]
    fn jsonl_round_trips_fields() {
        let trace = nested_trace();
        let jsonl = trace.to_jsonl();
        assert_eq!(jsonl.lines().count(), 4);
        for line in jsonl.lines() {
            let v = json::parse(line).expect("every line is one JSON object");
            assert!(v.get("type").is_some());
        }
        let first = json::parse(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("name").unwrap().as_str(), Some("outer"));
        assert_eq!(first.get("dur_ns").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn stage_summary_percentiles() {
        let mut spans = Vec::new();
        for i in 1..=100u64 {
            spans.push(SpanEvent {
                name: "route",
                label: String::new(),
                key: i,
                tid: 0,
                start_ns: i,
                dur_ns: i, // durations 1..=100
            });
        }
        let trace = Trace {
            spans,
            counters: vec![],
        };
        let summary = trace.stage_summary();
        assert_eq!(summary.len(), 1);
        let s = &summary[0];
        assert_eq!((s.count, s.p50_ns, s.p95_ns, s.max_ns), (100, 50, 95, 100));
        assert_eq!(s.total_ns, 5050);
    }

    #[test]
    fn merge_shift_and_prefix() {
        let mut a = nested_trace();
        let mut b = nested_trace();
        b.shift(10_000);
        b.prefix_counters("second.");
        a.merge(b);
        assert_eq!(a.spans.len(), 6);
        assert_eq!(a.counter("cache.hits"), Some(42));
        assert_eq!(a.counter("second.cache.hits"), Some(42));
        assert_eq!(a.end_ns(), 10_000 + 1000);
        // Still a valid chrome trace after the merge.
        assert_eq!(assert_balanced(&a.to_chrome_json()), 6);
    }

    #[test]
    fn escaping_survives_hostile_labels() {
        let trace = Trace {
            spans: vec![SpanEvent {
                name: "route",
                label: "we\"ird\\label\nnewline\ttab\u{1}ctl".to_string(),
                key: 0,
                tid: 0,
                start_ns: 0,
                dur_ns: 1,
            }],
            counters: vec![("count\"er".to_string(), 1)],
        };
        for text in [trace.to_chrome_json(), trace.to_jsonl()] {
            for line in text.lines().filter(|l| l.contains("label")) {
                // Each line of both exports stays parseable.
                let candidate = line.trim_end_matches(',');
                if candidate.starts_with('{') {
                    json::parse(candidate).expect("escaped line parses");
                }
            }
        }
        assert!(json::parse(&trace.to_chrome_json()).is_ok());
    }

    #[test]
    fn jsonl_import_round_trips_exactly() {
        let trace = nested_trace();
        let back = Trace::from_jsonl(&trace.to_jsonl()).unwrap();
        // Import canonicalizes span order — (start, longest-first, tid),
        // the nesting order chrome export needs — so the round trip is
        // exact up to that reordering, and a second trip is a fixpoint.
        let mut want = trace.clone();
        want.spans
            .sort_by_key(|s| (s.start_ns, std::cmp::Reverse(s.dur_ns), s.tid));
        want.counters.sort();
        assert_eq!(back, want);
        assert_eq!(Trace::from_jsonl(&back.to_jsonl()).unwrap(), back);
        // Hostile labels survive the escape/unescape round trip too.
        let hostile = Trace {
            spans: vec![SpanEvent {
                name: "route",
                label: "we\"ird\\label\nnewline".to_string(),
                key: 3,
                tid: 7,
                start_ns: 12,
                dur_ns: 34,
            }],
            counters: vec![("count\"er".to_string(), 9)],
        };
        assert_eq!(Trace::from_jsonl(&hostile.to_jsonl()).unwrap(), hostile);
        // Malformed input is reported with its line number.
        let err = Trace::from_jsonl("{\"type\":\"span\"}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(Trace::from_jsonl("not json").is_err());
    }

    #[test]
    fn set_counter_overwrites() {
        let mut t = Trace::default();
        t.set_counter("a", 1);
        t.set_counter("a", 5);
        t.set_counter("b", 2);
        assert_eq!(t.counter("a"), Some(5));
        assert_eq!(t.counters.len(), 2);
    }
}

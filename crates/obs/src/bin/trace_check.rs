//! Validates an exported Chrome trace file: non-empty, parses as JSON,
//! every `"B"` has a matching `"E"` on its thread, and at least one span
//! completed. CI runs this against the smoke sweep's `--trace` output
//! before uploading it as an artifact.
//!
//! Usage: `trace_check <trace.json> [--expect-stage NAME]...`
//!
//! Exit code 0 on a well-formed trace, 1 otherwise (with a diagnostic on
//! stderr).

use paradrive_obs::json::{self, Value};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: trace_check <trace.json> [--expect-stage NAME]...");
        return ExitCode::FAILURE;
    };
    let mut expected_stages = Vec::new();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--expect-stage" => match args.next() {
                Some(name) => expected_stages.push(name),
                None => {
                    eprintln!("trace_check: --expect-stage needs a stage name");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("trace_check: unknown flag {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    match check(&path, &expected_stages) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("trace_check: {path}: {message}");
            ExitCode::FAILURE
        }
    }
}

fn check(path: &str, expected_stages: &[String]) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    if text.trim().is_empty() {
        return Err("file is empty".to_string());
    }
    let doc = json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing traceEvents array")?;

    let mut stacks: BTreeMap<i64, Vec<String>> = BTreeMap::new();
    let mut spans = 0usize;
    let mut counters = 0usize;
    let mut stage_counts: BTreeMap<String, usize> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        let ph = event
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let tid = event
            .get("tid")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing tid"))? as i64;
        match ph {
            "B" => {
                let name = event
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {i}: B without name"))?;
                if event.get("ts").and_then(Value::as_f64).is_none() {
                    return Err(format!("event {i}: B without numeric ts"));
                }
                stacks.entry(tid).or_default().push(name.to_string());
            }
            "E" => {
                let name = stacks
                    .entry(tid)
                    .or_default()
                    .pop()
                    .ok_or_else(|| format!("event {i}: E without matching B on tid {tid}"))?;
                *stage_counts.entry(name).or_default() += 1;
                spans += 1;
            }
            "C" => counters += 1,
            "M" => {}
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!("unclosed spans on tid {tid}: {stack:?}"));
        }
    }
    if spans == 0 {
        return Err("no completed spans".to_string());
    }
    for stage in expected_stages {
        if !stage_counts.contains_key(stage) {
            return Err(format!(
                "expected stage {stage:?} absent; saw: {:?}",
                stage_counts.keys().collect::<Vec<_>>()
            ));
        }
    }
    let stages: Vec<String> = stage_counts
        .iter()
        .map(|(name, n)| format!("{name}\u{d7}{n}"))
        .collect();
    Ok(format!(
        "ok: {spans} spans ({}), {counters} counters",
        stages.join(", ")
    ))
}

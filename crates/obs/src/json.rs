//! A minimal JSON parser for validating exported traces.
//!
//! The workspace's vendored `serde` shim is intentionally a no-op (marker
//! traits only, no parsing), so round-trip checks — "does the Chrome
//! export parse back?" — need a real reader. This is a small
//! recursive-descent parser over the JSON grammar: enough to load a trace
//! file, walk its events, and assert shape. It is used by the
//! `trace_check` binary (CI's trace-well-formedness gate) and the
//! exporter tests; it is not a general-purpose serde replacement.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (escape sequences decoded).
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` for other variants or missing
    /// keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document; trailing content (other than
/// whitespace) is an error.
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte offset on any grammar violation.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs are not produced by our
                            // exporters; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("peeked a byte");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":"c"},null],"d":{"e":false}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[1].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d").unwrap().get("e").unwrap(), &Value::Bool(false));
    }

    #[test]
    fn decodes_escapes() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"unterminated", "{\"a\" 1}", "1 2", "tru", ""] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
        let err = parse("[1,]").unwrap_err();
        assert!(err.offset > 0 && err.to_string().contains("byte"));
    }

    #[test]
    fn preserves_unicode() {
        let v = parse("\"héllo ✓\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo ✓"));
    }
}

//! `paradrive-obs` — a zero-dependency tracing and metrics layer.
//!
//! The engine's reports follow a strict discipline: everything rendered in
//! a report is a pure function of the inputs, bit-identical at any thread
//! count, while wall-clock truth lives elsewhere. This crate is that
//! "elsewhere": a [`Recorder`] collects per-stage spans (stage name,
//! job/cell label, thread id, start, duration) and monotonic counters,
//! and exports them as line-oriented JSONL or Chrome trace-event JSON
//! (loadable in Perfetto / `chrome://tracing`). Traces are wall-clock
//! bearing by design and therefore *quarantined from deterministic
//! reports* — they ride next to them, never inside them.
//!
//! # Design
//!
//! - **Recorder instances and the process global.** A [`Recorder`] is a
//!   cheaply cloneable handle (`Arc` inside). Subsystems that own a unit
//!   of work (one engine batch) create their own enabled recorder so the
//!   trace is scoped to that run; free-floating hot paths (the simulator
//!   kernels) count into the process-global [`global()`] recorder, which
//!   starts *disabled* and is switched on by `--trace`-style flags.
//! - **Span buffers.** Spans land in one of [`SHARDS`] buffers selected
//!   by a per-thread ordinal, so concurrent workers almost never contend
//!   on a lock; each push is a short uncontended mutex acquire plus a
//!   `Vec` push.
//! - **The disabled path is free.** [`Recorder::span`] on a disabled
//!   recorder returns an inert guard: one relaxed atomic load, one
//!   predictable branch, zero allocations — label closures are never
//!   invoked. [`Counter::incr`] is the same load + branch. This is
//!   enforced by `tests/overhead.rs` with a counting allocator, the same
//!   pattern as `crates/sim/tests/alloc_free.rs`.
//! - **Counters.** Hot paths pre-register a [`Counter`] handle (an
//!   `Arc<AtomicU64>`) once and increment it with a relaxed add; cold
//!   paths fold keyed values in with [`Recorder::add`]. Both surface in
//!   the exported [`Trace`].
//!
//! # Example
//!
//! ```
//! use paradrive_obs::Recorder;
//!
//! let rec = Recorder::new(); // enabled
//! {
//!     let _span = rec.span_labeled("route", || "ghz8#0".to_string());
//!     // ... work ...
//! }
//! rec.add("cache.hits", 17);
//! let trace = rec.take();
//! assert_eq!(trace.spans.len(), 1);
//! assert_eq!(trace.counter("cache.hits"), Some(17));
//! let chrome = trace.to_chrome_json();
//! assert!(chrome.contains("\"traceEvents\""));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
mod trace;

pub use trace::{StageStats, Trace};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of independent span-buffer lock domains; threads map onto them
/// by ordinal, so at realistic worker counts each thread effectively owns
/// its buffer.
pub const SHARDS: usize = 32;

/// One recorded span: a named stage with an optional label, pinned to the
/// thread that ran it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Stage name (static taxonomy: `"route"`, `"consolidate"`, …).
    pub name: &'static str,
    /// Free-form instance label (job name, cell label, seed); empty when
    /// the span was opened without one.
    pub label: String,
    /// Caller-chosen numeric key (e.g. a job index) for cheap grouping.
    pub key: u64,
    /// Ordinal of the recording thread (process-wide, stable within a
    /// thread's lifetime).
    pub tid: u32,
    /// Start time in nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

struct Inner {
    enabled: AtomicBool,
    epoch: Instant,
    buffers: Vec<Mutex<Vec<SpanEvent>>>,
    /// Pre-registered hot counters, deduplicated by name.
    hot: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    /// Cold keyed counters.
    keyed: Mutex<BTreeMap<String, u64>>,
}

/// A tracing/metrics recorder handle; clones share the same buffers.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    fn with_enabled(enabled: bool) -> Self {
        Recorder {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(enabled),
                epoch: Instant::now(),
                buffers: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
                hot: Mutex::new(Vec::new()),
                keyed: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Creates an enabled recorder (the right default for a scoped unit of
    /// work that always wants its own trace).
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// Creates a disabled recorder: spans and counters are no-ops until
    /// [`Recorder::set_enabled`] flips it on.
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    /// Turns recording on or off. Spans already buffered are kept.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the recorder currently accepts events — one relaxed load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this recorder's epoch.
    fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// Opens an unlabeled span; the returned guard records it on drop.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.span_full(name, 0, String::new)
    }

    /// Opens a labeled span. The label closure runs only when the
    /// recorder is enabled, so the disabled path never formats or
    /// allocates.
    #[inline]
    pub fn span_labeled(
        &self,
        name: &'static str,
        label: impl FnOnce() -> String,
    ) -> SpanGuard<'_> {
        self.span_full(name, 0, label)
    }

    /// Opens a labeled span with a numeric grouping key (e.g. a job
    /// index), for consumers that aggregate spans without string
    /// matching.
    #[inline]
    pub fn span_full(
        &self,
        name: &'static str,
        key: u64,
        label: impl FnOnce() -> String,
    ) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard { open: None };
        }
        SpanGuard {
            open: Some(OpenSpan {
                rec: self,
                name,
                key,
                label: label(),
                start_ns: self.now_ns(),
            }),
        }
    }

    fn push(&self, event: SpanEvent) {
        let shard = thread_ordinal() as usize % self.inner.buffers.len();
        self.inner.buffers[shard]
            .lock()
            .expect("span buffer poisoned")
            .push(event);
    }

    /// Registers (or retrieves) a hot counter handle by name. Call once
    /// per site and keep the handle; [`Counter::incr`] is then a relaxed
    /// load plus a relaxed add when enabled.
    pub fn counter(&self, name: &str) -> Counter {
        let mut hot = self.inner.hot.lock().expect("hot counters poisoned");
        let cell = match hot.iter().find(|(n, _)| n == name) {
            Some((_, cell)) => Arc::clone(cell),
            None => {
                let cell = Arc::new(AtomicU64::new(0));
                hot.push((name.to_string(), Arc::clone(&cell)));
                cell
            }
        };
        Counter {
            rec: self.clone(),
            cell,
        }
    }

    /// Adds `delta` to the keyed counter `name` (cold path: takes a lock,
    /// may allocate the key). No-op while disabled.
    pub fn add(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut keyed = self.inner.keyed.lock().expect("keyed counters poisoned");
        match keyed.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                keyed.insert(name.to_string(), delta);
            }
        }
    }

    /// Drains every buffered span and snapshots all counters into a
    /// [`Trace`], resetting the recorder (counters return to zero).
    ///
    /// Spans are sorted by `(start_ns, dur_ns desc, tid, name)` so the
    /// export order is stable for a given set of events.
    pub fn take(&self) -> Trace {
        let mut spans = Vec::new();
        for buffer in &self.inner.buffers {
            spans.append(&mut buffer.lock().expect("span buffer poisoned"));
        }
        spans.sort_by(|a, b| {
            (a.start_ns, std::cmp::Reverse(a.dur_ns), a.tid, a.name).cmp(&(
                b.start_ns,
                std::cmp::Reverse(b.dur_ns),
                b.tid,
                b.name,
            ))
        });
        let mut counters: Vec<(String, u64)> = {
            let hot = self.inner.hot.lock().expect("hot counters poisoned");
            hot.iter()
                .map(|(name, cell)| (name.clone(), cell.swap(0, Ordering::Relaxed)))
                .collect()
        };
        {
            let mut keyed = self.inner.keyed.lock().expect("keyed counters poisoned");
            counters.extend(std::mem::take(&mut *keyed));
        }
        counters.sort();
        Trace { spans, counters }
    }
}

/// A pre-registered monotonic counter handle (see [`Recorder::counter`]).
#[derive(Clone)]
pub struct Counter {
    rec: Recorder,
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `delta` when the recorder is enabled: a relaxed load, a
    /// predictable branch, and a relaxed add — never an allocation.
    #[inline]
    pub fn incr(&self, delta: u64) {
        if self.rec.is_enabled() {
            self.cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (test/diagnostic use; exports go through
    /// [`Recorder::take`]).
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

struct OpenSpan<'a> {
    rec: &'a Recorder,
    name: &'static str,
    key: u64,
    label: String,
    start_ns: u64,
}

/// A scoped span: records one [`SpanEvent`] when dropped. Inert (and
/// allocation-free) when opened on a disabled recorder.
#[must_use = "a span measures the scope it lives in; binding it to _ drops it immediately"]
pub struct SpanGuard<'a> {
    open: Option<OpenSpan<'a>>,
}

impl SpanGuard<'_> {
    /// Nanoseconds elapsed since the span opened (zero on an inert
    /// guard) — lets callers reuse the span's own clock reading.
    pub fn elapsed_ns(&self) -> u64 {
        self.open
            .as_ref()
            .map_or(0, |o| o.rec.now_ns().saturating_sub(o.start_ns))
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            let dur_ns = open.rec.now_ns().saturating_sub(open.start_ns);
            open.rec.push(SpanEvent {
                name: open.name,
                label: open.label,
                key: open.key,
                tid: thread_ordinal(),
                start_ns: open.start_ns,
                dur_ns,
            });
        }
    }
}

/// Opens a span on a recorder, formatting the label lazily:
/// `span!(rec, "route")` or `span!(rec, "route", "{}#{}", name, seed)`.
/// The format arguments are evaluated only when the recorder is enabled.
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr) => {
        $rec.span($name)
    };
    ($rec:expr, $name:expr, $($fmt:tt)+) => {
        $rec.span_labeled($name, || format!($($fmt)+))
    };
}

/// The process-global recorder. Starts **disabled**; `--trace`-style
/// flags enable it (`global().set_enabled(true)`) and export it with
/// [`Recorder::take`]. Hot paths that cannot be handed a scoped recorder
/// (the simulator kernels) count here.
pub fn global() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(Recorder::disabled)
}

/// A small process-wide thread ordinal (not the OS thread id): stable for
/// a thread's lifetime, compact enough to use as a trace `tid`.
fn thread_ordinal() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    thread_local! {
        static ORDINAL: u32 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|t| *t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_with_labels_keys_and_durations() {
        let rec = Recorder::new();
        {
            let _outer = rec.span_full("outer", 7, || "job".to_string());
            std::thread::sleep(std::time::Duration::from_millis(1));
            let _inner = rec.span("inner");
        }
        let trace = rec.take();
        assert_eq!(trace.spans.len(), 2);
        let outer = trace.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = trace.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.label, "job");
        assert_eq!(outer.key, 7);
        assert!(outer.dur_ns >= 1_000_000, "slept a millisecond");
        assert!(inner.start_ns >= outer.start_ns);
        assert_eq!(inner.tid, outer.tid);
        // Drained: a second take is empty.
        assert!(rec.take().spans.is_empty());
    }

    #[test]
    fn disabled_recorder_records_nothing_and_never_formats() {
        let rec = Recorder::disabled();
        {
            let _s = rec.span_labeled("route", || unreachable!("label must not format"));
        }
        rec.add("cache.hits", 3);
        let c = rec.counter("kernel.1q");
        c.incr(5);
        let trace = rec.take();
        assert!(trace.spans.is_empty());
        // The hot counter is registered but untouched; keyed adds were
        // dropped entirely.
        assert_eq!(trace.counter("kernel.1q"), Some(0));
        assert_eq!(trace.counter("cache.hits"), None);
    }

    #[test]
    fn counters_accumulate_and_reset_on_take() {
        let rec = Recorder::new();
        let c = rec.counter("hits");
        let c2 = rec.counter("hits"); // same cell
        c.incr(2);
        c2.incr(3);
        rec.add("keyed", 1);
        rec.add("keyed", 4);
        let trace = rec.take();
        assert_eq!(trace.counter("hits"), Some(5));
        assert_eq!(trace.counter("keyed"), Some(5));
        assert_eq!(rec.take().counter("hits"), Some(0));
    }

    #[test]
    fn concurrent_spans_land_in_one_trace() {
        let rec = Recorder::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let rec = rec.clone();
                scope.spawn(move || {
                    for i in 0..8 {
                        let _s = rec.span_full("work", t * 8 + i, String::new);
                    }
                });
            }
        });
        let trace = rec.take();
        assert_eq!(trace.spans.len(), 32);
        let mut keys: Vec<u64> = trace.spans.iter().map(|s| s.key).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..32).collect::<Vec<u64>>());
    }

    #[test]
    fn global_starts_disabled() {
        // Other tests may toggle it; assert only the initial contract via
        // a fresh disabled recorder mirroring the global constructor.
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let _ = global(); // constructible
    }

    #[test]
    fn span_macro_formats_lazily() {
        let rec = Recorder::new();
        {
            let _s = span!(rec, "route", "{}#{}", "ghz8", 3);
        }
        let trace = rec.take();
        assert_eq!(trace.spans[0].label, "ghz8#3");
        let off = Recorder::disabled();
        {
            struct NoFormat;
            impl std::fmt::Display for NoFormat {
                fn fmt(&self, _: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    panic!("disabled span! formatted its label")
                }
            }
            let _s = span!(off, "route", "{}", NoFormat);
        }
        assert!(off.take().spans.is_empty());
    }
}

//! Benchmark-only crate: see `benches/` for the Criterion targets that
//! regenerate each table and figure of the paper. This library contains
//! small shared fixtures.
#![forbid(unsafe_code)]

use paradrive_circuit::Circuit;
use paradrive_transpiler::consolidate::{consolidate, Item};
use paradrive_transpiler::routing::route_best_of;
use paradrive_transpiler::topology::CouplingMap;

/// Routes and consolidates a benchmark circuit on the 4×4 lattice — the
/// shared front half of the Table VII pipeline.
pub fn routed_items(circuit: &Circuit, seeds: u64) -> Vec<Item> {
    let map = CouplingMap::grid(4, 4);
    let routed = route_best_of(circuit, &map, seeds).expect("routing");
    consolidate(&routed.circuit).expect("consolidation")
}

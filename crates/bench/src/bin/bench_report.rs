//! Measurement-mode benchmark driver: runs the criterion suites with a
//! bounded time budget, collects their machine-readable results, and
//! maintains the `BENCH_<suite>.json` perf-trajectory files at the repo
//! root.
//!
//! ```text
//! cargo run --release -p paradrive-bench --bin bench_report            # refresh baselines
//! cargo run --release -p paradrive-bench --bin bench_report -- --check # regression gate
//! cargo run --release -p paradrive-bench --bin bench_report -- kernels # one suite
//! ```
//!
//! Each tracked suite is run via `cargo bench -p paradrive-bench --bench
//! <suite>` with the vendored criterion shim's `CRITERION_*` environment
//! bounds, so a full sweep stays CI-sized (the shim's env overrides win
//! over any per-suite builder configuration). Results are normalized by a
//! fixed in-process calibration workload (`host_calib_ns`), making the
//! committed numbers comparable across hosts of different speeds:
//! `--check` compares *calibration-relative* minima (see [`compare`] for
//! why minima, not medians) and fails loudly when any benchmark regresses
//! by more than [`TOLERANCE`].
//!
//! The JSON files are line-oriented on purpose — one entry per line — so
//! this binary can read them back with no JSON dependency, and diffs stay
//! reviewable.
//!
//! Alongside the timing entries, each refreshed file carries a
//! `"counters"` block: a workload-characterization snapshot (cache hit
//! rate, kernel-dispatch mix, seed attempts) taken from one in-process
//! smoke batch run with the observability layer enabled. Counter lines
//! use distinct field names, so older readers of the entry lines skip
//! them untouched.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};
use std::time::Instant;

/// The tracked suites, in run order.
const SUITES: [&str; 7] = [
    "kernels",
    "engine",
    "verify",
    "mps",
    "topologies",
    "sweep",
    "fleet",
];

/// Allowed relative regression of a calibration-normalized median before
/// `--check` fails (0.2 = 20%).
const TOLERANCE: f64 = 0.2;

/// Default `CRITERION_*` bounds applied when the caller has not set their
/// own: enough samples for a stable median, small enough that the whole
/// sweep finishes in CI minutes.
const DEFAULT_BOUNDS: [(&str, &str); 3] = [
    ("CRITERION_SAMPLE_SIZE", "12"),
    ("CRITERION_MEASUREMENT_MS", "1500"),
    ("CRITERION_WARMUP_MS", "100"),
];

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    id: String,
    min_ns: f64,
    median_ns: f64,
    mean_ns: f64,
    samples: usize,
}

struct Report {
    suite: String,
    host_calib_ns: f64,
    entries: Vec<Entry>,
}

fn main() -> ExitCode {
    let mut check = false;
    let mut suites: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!("usage: bench_report [--check] [suite ...]");
                eprintln!("suites: {}", SUITES.join(", "));
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => suites.push(other.to_string()),
            other => {
                eprintln!("bench_report: unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    if suites.is_empty() {
        suites = SUITES.iter().map(|s| s.to_string()).collect();
    }
    for s in &suites {
        if !SUITES.contains(&s.as_str()) {
            eprintln!(
                "bench_report: unknown suite `{s}` (tracked: {})",
                SUITES.join(", ")
            );
            return ExitCode::FAILURE;
        }
    }

    let root = repo_root();
    println!("bench_report: calibrating host...");
    let calib = host_calib_ns();
    println!("bench_report: host_calib_ns = {calib:.0}");
    // Refresh mode rewrites the files, so characterize the workload once
    // up front; --check never writes and skips the probe.
    let counters = if check {
        Vec::new()
    } else {
        println!("bench_report: collecting counter snapshot...");
        counter_snapshot()
    };

    let mut failures: Vec<String> = Vec::new();
    for suite in &suites {
        let report = match run_suite(&root, suite, calib) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench_report: suite `{suite}` failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        print_speedups(&report);
        let path = root.join(format!("BENCH_{suite}.json"));
        if check {
            match load_report(&path) {
                Ok(baseline) => {
                    let mut fails = compare(&baseline, &report);
                    if !fails.is_empty() {
                        // One re-measurement before declaring failure: a
                        // regression caused by transient host contention
                        // will not reproduce, a real one will. The
                        // comparison then uses the better of both runs.
                        println!(
                            "bench_report: {suite}: {} candidate regression(s) — re-measuring once to rule out host noise",
                            fails.len()
                        );
                        match run_suite(&root, suite, calib) {
                            Ok(retry) => {
                                fails = compare(&baseline, &merge_min(&report, &retry));
                            }
                            Err(e) => {
                                eprintln!("bench_report: re-measurement of `{suite}` failed: {e}");
                            }
                        }
                    }
                    failures.extend(fails);
                }
                Err(e) => failures.push(format!(
                    "{suite}: no usable baseline at {} ({e}) — run bench_report without --check and commit the result",
                    path.display()
                )),
            }
        } else {
            if let Err(e) = std::fs::write(&path, render(&report, &counters)) {
                eprintln!("bench_report: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("bench_report: wrote {}", path.display());
        }
    }

    if failures.is_empty() {
        if check {
            println!(
                "bench_report: all suites within {:.0}% of baseline",
                TOLERANCE * 100.0
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!();
        eprintln!("bench_report: PERFORMANCE REGRESSION DETECTED");
        for f in &failures {
            eprintln!("  - {f}");
        }
        ExitCode::FAILURE
    }
}

/// The workspace root, resolved from this crate's manifest directory so
/// the binary works from any working directory.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("workspace root exists")
}

/// A fixed floating-point workload timed on this host: the unit that
/// makes committed medians comparable across machines. Minimum of five
/// runs, so transient noise pushes the number up, never down.
fn host_calib_ns() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        let mut x = 0.5f64;
        for i in 0..4_000_000u64 {
            x = x * 1.000_000_119 + (i & 7) as f64 * 1e-9;
        }
        std::hint::black_box(x);
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

/// Runs one suite under the bounded measurement environment and parses
/// the shim's JSONL output.
fn run_suite(root: &Path, suite: &str, calib: f64) -> Result<Report, String> {
    let jsonl = root.join("target").join(format!("criterion-{suite}.jsonl"));
    let _ = std::fs::remove_file(&jsonl);
    std::fs::create_dir_all(jsonl.parent().unwrap()).map_err(|e| e.to_string())?;

    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut cmd = Command::new(cargo);
    cmd.current_dir(root)
        .args(["bench", "-p", "paradrive-bench", "--bench", suite])
        .env("CRITERION_JSON", &jsonl);
    for (key, value) in DEFAULT_BOUNDS {
        if std::env::var_os(key).is_none() {
            cmd.env(key, value);
        }
    }
    println!("bench_report: running suite `{suite}`...");
    let status = cmd
        .status()
        .map_err(|e| format!("cannot spawn cargo: {e}"))?;
    if !status.success() {
        return Err(format!("cargo bench exited with {status}"));
    }

    let raw = std::fs::read_to_string(&jsonl)
        .map_err(|e| format!("no results at {} ({e})", jsonl.display()))?;
    let mut entries: Vec<Entry> = raw.lines().filter_map(parse_entry).collect();
    if entries.is_empty() {
        return Err("suite produced no benchmark entries".to_string());
    }
    entries.sort_by(|a, b| a.id.cmp(&b.id));
    Ok(Report {
        suite: suite.to_string(),
        host_calib_ns: calib,
        entries,
    })
}

/// Prints the lanes-vs-scalar speedup for any id pair that differs only
/// in a `/scalar` / `/lanes` suffix — the tentpole's headline number.
fn print_speedups(report: &Report) {
    for e in &report.entries {
        if let Some(base) = e.id.strip_suffix("/scalar") {
            let lanes_id = format!("{base}/lanes");
            if let Some(l) = report.entries.iter().find(|x| x.id == lanes_id) {
                println!(
                    "bench_report: {base}: lanes speedup {:.2}x (scalar {:.1} ms, lanes {:.1} ms)",
                    e.median_ns / l.median_ns,
                    e.median_ns / 1e6,
                    l.median_ns / 1e6,
                );
            }
        }
    }
}

/// Compares a fresh report against the committed baseline on
/// calibration-normalized *minima*.
///
/// Minima, not medians: wall-clock noise on shared hosts is one-sided
/// (contention only ever adds time), so the per-benchmark minimum is the
/// stable location statistic while medians can swing 30%+ between
/// identical runs. The report files keep median and mean for human
/// reading; the gate reads `min_ns`.
fn compare(baseline: &Report, fresh: &Report) -> Vec<String> {
    let mut failures = Vec::new();
    for old in &baseline.entries {
        let Some(new) = fresh.entries.iter().find(|e| e.id == old.id) else {
            failures.push(format!(
                "{}: benchmark `{}` present in baseline but missing from this run",
                fresh.suite, old.id
            ));
            continue;
        };
        let old_norm = old.min_ns / baseline.host_calib_ns;
        let new_norm = new.min_ns / fresh.host_calib_ns;
        let ratio = new_norm / old_norm;
        if ratio > 1.0 + TOLERANCE {
            failures.push(format!(
                "{}: `{}` regressed {:.0}% (normalized min {:.4} → {:.4})",
                fresh.suite,
                old.id,
                (ratio - 1.0) * 100.0,
                old_norm,
                new_norm,
            ));
        }
    }
    failures
}

/// Merges two runs of the same suite, keeping each benchmark's best
/// (minimum) statistics — the noise-robust view the gate compares.
fn merge_min(a: &Report, b: &Report) -> Report {
    let entries = a
        .entries
        .iter()
        .map(|ea| match b.entries.iter().find(|eb| eb.id == ea.id) {
            Some(eb) => Entry {
                id: ea.id.clone(),
                min_ns: ea.min_ns.min(eb.min_ns),
                median_ns: ea.median_ns.min(eb.median_ns),
                mean_ns: ea.mean_ns.min(eb.mean_ns),
                samples: ea.samples + eb.samples,
            },
            None => ea.clone(),
        })
        .collect();
    Report {
        suite: a.suite.clone(),
        host_calib_ns: a.host_calib_ns,
        entries,
    }
}

/// One in-process smoke batch (sampled verification on, the process-wide
/// recorder enabled) distilled into the counters worth tracking next to
/// the timings: cache hit rate, the kernel-dispatch mix the verification
/// oracles exercised, and routing/verification volumes. The workload is
/// fixed, so these numbers move only when the *code* changes how much
/// work the same input costs.
fn counter_snapshot() -> Vec<(String, f64)> {
    use paradrive_circuit::benchmarks;
    use paradrive_engine::{run_batch, Batch, EngineConfig, VerifyLevel};
    use paradrive_transpiler::topology::CouplingMap;

    paradrive_obs::global().set_enabled(true);
    let mut batch = Batch::new(CouplingMap::grid(3, 3));
    batch.push("GHZ", benchmarks::ghz(6));
    batch.push("QFT", benchmarks::qft(5));
    let config = EngineConfig::default()
        .threads(2)
        .routing_seeds(3)
        .verify(VerifyLevel::Sampled)
        .verify_samples(2);
    let report = run_batch(&batch, &config).expect("counter-snapshot probe batch");
    paradrive_obs::global().set_enabled(false);
    let mut trace = report.trace.clone();
    trace.merge(paradrive_obs::global().take());

    let mut out = Vec::new();
    if let Some(stats) = report.cache_stats() {
        let total = (stats.hits + stats.misses).max(1);
        out.push((
            "cache.hit_rate_pct".to_string(),
            100.0 * stats.hits as f64 / total as f64,
        ));
    }
    for name in [
        "sim.kernel.1q.scalar",
        "sim.kernel.1q.lanes",
        "sim.kernel.2q.scalar",
        "sim.kernel.2q.lanes",
        "route.seed_attempts",
        "verify.samples",
    ] {
        out.push((name.to_string(), trace.counter(name).unwrap_or(0) as f64));
    }
    out
}

/// Renders a report in the line-oriented JSON format. Counter lines use
/// `"counter"`/`"value"` field names — none of the keys [`load_report`]
/// scans for — so the baseline reader skips them by construction.
fn render(report: &Report, counters: &[(String, f64)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"suite\": \"{}\",\n", report.suite));
    out.push_str(&format!(
        "  \"host_calib_ns\": {:.1},\n",
        report.host_calib_ns
    ));
    out.push_str("  \"entries\": [\n");
    for (i, e) in report.entries.iter().enumerate() {
        let comma = if i + 1 < report.entries.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "    {{\"id\":\"{}\",\"min_ns\":{:.1},\"median_ns\":{:.1},\"mean_ns\":{:.1},\"samples\":{}}}{comma}\n",
            e.id, e.min_ns, e.median_ns, e.mean_ns, e.samples
        ));
    }
    if counters.is_empty() {
        out.push_str("  ]\n}\n");
        return out;
    }
    out.push_str("  ],\n");
    out.push_str("  \"counters\": [\n");
    for (i, (name, value)) in counters.iter().enumerate() {
        let comma = if i + 1 < counters.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"counter\":\"{name}\",\"value\":{value:.1}}}{comma}\n"
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Loads a committed `BENCH_<suite>.json` (the same line-oriented format
/// [`render`] writes).
fn load_report(path: &Path) -> Result<Report, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let mut suite = None;
    let mut calib = None;
    let mut entries = Vec::new();
    for line in raw.lines() {
        if let Some(s) = field_str(line, "suite") {
            suite = Some(s);
        }
        if let Some(v) = field_f64(line, "host_calib_ns") {
            calib = Some(v);
        }
        if let Some(e) = parse_entry(line) {
            entries.push(e);
        }
    }
    match (suite, calib) {
        (Some(suite), Some(host_calib_ns)) if !entries.is_empty() => Ok(Report {
            suite,
            host_calib_ns,
            entries,
        }),
        _ => Err("malformed report file".to_string()),
    }
}

/// Parses one `{"id":…,"min_ns":…,…}` line; `None` for anything else.
fn parse_entry(line: &str) -> Option<Entry> {
    Some(Entry {
        id: field_str(line, "id")?,
        min_ns: field_f64(line, "min_ns")?,
        median_ns: field_f64(line, "median_ns")?,
        mean_ns: field_f64(line, "mean_ns")?,
        samples: field_f64(line, "samples")? as usize,
    })
}

/// Extracts a string field from a single-line JSON object, undoing the
/// shim's minimal escaping.
fn field_str(line: &str, key: &str) -> Option<String> {
    let rest = field_raw(line, key)?;
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(ch) = chars.next() {
        match ch {
            '\\' => out.push(chars.next()?),
            '"' => return Some(out),
            _ => out.push(ch),
        }
    }
    None
}

/// Extracts a numeric field from a single-line JSON object.
fn field_f64(line: &str, key: &str) -> Option<f64> {
    let rest = field_raw(line, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The text immediately after `"key":`, whitespace-tolerant.
fn field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let at = line.find(&needle)?;
    let rest = line[at + needle.len()..].trim_start();
    rest.strip_prefix(':').map(str::trim_start)
}

//! Sweep-layer overhead: the streaming sharded executor end to end.
//!
//! Three rows:
//!
//! - `sweep/smoke_single` — the whole smoke grid in one process: plan,
//!   stream, roll up, render. The baseline the sharding machinery must
//!   not regress.
//! - `sweep/smoke_sharded_merge` — the same grid cut into two shards and
//!   recombined with `merge_reports`, including an in-memory JSONL round
//!   trip through the shard-report dialect (no filesystem, so the row
//!   stays stable under the regression gate). Measures the full sharding
//!   tax: double planning, serialization, parsing, coverage validation
//!   and rollup refold.
//! - `sweep/rollup_fold` — the pure monoid layer: folding 10k synthetic
//!   cells into a `RunRollup` and finalizing. This is the per-cell
//!   streaming cost the engine sink pays, isolated from the engine.

use criterion::{criterion_group, criterion_main, Criterion};
use paradrive_repro::sweep::{
    merge_reports, parse_journal, run_sweep, run_sweep_shard, RunRollup, ShardOptions, SweepCell,
    SweepSpec,
};
use std::hint::black_box;
use std::time::Duration;

fn smoke_spec() -> SweepSpec {
    let mut spec = SweepSpec::smoke();
    spec.threads = 1; // keep the measurement single-threaded and stable
    spec
}

fn bench_single(c: &mut Criterion) {
    let spec = smoke_spec();
    c.bench_function("sweep/smoke_single", |b| {
        b.iter(|| {
            let out = run_sweep(black_box(&spec)).unwrap();
            black_box(out.render())
        })
    });
}

fn bench_sharded_merge(c: &mut Criterion) {
    let spec = smoke_spec();
    c.bench_function("sweep/smoke_sharded_merge", |b| {
        b.iter(|| {
            let mut reports = Vec::new();
            for shard in 0..2 {
                let out = run_sweep_shard(
                    black_box(&spec),
                    &ShardOptions {
                        shards: 2,
                        shard,
                        ..ShardOptions::default()
                    },
                )
                .unwrap();
                let name = format!("bench_shard{shard}");
                let contents = parse_journal(&out.to_jsonl(), &name).unwrap();
                reports.push((name, contents));
            }
            let merged = merge_reports(&spec, reports).unwrap();
            black_box(merged.render())
        })
    });
}

fn bench_rollup_fold(c: &mut Criterion) {
    // Synthetic cells cycling over a handful of group keys, like a real
    // grid does; values spread across magnitudes to keep the exact
    // accumulator honest.
    let topologies = ["grid4x4", "ring16", "heavy-hex3", "modular2x8x2"];
    let calibrations = ["uniform", "spread0.25", "hotspot2"];
    let cells: Vec<SweepCell> = (0..10_000u64)
        .map(|i| SweepCell {
            ordinal: i,
            digest: i.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            topology: topologies[i as usize % topologies.len()].to_string(),
            calibration: calibrations[i as usize % calibrations.len()].to_string(),
            benchmark: "GHZ".to_string(),
            costing: "hull",
            verify: "off",
            verification: None,
            suite_seed: 7,
            epoch: 0,
            decision: "-",
            swaps: (i % 9) as usize,
            depth: 20,
            blocks: 12,
            baseline_duration: 1e3 + i as f64,
            optimized_duration: 9e2 + i as f64 * 0.5,
            reduction_pct: 10.0 + (i % 77) as f64 * 1e-3,
            ft_improvement_pct: 2.5,
            optimized_ft: 0.9 - (i % 13) as f64 * 1e-4,
            wall: Duration::ZERO,
        })
        .collect();
    c.bench_function("sweep/rollup_fold", |b| {
        b.iter(|| {
            let mut rollup = RunRollup::new();
            for cell in &cells {
                rollup.absorb(black_box(cell));
            }
            black_box((rollup.by_topology(), rollup.by_calibration()))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_single, bench_sharded_merge, bench_rollup_fold
}
criterion_main!(benches);

//! One Criterion target per figure: regenerates the figure's data series.

use criterion::{criterion_group, criterion_main, Criterion};
use paradrive_hamiltonian::ConversionGain;
use paradrive_optimizer::{Options, TemplateSpec, TemplateSynthesizer};
use paradrive_speedlimit::monitor::MonitorQubitModel;
use paradrive_speedlimit::Characterized;
use paradrive_weyl::magic::coordinates;
use paradrive_weyl::trajectory::Trajectory;
use paradrive_weyl::WeylPoint;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::FRAC_PI_2;
use std::hint::black_box;

/// Fig. 1 / Fig. 8d: a Cartan trajectory of a sampled pulse.
fn bench_fig1(c: &mut Criterion) {
    let us: Vec<_> = (0..=16)
        .map(|k| ConversionGain::new(FRAC_PI_2, 0.3).unitary(k as f64 / 16.0))
        .collect();
    c.bench_function("fig1/cartan_trajectory", |b| {
        b.iter(|| Trajectory::from_unitaries(black_box(&us)).unwrap())
    });
}

/// Fig. 3a: the native conversion/gain sweep.
fn bench_fig3a(c: &mut Criterion) {
    c.bench_function("fig3a/native_gate_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..8 {
                for j in 0..8 {
                    let tc = FRAC_PI_2 * i as f64 / 7.0;
                    let tg = FRAC_PI_2 * j as f64 / 7.0;
                    let u = ConversionGain::new(tc, tg).unitary(1.0);
                    acc += coordinates(&u).unwrap().c1;
                }
            }
            acc
        })
    });
}

/// Fig. 3c: the monitor-qubit sweep plus boundary fit.
fn bench_fig3c(c: &mut Criterion) {
    let model = MonitorQubitModel::new(Characterized::snail(), 0.02, 0.01);
    c.bench_function("fig3c/monitor_sweep_and_fit", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            let grid = model.sweep(16, 24, 20, &mut rng);
            grid.fit_boundary().unwrap()
        })
    });
}

/// Fig. 7: parallel-driven K=1 sampling.
fn bench_fig7(c: &mut Criterion) {
    let spec = TemplateSpec::iswap_basis(1);
    c.bench_function("fig7/parallel_k1_sampling", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            paradrive_coverage::sampler::sample_template_points(&spec, 50, &mut rng).unwrap()
        })
    });
}

/// Fig. 8: a bounded synthesis run (one restart, capped iterations).
fn bench_fig8(c: &mut Criterion) {
    let spec = TemplateSpec::iswap_basis(1);
    let synth = TemplateSynthesizer::new(spec)
        .with_restarts(1)
        .with_options(Options {
            max_iter: 150,
            ..Options::default()
        });
    c.bench_function("fig8/synthesis_150_steps", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            synth
                .synthesize_to_point(WeylPoint::CNOT, &mut rng)
                .unwrap()
        })
    });
}

/// Fig. 6: one fractional-basis coverage point at a small budget.
fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6/fractional_point_small", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(6);
            paradrive_core::codesign::fractional_iswap_curve(&[0.5], &[0.25], 80, 40, &mut rng)
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1, bench_fig3a, bench_fig3c, bench_fig7, bench_fig8, bench_fig6
}
criterion_main!(benches);

//! One Criterion target per duration/infidelity table: regenerates the
//! table's data inside the measurement loop.

use criterion::{criterion_group, criterion_main, Criterion};
use paradrive_core::flow::gate_infidelities;
use paradrive_core::rules::{total_duration, BaselineSqrtIswap, ParallelDriveRules};
use paradrive_core::scoring::{duration_table, paper_lambda};
use paradrive_coverage::scores::{k_scores, PAPER_LAMBDA};
use paradrive_speedlimit::StandardSlf;
use paradrive_transpiler::fidelity::FidelityModel;
use paradrive_transpiler::CostModel;
use paradrive_weyl::WeylPoint;
use std::hint::black_box;

/// Table I: K-score computation against a fixed Haar sample (stack built
/// once outside the loop; the scored lookup is what the harness reruns).
fn bench_table1(c: &mut Criterion) {
    use paradrive_coverage::scores::{build_stack, BuildOptions};
    use paradrive_optimizer::TemplateSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(1);
    let stack = build_stack(
        "sqrt_iSWAP",
        WeylPoint::SQRT_ISWAP,
        |k| TemplateSpec::sqrt_iswap_basis(k).without_parallel_drive(),
        BuildOptions {
            max_k: 3,
            samples_per_k: 400,
            exterior_restarts: 0,
            full_coverage_probe: 0,
        },
        &mut rng,
    )
    .unwrap();
    let haar = paradrive_weyl::haar::sample_points(200, &mut rng);
    c.bench_function("table1/k_scores_sqrt_iswap", |b| {
        b.iter(|| k_scores(black_box(&stack), black_box(&haar), PAPER_LAMBDA))
    });
}

/// Table II: the full three-SLF duration table.
fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2/duration_tables_all_slfs", |b| {
        b.iter(|| {
            for slf in StandardSlf::all() {
                black_box(duration_table(slf.as_slf(), 0.0, paper_lambda()).unwrap());
            }
        })
    });
}

/// Table III: durations with D[1Q] = 0.25.
fn bench_table3(c: &mut Criterion) {
    let slf = paradrive_speedlimit::Linear::normalized();
    c.bench_function("table3/duration_table_1q_025", |b| {
        b.iter(|| black_box(duration_table(&slf, 0.25, paper_lambda()).unwrap()))
    });
}

/// Table V: optimized cost-model evaluation over named targets.
fn bench_table5(c: &mut Criterion) {
    let model = ParallelDriveRules::new(0.25);
    // Warm the lazily built coverage stacks outside the loop.
    let _ = model.cost(WeylPoint::new(1.2, 0.6, 0.3));
    let targets = [
        WeylPoint::CNOT,
        WeylPoint::SWAP,
        WeylPoint::B,
        WeylPoint::new(1.2, 0.6, 0.3),
    ];
    c.bench_function("table5/parallel_drive_costs", |b| {
        b.iter(|| {
            targets
                .iter()
                .map(|&t| total_duration(model.cost(t), 0.25))
                .sum::<f64>()
        })
    });
}

/// Table VI: the gate-infidelity table.
fn bench_table6(c: &mut Criterion) {
    // Warm the baseline stack too.
    let _ = BaselineSqrtIswap::new(0.25).cost(WeylPoint::new(1.2, 0.6, 0.3));
    c.bench_function("table6/gate_infidelities", |b| {
        b.iter(|| black_box(gate_infidelities(0.25, FidelityModel::paper())))
    });
}

criterion_group!(
    benches,
    bench_table1,
    bench_table2,
    bench_table3,
    bench_table5,
    bench_table6
);
criterion_main!(benches);

//! Topology-zoo routing throughput: one engine batch of family-class
//! workloads per coupling map, so the rows isolate how SWAP-search cost
//! scales with topology sparsity (clique chips route in O(1) hops, the
//! ring pays long detours, heavy-hex sits between).

use criterion::{criterion_group, criterion_main, Criterion};
use paradrive_circuit::benchmarks;
use paradrive_engine::{run_batch, Batch, EngineConfig};
use paradrive_transpiler::topology::CouplingMap;
use std::hint::black_box;

fn zoo() -> Vec<CouplingMap> {
    vec![
        CouplingMap::grid(4, 4),
        CouplingMap::ring(16),
        CouplingMap::heavy_hex(3),
        CouplingMap::modular(2, 8, 2).expect("valid modular spec"),
    ]
}

/// GHZ + linear VQE + QAOA at 16 qubits — CX/Rzz workloads that fit every
/// zoo member and skip coverage-stack initialization.
fn workload(batch: &mut Batch) {
    batch.push("ghz16", benchmarks::ghz(16));
    batch.push("vqe16", benchmarks::vqe_linear(16, 2, 3));
    batch.push("qaoa16", benchmarks::qaoa(16, 1, 3));
}

fn bench_topology_zoo(c: &mut Criterion) {
    let config = EngineConfig::default().routing_seeds(4);
    for map in zoo() {
        let id = format!("topologies/{}", map.label());
        let mut batch = Batch::new(map);
        workload(&mut batch);
        c.bench_function(&id, |b| {
            b.iter(|| run_batch(black_box(&batch), &config).unwrap())
        });
    }
}

/// The heterogeneous path itself: all four topologies in one batch, which
/// is the shape the `sweep` CLI submits.
fn bench_heterogeneous_batch(c: &mut Criterion) {
    let config = EngineConfig::default().routing_seeds(4);
    let maps: Vec<_> = zoo().into_iter().map(std::sync::Arc::new).collect();
    let mut batch = Batch::with_shared(std::sync::Arc::clone(&maps[0]));
    for map in &maps {
        batch.push_on(
            format!("ghz16@{}", map.label()),
            benchmarks::ghz(16),
            std::sync::Arc::clone(map),
        );
        batch.push_on(
            format!("qaoa16@{}", map.label()),
            benchmarks::qaoa(16, 1, 3),
            std::sync::Arc::clone(map),
        );
    }
    c.bench_function("topologies/heterogeneous_8job", |b| {
        b.iter(|| run_batch(black_box(&batch), &config).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_topology_zoo, bench_heterogeneous_batch
}
criterion_main!(benches);

//! Coverage-set construction benchmarks (Table I / Table IV / Fig. 4 /
//! Fig. 9 machinery) and convex-hull kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use paradrive_coverage::hull::ConvexRegion;
use paradrive_coverage::region::CoverageSet;
use paradrive_coverage::scores::{build_stack, BuildOptions};
use paradrive_optimizer::TemplateSpec;
use paradrive_weyl::WeylPoint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_hull_build(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let pts: Vec<[f64; 3]> = (0..500)
        .map(|_| {
            [
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
            ]
        })
        .collect();
    c.bench_function("hull/build_500pts", |b| {
        b.iter(|| ConvexRegion::from_points(black_box(&pts), 1e-9))
    });
    let region = ConvexRegion::from_points(&pts, 1e-9);
    c.bench_function("hull/containment_query", |b| {
        b.iter(|| region.contains(black_box([0.5, 0.5, 0.5]), 1e-9))
    });
}

fn bench_coverage_set(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let pts = paradrive_weyl::haar::sample_points(400, &mut rng);
    c.bench_function("fig4/coverage_set_from_400_haar_points", |b| {
        b.iter(|| CoverageSet::from_points(black_box(&pts)))
    });
}

/// Table IV / Fig. 9: a small parallel-drive stack build.
fn bench_pd_stack(c: &mut Criterion) {
    c.bench_function("fig9/pd_stack_small", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            build_stack(
                "iSWAP+PD",
                WeylPoint::ISWAP,
                TemplateSpec::iswap_basis,
                BuildOptions {
                    max_k: 1,
                    samples_per_k: 60,
                    exterior_restarts: 0,
                    full_coverage_probe: 0,
                },
                &mut rng,
            )
            .unwrap()
        })
    });
}

/// Table I / Fig. 4: a small plain stack build.
fn bench_plain_stack(c: &mut Criterion) {
    c.bench_function("fig4/plain_stack_small", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            build_stack(
                "sqrt_iSWAP",
                WeylPoint::SQRT_ISWAP,
                |k| TemplateSpec::sqrt_iswap_basis(k).without_parallel_drive(),
                BuildOptions {
                    max_k: 2,
                    samples_per_k: 100,
                    exterior_restarts: 0,
                    full_coverage_probe: 0,
                },
                &mut rng,
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hull_build, bench_coverage_set, bench_pd_stack, bench_plain_stack
}
criterion_main!(benches);

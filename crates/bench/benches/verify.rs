//! Verification-oracle throughput: what each rigor level costs per
//! circuit, and what the fused consolidated-block replay buys over the
//! raw routed gate stream (the engine always takes the fused path).

use criterion::{criterion_group, criterion_main, Criterion};
use paradrive_circuit::benchmarks;
use paradrive_engine::{run_batch, Batch, EngineConfig, VerifyLevel};
use paradrive_transpiler::consolidate::consolidate;
use paradrive_transpiler::routing::route;
use paradrive_transpiler::topology::CouplingMap;
use paradrive_verify::{verify, Physical, VerifyConfig};
use std::hint::black_box;

/// Exact oracle on a dense-range circuit: qft(8) routed on a 3×3 grid
/// (≤ 9-qubit support → 512 basis columns).
fn bench_exact_oracle(c: &mut Criterion) {
    let map = CouplingMap::grid(3, 3);
    let circuit = benchmarks::qft(8);
    let routed = route(&circuit, &map, 0).expect("routable");
    let items = consolidate(&routed.circuit).expect("consolidatable");
    let cfg = VerifyConfig::default().level(VerifyLevel::Exact);
    c.bench_function("verify/exact/qft8-grid3x3", |b| {
        b.iter(|| {
            verify(
                black_box(&circuit),
                &Physical::Consolidated {
                    items: &items,
                    n_qubits: map.n_qubits(),
                },
                &routed.layout,
                &cfg,
            )
            .unwrap()
        })
    });
}

/// Monte-Carlo oracle on the wide (16-qubit) regime, fused vs unfused:
/// the consolidated stream applies one 4×4 per block where the raw routed
/// circuit replays every primitive gate.
fn bench_sampled_fusion(c: &mut Criterion) {
    let map = CouplingMap::grid(4, 4);
    let circuit = benchmarks::qft(16);
    let routed = route(&circuit, &map, 0).expect("routable");
    let items = consolidate(&routed.circuit).expect("consolidatable");
    let cfg = VerifyConfig::default().samples(2);
    for (label, physical) in [
        (
            "fused-blocks",
            Physical::Consolidated {
                items: &items,
                n_qubits: map.n_qubits(),
            },
        ),
        ("raw-gates", Physical::Circuit(&routed.circuit)),
    ] {
        c.bench_function(&format!("verify/sampled/qft16-{label}"), |b| {
            b.iter(|| verify(black_box(&circuit), &physical, &routed.layout, &cfg).unwrap())
        });
    }
}

/// The engine-integrated path: a family-class batch with Monte-Carlo
/// verification fanned out across the worker pool.
fn bench_engine_verified_batch(c: &mut Criterion) {
    let mut batch = Batch::new(CouplingMap::grid(4, 4));
    batch.push("ghz16", benchmarks::ghz(16));
    batch.push("vqe16", benchmarks::vqe_linear(16, 2, 3));
    let config = EngineConfig::default()
        .routing_seeds(2)
        .verify(VerifyLevel::Sampled)
        .verify_samples(2);
    c.bench_function("verify/engine/sampled-batch", |b| {
        b.iter(|| run_batch(black_box(&batch), &config).unwrap())
    });
}

criterion_group!(
    benches,
    bench_exact_oracle,
    bench_sampled_fusion,
    bench_engine_verified_batch
);
criterion_main!(benches);

//! Transpilation-pipeline benchmarks: the Fig. 3b and Table VII flows.

use criterion::{criterion_group, criterion_main, Criterion};
use paradrive_bench::routed_items;
use paradrive_circuit::benchmarks;
use paradrive_core::rules::{BaselineSqrtIswap, ParallelDriveRules};
use paradrive_transpiler::consolidate::{class_histogram, consolidate};
use paradrive_transpiler::routing::route;
use paradrive_transpiler::schedule::schedule;
use paradrive_transpiler::topology::CouplingMap;
use paradrive_transpiler::CostModel;
use paradrive_weyl::WeylPoint;
use std::hint::black_box;

fn bench_routing(c: &mut Criterion) {
    let map = CouplingMap::grid(4, 4);
    let qft = benchmarks::qft(16);
    c.bench_function("table7/route_qft16", |b| {
        b.iter(|| route(black_box(&qft), &map, 1).unwrap())
    });
}

fn bench_consolidation(c: &mut Criterion) {
    let map = CouplingMap::grid(4, 4);
    let routed = route(&benchmarks::qft(16), &map, 1).unwrap();
    c.bench_function("fig3b/consolidate_qft16", |b| {
        b.iter(|| consolidate(black_box(&routed.circuit)).unwrap())
    });
    let items = consolidate(&routed.circuit).unwrap();
    c.bench_function("fig3b/class_histogram", |b| {
        b.iter(|| class_histogram(black_box(&items)))
    });
}

fn bench_schedule(c: &mut Criterion) {
    let items = routed_items(&benchmarks::qft(16), 2);
    // Warm the lazily built stacks.
    let _ = BaselineSqrtIswap::new(0.25).cost(WeylPoint::new(1.2, 0.6, 0.3));
    let _ = ParallelDriveRules::new(0.25).cost(WeylPoint::new(1.2, 0.6, 0.3));
    c.bench_function("table7/schedule_baseline_qft16", |b| {
        b.iter(|| schedule(black_box(&items), &BaselineSqrtIswap::new(0.25), 16))
    });
    c.bench_function("table7/schedule_optimized_qft16", |b| {
        b.iter(|| schedule(black_box(&items), &ParallelDriveRules::new(0.25), 16))
    });
}

fn bench_suite_generation(c: &mut Criterion) {
    c.bench_function("table7/generate_suite", |b| {
        b.iter(|| benchmarks::standard_suite(black_box(7)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_routing, bench_consolidation, bench_schedule, bench_suite_generation
}
criterion_main!(benches);

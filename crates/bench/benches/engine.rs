//! Batch-engine throughput: the cached multi-threaded engine against the
//! sequential one-circuit-at-a-time baseline.
//!
//! Two regimes:
//!
//! - `engine/synth/*` — general-class blocks costed by per-target template
//!   synthesis (the paper's Algorithm-1 discipline,
//!   [`Costing::Synthesized`]): milliseconds per distinct class. The
//!   `1thread_nocache` row is the sequential baseline; `threads_cached` is
//!   the engine. The classes repeat across the whole batch, so the
//!   decomposition cache collapses hundreds of syntheses into a handful —
//!   this is where the >1 batch speedup comes from even on one core, and
//!   it multiplies with the thread count on real hardware.
//! - `engine/hull/*` — the precomputed-coverage costing
//!   ([`Costing::Hull`]), nanoseconds per query: a floor check that the
//!   engine's fan-out machinery doesn't cost more than it saves.

use criterion::{criterion_group, criterion_main, Criterion};
use paradrive_circuit::{benchmarks, Circuit, TwoQ};
use paradrive_engine::{run_batch, Batch, Costing, EngineConfig};
use paradrive_transpiler::topology::CouplingMap;
use std::f64::consts::PI;
use std::hint::black_box;

/// 32 six-qubit circuits, each carrying the same four general-class
/// `CPhase(θ)·SWAP` blocks (interleaved `CX`s close the pair blocks), so
/// every circuit past the first re-encounters cached classes.
fn synth_batch_32() -> Batch {
    let angles = [PI / 3.0, PI / 5.0, PI / 7.0, 2.0 * PI / 5.0];
    let mut batch = Batch::new(CouplingMap::line(6));
    for i in 0..32 {
        let mut c = Circuit::new(6);
        for &theta in &angles {
            c.push_2q(TwoQ::CPhase(theta), 0, 1);
            c.push_2q(TwoQ::Swap, 0, 1);
            c.push_2q(TwoQ::Cx, 1, 2);
        }
        batch.push(format!("gadget{i}"), c);
    }
    batch
}

/// 36 family-class workloads (GHZ chains, linear VQE, QAOA rings) on the
/// paper's 4×4 lattice — no synthesis, no coverage-stack init, so this
/// times the engine's routing/consolidation fan-out itself.
fn hull_batch_36() -> Batch {
    let mut batch = Batch::new(CouplingMap::grid(4, 4));
    for i in 0..12 {
        let n = 10 + (i % 6);
        batch.push(format!("ghz{n}_{i}"), benchmarks::ghz(n));
        batch.push(
            format!("vqe{n}_{i}"),
            benchmarks::vqe_linear(n, 2, i as u64),
        );
        batch.push(format!("qaoa{n}_{i}"), benchmarks::qaoa(n, 1, i as u64));
    }
    batch
}

fn bench_synth_costing(c: &mut Criterion) {
    let batch = synth_batch_32();
    assert!(
        batch.len() >= 32,
        "speedup claim needs a >=32-circuit batch"
    );
    let base = EngineConfig::default()
        .routing_seeds(2)
        .costing(Costing::Synthesized);
    let configs = [
        ("engine/synth/1thread_nocache", base.threads(1).cache(false)),
        ("engine/synth/1thread_cached", base.threads(1)),
        ("engine/synth/4threads_cached", base.threads(4)),
    ];
    for (id, config) in configs {
        c.bench_function(id, |b| {
            b.iter(|| run_batch(black_box(&batch), &config).unwrap())
        });
    }
}

fn bench_hull_costing(c: &mut Criterion) {
    let batch = hull_batch_36();
    let base = EngineConfig::default().routing_seeds(4);
    let configs = [
        ("engine/hull/1thread_nocache", base.threads(1).cache(false)),
        ("engine/hull/4threads_cached", base.threads(4)),
    ];
    for (id, config) in configs {
        c.bench_function(id, |b| {
            b.iter(|| run_batch(black_box(&batch), &config).unwrap())
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_synth_costing, bench_hull_costing
}
criterion_main!(benches);

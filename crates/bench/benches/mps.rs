//! Matrix-product-state simulator and oracle throughput: what a bonded
//! run costs at the default χ=64 budget, what the transfer-matrix overlap
//! costs on top, and what the wide-circuit verification path — the MPS
//! backend's reason to exist — costs end to end on a routed 64-qubit QFT.

use criterion::{criterion_group, criterion_main, Criterion};
use paradrive_circuit::benchmarks;
use paradrive_sim::{MpsOptions, MpsState};
use paradrive_transpiler::consolidate::consolidate;
use paradrive_transpiler::routing::route;
use paradrive_transpiler::topology::CouplingMap;
use paradrive_verify::{verify, Physical, VerifyConfig, VerifyLevel};
use std::hint::black_box;

/// Entangling workloads through the bonded simulator: QAOA entangles
/// genuinely (χ grows to the cap), QFT from `|0…0⟩` stays bond-1 so its
/// cost is pure per-gate overhead — the two ends of the χ spectrum.
fn bench_mps_run(c: &mut Criterion) {
    let qaoa = benchmarks::qaoa(12, 2, 7);
    let qft = benchmarks::qft(16);
    // Bond-capped but budget-free: the QAOA workload truncates on
    // purpose, so the default 1e-6 budget would abort it.
    let opts = MpsOptions::exact().max_bond(64);
    c.bench_function("mps/run/qaoa12-bond64", |b| {
        b.iter(|| MpsState::run(black_box(&qaoa), opts).unwrap())
    });
    c.bench_function("mps/run/qft16-bond64", |b| {
        b.iter(|| MpsState::run(black_box(&qft), opts).unwrap())
    });
}

/// The transfer-matrix overlap on two independently evolved 16-qubit
/// states: the O(n·χ⁴) contraction every MPS verdict ends with.
fn bench_mps_overlap(c: &mut Criterion) {
    let opts = MpsOptions::exact().max_bond(64);
    let a = MpsState::run(&benchmarks::qaoa(12, 2, 7), opts).unwrap();
    let b2 = MpsState::run(&benchmarks::qaoa(12, 2, 8), opts).unwrap();
    c.bench_function("mps/overlap/qaoa12", |b| {
        b.iter(|| black_box(&a).overlap(black_box(&b2)))
    });
}

/// The full MPS oracle on a routed + consolidated circuit, at both ends
/// of the width axis: a 16-qubit grid workload and the wide-benchmark
/// QFT-64 on heavy-hex — the acceptance path that must stay CI-sized.
fn bench_mps_oracle(c: &mut Criterion) {
    let cfg = VerifyConfig::default().level(VerifyLevel::Mps);

    let map = CouplingMap::grid(4, 4);
    let circuit = benchmarks::qft(16);
    let routed = route(&circuit, &map, 0).expect("routable");
    let items = consolidate(&routed.circuit).expect("consolidatable");
    c.bench_function("verify/mps/qft16-grid4x4", |b| {
        b.iter(|| {
            verify(
                black_box(&circuit),
                &Physical::Consolidated {
                    items: &items,
                    n_qubits: map.n_qubits(),
                },
                &routed.layout,
                &cfg,
            )
            .unwrap()
        })
    });

    let wide_map = CouplingMap::heavy_hex(6);
    let wide = benchmarks::qft(64);
    let wide_routed = route(&wide, &wide_map, 0).expect("routable");
    let wide_items = consolidate(&wide_routed.circuit).expect("consolidatable");
    c.bench_function("verify/mps/qft64-heavyhex6", |b| {
        b.iter(|| {
            verify(
                black_box(&wide),
                &Physical::Consolidated {
                    items: &wide_items,
                    n_qubits: wide_map.n_qubits(),
                },
                &wide_routed.layout,
                &cfg,
            )
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_mps_run, bench_mps_overlap, bench_mps_oracle);
criterion_main!(benches);

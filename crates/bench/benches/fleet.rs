//! Fleet-layer overhead: drift timelines and the policy-driven epoch
//! replay, end to end through the sweep executor.
//!
//! Three rows:
//!
//! - `fleet/timeline_gen` — generating a seeded drift timeline (the
//!   lognormal walk plus dead-edge events) for a 16-qubit device. This
//!   is pure pre-processing the drifted sweep pays before any engine
//!   work.
//! - `fleet/smoke_adaptive` — a small drifted sweep under the adaptive
//!   policy: plan, replay three epochs through `run_fleet`, roll up,
//!   render. The baseline the recalibration machinery must not regress
//!   against the static `sweep/smoke_single` path.
//! - `fleet/rollup_fleet_fold` — the pure fleet-summary monoid: folding
//!   10k decision-carrying cells and finalizing the per-epoch rollup.
//!   This is the extra per-cell streaming cost a drifted sweep pays over
//!   a static one.

use criterion::{criterion_group, criterion_main, Criterion};
use paradrive_engine::RetranspilePolicy;
use paradrive_repro::sweep::{run_sweep, RunRollup, SweepCell, SweepSpec};
use paradrive_transpiler::calibration::drift::{CalibrationTimeline, DriftSpec};
use paradrive_transpiler::calibration::Calibration;
use paradrive_transpiler::fidelity::FidelityModel;
use paradrive_transpiler::topology::CouplingMap;
use std::hint::black_box;
use std::time::Duration;

fn bench_timeline_gen(c: &mut Criterion) {
    let map = CouplingMap::grid(4, 4);
    let cal = Calibration::uniform(&map, FidelityModel::paper());
    let spec = DriftSpec {
        epochs: 8,
        qubit_sigma: 0.03,
        edge_sigma: 0.05,
        dead_edges: 2,
        seed: 29,
    };
    c.bench_function("fleet/timeline_gen", |b| {
        b.iter(|| {
            CalibrationTimeline::generate(black_box(&cal), black_box(&map), black_box(&spec))
                .unwrap()
        })
    });
}

fn bench_smoke_adaptive(c: &mut Criterion) {
    let mut spec = SweepSpec::smoke();
    spec.threads = 1; // keep the measurement single-threaded and stable
    spec.topologies = vec!["grid4x4".into()];
    spec.benchmarks = vec!["GHZ".into()];
    spec.drift = Some("walk0.02dead1".into());
    spec.epochs = 3;
    spec.policy = RetranspilePolicy::Adaptive {
        max_fidelity_loss: 0.05,
    };
    c.bench_function("fleet/smoke_adaptive", |b| {
        b.iter(|| {
            let out = run_sweep(black_box(&spec)).unwrap();
            black_box(out.render())
        })
    });
}

fn bench_rollup_fleet_fold(c: &mut Criterion) {
    // Synthetic decision-carrying cells over a handful of epochs, like a
    // drifted grid produces.
    let decisions = ["fresh", "kept", "retrans"];
    let cells: Vec<SweepCell> = (0..10_000u64)
        .map(|i| SweepCell {
            ordinal: i,
            digest: i.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            topology: "grid4x4".to_string(),
            calibration: "uniform".to_string(),
            benchmark: "GHZ".to_string(),
            costing: "hull",
            verify: "off",
            verification: None,
            suite_seed: 7,
            epoch: (i % 8) as usize,
            decision: if i % 8 == 0 {
                "fresh"
            } else {
                decisions[(i % 3) as usize]
            },
            swaps: (i % 9) as usize,
            depth: 20,
            blocks: 12,
            baseline_duration: 1e3 + i as f64,
            optimized_duration: 9e2 + i as f64 * 0.5,
            reduction_pct: 10.0 + (i % 77) as f64 * 1e-3,
            ft_improvement_pct: 2.5,
            optimized_ft: 0.9 - (i % 13) as f64 * 1e-4,
            wall: Duration::ZERO,
        })
        .collect();
    c.bench_function("fleet/rollup_fleet_fold", |b| {
        b.iter(|| {
            let mut rollup = RunRollup::new();
            for cell in &cells {
                rollup.absorb(black_box(cell));
            }
            black_box(rollup.fleet())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_timeline_gen, bench_smoke_adaptive, bench_rollup_fleet_fold
}
criterion_main!(benches);

//! Micro-kernels underpinning every experiment: matrix exponentials,
//! Weyl-coordinate extraction, Haar sampling, simplex steps — and the
//! statevector gate-apply kernels, measured on both engines so the
//! scalar-vs-lanes speedup is part of the tracked perf trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use paradrive_circuit::{Circuit, OneQ, TwoQ};
use paradrive_linalg::expm::expm;
use paradrive_linalg::qr::random_unitary;
use paradrive_linalg::{paulis, C64};
use paradrive_optimizer::{NelderMead, Options};
use paradrive_sim::{KernelPath, State};
use paradrive_weyl::magic::coordinates;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_expm(c: &mut Criterion) {
    let h = paulis::xx()
        .scale(C64::real(0.7))
        .add(&paulis::yy().scale(C64::real(0.3)))
        .scale(C64::new(0.0, -1.0));
    c.bench_function("kernels/expm_4x4", |b| b.iter(|| expm(black_box(&h))));
}

fn bench_coordinates(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let u = random_unitary(4, &mut rng);
    c.bench_function("kernels/weyl_coordinates", |b| {
        b.iter(|| coordinates(black_box(&u)).unwrap())
    });
}

fn bench_haar(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("kernels/haar_random_unitary", |b| {
        b.iter(|| random_unitary(4, &mut rng))
    });
}

fn bench_nelder_mead(c: &mut Criterion) {
    let f = |x: &[f64]| x.iter().map(|v| (v - 0.3) * (v - 0.3)).sum::<f64>();
    let nm = NelderMead::new(Options {
        max_iter: 200,
        ..Options::default()
    });
    c.bench_function("kernels/nelder_mead_10d", |b| {
        b.iter(|| nm.minimize(&f, black_box(&[1.0; 10])))
    });
}

/// A 20-qubit apply-heavy layer spanning every kernel regime: contiguous
/// high-bit 1Q/2Q runs, the strided low-bit 1Q patterns, and a low-bit 2Q
/// block — 17 gates, all unitary, so repeated application is stable.
fn apply_heavy_20q() -> Circuit {
    let n = 20;
    let mut c = Circuit::new(n);
    for q in (0..n).step_by(3) {
        c.push_1q(OneQ::H, q);
    }
    for a in [0, 5, 9, 13, 17] {
        c.push_2q(TwoQ::Cx, a, a + 1);
    }
    for q in (1..n).step_by(5) {
        c.push_1q(OneQ::Rz(0.3), q);
    }
    c.push_2q(TwoQ::ISwap, 18, 19);
    c
}

/// The tentpole's headline number: the same 20-qubit workload through the
/// scalar reference kernels and the lane-parallel engine. The tracked
/// expectation is lanes ≥ 1.5× scalar on AVX2 hosts.
fn bench_statevector_apply(c: &mut Criterion) {
    let circuit = apply_heavy_20q();
    let mut st = State::zero(20);
    for (path, label) in [(KernelPath::Scalar, "scalar"), (KernelPath::Lanes, "lanes")] {
        // Warm once so the register (and any lazily-built state) exists
        // before timing starts.
        st.apply_circuit_with(&circuit, path).unwrap();
        c.bench_function(&format!("kernels/apply_heavy_20q/{label}"), |b| {
            b.iter(|| st.apply_circuit_with(black_box(&circuit), path).unwrap())
        });
    }
}

criterion_group!(
    benches,
    bench_expm,
    bench_coordinates,
    bench_haar,
    bench_nelder_mead,
    bench_statevector_apply
);
criterion_main!(benches);

//! Micro-kernels underpinning every experiment: matrix exponentials,
//! Weyl-coordinate extraction, Haar sampling and simplex steps.

use criterion::{criterion_group, criterion_main, Criterion};
use paradrive_linalg::expm::expm;
use paradrive_linalg::qr::random_unitary;
use paradrive_linalg::{paulis, C64};
use paradrive_optimizer::{NelderMead, Options};
use paradrive_weyl::magic::coordinates;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_expm(c: &mut Criterion) {
    let h = paulis::xx()
        .scale(C64::real(0.7))
        .add(&paulis::yy().scale(C64::real(0.3)))
        .scale(C64::new(0.0, -1.0));
    c.bench_function("kernels/expm_4x4", |b| b.iter(|| expm(black_box(&h))));
}

fn bench_coordinates(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let u = random_unitary(4, &mut rng);
    c.bench_function("kernels/weyl_coordinates", |b| {
        b.iter(|| coordinates(black_box(&u)).unwrap())
    });
}

fn bench_haar(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("kernels/haar_random_unitary", |b| {
        b.iter(|| random_unitary(4, &mut rng))
    });
}

fn bench_nelder_mead(c: &mut Criterion) {
    let f = |x: &[f64]| x.iter().map(|v| (v - 0.3) * (v - 0.3)).sum::<f64>();
    let nm = NelderMead::new(Options {
        max_iter: 200,
        ..Options::default()
    });
    c.bench_function("kernels/nelder_mead_10d", |b| {
        b.iter(|| nm.minimize(&f, black_box(&[1.0; 10])))
    });
}

criterion_group!(
    benches,
    bench_expm,
    bench_coordinates,
    bench_haar,
    bench_nelder_mead
);
criterion_main!(benches);

//! Polynomial root finding via the Durand–Kerner (Weierstrass) iteration.
//!
//! Used to extract the spectrum of the 4×4 magic-basis gamma matrix: its
//! characteristic polynomial is a quartic with complex coefficients whose
//! roots all lie on the unit circle, a regime where Durand–Kerner converges
//! quickly and robustly.

use crate::complex::C64;
use crate::LinalgError;

/// Evaluates the monic polynomial
/// `x^n + coeffs[n-1]·x^(n-1) + … + coeffs[0]` at `x` via Horner's rule.
pub fn eval_monic(coeffs: &[C64], x: C64) -> C64 {
    let mut acc = C64::ONE;
    for &c in coeffs.iter().rev() {
        acc = acc * x + c;
    }
    acc
}

/// Finds all roots of the monic polynomial with the given low-to-high
/// coefficients (`coeffs[k]` multiplies `x^k`; the leading coefficient is an
/// implicit 1), using Durand–Kerner simultaneous iteration.
///
/// # Errors
///
/// Returns [`LinalgError::NoConvergence`] if the iteration has not settled
/// after 500 sweeps (does not occur for well-scaled inputs such as
/// characteristic polynomials of unitary matrices).
///
/// # Example
///
/// ```
/// use paradrive_linalg::{C64, poly::roots};
/// // x² + 1 = 0  →  ±i
/// let r = roots(&[C64::ONE, C64::ZERO]).unwrap();
/// assert!(r.iter().any(|z| z.approx_eq(C64::I, 1e-9)));
/// assert!(r.iter().any(|z| z.approx_eq(-C64::I, 1e-9)));
/// ```
pub fn roots(coeffs: &[C64]) -> Result<Vec<C64>, LinalgError> {
    let n = coeffs.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    // Initial guesses: points on a circle with a non-real offset angle to
    // avoid symmetric stagnation.
    let radius = 1.0 + coeffs.iter().map(|c| c.norm()).fold(0.0_f64, f64::max);
    let mut z: Vec<C64> = (0..n)
        .map(|k| {
            C64::from_polar(
                radius.min(2.0),
                0.4 + 2.0 * std::f64::consts::PI * k as f64 / n as f64,
            )
        })
        .collect();

    for _ in 0..500 {
        let mut max_step = 0.0_f64;
        for i in 0..n {
            let mut denom = C64::ONE;
            for j in 0..n {
                if i != j {
                    denom *= z[i] - z[j];
                }
            }
            if denom.norm() < 1e-300 {
                // Perturb coincident estimates.
                z[i] += C64::new(1e-8, 1e-8);
                continue;
            }
            let delta = eval_monic(coeffs, z[i]) / denom;
            z[i] -= delta;
            max_step = max_step.max(delta.norm());
        }
        if max_step < 1e-14 {
            return Ok(z);
        }
    }
    // Accept slightly looser convergence before giving up.
    let worst = z
        .iter()
        .map(|&zi| eval_monic(coeffs, zi).norm())
        .fold(0.0_f64, f64::max);
    if worst < 1e-8 {
        Ok(z)
    } else {
        Err(LinalgError::NoConvergence("Durand-Kerner root finding"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn contains_root(rs: &[C64], target: C64, tol: f64) -> bool {
        rs.iter().any(|z| z.approx_eq(target, tol))
    }

    #[test]
    fn linear() {
        // x + 3 = 0
        let r = roots(&[C64::real(3.0)]).unwrap();
        assert!(contains_root(&r, C64::real(-3.0), 1e-10));
    }

    #[test]
    fn quadratic_real_roots() {
        // (x-1)(x-2) = x² - 3x + 2
        let r = roots(&[C64::real(2.0), C64::real(-3.0)]).unwrap();
        assert!(contains_root(&r, C64::real(1.0), 1e-9));
        assert!(contains_root(&r, C64::real(2.0), 1e-9));
    }

    #[test]
    fn quartic_unit_circle() {
        // Roots e^{iθ} for θ in {0.3, 1.1, -2.0, 2.9} — the regime used for
        // Weyl-coordinate extraction.
        let thetas = [0.3, 1.1, -2.0, 2.9];
        let rs: Vec<C64> = thetas.iter().map(|&t| C64::cis(t)).collect();
        // Expand ∏(x - r_k).
        let mut coeffs = vec![C64::ONE]; // constant polynomial 1, low-to-high
        for &r in &rs {
            let mut next = vec![C64::ZERO; coeffs.len() + 1];
            for (k, &c) in coeffs.iter().enumerate() {
                next[k + 1] += c;
                next[k] -= c * r;
            }
            coeffs = next;
        }
        // Drop the leading 1 to get the monic low-to-high form.
        let monic = &coeffs[..coeffs.len() - 1];
        let found = roots(monic).unwrap();
        for &r in &rs {
            assert!(contains_root(&found, r, 1e-8), "missing root {r}");
        }
    }

    #[test]
    fn repeated_roots() {
        // (x-1)² = x² - 2x + 1: repeated roots converge more slowly but
        // must still land within loose tolerance.
        let r = roots(&[C64::real(1.0), C64::real(-2.0)]).unwrap();
        for z in r {
            assert!(z.approx_eq(C64::ONE, 1e-4));
        }
    }

    #[test]
    fn empty_polynomial() {
        assert!(roots(&[]).unwrap().is_empty());
    }

    proptest! {
        #[test]
        fn prop_roots_satisfy_polynomial(a in -2.0..2.0f64, b in -2.0..2.0f64,
                                         c in -2.0..2.0f64, d in -2.0..2.0f64) {
            let coeffs = [C64::new(a, b), C64::new(c, d), C64::ZERO];
            let rs = roots(&coeffs).unwrap();
            prop_assert_eq!(rs.len(), 3);
            for z in rs {
                prop_assert!(eval_monic(&coeffs, z).norm() < 1e-6);
            }
        }
    }
}

//! Self-contained complex linear algebra for small dense matrices.
//!
//! `paradrive-linalg` provides everything the rest of the `paradrive`
//! workspace needs to manipulate two-qubit unitaries without pulling in an
//! external linear-algebra stack:
//!
//! - [`C64`] — a complex scalar with full arithmetic and transcendentals.
//! - [`CMat`] — a dense, row-major complex matrix with products, Kronecker
//!   products, determinants, adjoints and norms.
//! - [`expm`](expm::expm) — the matrix exponential via scaling-and-squaring.
//! - [`eig`] — a complex Jacobi eigensolver for Hermitian matrices and a
//!   characteristic-polynomial eigenvalue path for general small matrices.
//! - [`poly`](poly::roots) — Durand–Kerner (Weierstrass) polynomial roots.
//! - [`qr`] — complex Householder QR and Haar-random unitary sampling.
//! - [`svd`](svd::svd) — one-sided Jacobi singular value decomposition.
//! - [`paulis`] — the standard 1-qubit operator zoo.
//!
//! # Example
//!
//! ```
//! use paradrive_linalg::{C64, CMat, expm::expm, paulis};
//!
//! // exp(-i θ/2 X) is a rotation about X.
//! let theta = std::f64::consts::FRAC_PI_2;
//! let h = paulis::x().scale(C64::new(0.0, -theta / 2.0));
//! let u = expm(&h);
//! assert!(u.is_unitary(1e-12));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod eig;
pub mod expm;
pub mod mat;
pub mod paulis;
pub mod poly;
pub mod qr;
pub mod svd;

pub use complex::C64;
pub use mat::CMat;

/// Errors produced by `paradrive-linalg` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes; the payload is
    /// `(rows_a, cols_a, rows_b, cols_b)`.
    ShapeMismatch(usize, usize, usize, usize),
    /// An operation that requires a square matrix received a rectangular one.
    NotSquare(usize, usize),
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence(&'static str),
    /// The matrix was singular to working precision.
    Singular,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch(ra, ca, rb, cb) => {
                write!(f, "shape mismatch: left is {ra}x{ca}, right is {rb}x{cb}")
            }
            LinalgError::NotSquare(r, c) => {
                write!(f, "operation requires a square matrix, got {r}x{c}")
            }
            LinalgError::NoConvergence(what) => {
                write!(f, "{what} did not converge within its iteration budget")
            }
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod send_sync_tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
        assert_send_sync::<C64>();
        assert_send_sync::<CMat>();
    }
}

//! The standard one-qubit operator zoo.
//!
//! Constructors for the Pauli matrices, Clifford gates, and parametrized
//! rotations, all as 2×2 [`CMat`] values. Two-qubit tensor helpers live here
//! too since they are pure Kronecker combinations.

use crate::complex::C64;
use crate::mat::CMat;

/// Pauli X.
pub fn x() -> CMat {
    CMat::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]])
}

/// Pauli Y.
pub fn y() -> CMat {
    CMat::from_rows(&[&[C64::ZERO, -C64::I], &[C64::I, C64::ZERO]])
}

/// Pauli Z.
pub fn z() -> CMat {
    CMat::from_rows(&[&[C64::ONE, C64::ZERO], &[C64::ZERO, -C64::ONE]])
}

/// 2×2 identity.
pub fn i2() -> CMat {
    CMat::identity(2)
}

/// Hadamard gate.
pub fn h() -> CMat {
    let s = C64::real(std::f64::consts::FRAC_1_SQRT_2);
    CMat::from_rows(&[&[s, s], &[s, -s]])
}

/// Phase gate S = diag(1, i).
pub fn s() -> CMat {
    CMat::diag(&[C64::ONE, C64::I])
}

/// T gate = diag(1, e^{iπ/4}).
pub fn t() -> CMat {
    CMat::diag(&[C64::ONE, C64::cis(std::f64::consts::FRAC_PI_4)])
}

/// Qubit lowering operator `σ⁻ = |0⟩⟨1|`.
pub fn sigma_minus() -> CMat {
    CMat::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ZERO, C64::ZERO]])
}

/// Qubit raising operator `σ⁺ = |1⟩⟨0|`.
pub fn sigma_plus() -> CMat {
    CMat::from_rows(&[&[C64::ZERO, C64::ZERO], &[C64::ONE, C64::ZERO]])
}

/// Rotation about X: `RX(θ) = exp(-i θ/2 X)`.
///
/// ```
/// use paradrive_linalg::paulis;
/// let u = paulis::rx(std::f64::consts::PI);
/// // RX(π) = -iX
/// assert!(u.approx_eq(&paulis::x().scale(-paradrive_linalg::C64::I), 1e-12));
/// ```
pub fn rx(theta: f64) -> CMat {
    let c = C64::real((theta / 2.0).cos());
    let s = C64::new(0.0, -(theta / 2.0).sin());
    CMat::from_rows(&[&[c, s], &[s, c]])
}

/// Rotation about Y: `RY(θ) = exp(-i θ/2 Y)`.
pub fn ry(theta: f64) -> CMat {
    let c = C64::real((theta / 2.0).cos());
    let s = C64::real((theta / 2.0).sin());
    CMat::from_rows(&[&[c, -s], &[s, c]])
}

/// Rotation about Z: `RZ(θ) = exp(-i θ/2 Z)`.
pub fn rz(theta: f64) -> CMat {
    CMat::diag(&[C64::cis(-theta / 2.0), C64::cis(theta / 2.0)])
}

/// General Euler-angle 1Q unitary `U3(θ, φ, λ) = RZ(φ)·RY(θ)·RZ(λ)` up to
/// global phase (the OpenQASM convention).
pub fn u3(theta: f64, phi: f64, lambda: f64) -> CMat {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    CMat::from_rows(&[
        &[C64::real(c), -C64::cis(lambda) * s],
        &[C64::cis(phi) * s, C64::cis(phi + lambda) * c],
    ])
}

/// Tensor `a ⊗ b` of two 1Q operators, yielding a 4×4 two-qubit operator.
pub fn tensor(a: &CMat, b: &CMat) -> CMat {
    a.kron(b)
}

/// `XX = X ⊗ X` two-qubit operator.
pub fn xx() -> CMat {
    x().kron(&x())
}

/// `YY = Y ⊗ Y` two-qubit operator.
pub fn yy() -> CMat {
    y().kron(&y())
}

/// `ZZ = Z ⊗ Z` two-qubit operator.
pub fn zz() -> CMat {
    z().kron(&z())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expm::expm;

    const TOL: f64 = 1e-12;

    #[test]
    fn rotations_are_unitary() {
        for &th in &[0.0, 0.3, 1.0, std::f64::consts::PI, 5.0] {
            assert!(rx(th).is_unitary(TOL));
            assert!(ry(th).is_unitary(TOL));
            assert!(rz(th).is_unitary(TOL));
        }
    }

    #[test]
    fn rotation_matches_expm() {
        let th = 0.77;
        for (rot, pauli) in [(rx(th), x()), (ry(th), y()), (rz(th), z())] {
            let gen = pauli.scale(C64::new(0.0, -th / 2.0));
            assert!(rot.approx_eq(&expm(&gen), 1e-12));
        }
    }

    #[test]
    fn u3_special_cases() {
        // U3(0,0,0) = I
        assert!(u3(0.0, 0.0, 0.0).approx_eq(&i2(), TOL));
        // U3(π/2, 0, π) = H up to global phase.
        let u = u3(std::f64::consts::FRAC_PI_2, 0.0, std::f64::consts::PI);
        assert!(crate::mat::process_fidelity(&u, &h()) > 1.0 - 1e-12);
    }

    #[test]
    fn ladder_operators() {
        // σ⁺σ⁻ = |1⟩⟨1|
        let n = sigma_plus().mul(&sigma_minus());
        assert!(n.approx_eq(&CMat::diag(&[C64::ZERO, C64::ONE]), TOL));
        // σ⁻ + σ⁺ = X
        assert!(sigma_minus().add(&sigma_plus()).approx_eq(&x(), TOL));
    }

    #[test]
    fn two_qubit_paulis_square_to_identity() {
        for m in [xx(), yy(), zz()] {
            assert!(m.mul(&m).approx_eq(&CMat::identity(4), TOL));
            assert!(m.is_hermitian(TOL));
        }
    }

    #[test]
    fn s_and_t_compose() {
        // T² = S
        assert!(t().mul(&t()).approx_eq(&s(), TOL));
        // S² = Z
        assert!(s().mul(&s()).approx_eq(&z(), TOL));
    }
}

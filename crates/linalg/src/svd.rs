//! Singular value decomposition via one-sided (Hestenes) Jacobi.
//!
//! The MPS simulator truncates bond dimensions by SVD, so this module
//! provides a dependency-free decomposition `A = U · diag(s) · V†` for
//! arbitrary rectangular complex matrices. One-sided Jacobi is the right
//! fit here: it needs only column rotations (no bidiagonalization), it is
//! unconditionally stable, and it computes the small singular values to
//! high *relative* accuracy — exactly the values a truncation decision
//! hinges on.
//!
//! The implementation orthogonalizes the columns of `A` in place with
//! complex plane rotations until every column pair is numerically
//! orthogonal; the column norms are then the singular values, the
//! normalized columns the left vectors, and the accumulated rotations the
//! right vectors. Matrices with more columns than rows are handled by
//! decomposing the adjoint and swapping the factors.

use crate::complex::C64;
use crate::mat::CMat;
use crate::LinalgError;

/// The result of an SVD: `a = u · diag(s) · vt` with `s` sorted in
/// descending order.
///
/// `u` is `m × k` and `vt` is `k × n` where `k = min(m, n)`. Columns of
/// `u` (rows of `vt`) paired with a zero singular value are zero vectors,
/// not arbitrary orthonormal completions — every consumer here either
/// truncates them away or multiplies them by the zero singular value.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (columns, `m × k`).
    pub u: CMat,
    /// Singular values, descending, all `≥ 0`.
    pub s: Vec<f64>,
    /// Adjoint of the right singular vectors (`k × n`).
    pub vt: CMat,
}

/// Maximum number of full Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 64;

/// Relative off-diagonal tolerance: a column pair counts as orthogonal
/// when `|⟨a_p, a_q⟩| ≤ EPS · ‖a_p‖ ‖a_q‖`.
const EPS: f64 = 1e-13;

/// Decomposes `a = u · diag(s) · vt` by one-sided Jacobi.
///
/// # Errors
///
/// Returns [`LinalgError::NoConvergence`] if the column pairs fail to
/// orthogonalize within the sweep budget (does not happen for the
/// well-scaled matrices quantum simulation produces).
///
/// # Example
///
/// ```
/// use paradrive_linalg::svd::svd;
/// use paradrive_linalg::{C64, CMat};
///
/// let a = CMat::from_fn(3, 2, |i, j| C64::new((i + 2 * j) as f64, i as f64));
/// let f = svd(&a).unwrap();
/// let rebuilt = f.u.mul(&CMat::diag(&f.s.iter().map(|&x| C64::real(x)).collect::<Vec<_>>())).mul(&f.vt);
/// assert!(rebuilt.approx_eq(&a, 1e-10));
/// ```
pub fn svd(a: &CMat) -> Result<Svd, LinalgError> {
    if a.rows() >= a.cols() {
        svd_tall(a)
    } else {
        // A = (A†)† = (U' S V'†)† = V' S U'†: decompose the adjoint and
        // swap the factors.
        let f = svd_tall(&a.adjoint())?;
        let k = f.s.len();
        let u = CMat::from_fn(a.rows(), k, |i, j| f.vt[(j, i)].conj());
        let vt = CMat::from_fn(k, a.cols(), |i, j| f.u[(j, i)].conj());
        Ok(Svd { u, s: f.s, vt })
    }
}

/// One-sided Jacobi on a matrix with `rows ≥ cols`.
fn svd_tall(a: &CMat) -> Result<Svd, LinalgError> {
    let m = a.rows();
    let n = a.cols();
    let mut w = a.clone();
    let mut v = CMat::identity(n);

    // Columns whose norm has collapsed to the rounding floor of ‖A‖ are
    // numerically-zero directions of a rank-deficient input. They must be
    // frozen, not rotated: two noise columns have an O(1) mutual angle no
    // rotation sequence ever converges, and their content is below the
    // reconstruction error anyway.
    let fro = a.frobenius_norm();
    let floor = 8.0 * (m as f64).sqrt() * f64::EPSILON * fro;
    let floor2 = floor * floor;

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries of the (p, q) column pair.
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = C64::ZERO;
                for i in 0..m {
                    let ap = w[(i, p)];
                    let aq = w[(i, q)];
                    alpha += ap.norm_sqr();
                    beta += aq.norm_sqr();
                    gamma += ap.conj() * aq;
                }
                if alpha <= floor2 || beta <= floor2 {
                    continue;
                }
                let g = gamma.norm();
                if g <= EPS * (alpha * beta).sqrt() || g == 0.0 {
                    continue;
                }
                rotated = true;
                // Phase out γ, then a real Jacobi rotation diagonalizes
                // the remaining symmetric 2×2 Gram block.
                let phase = C64::cis(-gamma.arg());
                let tau = (beta - alpha) / (2.0 * g);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // Columns: a_p ← c·a_p − s·φ·a_q ; a_q ← s·φ̄·a_p + c·a_q,
                // applied to W and accumulated into V.
                for i in 0..m {
                    let ap = w[(i, p)];
                    let aq = w[(i, q)];
                    w[(i, p)] = ap.scale(c) - (phase * aq).scale(s);
                    w[(i, q)] = (phase.conj() * ap).scale(s) + aq.scale(c);
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = vp.scale(c) - (phase * vq).scale(s);
                    v[(i, q)] = (phase.conj() * vp).scale(s) + vq.scale(c);
                }
            }
        }
        if !rotated {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(LinalgError::NoConvergence("one-sided Jacobi SVD"));
    }

    // Column norms are the singular values; sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n)
        .map(|j| (0..m).map(|i| w[(i, j)].norm_sqr()).sum::<f64>().sqrt())
        .collect();
    order.sort_by(|&x, &y| norms[y].partial_cmp(&norms[x]).expect("finite norms"));

    let mut u = CMat::zeros(m, n);
    let mut s = Vec::with_capacity(n);
    let mut vt = CMat::zeros(n, n);
    for (k, &j) in order.iter().enumerate() {
        // Frozen noise columns report an exact 0, not their noise norm,
        // so rank decisions downstream (MPS bond truncation) stay clean.
        let sv = if norms[j] <= floor { 0.0 } else { norms[j] };
        s.push(sv);
        if sv > 0.0 {
            let inv = 1.0 / sv;
            for i in 0..m {
                u[(i, k)] = w[(i, j)].scale(inv);
            }
        }
        for i in 0..n {
            vt[(k, i)] = v[(i, j)].conj();
        }
    }
    Ok(Svd { u, s, vt })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::{ginibre, random_unitary};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reconstruct(f: &Svd) -> CMat {
        let d: Vec<C64> = f.s.iter().map(|&x| C64::real(x)).collect();
        f.u.mul(&CMat::diag(&d)).mul(&f.vt)
    }

    fn check(a: &CMat, tol: f64) {
        let f = svd(a).unwrap();
        assert!(
            reconstruct(&f).approx_eq(a, tol),
            "U S V† does not rebuild A ({}x{})",
            a.rows(),
            a.cols()
        );
        // Descending, non-negative.
        for w in f.s.windows(2) {
            assert!(w[0] >= w[1], "singular values not sorted: {:?}", f.s);
        }
        assert!(f.s.iter().all(|&x| x >= 0.0));
        // Left/right vectors orthonormal wherever the singular value is
        // nonzero.
        let k = f.s.len();
        for p in 0..k {
            for q in 0..k {
                if f.s[p] == 0.0 || f.s[q] == 0.0 {
                    continue;
                }
                let mut uu = C64::ZERO;
                for i in 0..a.rows() {
                    uu += f.u[(i, p)].conj() * f.u[(i, q)];
                }
                let want = if p == q { 1.0 } else { 0.0 };
                assert!(
                    (uu.norm() - want).abs() < tol,
                    "U columns not orthonormal at ({p},{q}): {uu:?}"
                );
            }
        }
    }

    #[test]
    fn random_square_and_rectangular_matrices_decompose() {
        let mut rng = StdRng::seed_from_u64(42);
        for (m, n) in [(1, 1), (2, 2), (4, 4), (6, 3), (3, 6), (8, 2), (2, 8)] {
            let g = ginibre(m.max(n), &mut rng);
            let a = CMat::from_fn(m, n, |i, j| g[(i, j)]);
            check(&a, 1e-10);
        }
    }

    #[test]
    fn unitary_input_has_unit_singular_values() {
        let mut rng = StdRng::seed_from_u64(7);
        let u = random_unitary(4, &mut rng);
        let f = svd(&u).unwrap();
        for &x in &f.s {
            assert!((x - 1.0).abs() < 1e-10, "singular value {x} != 1");
        }
    }

    #[test]
    fn rank_deficient_matrix_reports_zero_tail() {
        // Two identical columns: rank 1, second singular value 0.
        let a = CMat::from_fn(3, 2, |i, _| C64::real(i as f64 + 1.0));
        let f = svd(&a).unwrap();
        assert!(f.s[0] > 1.0);
        assert!(f.s[1] < 1e-12, "rank-1 matrix has s[1] = {}", f.s[1]);
        assert!(reconstruct(&f).approx_eq(&a, 1e-10));
    }

    #[test]
    fn zero_matrix_decomposes() {
        let a = CMat::zeros(3, 2);
        let f = svd(&a).unwrap();
        assert!(f.s.iter().all(|&x| x == 0.0));
        assert!(reconstruct(&f).approx_eq(&a, 1e-12));
    }

    #[test]
    fn frobenius_norm_matches_singular_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = ginibre(5, &mut rng);
        let f = svd(&a).unwrap();
        let fro2: f64 = f.s.iter().map(|&x| x * x).sum();
        assert!((fro2.sqrt() - a.frobenius_norm()).abs() < 1e-9);
    }
}

//! The [`CMat`] dense complex matrix.
//!
//! Row-major, heap-backed, sized for the small (2×2 … 16×16) matrices that
//! appear in two-qubit gate analysis. Operations panic on shape mismatch via
//! the checked `try_*` variants' expectations; fallible entry points return
//! [`LinalgError`].

use crate::complex::C64;
use crate::LinalgError;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major complex matrix.
///
/// # Example
///
/// ```
/// use paradrive_linalg::{C64, CMat};
///
/// let x = CMat::from_rows(&[
///     &[C64::ZERO, C64::ONE],
///     &[C64::ONE, C64::ZERO],
/// ]);
/// assert!(x.is_unitary(1e-12));
/// assert_eq!(x.mul(&x), CMat::identity(2));
/// ```
#[derive(Clone, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMat {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[C64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        CMat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a `rows × cols` matrix by evaluating `f(r, c)` per entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> C64) -> Self {
        let mut m = CMat::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Builds a square diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[C64]) -> Self {
        let n = entries.len();
        let mut m = CMat::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major entries.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major entries.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Checked entry access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Option<&C64> {
        if r < self.rows && c < self.cols {
            Some(&self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree; use [`CMat::try_mul`] for a
    /// fallible variant.
    pub fn mul(&self, rhs: &CMat) -> CMat {
        self.try_mul(rhs).expect("matrix product shape mismatch")
    }

    /// Fallible matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `self.cols() != rhs.rows()`.
    pub fn try_mul(&self, rhs: &CMat) -> Result<CMat, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch(
                self.rows, self.cols, rhs.rows, rhs.cols,
            ));
        }
        let mut out = CMat::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == C64::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    out.data[r * rhs.cols + c] += a * rhs.data[k * rhs.cols + c];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[C64]) -> Vec<C64> {
        let mut out = vec![C64::ZERO; self.rows];
        self.mul_vec_into(v, &mut out);
        out
    }

    /// Matrix–vector product into a caller-owned buffer — the
    /// allocation-free form of [`CMat::mul_vec`] (bit-identical results)
    /// for hot loops that reuse `out`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn mul_vec_into(&self, v: &[C64], out: &mut [C64]) {
        assert_eq!(v.len(), self.cols, "matrix-vector shape mismatch");
        assert_eq!(out.len(), self.rows, "output length mismatch");
        for (r, slot) in out.iter_mut().enumerate() {
            let mut acc = C64::ZERO;
            for (c, &vc) in v.iter().enumerate() {
                acc += self.data[r * self.cols + c] * vc;
            }
            *slot = acc;
        }
    }

    /// Entrywise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a + b)
            .collect();
        CMat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Entrywise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a - b)
            .collect();
        CMat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: C64) -> CMat {
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| a * s).collect(),
        }
    }

    /// Applies `f` to every entry.
    pub fn map(&self, f: impl Fn(C64) -> C64) -> CMat {
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |r, c| self.data[c * self.cols + r])
    }

    /// Entrywise complex conjugate.
    pub fn conj(&self) -> CMat {
        self.map(C64::conj)
    }

    /// Conjugate transpose `A†`.
    pub fn adjoint(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |r, c| {
            self.data[c * self.cols + r].conj()
        })
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self.data[i * self.cols + i]).sum()
    }

    /// Frobenius norm `sqrt(Σ |a_ij|²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Maximum absolute column sum (operator 1-norm).
    pub fn one_norm(&self) -> f64 {
        (0..self.cols)
            .map(|c| {
                (0..self.rows)
                    .map(|r| self.data[r * self.cols + c].norm())
                    .sum()
            })
            .fold(0.0_f64, f64::max)
    }

    /// Maximum entry modulus.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|a| a.norm()).fold(0.0_f64, f64::max)
    }

    /// Kronecker product `self ⊗ rhs`.
    ///
    /// ```
    /// use paradrive_linalg::{CMat, paulis};
    /// let xi = paulis::x().kron(&CMat::identity(2));
    /// assert_eq!(xi.rows(), 4);
    /// ```
    pub fn kron(&self, rhs: &CMat) -> CMat {
        let mut out = CMat::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for r1 in 0..self.rows {
            for c1 in 0..self.cols {
                let a = self.data[r1 * self.cols + c1];
                if a == C64::ZERO {
                    continue;
                }
                for r2 in 0..rhs.rows {
                    for c2 in 0..rhs.cols {
                        out[(r1 * rhs.rows + r2, c1 * rhs.cols + c2)] =
                            a * rhs.data[r2 * rhs.cols + c2];
                    }
                }
            }
        }
        out
    }

    /// Determinant via LU decomposition with partial pivoting.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn det(&self) -> C64 {
        assert!(self.is_square(), "determinant requires a square matrix");
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut det = C64::ONE;
        for k in 0..n {
            // Partial pivot on |entry|.
            let mut piv = k;
            let mut best = lu[k * n + k].norm();
            for r in (k + 1)..n {
                let v = lu[r * n + k].norm();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best == 0.0 {
                return C64::ZERO;
            }
            if piv != k {
                for c in 0..n {
                    lu.swap(k * n + c, piv * n + c);
                }
                det = -det;
            }
            let pivot = lu[k * n + k];
            det *= pivot;
            for r in (k + 1)..n {
                let factor = lu[r * n + k] / pivot;
                for c in k..n {
                    let sub = factor * lu[k * n + c];
                    lu[r * n + c] -= sub;
                }
            }
        }
        det
    }

    /// Inverse via Gauss–Jordan elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular input and
    /// [`LinalgError::Singular`] when no pivot can be found.
    pub fn inverse(&self) -> Result<CMat, LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare(self.rows, self.cols));
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = CMat::identity(n);
        for k in 0..n {
            let mut piv = k;
            let mut best = a[(k, k)].norm();
            for r in (k + 1)..n {
                if a[(r, k)].norm() > best {
                    best = a[(r, k)].norm();
                    piv = r;
                }
            }
            if best < 1e-300 {
                return Err(LinalgError::Singular);
            }
            if piv != k {
                for c in 0..n {
                    let t = a[(k, c)];
                    a[(k, c)] = a[(piv, c)];
                    a[(piv, c)] = t;
                    let t = inv[(k, c)];
                    inv[(k, c)] = inv[(piv, c)];
                    inv[(piv, c)] = t;
                }
            }
            let pivot = a[(k, k)];
            for c in 0..n {
                a[(k, c)] /= pivot;
                inv[(k, c)] /= pivot;
            }
            for r in 0..n {
                if r == k {
                    continue;
                }
                let factor = a[(r, k)];
                if factor == C64::ZERO {
                    continue;
                }
                for c in 0..n {
                    let s = factor * a[(k, c)];
                    a[(r, c)] -= s;
                    let s = factor * inv[(k, c)];
                    inv[(r, c)] -= s;
                }
            }
        }
        Ok(inv)
    }

    /// Integer matrix power by repeated squaring.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn powi(&self, mut p: u32) -> CMat {
        assert!(self.is_square(), "powi requires a square matrix");
        let mut result = CMat::identity(self.rows);
        let mut base = self.clone();
        while p > 0 {
            if p & 1 == 1 {
                result = result.mul(&base);
            }
            base = base.mul(&base);
            p >>= 1;
        }
        result
    }

    /// Approximate entrywise equality with tolerance `tol` on each entry's
    /// modulus of difference.
    pub fn approx_eq(&self, rhs: &CMat, tol: f64) -> bool {
        self.rows == rhs.rows
            && self.cols == rhs.cols
            && self
                .data
                .iter()
                .zip(&rhs.data)
                .all(|(&a, &b)| (a - b).norm() <= tol)
    }

    /// True when `A† A ≈ I` to tolerance `tol` (per entry).
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.is_square()
            && self
                .adjoint()
                .mul(self)
                .approx_eq(&CMat::identity(self.rows), tol)
    }

    /// True when `A ≈ A†` to tolerance `tol` (per entry).
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.approx_eq(&self.adjoint(), tol)
    }

    /// Hilbert–Schmidt inner product `tr(A† B)`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hs_inner(&self, rhs: &CMat) -> C64 {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a.conj() * b)
            .sum()
    }
}

/// Process fidelity between two unitaries of dimension `d`:
/// `|tr(U† V)|² / d²`. Equal to 1 iff `U` and `V` agree up to global phase.
///
/// # Panics
///
/// Panics on shape mismatch or non-square input.
///
/// ```
/// use paradrive_linalg::{CMat, mat::process_fidelity, paulis};
/// let f = process_fidelity(&paulis::x(), &paulis::x().scale(paradrive_linalg::C64::I));
/// assert!((f - 1.0).abs() < 1e-12);
/// ```
pub fn process_fidelity(u: &CMat, v: &CMat) -> f64 {
    assert!(u.is_square() && u.rows() == v.rows() && v.is_square());
    let d = u.rows() as f64;
    let t = u.hs_inner(v).norm();
    (t * t) / (d * d)
}

/// Average gate fidelity between two unitaries of dimension `d`:
/// `(d·F_pro + 1) / (d + 1)` where `F_pro` is [`process_fidelity`].
pub fn average_gate_fidelity(u: &CMat, v: &CMat) -> f64 {
    let d = u.rows() as f64;
    (d * process_fidelity(u, v) + 1.0) / (d + 1.0)
}

impl Index<(usize, usize)> for CMat {
    type Output = C64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &C64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut C64 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add for &CMat {
    type Output = CMat;
    fn add(self, rhs: &CMat) -> CMat {
        CMat::add(self, rhs)
    }
}

impl Sub for &CMat {
    type Output = CMat;
    fn sub(self, rhs: &CMat) -> CMat {
        CMat::sub(self, rhs)
    }
}

impl Mul for &CMat {
    type Output = CMat;
    fn mul(self, rhs: &CMat) -> CMat {
        CMat::mul(self, rhs)
    }
}

impl Mul<C64> for &CMat {
    type Output = CMat;
    fn mul(self, rhs: C64) -> CMat {
        self.scale(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paulis;
    use proptest::prelude::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn identity_is_multiplicative_identity() {
        let x = paulis::x();
        assert!(x.mul(&CMat::identity(2)).approx_eq(&x, TOL));
        assert!(CMat::identity(2).mul(&x).approx_eq(&x, TOL));
    }

    #[test]
    fn pauli_algebra() {
        let (x, y, z) = (paulis::x(), paulis::y(), paulis::z());
        // XY = iZ
        assert!(x.mul(&y).approx_eq(&z.scale(C64::I), TOL));
        // X² = I
        assert!(x.mul(&x).approx_eq(&CMat::identity(2), TOL));
        // {X, Z} = 0
        let anti = x.mul(&z).add(&z.mul(&x));
        assert!(anti.approx_eq(&CMat::zeros(2, 2), TOL));
    }

    #[test]
    fn try_mul_rejects_bad_shapes() {
        let a = CMat::zeros(2, 3);
        let b = CMat::zeros(2, 3);
        assert_eq!(
            a.try_mul(&b).unwrap_err(),
            LinalgError::ShapeMismatch(2, 3, 2, 3)
        );
    }

    #[test]
    fn kron_dimensions_and_structure() {
        let k = paulis::x().kron(&paulis::z());
        assert_eq!((k.rows(), k.cols()), (4, 4));
        // (X ⊗ Z)(X ⊗ Z) = I4
        assert!(k.mul(&k).approx_eq(&CMat::identity(4), TOL));
    }

    #[test]
    fn kron_mixed_product_property() {
        let a = paulis::h();
        let b = paulis::s();
        let lhs = a.kron(&b).mul(&a.adjoint().kron(&b.adjoint()));
        let rhs = a.mul(&a.adjoint()).kron(&b.mul(&b.adjoint()));
        assert!(lhs.approx_eq(&rhs, TOL));
    }

    #[test]
    fn det_of_known_matrices() {
        assert!(paulis::x().det().approx_eq(C64::real(-1.0), TOL));
        assert!(CMat::identity(4).det().approx_eq(C64::ONE, TOL));
        let m = CMat::from_rows(&[
            &[C64::real(2.0), C64::real(1.0)],
            &[C64::real(1.0), C64::real(2.0)],
        ]);
        assert!(m.det().approx_eq(C64::real(3.0), TOL));
    }

    #[test]
    fn det_singular_is_zero() {
        let m = CMat::from_rows(&[
            &[C64::real(1.0), C64::real(2.0)],
            &[C64::real(2.0), C64::real(4.0)],
        ]);
        assert!(m.det().norm() < TOL);
    }

    #[test]
    fn inverse_round_trip() {
        let m = CMat::from_rows(&[
            &[C64::new(1.0, 1.0), C64::real(2.0)],
            &[C64::real(0.5), C64::new(0.0, -3.0)],
        ]);
        let inv = m.inverse().unwrap();
        assert!(m.mul(&inv).approx_eq(&CMat::identity(2), 1e-10));
    }

    #[test]
    fn inverse_rejects_singular() {
        let m = CMat::zeros(3, 3);
        assert_eq!(m.inverse().unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn powi_matches_mul() {
        let h = paulis::h();
        assert!(h.powi(2).approx_eq(&CMat::identity(2), TOL));
        assert!(h.powi(0).approx_eq(&CMat::identity(2), TOL));
        assert!(h.powi(3).approx_eq(&h, TOL));
    }

    #[test]
    fn hermitian_and_unitary_predicates() {
        assert!(paulis::x().is_hermitian(TOL));
        assert!(paulis::x().is_unitary(TOL));
        assert!(paulis::s().is_unitary(TOL));
        assert!(!paulis::s().is_hermitian(TOL));
    }

    #[test]
    fn fidelity_phase_invariance() {
        let u = paulis::h();
        let v = u.scale(C64::cis(0.7));
        assert!((process_fidelity(&u, &v) - 1.0).abs() < TOL);
        assert!((average_gate_fidelity(&u, &v) - 1.0).abs() < TOL);
    }

    #[test]
    fn fidelity_orthogonal_gates() {
        // tr(X† Z) = 0.
        assert!(process_fidelity(&paulis::x(), &paulis::z()).abs() < TOL);
    }

    #[test]
    fn norms() {
        let m = paulis::x();
        assert!((m.frobenius_norm() - 2.0_f64.sqrt()).abs() < TOL);
        assert!((m.one_norm() - 1.0).abs() < TOL);
        assert!((m.max_abs() - 1.0).abs() < TOL);
    }

    fn small_mat(n: usize) -> impl Strategy<Value = CMat> {
        proptest::collection::vec((-2.0..2.0f64, -2.0..2.0f64), n * n).prop_map(move |v| {
            CMat::from_fn(n, n, |r, c| {
                let (re, im) = v[r * n + c];
                C64::new(re, im)
            })
        })
    }

    proptest! {
        #[test]
        fn prop_adjoint_involution(m in small_mat(3)) {
            prop_assert!(m.adjoint().adjoint().approx_eq(&m, 1e-12));
        }

        #[test]
        fn prop_trace_of_product_cyclic(a in small_mat(3), b in small_mat(3)) {
            let lhs = a.mul(&b).trace();
            let rhs = b.mul(&a).trace();
            prop_assert!(lhs.approx_eq(rhs, 1e-9));
        }

        #[test]
        fn prop_det_multiplicative(a in small_mat(3), b in small_mat(3)) {
            let lhs = a.mul(&b).det();
            let rhs = a.det() * b.det();
            prop_assert!(lhs.approx_eq(rhs, 1e-7 * (1.0 + rhs.norm())));
        }

        #[test]
        fn prop_kron_dims(a in small_mat(2), b in small_mat(3)) {
            let k = a.kron(&b);
            prop_assert_eq!(k.rows(), 6);
            prop_assert_eq!(k.cols(), 6);
        }
    }
}

//! The [`C64`] complex scalar.
//!
//! A minimal, dependency-free `f64` complex number with the arithmetic and
//! transcendental operations needed for quantum-unitary manipulation.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + i·im`.
///
/// Fields are public by analogy with `num_complex::Complex64`; the type is a
/// plain mathematical scalar with no invariants to protect.
///
/// # Example
///
/// ```
/// use paradrive_linalg::C64;
///
/// let z = C64::new(0.0, std::f64::consts::PI);
/// let e = z.exp();
/// assert!((e.re + 1.0).abs() < 1e-15); // Euler: e^{iπ} = -1
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    ///
    /// ```
    /// use paradrive_linalg::C64;
    /// let z = C64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-15 && (z.im - 2.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64::new(r * theta.cos(), r * theta.sin())
    }

    /// Creates the unit phase `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`, computed without undue overflow via `hypot`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Principal argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `z == 0`, mirroring `f64` division.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        C64::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        C64::from_polar(self.re.exp(), self.im)
    }

    /// Principal natural logarithm.
    #[inline]
    pub fn ln(self) -> Self {
        C64::new(self.norm().ln(), self.arg())
    }

    /// Principal square root.
    ///
    /// ```
    /// use paradrive_linalg::C64;
    /// let z = C64::new(-1.0, 0.0).sqrt();
    /// assert!((z - C64::I).norm() < 1e-15);
    /// ```
    #[inline]
    pub fn sqrt(self) -> Self {
        C64::from_polar(self.norm().sqrt(), self.arg() / 2.0)
    }

    /// Raises to a real power using the principal branch.
    #[inline]
    pub fn powf(self, p: f64) -> Self {
        if self.re == 0.0 && self.im == 0.0 {
            return C64::ZERO;
        }
        C64::from_polar(self.norm().powf(p), self.arg() * p)
    }

    /// Raises to a complex power using the principal branch.
    #[inline]
    pub fn powc(self, p: C64) -> Self {
        (self.ln() * p).exp()
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64::new(self.re * s, self.im * s)
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality: `|self - other| <= tol`.
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self - other).norm() <= tol
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z * w⁻¹ is the definition
    fn div(self, rhs: C64) -> C64 {
        self * rhs.inv()
    }
}

impl Add<f64> for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: f64) -> C64 {
        C64::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: f64) -> C64 {
        C64::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, Add::add)
    }
}

impl Product for C64 {
    fn product<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ONE, Mul::mul)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn constants() {
        assert_eq!(C64::ZERO + C64::ONE, C64::ONE);
        assert_eq!(C64::I * C64::I, -C64::ONE);
    }

    #[test]
    fn polar_round_trip() {
        let z = C64::from_polar(3.0, 1.1);
        assert!((z.norm() - 3.0).abs() < TOL);
        assert!((z.arg() - 1.1).abs() < TOL);
    }

    #[test]
    fn exp_ln_round_trip() {
        let z = C64::new(0.3, -0.7);
        assert!(z.exp().ln().approx_eq(z, TOL));
    }

    #[test]
    fn sqrt_squares() {
        let z = C64::new(-2.0, 5.0);
        let s = z.sqrt();
        assert!((s * s).approx_eq(z, TOL));
    }

    #[test]
    fn powf_matches_repeated_multiplication() {
        let z = C64::new(1.2, -0.4);
        assert!(z.powf(3.0).approx_eq(z * z * z, 1e-10));
    }

    #[test]
    fn powc_of_e() {
        let e = C64::real(std::f64::consts::E);
        let z = C64::new(0.0, std::f64::consts::PI);
        assert!(e.powc(z).approx_eq(-C64::ONE, 1e-12));
    }

    #[test]
    fn division_inverse() {
        let z = C64::new(2.0, -3.0);
        assert!((z / z).approx_eq(C64::ONE, TOL));
        assert!((z * z.inv()).approx_eq(C64::ONE, TOL));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", C64::new(1.0, 2.0)), "1.000000+2.000000i");
        assert_eq!(format!("{}", C64::new(1.0, -2.0)), "1.000000-2.000000i");
    }

    #[test]
    fn sum_and_product() {
        let v = [C64::ONE, C64::I, C64::new(2.0, 0.0)];
        let s: C64 = v.iter().copied().sum();
        assert!(s.approx_eq(C64::new(3.0, 1.0), TOL));
        let p: C64 = v.iter().copied().product();
        assert!(p.approx_eq(C64::new(0.0, 2.0), TOL));
    }

    fn small() -> impl Strategy<Value = f64> {
        -1e3..1e3
    }

    proptest! {
        #[test]
        fn prop_conj_involution(re in small(), im in small()) {
            let z = C64::new(re, im);
            prop_assert_eq!(z.conj().conj(), z);
        }

        #[test]
        fn prop_mul_commutes(a in small(), b in small(), c in small(), d in small()) {
            let x = C64::new(a, b);
            let y = C64::new(c, d);
            prop_assert!((x * y).approx_eq(y * x, 1e-6 * (1.0 + (x*y).norm())));
        }

        #[test]
        fn prop_norm_multiplicative(a in small(), b in small(), c in small(), d in small()) {
            let x = C64::new(a, b);
            let y = C64::new(c, d);
            let lhs = (x * y).norm();
            let rhs = x.norm() * y.norm();
            prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + rhs));
        }

        #[test]
        fn prop_exp_adds(a in -10.0..10.0f64, b in -10.0..10.0f64,
                         c in -10.0..10.0f64, d in -10.0..10.0f64) {
            let x = C64::new(a, b);
            let y = C64::new(c, d);
            let lhs = (x + y).exp();
            let rhs = x.exp() * y.exp();
            prop_assert!(lhs.approx_eq(rhs, 1e-6 * (1.0 + rhs.norm())));
        }
    }
}

//! Eigenvalue routines for small complex matrices.
//!
//! Two paths are provided:
//!
//! - [`eigh`] — a complex Jacobi sweep for Hermitian matrices, returning real
//!   eigenvalues and a unitary eigenbasis. Used for spectral time evolution.
//! - [`eigvals`] — eigenvalues of a general square matrix via the
//!   Faddeev–LeVerrier characteristic polynomial and Durand–Kerner roots.
//!   Used on the (unitary, symmetric) magic-basis gamma matrix whose spectrum
//!   encodes the Weyl-chamber coordinates.

use crate::complex::C64;
use crate::mat::CMat;
use crate::poly;
use crate::LinalgError;

/// Eigendecomposition of a Hermitian matrix.
#[derive(Debug, Clone)]
pub struct HermitianEig {
    /// Real eigenvalues, in the order matching `vectors` columns.
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the eigenvectors.
    pub vectors: CMat,
}

/// Diagonalizes a Hermitian matrix with cyclic complex Jacobi rotations.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for rectangular input and
/// [`LinalgError::NoConvergence`] if off-diagonal mass has not vanished after
/// 100 sweeps (not observed for well-conditioned Hermitian input).
///
/// # Example
///
/// ```
/// use paradrive_linalg::{C64, CMat, eig::eigh, paulis};
/// let e = eigh(&paulis::x()).unwrap();
/// let mut vals = e.values.clone();
/// vals.sort_by(f64::total_cmp);
/// assert!((vals[0] + 1.0).abs() < 1e-12 && (vals[1] - 1.0).abs() < 1e-12);
/// ```
pub fn eigh(a: &CMat) -> Result<HermitianEig, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare(a.rows(), a.cols()));
    }
    let n = a.rows();
    let mut m = a.clone();
    let mut v = CMat::identity(n);

    for _sweep in 0..100 {
        let off: f64 = (0..n)
            .flat_map(|p| (0..n).map(move |q| (p, q)))
            .filter(|&(p, q)| p != q)
            .map(|(p, q)| m[(p, q)].norm_sqr())
            .sum();
        if off < 1e-28 {
            let values = (0..n).map(|i| m[(i, i)].re).collect();
            return Ok(HermitianEig { values, vectors: v });
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.norm() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)].re;
                let aqq = m[(q, q)].re;
                // Phase that makes the (p,q) entry real.
                let phase = C64::cis(-apq.arg());
                let g = apq.norm();
                // Classic symmetric Jacobi angle on the realified 2x2 block.
                let theta = 0.5 * (2.0 * g).atan2(aqq - app);
                let c = theta.cos();
                let s = theta.sin();
                // Rotation R acting on columns p, q:
                // col_p' = c·col_p·conj(phase)... we apply G† M G and V G with
                // G[p,p]=c, G[q,p]=-s·phase*, G[p,q]=s·phase, G[q,q]=c.
                let gpp = C64::real(c);
                let gpq = phase.conj() * s;
                let gqp = -phase * s;
                let gqq = C64::real(c);

                // M ← G† M G (apply on the right to columns, then adjoint on rows).
                for r in 0..n {
                    let mp = m[(r, p)];
                    let mq = m[(r, q)];
                    m[(r, p)] = mp * gpp + mq * gqp;
                    m[(r, q)] = mp * gpq + mq * gqq;
                }
                for cidx in 0..n {
                    let mp = m[(p, cidx)];
                    let mq = m[(q, cidx)];
                    m[(p, cidx)] = gpp.conj() * mp + gqp.conj() * mq;
                    m[(q, cidx)] = gpq.conj() * mp + gqq.conj() * mq;
                }
                // V ← V G
                for r in 0..n {
                    let vp = v[(r, p)];
                    let vq = v[(r, q)];
                    v[(r, p)] = vp * gpp + vq * gqp;
                    v[(r, q)] = vp * gpq + vq * gqq;
                }
            }
        }
    }
    Err(LinalgError::NoConvergence("Jacobi Hermitian eigensolver"))
}

/// Coefficients (low-to-high, monic with the leading 1 implicit) of the
/// characteristic polynomial `det(xI - A)` via Faddeev–LeVerrier.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn char_poly(a: &CMat) -> Vec<C64> {
    assert!(
        a.is_square(),
        "characteristic polynomial requires square input"
    );
    let n = a.rows();
    // Faddeev–LeVerrier: M_0 = 0, c_n = 1;
    // M_k = A·M_{k-1} + c_{n-k+1}·I, c_{n-k} = -tr(A·M_k)/k
    let mut coeffs = vec![C64::ZERO; n + 1];
    coeffs[n] = C64::ONE;
    let mut m = CMat::zeros(n, n);
    for k in 1..=n {
        m = a.mul(&m);
        let ck = coeffs[n - k + 1];
        for i in 0..n {
            m[(i, i)] += ck;
        }
        let am = a.mul(&m);
        coeffs[n - k] = am.trace().scale(-1.0 / k as f64);
    }
    coeffs.truncate(n);
    coeffs
}

/// Eigenvalues of a general square complex matrix.
///
/// Computed as the roots of the characteristic polynomial; accurate for the
/// well-separated unit-circle spectra this workspace produces (gamma matrices
/// of two-qubit unitaries). Not intended for large or defective matrices.
///
/// # Errors
///
/// Propagates [`LinalgError::NoConvergence`] from the root finder and
/// [`LinalgError::NotSquare`] for rectangular input.
pub fn eigvals(a: &CMat) -> Result<Vec<C64>, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare(a.rows(), a.cols()));
    }
    poly::roots(&char_poly(a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paulis;
    use proptest::prelude::*;

    #[test]
    fn eigh_pauli_z() {
        let e = eigh(&paulis::z()).unwrap();
        let mut vals = e.values.clone();
        vals.sort_by(f64::total_cmp);
        assert!((vals[0] + 1.0).abs() < 1e-12);
        assert!((vals[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eigh_reconstructs() {
        // H = 0.3 XX + 0.9 YY - 0.2 ZZ
        let h = paulis::xx()
            .scale(C64::real(0.3))
            .add(&paulis::yy().scale(C64::real(0.9)))
            .add(&paulis::zz().scale(C64::real(-0.2)));
        let e = eigh(&h).unwrap();
        assert!(e.vectors.is_unitary(1e-10));
        let d = CMat::diag(&e.values.iter().map(|&x| C64::real(x)).collect::<Vec<_>>());
        let rebuilt = e.vectors.mul(&d).mul(&e.vectors.adjoint());
        assert!(rebuilt.approx_eq(&h, 1e-9));
    }

    #[test]
    fn eigh_complex_hermitian() {
        let h = CMat::from_rows(&[
            &[C64::real(1.0), C64::new(0.0, -2.0)],
            &[C64::new(0.0, 2.0), C64::real(3.0)],
        ]);
        let e = eigh(&h).unwrap();
        let mut vals = e.values.clone();
        vals.sort_by(f64::total_cmp);
        // Eigenvalues of [[1, -2i], [2i, 3]] are 2 ± √5.
        assert!((vals[0] - (2.0 - 5.0_f64.sqrt())).abs() < 1e-9);
        assert!((vals[1] - (2.0 + 5.0_f64.sqrt())).abs() < 1e-9);
    }

    #[test]
    fn eigh_rejects_rectangular() {
        assert!(matches!(
            eigh(&CMat::zeros(2, 3)),
            Err(LinalgError::NotSquare(2, 3))
        ));
    }

    #[test]
    fn char_poly_of_diagonal() {
        // diag(1, 2): char poly = x² - 3x + 2 → coeffs [2, -3]
        let d = CMat::diag(&[C64::real(1.0), C64::real(2.0)]);
        let c = char_poly(&d);
        assert!(c[0].approx_eq(C64::real(2.0), 1e-12));
        assert!(c[1].approx_eq(C64::real(-3.0), 1e-12));
    }

    #[test]
    fn eigvals_unitary_spectrum_on_circle() {
        // A unitary's eigenvalues live on the unit circle.
        let u = paulis::h().kron(&paulis::s());
        let vals = eigvals(&u).unwrap();
        assert_eq!(vals.len(), 4);
        for v in vals {
            assert!((v.norm() - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn eigvals_match_diagonal_entries() {
        let d = CMat::diag(&[C64::cis(0.4), C64::cis(-1.3), C64::cis(2.2), C64::cis(0.0)]);
        let vals = eigvals(&d).unwrap();
        for target in [0.4, -1.3, 2.2, 0.0] {
            assert!(
                vals.iter().any(|v| v.approx_eq(C64::cis(target), 1e-7)),
                "missing eigenvalue e^(i {target})"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_eigh_trace_preserved(a in -2.0..2.0f64, b in -2.0..2.0f64, c in -2.0..2.0f64) {
            let h = paulis::xx().scale(C64::real(a))
                .add(&paulis::yy().scale(C64::real(b)))
                .add(&paulis::zz().scale(C64::real(c)));
            let e = eigh(&h).unwrap();
            let sum: f64 = e.values.iter().sum();
            prop_assert!((sum - h.trace().re).abs() < 1e-8);
        }
    }
}

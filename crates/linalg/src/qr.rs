//! Complex Householder QR and Haar-random unitary sampling.
//!
//! Haar-random two-qubit gates are the backbone of the paper's `E[Haar]`
//! scores: sampling a Ginibre matrix (i.i.d. complex Gaussians) and taking
//! the phase-corrected `Q` of its QR decomposition yields exactly the Haar
//! measure on `U(n)` (Mezzadri, 2007).

use crate::complex::C64;
use crate::mat::CMat;
use rand::Rng;

/// The result of a QR decomposition: `A = Q · R` with unitary `Q` and
/// upper-triangular `R`.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Unitary factor.
    pub q: CMat,
    /// Upper-triangular factor.
    pub r: CMat,
}

/// Householder QR decomposition of a square complex matrix.
///
/// # Panics
///
/// Panics if `a` is not square (rectangular QR is not needed here).
pub fn qr(a: &CMat) -> Qr {
    assert!(a.is_square(), "qr requires a square matrix");
    let n = a.rows();
    let mut r = a.clone();
    let mut q = CMat::identity(n);

    for k in 0..n {
        // Build the Householder vector for column k below the diagonal.
        let mut x = vec![C64::ZERO; n - k];
        for i in k..n {
            x[i - k] = r[(i, k)];
        }
        let xnorm = x.iter().map(|c| c.norm_sqr()).sum::<f64>().sqrt();
        if xnorm < 1e-300 {
            continue;
        }
        // alpha = -e^{i arg(x0)} |x|
        let phase = if x[0].norm() > 1e-300 {
            C64::cis(x[0].arg())
        } else {
            C64::ONE
        };
        let alpha = -phase * xnorm;
        let mut v = x.clone();
        v[0] -= alpha;
        let vnorm_sqr: f64 = v.iter().map(|c| c.norm_sqr()).sum();
        if vnorm_sqr < 1e-300 {
            continue;
        }

        // Apply H = I - 2 v v† / |v|² to R (rows k..n) and accumulate into Q.
        for col in 0..n {
            let mut dot = C64::ZERO;
            for i in k..n {
                dot += v[i - k].conj() * r[(i, col)];
            }
            let f = dot.scale(2.0 / vnorm_sqr);
            for i in k..n {
                let s = v[i - k] * f;
                r[(i, col)] -= s;
            }
        }
        for row in 0..n {
            // Q ← Q H (H is Hermitian).
            let mut dot = C64::ZERO;
            for i in k..n {
                dot += q[(row, i)] * v[i - k];
            }
            let f = dot.scale(2.0 / vnorm_sqr);
            for i in k..n {
                let s = f * v[i - k].conj();
                q[(row, i)] -= s;
            }
        }
    }
    Qr { q, r }
}

/// Samples a standard complex Gaussian via Box–Muller.
fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R) -> C64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let mag = (-2.0 * u1.ln()).sqrt();
    // Real and imaginary parts each N(0, 1/√2) — overall scale is irrelevant
    // for Haar sampling.
    C64::new(mag * u2.cos(), mag * u2.sin()).scale(std::f64::consts::FRAC_1_SQRT_2)
}

/// Samples an `n × n` matrix with i.i.d. standard complex Gaussian entries.
pub fn ginibre<R: Rng + ?Sized>(n: usize, rng: &mut R) -> CMat {
    CMat::from_fn(n, n, |_, _| complex_gaussian(rng))
}

/// Samples a Haar-distributed unitary from `U(n)`.
///
/// Implements Mezzadri's recipe: QR of a Ginibre matrix with the `Q` columns
/// re-phased by `R`'s diagonal so the distribution is exactly Haar.
///
/// # Example
///
/// ```
/// use paradrive_linalg::qr::random_unitary;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let u = random_unitary(4, &mut rng);
/// assert!(u.is_unitary(1e-10));
/// ```
pub fn random_unitary<R: Rng + ?Sized>(n: usize, rng: &mut R) -> CMat {
    let g = ginibre(n, rng);
    let Qr { q, r } = qr(&g);
    // Λ = diag(r_ii / |r_ii|); U = Q Λ.
    let mut u = q;
    for j in 0..n {
        let d = r[(j, j)];
        let lam = if d.norm() > 1e-300 {
            C64::cis(d.arg())
        } else {
            C64::ONE
        };
        for i in 0..n {
            u[(i, j)] *= lam;
        }
    }
    u
}

/// Samples a Haar-random 2×2 special unitary (`det = 1`).
pub fn random_su2<R: Rng + ?Sized>(rng: &mut R) -> CMat {
    let u = random_unitary(2, rng);
    let d = u.det();
    // Divide by det^{1/2} to land in SU(2).
    u.scale(d.powf(-0.5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn qr_reconstructs() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = ginibre(4, &mut rng);
        let Qr { q, r } = qr(&a);
        assert!(q.is_unitary(1e-10), "Q not unitary");
        assert!(q.mul(&r).approx_eq(&a, 1e-10), "QR != A");
        // R upper triangular.
        for i in 1..4 {
            for j in 0..i {
                assert!(r[(i, j)].norm() < 1e-10, "R not upper triangular");
            }
        }
    }

    #[test]
    fn qr_of_identity() {
        let Qr { q, r } = qr(&CMat::identity(3));
        assert!(q.mul(&r).approx_eq(&CMat::identity(3), 1e-12));
    }

    #[test]
    fn random_unitary_is_unitary_many_seeds() {
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let u = random_unitary(4, &mut rng);
            assert!(u.is_unitary(1e-9), "seed {seed} produced non-unitary");
        }
    }

    #[test]
    fn random_su2_has_unit_det() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let u = random_su2(&mut rng);
            assert!(u.is_unitary(1e-10));
            assert!(u.det().approx_eq(C64::ONE, 1e-9));
        }
    }

    #[test]
    fn haar_first_moment_vanishes() {
        // E[U] = 0 under Haar; check the empirical mean shrinks.
        let mut rng = StdRng::seed_from_u64(11);
        let n = 400;
        let mut acc = CMat::zeros(2, 2);
        for _ in 0..n {
            acc = acc.add(&random_unitary(2, &mut rng));
        }
        let mean = acc.scale(C64::real(1.0 / n as f64));
        assert!(
            mean.max_abs() < 0.12,
            "Haar mean too large: {}",
            mean.max_abs()
        );
    }

    #[test]
    fn haar_eigenphase_spread() {
        // Eigenphases of Haar unitaries should populate both half-circles.
        let mut rng = StdRng::seed_from_u64(5);
        let mut pos = 0;
        let mut neg = 0;
        for _ in 0..50 {
            let u = random_unitary(2, &mut rng);
            for v in crate::eig::eigvals(&u).unwrap() {
                if v.arg() >= 0.0 {
                    pos += 1;
                } else {
                    neg += 1;
                }
            }
        }
        assert!(pos > 20 && neg > 20, "eigenphases not spread: {pos}/{neg}");
    }
}

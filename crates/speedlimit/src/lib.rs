//! Speed Limit Functions (SLFs) and speed-limit-scaled pulse durations.
//!
//! A parametric coupler cannot be pumped arbitrarily hard: beyond a
//! boundary in the `(gc, gg)` drive-strength plane the modulator breaks into
//! chaotic behaviour and the gate fails (Section II-C of the paper). The
//! **Speed Limit Function** describes that boundary. Because a target gate
//! fixes only the *ratio* `β = θg/θc` of the pulse angles, the fastest
//! realization slides along the ray `gg = β·gc` until it hits the SLF —
//! the paper's Algorithm 1, implemented here as [`min_pulse_time`] and
//! normalized by [`DurationScale`].
//!
//! Three SLFs are provided, matching the paper's study:
//!
//! - [`Linear`] — `gc + gg ≤ L` (voltage-like combination),
//! - [`Squared`] — `gc² + gg² ≤ L²` (power-like combination),
//! - [`Characterized`] — a tabulated boundary; [`Characterized::snail`] is
//!   the SNAIL-coupler substitute calibrated to the paper's Table II.
//!
//! The [`monitor`] module simulates the Fig. 3c break-point sweep with a
//! monitor qubit and re-fits a [`Characterized`] SLF from the sweep.
//!
//! # Example
//!
//! ```
//! use paradrive_speedlimit::{DurationScale, Linear};
//! use paradrive_weyl::WeylPoint;
//!
//! let slf = Linear::normalized();
//! let scale = DurationScale::new(&slf);
//! // Table II, linear SLF: a full CNOT pulse costs 1.0 iSWAP units,
//! // a √iSWAP costs 0.5.
//! assert!((scale.pulse_duration(WeylPoint::CNOT).unwrap() - 1.0).abs() < 1e-9);
//! assert!((scale.pulse_duration(WeylPoint::SQRT_ISWAP).unwrap() - 0.5).abs() < 1e-9);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod functions;
pub mod leakage;
pub mod monitor;

pub use functions::{Characterized, Linear, Squared, StandardSlf};
pub use leakage::LeakageModel;

use paradrive_hamiltonian::{angles_for_base_point, DriveAngles};
use paradrive_weyl::WeylPoint;

/// Errors produced by speed-limit computations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpeedLimitError {
    /// The tabulated boundary was empty or not monotone decreasing.
    InvalidTable(&'static str),
    /// The requested point lies off the chamber base plane, so no constant
    /// conversion/gain drive ratio exists for it.
    OffBasePlane(f64),
    /// The ray never intersects the boundary (zero-strength limit).
    NoIntersection,
}

impl std::fmt::Display for SpeedLimitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpeedLimitError::InvalidTable(why) => write!(f, "invalid SLF table: {why}"),
            SpeedLimitError::OffBasePlane(c3) => write!(
                f,
                "point has c3 = {c3:.4} ≠ 0; pulse durations are defined for base-plane gates"
            ),
            SpeedLimitError::NoIntersection => {
                write!(f, "drive ray does not intersect the speed-limit boundary")
            }
        }
    }
}

impl std::error::Error for SpeedLimitError {}

/// A speed-limit boundary in the `(gc, gg)` plane.
///
/// Implementors must describe a *monotone non-increasing* boundary
/// `gg = boundary(gc)` with intercepts [`max_gc`](Self::max_gc) and
/// [`max_gg`](Self::max_gg). The region at or below the boundary is the
/// feasible drive region.
pub trait SpeedLimit {
    /// Human-readable name for reports.
    fn name(&self) -> &str;

    /// Largest feasible conversion strength (boundary x-intercept).
    fn max_gc(&self) -> f64;

    /// Largest feasible gain strength (boundary y-intercept).
    fn max_gg(&self) -> f64;

    /// The boundary value `gg` at conversion strength `gc`
    /// (zero for `gc ≥ max_gc`).
    fn boundary(&self, gc: f64) -> f64;

    /// True when `(gc, gg)` obeys the speed limit.
    fn is_feasible(&self, gc: f64, gg: f64) -> bool {
        gc >= 0.0 && gg >= 0.0 && gc <= self.max_gc() && gg <= self.boundary(gc) + 1e-12
    }

    /// The intersection of the ray `gg = β·gc` with the boundary, by
    /// bisection (override with a closed form where available).
    ///
    /// `β = 0` returns `(max_gc, 0)`; `β = ∞` is expressed by calling with
    /// `beta = f64::INFINITY` and returns `(0, max_gg)`.
    fn intersection(&self, beta: f64) -> (f64, f64) {
        if beta == 0.0 {
            return (self.max_gc(), 0.0);
        }
        if beta.is_infinite() {
            return (0.0, self.max_gg());
        }
        let mut lo = 0.0_f64;
        let mut hi = self.max_gc();
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if beta * mid <= self.boundary(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let gc = 0.5 * (lo + hi);
        (gc, beta * gc)
    }
}

/// The paper's Algorithm 1 core: the minimum pulse time for given pulse
/// angles `(θc, θg)` under a speed limit, in the SLF's native time units.
///
/// Both drive orientations are considered — `(θc, θg)` can be produced with
/// the large angle on either the conversion or the gain pump — and the
/// faster one is returned. The identity (zero angles) takes zero time.
///
/// # Errors
///
/// Returns [`SpeedLimitError::NoIntersection`] if the boundary has zero
/// extent.
pub fn min_pulse_time(slf: &dyn SpeedLimit, angles: DriveAngles) -> Result<f64, SpeedLimitError> {
    if slf.max_gc() <= 0.0 && slf.max_gg() <= 0.0 {
        return Err(SpeedLimitError::NoIntersection);
    }
    let oriented = |theta_c: f64, theta_g: f64| -> f64 {
        if theta_c == 0.0 && theta_g == 0.0 {
            return 0.0;
        }
        if theta_c == 0.0 {
            return theta_g / slf.max_gg();
        }
        let beta = theta_g / theta_c;
        let (gc, _gg) = slf.intersection(beta);
        if gc <= 0.0 {
            return f64::INFINITY;
        }
        theta_c / gc
    };
    let t1 = oriented(angles.theta_c, angles.theta_g);
    let t2 = oriented(angles.theta_g, angles.theta_c);
    let t = t1.min(t2);
    if t.is_finite() {
        Ok(t)
    } else {
        Err(SpeedLimitError::NoIntersection)
    }
}

/// Normalizes pulse times so the fastest iSWAP costs exactly 1 "pulse".
///
/// This is the paper's convention: durations are reported in units
/// proportional to one full iSWAP pulse, eliminating hardware-specific
/// absolute times.
#[derive(Clone, Copy)]
pub struct DurationScale<'a> {
    slf: &'a dyn SpeedLimit,
    t_iswap: f64,
}

impl std::fmt::Debug for DurationScale<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurationScale")
            .field("slf", &self.slf.name())
            .field("t_iswap", &self.t_iswap)
            .finish()
    }
}

impl<'a> DurationScale<'a> {
    /// Builds the scale for a speed limit.
    ///
    /// # Panics
    ///
    /// Panics if the SLF has zero extent (no feasible drives at all).
    pub fn new(slf: &'a dyn SpeedLimit) -> Self {
        let t_iswap = min_pulse_time(slf, DriveAngles::new(std::f64::consts::FRAC_PI_2, 0.0))
            .expect("SLF must admit an iSWAP");
        DurationScale { slf, t_iswap }
    }

    /// The underlying speed limit.
    pub fn slf(&self) -> &dyn SpeedLimit {
        self.slf
    }

    /// The raw (unnormalized) time of the fastest iSWAP.
    pub fn t_iswap(&self) -> f64 {
        self.t_iswap
    }

    /// Normalized pulse duration of arbitrary pulse angles.
    ///
    /// # Errors
    ///
    /// Propagates [`SpeedLimitError`] from [`min_pulse_time`].
    pub fn duration_of_angles(&self, angles: DriveAngles) -> Result<f64, SpeedLimitError> {
        Ok(min_pulse_time(self.slf, angles)? / self.t_iswap)
    }

    /// Normalized pulse duration of a base-plane chamber point — the
    /// `D_Basis` rows of Table II.
    ///
    /// # Errors
    ///
    /// Returns [`SpeedLimitError::OffBasePlane`] for points with `c3 ≠ 0`.
    pub fn pulse_duration(&self, p: WeylPoint) -> Result<f64, SpeedLimitError> {
        let angles = angles_for_base_point(p).map_err(|_| SpeedLimitError::OffBasePlane(p.c3))?;
        self.duration_of_angles(angles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn linear_slf_table2_dbasis_row() {
        let slf = Linear::normalized();
        let scale = DurationScale::new(&slf);
        let cases = [
            (WeylPoint::ISWAP, 1.0),
            (WeylPoint::SQRT_ISWAP, 0.5),
            (WeylPoint::CNOT, 1.0),
            (WeylPoint::SQRT_CNOT, 0.5),
            (WeylPoint::B, 1.0),
            (WeylPoint::SQRT_B, 0.5),
        ];
        for (p, want) in cases {
            let got = scale.pulse_duration(p).unwrap();
            assert!(close(got, want, 1e-9), "{p}: got {got}, want {want}");
        }
    }

    #[test]
    fn squared_slf_table2_dbasis_row() {
        let slf = Squared::normalized();
        let scale = DurationScale::new(&slf);
        let cases = [
            (WeylPoint::ISWAP, 1.0),
            (WeylPoint::SQRT_ISWAP, 0.5),
            (WeylPoint::CNOT, std::f64::consts::FRAC_1_SQRT_2), // 0.71
            (WeylPoint::SQRT_CNOT, std::f64::consts::FRAC_1_SQRT_2 / 2.0), // 0.35
            (WeylPoint::B, 10.0_f64.sqrt() / 4.0),              // 0.79
            (WeylPoint::SQRT_B, 10.0_f64.sqrt() / 8.0),         // 0.40
        ];
        for (p, want) in cases {
            let got = scale.pulse_duration(p).unwrap();
            assert!(close(got, want, 1e-6), "{p}: got {got}, want {want}");
        }
    }

    #[test]
    fn snail_slf_table2_dbasis_row() {
        let slf = Characterized::snail();
        let scale = DurationScale::new(&slf);
        let cases = [
            (WeylPoint::ISWAP, 1.0),
            (WeylPoint::SQRT_ISWAP, 0.5),
            (WeylPoint::CNOT, 1.8),
            (WeylPoint::SQRT_CNOT, 0.9),
            (WeylPoint::B, 1.4),
            (WeylPoint::SQRT_B, 0.7),
        ];
        for (p, want) in cases {
            let got = scale.pulse_duration(p).unwrap();
            assert!(close(got, want, 1e-3), "{p}: got {got}, want {want}");
        }
    }

    #[test]
    fn identity_costs_nothing() {
        let slf = Linear::normalized();
        let scale = DurationScale::new(&slf);
        assert_eq!(scale.pulse_duration(WeylPoint::IDENTITY).unwrap(), 0.0);
    }

    #[test]
    fn off_plane_rejected() {
        let slf = Linear::normalized();
        let scale = DurationScale::new(&slf);
        assert!(matches!(
            scale.pulse_duration(WeylPoint::SWAP),
            Err(SpeedLimitError::OffBasePlane(_))
        ));
    }

    #[test]
    fn orientation_choice_prefers_fast_axis() {
        // On the SNAIL boundary the gain axis is weak; a pure-iSWAP pulse
        // must use the conversion axis (t = 1), not the gain axis (t ≈ 2.9).
        let slf = Characterized::snail();
        let t = min_pulse_time(&slf, DriveAngles::new(0.0, FRAC_PI_2)).unwrap();
        let t_conv = min_pulse_time(&slf, DriveAngles::new(FRAC_PI_2, 0.0)).unwrap();
        assert!(
            close(t, t_conv, 1e-12),
            "orientations not symmetric: {t} vs {t_conv}"
        );
    }

    #[test]
    fn fractional_scaling_is_linear_in_angle() {
        let slf = Squared::normalized();
        let scale = DurationScale::new(&slf);
        let full = scale
            .duration_of_angles(DriveAngles::new(FRAC_PI_4, FRAC_PI_4))
            .unwrap();
        let half = scale
            .duration_of_angles(DriveAngles::new(FRAC_PI_4 / 2.0, FRAC_PI_4 / 2.0))
            .unwrap();
        assert!(close(half * 2.0, full, 1e-9));
    }

    #[test]
    fn bisection_matches_closed_form_on_linear() {
        // Use the default trait bisection through a shim and compare with
        // Linear's closed-form override.
        struct Shim(Linear);
        impl SpeedLimit for Shim {
            fn name(&self) -> &str {
                "shim"
            }
            fn max_gc(&self) -> f64 {
                self.0.max_gc()
            }
            fn max_gg(&self) -> f64 {
                self.0.max_gg()
            }
            fn boundary(&self, gc: f64) -> f64 {
                self.0.boundary(gc)
            }
            // no intersection override → default bisection
        }
        let lin = Linear::normalized();
        let shim = Shim(Linear::normalized());
        for beta in [0.0, 0.2, 1.0, 3.3, 10.0] {
            let (a, b) = lin.intersection(beta);
            let (c, d) = shim.intersection(beta);
            assert!(close(a, c, 1e-9) && close(b, d, 1e-9), "β={beta}");
        }
    }
}

//! A physically motivated speed-limit model: drive-induced leakage.
//!
//! The paper attributes parametric-coupler speed limits to mechanisms like
//! population leakage, bright-stating and bifurcation when pumps drive the
//! nonlinear element too hard. This module implements a minimal leakage
//! model that *derives* a [`Characterized`] boundary instead of tabulating
//! one: each pump hybridizes the coupler with states outside the
//! computational subspace at a rate set by the ratio of drive strength to
//! its detuning gap, pumps heat cooperatively, and the speed limit is the
//! contour where total leakage crosses a threshold.
//!
//! With the gain pump facing a smaller effective gap (sum-frequency driving
//! sits closer to the coupler's higher levels than difference-frequency
//! conversion), the derived boundary reproduces the SNAIL phenomenology:
//! conversion can be driven much harder than gain, and the boundary is
//! non-linear.

use crate::{Characterized, SpeedLimitError};

/// A two-pump leakage model for a parametric coupler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageModel {
    delta_c: f64,
    delta_g: f64,
    cross: f64,
    threshold: f64,
}

impl LeakageModel {
    /// Creates a leakage model.
    ///
    /// - `delta_c`, `delta_g` — effective detuning gaps of the conversion
    ///   and gain pumps (drive-strength units),
    /// - `cross` — cooperative heating coefficient when both pumps are on,
    /// - `threshold` — leakage probability at which the coupler breaks.
    ///
    /// # Errors
    ///
    /// Returns [`SpeedLimitError::InvalidTable`] for non-positive gaps, a
    /// negative cross term, or a threshold outside `(0, 1)`.
    pub fn new(
        delta_c: f64,
        delta_g: f64,
        cross: f64,
        threshold: f64,
    ) -> Result<Self, SpeedLimitError> {
        if delta_c <= 0.0 || delta_g <= 0.0 || !delta_c.is_finite() || !delta_g.is_finite() {
            return Err(SpeedLimitError::InvalidTable("gaps must be positive"));
        }
        if cross < 0.0 || !cross.is_finite() {
            return Err(SpeedLimitError::InvalidTable("cross term must be ≥ 0"));
        }
        if !(0.0..1.0).contains(&threshold) || threshold == 0.0 {
            return Err(SpeedLimitError::InvalidTable("threshold must be in (0,1)"));
        }
        Ok(LeakageModel {
            delta_c,
            delta_g,
            cross,
            threshold,
        })
    }

    /// A SNAIL-like preset: the gain gap is roughly a third of the
    /// conversion gap, with moderate cooperative heating.
    pub fn snail_like() -> Self {
        LeakageModel::new(2.4, 0.85, 1.2, 0.5).expect("preset is valid")
    }

    /// Single-pump leakage probability: a saturating Rabi-style
    /// hybridization `(g/Δ)² / (1 + (g/Δ)²)`.
    fn single(g: f64, delta: f64) -> f64 {
        let x = (g / delta) * (g / delta);
        x / (1.0 + x)
    }

    /// Total leakage probability with both pumps on.
    pub fn leak_probability(&self, gc: f64, gg: f64) -> f64 {
        let pc = Self::single(gc, self.delta_c);
        let pg = Self::single(gg, self.delta_g);
        (pc + pg + self.cross * (pc * pg).sqrt()).min(1.0)
    }

    /// True when pumping at `(gc, gg)` stays below the leakage threshold.
    pub fn is_safe(&self, gc: f64, gg: f64) -> bool {
        self.leak_probability(gc, gg) < self.threshold
    }

    /// The largest safe `gc` at `gg = 0` (boundary x-intercept).
    pub fn max_gc(&self) -> f64 {
        // Invert p = (x²)/(1+x²) = threshold → x = sqrt(t/(1−t)).
        self.delta_c * (self.threshold / (1.0 - self.threshold)).sqrt()
    }

    /// The largest safe `gg` at `gc = 0`.
    pub fn max_gg(&self) -> f64 {
        self.delta_g * (self.threshold / (1.0 - self.threshold)).sqrt()
    }

    /// The boundary `gg` at a given `gc`, by bisection on the leakage
    /// contour (zero beyond the x-intercept).
    pub fn boundary(&self, gc: f64) -> f64 {
        if !self.is_safe(gc, 0.0) {
            return 0.0;
        }
        let mut lo = 0.0;
        let mut hi = self.max_gg();
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.is_safe(gc, mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Samples the derived boundary into a [`Characterized`] SLF with `n`
    /// points, normalized so the larger intercept equals `scale` (pass
    /// `π/2` for the paper's iSWAP-pulse normalization).
    ///
    /// # Errors
    ///
    /// Propagates table validation (does not occur for valid models).
    pub fn to_characterized(&self, n: usize, scale: f64) -> Result<Characterized, SpeedLimitError> {
        assert!(n >= 2, "need at least two samples");
        let norm = scale / self.max_gc().max(self.max_gg());
        let mut pts = Vec::with_capacity(n);
        let mut last_gg = f64::INFINITY;
        for i in 0..n {
            let gc = self.max_gc() * i as f64 / (n - 1) as f64;
            let gg = self.boundary(gc).min(last_gg);
            last_gg = gg;
            pts.push((gc * norm, gg * norm));
        }
        Characterized::from_points("leakage-derived", pts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DurationScale;
    use paradrive_weyl::WeylPoint;

    #[test]
    fn validation() {
        assert!(LeakageModel::new(0.0, 1.0, 0.0, 0.5).is_err());
        assert!(LeakageModel::new(1.0, 1.0, -1.0, 0.5).is_err());
        assert!(LeakageModel::new(1.0, 1.0, 0.0, 0.0).is_err());
        assert!(LeakageModel::new(1.0, 1.0, 0.0, 1.5).is_err());
        assert!(LeakageModel::new(1.0, 1.0, 0.0, 0.5).is_ok());
    }

    #[test]
    fn leakage_monotone_in_drive() {
        let m = LeakageModel::snail_like();
        let mut last = -1.0;
        for k in 0..10 {
            let p = m.leak_probability(0.3 * k as f64, 0.1 * k as f64);
            assert!(p >= last);
            last = p;
        }
        assert!(m.leak_probability(0.0, 0.0) == 0.0);
        assert!(m.leak_probability(100.0, 100.0) <= 1.0);
    }

    #[test]
    fn boundary_monotone_decreasing() {
        let m = LeakageModel::snail_like();
        let mut last = f64::INFINITY;
        for k in 0..12 {
            let gc = m.max_gc() * k as f64 / 12.0;
            let gg = m.boundary(gc);
            assert!(gg <= last + 1e-9, "boundary rose at gc={gc}");
            last = gg;
        }
    }

    #[test]
    fn asymmetry_matches_gaps() {
        // Smaller gain gap → smaller gain intercept.
        let m = LeakageModel::snail_like();
        assert!(m.max_gc() > 2.0 * m.max_gg());
    }

    #[test]
    fn derived_slf_behaves_like_snail() {
        let m = LeakageModel::snail_like();
        let slf = m.to_characterized(48, std::f64::consts::FRAC_PI_2).unwrap();
        let scale = DurationScale::new(&slf);
        let iswap = scale.pulse_duration(WeylPoint::ISWAP).unwrap();
        let cnot = scale.pulse_duration(WeylPoint::CNOT).unwrap();
        let b = scale.pulse_duration(WeylPoint::B).unwrap();
        // Normalization pins iSWAP to 1; the characterized phenomenology is
        // iSWAP < B < CNOT (conversion-favoring boundary).
        assert!((iswap - 1.0).abs() < 1e-9);
        assert!(b > iswap && cnot > b, "iSWAP {iswap}, B {b}, CNOT {cnot}");
    }

    #[test]
    fn boundary_consistent_with_safety() {
        let m = LeakageModel::snail_like();
        for k in 1..10 {
            let gc = m.max_gc() * k as f64 / 11.0;
            let gg = m.boundary(gc);
            assert!(m.is_safe(gc, gg * 0.99));
            assert!(!m.is_safe(gc, gg * 1.05 + 1e-6));
        }
    }
}

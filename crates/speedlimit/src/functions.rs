//! The concrete Speed Limit Functions of the paper's study.

use crate::{SpeedLimit, SpeedLimitError};
use serde::{Deserialize, Serialize};
use std::f64::consts::FRAC_PI_2;

/// Linear speed limit `gc + gg ≤ L` — drives combine like voltages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    l: f64,
}

impl Linear {
    /// Creates a linear SLF with budget `L`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is not positive and finite.
    pub fn new(l: f64) -> Self {
        assert!(l > 0.0 && l.is_finite(), "budget must be positive");
        Linear { l }
    }

    /// The normalized form with `L = π/2`, making the fastest iSWAP take
    /// one time unit.
    pub fn normalized() -> Self {
        Linear::new(FRAC_PI_2)
    }

    /// The drive budget `L`.
    pub fn budget(&self) -> f64 {
        self.l
    }
}

impl SpeedLimit for Linear {
    fn name(&self) -> &str {
        "linear"
    }

    fn max_gc(&self) -> f64 {
        self.l
    }

    fn max_gg(&self) -> f64 {
        self.l
    }

    fn boundary(&self, gc: f64) -> f64 {
        (self.l - gc).max(0.0)
    }

    fn intersection(&self, beta: f64) -> (f64, f64) {
        if beta.is_infinite() {
            return (0.0, self.l);
        }
        // β·gc = L − gc  →  gc = L / (1 + β)
        let gc = self.l / (1.0 + beta);
        (gc, beta * gc)
    }
}

/// Squared speed limit `gc² + gg² ≤ L²` — drives combine like power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Squared {
    l: f64,
}

impl Squared {
    /// Creates a squared SLF with radius `L`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is not positive and finite.
    pub fn new(l: f64) -> Self {
        assert!(l > 0.0 && l.is_finite(), "radius must be positive");
        Squared { l }
    }

    /// The normalized form with `L = π/2`.
    pub fn normalized() -> Self {
        Squared::new(FRAC_PI_2)
    }

    /// The drive radius `L`.
    pub fn radius(&self) -> f64 {
        self.l
    }
}

impl SpeedLimit for Squared {
    fn name(&self) -> &str {
        "squared"
    }

    fn max_gc(&self) -> f64 {
        self.l
    }

    fn max_gg(&self) -> f64 {
        self.l
    }

    fn boundary(&self, gc: f64) -> f64 {
        if gc >= self.l {
            0.0
        } else {
            (self.l * self.l - gc * gc).sqrt()
        }
    }

    fn intersection(&self, beta: f64) -> (f64, f64) {
        if beta.is_infinite() {
            return (0.0, self.l);
        }
        // gc²(1 + β²) = L²
        let gc = self.l / (1.0 + beta * beta).sqrt();
        (gc, beta * gc)
    }
}

/// A tabulated, characterized speed limit: a monotone non-increasing
/// boundary given as `(gc, gg)` samples with linear interpolation.
///
/// This stands in for experimentally measured break-point data; the
/// [`Characterized::snail`] preset reproduces the normalized durations the
/// paper measured for its SNAIL coupler (Table II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Characterized {
    name: String,
    points: Vec<(f64, f64)>,
}

impl Characterized {
    /// Builds a characterized SLF from boundary samples.
    ///
    /// # Errors
    ///
    /// Returns [`SpeedLimitError::InvalidTable`] when fewer than two points
    /// are given, when `gc` values are not strictly increasing, when `gg`
    /// values increase, or when any value is negative/non-finite.
    pub fn from_points(
        name: impl Into<String>,
        points: Vec<(f64, f64)>,
    ) -> Result<Self, SpeedLimitError> {
        if points.len() < 2 {
            return Err(SpeedLimitError::InvalidTable("need at least two points"));
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(SpeedLimitError::InvalidTable(
                    "gc samples must strictly increase",
                ));
            }
            if w[1].1 > w[0].1 + 1e-12 {
                return Err(SpeedLimitError::InvalidTable(
                    "gg boundary must be non-increasing",
                ));
            }
        }
        if points
            .iter()
            .any(|&(a, b)| !a.is_finite() || !b.is_finite() || a < 0.0 || b < 0.0)
        {
            return Err(SpeedLimitError::InvalidTable(
                "samples must be finite and non-negative",
            ));
        }
        Ok(Characterized {
            name: name.into(),
            points,
        })
    }

    /// The SNAIL-coupler substitute boundary, normalized so the maximum
    /// intercept is `π/2` (fastest iSWAP = 1 pulse).
    ///
    /// Anchors are placed so the normalized full-pulse durations match the
    /// paper's characterized system: `iSWAP = 1.00`, `B = 1.40`,
    /// `CNOT = 1.80`, with conversion driveable much harder than gain
    /// (Fig. 3c).
    pub fn snail() -> Self {
        // β = 1 crossing at gc = (π/4)/1.8  → CNOT duration 1.8.
        let cnot_gc = std::f64::consts::FRAC_PI_4 / 1.8;
        // β = 1/3 crossing at gc = (3π/8)/1.4 → B duration 1.4.
        let b_gc = 3.0 * std::f64::consts::PI / 8.0 / 1.4;
        Characterized::from_points(
            "snail-characterized",
            vec![
                (0.0, 0.550),
                (0.20, 0.500),
                (cnot_gc, cnot_gc), // ≈ (0.4363, 0.4363)
                (0.60, 0.370),
                (b_gc, b_gc / 3.0), // ≈ (0.8414, 0.2805)
                (1.20, 0.130),
                (FRAC_PI_2, 0.0),
            ],
        )
        .expect("snail preset is a valid table")
    }

    /// The boundary samples.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

impl SpeedLimit for Characterized {
    fn name(&self) -> &str {
        &self.name
    }

    fn max_gc(&self) -> f64 {
        self.points.last().map(|&(gc, _)| gc).unwrap_or(0.0)
    }

    fn max_gg(&self) -> f64 {
        self.points.first().map(|&(_, gg)| gg).unwrap_or(0.0)
    }

    fn boundary(&self, gc: f64) -> f64 {
        if gc <= self.points[0].0 {
            return self.points[0].1;
        }
        for w in self.points.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if gc <= x1 {
                let t = (gc - x0) / (x1 - x0);
                return y0 + t * (y1 - y0);
            }
        }
        0.0
    }
}

/// The paper's three comparative speed limits, as an owning enum for easy
/// iteration in experiment harnesses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StandardSlf {
    /// `gc + gg ≤ π/2`.
    Linear(Linear),
    /// `gc² + gg² ≤ (π/2)²`.
    Squared(Squared),
    /// The SNAIL-characterized substitute.
    Snail(Characterized),
}

impl StandardSlf {
    /// All three standard speed limits in the paper's Table II order.
    pub fn all() -> Vec<StandardSlf> {
        vec![
            StandardSlf::Linear(Linear::normalized()),
            StandardSlf::Squared(Squared::normalized()),
            StandardSlf::Snail(Characterized::snail()),
        ]
    }

    /// Borrows the underlying trait object.
    pub fn as_slf(&self) -> &dyn SpeedLimit {
        match self {
            StandardSlf::Linear(s) => s,
            StandardSlf::Squared(s) => s,
            StandardSlf::Snail(s) => s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_boundary_and_intersection() {
        let l = Linear::normalized();
        assert!((l.boundary(0.0) - FRAC_PI_2).abs() < 1e-12);
        assert_eq!(l.boundary(10.0), 0.0);
        let (gc, gg) = l.intersection(1.0);
        assert!((gc - FRAC_PI_2 / 2.0).abs() < 1e-12);
        assert!((gg - gc).abs() < 1e-12);
    }

    #[test]
    fn squared_boundary_is_circle() {
        let s = Squared::normalized();
        for gc in [0.0, 0.3, 1.0, 1.5] {
            let gg = s.boundary(gc);
            if gg > 0.0 {
                assert!((gc * gc + gg * gg - FRAC_PI_2 * FRAC_PI_2).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn characterized_validation() {
        assert!(matches!(
            Characterized::from_points("x", vec![(0.0, 1.0)]),
            Err(SpeedLimitError::InvalidTable(_))
        ));
        assert!(matches!(
            Characterized::from_points("x", vec![(0.0, 1.0), (0.0, 0.5)]),
            Err(SpeedLimitError::InvalidTable(_))
        ));
        assert!(matches!(
            Characterized::from_points("x", vec![(0.0, 0.5), (1.0, 0.9)]),
            Err(SpeedLimitError::InvalidTable(_))
        ));
        assert!(Characterized::from_points("x", vec![(0.0, 1.0), (1.0, 0.0)]).is_ok());
    }

    #[test]
    fn characterized_interpolates() {
        let c = Characterized::from_points("x", vec![(0.0, 1.0), (2.0, 0.0)]).unwrap();
        assert!((c.boundary(1.0) - 0.5).abs() < 1e-12);
        assert!((c.boundary(0.0) - 1.0).abs() < 1e-12);
        assert_eq!(c.boundary(5.0), 0.0);
    }

    #[test]
    fn snail_shape() {
        let s = Characterized::snail();
        // Conversion driveable much harder than gain.
        assert!(s.max_gc() > 2.0 * s.max_gg());
        // Boundary is within the feasibility test.
        assert!(s.is_feasible(0.1, 0.1));
        assert!(!s.is_feasible(1.0, 0.5));
        assert!(!s.is_feasible(-0.1, 0.0));
    }

    #[test]
    fn standard_set_has_three() {
        let all = StandardSlf::all();
        assert_eq!(all.len(), 3);
        let names: Vec<&str> = all.iter().map(|s| s.as_slf().name()).collect();
        assert_eq!(names, vec!["linear", "squared", "snail-characterized"]);
    }
}

//! The Fig. 3c monitor-qubit break-point sweep, simulated.
//!
//! The paper characterizes the SNAIL speed limit by preparing a second
//! "monitor" qubit in the ground state, pumping gain and conversion
//! simultaneously at detuned frequencies, and measuring the monitor: an
//! excited monitor signals that the coupler crossed into chaotic behaviour.
//! We model the excitation probability as a sigmoid across the boundary
//! (sharp but not infinitely sharp, as in the measured data) plus a small
//! residual floor, sweep a grid, and *re-fit* a [`Characterized`] SLF from
//! the sweep exactly as an experimentalist would.

use crate::{Characterized, SpeedLimit, SpeedLimitError};
use rand::Rng;

/// A stochastic monitor-qubit model wrapped around a ground-truth SLF.
#[derive(Debug, Clone)]
pub struct MonitorQubitModel<S> {
    slf: S,
    transition_width: f64,
    floor: f64,
}

impl<S: SpeedLimit> MonitorQubitModel<S> {
    /// Creates a model with the given sigmoid transition width (in drive
    /// units) and residual excitation floor.
    ///
    /// # Panics
    ///
    /// Panics if `transition_width` is not positive or `floor` is outside
    /// `[0, 0.5)`.
    pub fn new(slf: S, transition_width: f64, floor: f64) -> Self {
        assert!(transition_width > 0.0, "width must be positive");
        assert!((0.0..0.5).contains(&floor), "floor must be in [0, 0.5)");
        MonitorQubitModel {
            slf,
            transition_width,
            floor,
        }
    }

    /// The ground-truth speed limit.
    pub fn slf(&self) -> &S {
        &self.slf
    }

    /// Probability that the monitor qubit is excited after pumping at
    /// `(gc, gg)` — approaches 1 deep in the chaotic region and the floor
    /// deep in the feasible region.
    pub fn excitation_probability(&self, gc: f64, gg: f64) -> f64 {
        // Signed distance to the boundary along gg (positive = infeasible).
        let overdrive = gg - self.slf.boundary(gc);
        let sig = 1.0 / (1.0 + (-overdrive / self.transition_width).exp());
        self.floor + (1.0 - self.floor) * sig
    }

    /// One simulated shot: measures the monitor after pumping at `(gc, gg)`.
    pub fn measure<R: Rng + ?Sized>(&self, gc: f64, gg: f64, rng: &mut R) -> bool {
        rng.gen_bool(self.excitation_probability(gc, gg).clamp(0.0, 1.0))
    }

    /// Sweeps an `nx × ny` grid over `[0, gc_max] × [0, gg_max]`, averaging
    /// `shots` measurements per point — the Fig. 3c raster.
    ///
    /// Returns the grid of excited fractions, row-major with `gg` as the
    /// slow axis.
    pub fn sweep<R: Rng + ?Sized>(
        &self,
        nx: usize,
        ny: usize,
        shots: usize,
        rng: &mut R,
    ) -> SweepGrid {
        assert!(nx >= 2 && ny >= 2 && shots > 0, "degenerate sweep");
        let gc_max = self.slf.max_gc() * 1.05;
        let gg_max = (self.slf.max_gg() * 1.6).max(1e-6);
        let mut values = Vec::with_capacity(nx * ny);
        for iy in 0..ny {
            let gg = gg_max * iy as f64 / (ny - 1) as f64;
            for ix in 0..nx {
                let gc = gc_max * ix as f64 / (nx - 1) as f64;
                let excited = (0..shots).filter(|_| self.measure(gc, gg, rng)).count();
                values.push(excited as f64 / shots as f64);
            }
        }
        SweepGrid {
            nx,
            ny,
            gc_max,
            gg_max,
            values,
        }
    }
}

/// The result of a monitor-qubit sweep: excited-state fractions on a grid.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    nx: usize,
    ny: usize,
    gc_max: f64,
    gg_max: f64,
    values: Vec<f64>,
}

impl SweepGrid {
    /// Grid extent along `gc`.
    pub fn gc_max(&self) -> f64 {
        self.gc_max
    }

    /// Grid extent along `gg`.
    pub fn gg_max(&self) -> f64 {
        self.gg_max
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Excited fraction at grid index `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics when the index is out of range.
    pub fn at(&self, ix: usize, iy: usize) -> f64 {
        assert!(ix < self.nx && iy < self.ny, "index out of range");
        self.values[iy * self.nx + ix]
    }

    /// The drive coordinates of grid index `(ix, iy)`.
    pub fn coords(&self, ix: usize, iy: usize) -> (f64, f64) {
        (
            self.gc_max * ix as f64 / (self.nx - 1) as f64,
            self.gg_max * iy as f64 / (self.ny - 1) as f64,
        )
    }

    /// Fits a [`Characterized`] SLF from the sweep: for each `gc` column,
    /// finds the `gg` where the excited fraction first crosses ½ (linear
    /// interpolation between grid rows), exactly as the white boundary line
    /// of Fig. 3c is drawn.
    ///
    /// # Errors
    ///
    /// Returns [`SpeedLimitError::InvalidTable`] if the sweep is too noisy
    /// to yield a monotone boundary.
    pub fn fit_boundary(&self) -> Result<Characterized, SpeedLimitError> {
        let mut pts: Vec<(f64, f64)> = Vec::new();
        for ix in 0..self.nx {
            let (gc, _) = self.coords(ix, 0);
            // Scan up the column for the 1/2 crossing.
            let mut crossing = None;
            for iy in 1..self.ny {
                let lo = self.at(ix, iy - 1);
                let hi = self.at(ix, iy);
                if lo < 0.5 && hi >= 0.5 {
                    let (_, g0) = self.coords(ix, iy - 1);
                    let (_, g1) = self.coords(ix, iy);
                    let t = (0.5 - lo) / (hi - lo);
                    crossing = Some(g0 + t * (g1 - g0));
                    break;
                }
            }
            let gg = crossing.unwrap_or(0.0);
            pts.push((gc, gg));
        }
        // Enforce monotonicity (running minimum) to absorb shot noise, and
        // strictly increasing gc is guaranteed by construction.
        let mut run_min = f64::INFINITY;
        for p in &mut pts {
            run_min = run_min.min(p.1);
            p.1 = run_min;
        }
        Characterized::from_points("fitted-boundary", pts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Characterized, Linear};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probability_limits() {
        let m = MonitorQubitModel::new(Linear::normalized(), 0.02, 0.01);
        // Deep inside the feasible region: near the floor.
        assert!(m.excitation_probability(0.1, 0.1) < 0.05);
        // Far beyond the boundary: near 1.
        assert!(m.excitation_probability(1.5, 1.5) > 0.95);
    }

    #[test]
    fn sweep_shape_and_range() {
        let m = MonitorQubitModel::new(Characterized::snail(), 0.02, 0.01);
        let mut rng = StdRng::seed_from_u64(1);
        let grid = m.sweep(12, 10, 16, &mut rng);
        assert_eq!(grid.shape(), (12, 10));
        for iy in 0..10 {
            for ix in 0..12 {
                let v = grid.at(ix, iy);
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn fitted_boundary_recovers_ground_truth() {
        let truth = Characterized::snail();
        let m = MonitorQubitModel::new(truth.clone(), 0.01, 0.005);
        let mut rng = StdRng::seed_from_u64(7);
        let grid = m.sweep(24, 64, 200, &mut rng);
        let fitted = grid.fit_boundary().unwrap();
        // Compare boundaries at interior gc values.
        for ix in 1..20 {
            let gc = truth.max_gc() * ix as f64 / 24.0;
            let want = truth.boundary(gc);
            let got = fitted.boundary(gc);
            assert!(
                (want - got).abs() < 0.05,
                "boundary mismatch at gc={gc}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn measure_is_bernoulli_of_probability() {
        let m = MonitorQubitModel::new(Linear::normalized(), 0.05, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let p = m.excitation_probability(1.2, 1.2);
        assert!(p > 0.99);
        let hits = (0..100).filter(|_| m.measure(1.2, 1.2, &mut rng)).count();
        assert!(hits > 90);
    }
}

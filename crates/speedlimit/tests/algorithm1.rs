//! Checks `min_pulse_time` (the paper's Algorithm 1) against closed-form
//! solutions for the `Linear` and `Squared` speed-limit functions.
//!
//! For a drive ray `gg = β·gc` the fastest pulse slides along the ray to the
//! SLF boundary, so the minimum time has a closed form per SLF:
//!
//! - Linear `gc + gg ≤ L`:   `t = (θc + θg) / L`,
//! - Squared `gc² + gg² ≤ L²`: `t = √(θc² + θg²) / L`,
//!
//! independent of drive orientation in both cases. The β-ray edge cases are
//! `β = 0` (pure conversion, `t = θc / max_gc`) and `β → ∞` (pure gain,
//! `t = θg / max_gg`).

use paradrive_hamiltonian::DriveAngles;
use paradrive_speedlimit::{min_pulse_time, Linear, SpeedLimit, Squared};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

const TOL: f64 = 1e-9;

/// Angle pairs spanning β from 0 through finite ratios; β = ∞ cases are
/// exercised separately because `DriveAngles { theta_c: 0.0, .. }` is the
/// pure-gain limit.
fn angle_cases() -> Vec<DriveAngles> {
    vec![
        DriveAngles::new(FRAC_PI_2, 0.0),           // β = 0 (iSWAP pulse)
        DriveAngles::new(FRAC_PI_4, FRAC_PI_4),     // β = 1 (CNOT pulse)
        DriveAngles::new(3.0 * PI / 8.0, PI / 8.0), // β = 1/3 (B pulse)
        DriveAngles::new(0.1, 0.7),                 // β = 7
        DriveAngles::new(1.3, 0.002),               // β ≈ 0.0015
    ]
}

#[test]
fn linear_matches_closed_form() {
    for l in [FRAC_PI_2, 1.0, 2.5] {
        let slf = Linear::new(l);
        for a in angle_cases() {
            let got = min_pulse_time(&slf, a).unwrap();
            let want = (a.theta_c + a.theta_g) / l;
            assert!(
                (got - want).abs() < TOL,
                "Linear(L={l}), θ=({},{}) → {got}, closed form {want}",
                a.theta_c,
                a.theta_g
            );
        }
    }
}

#[test]
fn squared_matches_closed_form() {
    for l in [FRAC_PI_2, 1.0, 2.5] {
        let slf = Squared::new(l);
        for a in angle_cases() {
            let got = min_pulse_time(&slf, a).unwrap();
            let want = (a.theta_c * a.theta_c + a.theta_g * a.theta_g).sqrt() / l;
            assert!(
                (got - want).abs() < TOL,
                "Squared(L={l}), θ=({},{}) → {got}, closed form {want}",
                a.theta_c,
                a.theta_g
            );
        }
    }
}

#[test]
fn beta_zero_ray_hits_the_gc_intercept() {
    // β = 0: the ray runs along the conversion axis and the intersection is
    // the boundary's x-intercept, for both SLF families.
    let lin = Linear::normalized();
    let sq = Squared::normalized();
    for slf in [&lin as &dyn SpeedLimit, &sq as &dyn SpeedLimit] {
        let (gc, gg) = slf.intersection(0.0);
        assert!((gc - slf.max_gc()).abs() < TOL, "{}: gc {gc}", slf.name());
        assert!(gg.abs() < TOL, "{}: gg {gg}", slf.name());
    }
    // The matching pulse time: t = θc / max_gc.
    let theta = 1.1;
    let t = min_pulse_time(&lin, DriveAngles::new(theta, 0.0)).unwrap();
    assert!((t - theta / lin.max_gc()).abs() < TOL);
}

#[test]
fn beta_infinity_ray_hits_the_gg_intercept() {
    // β → ∞: the ray runs along the gain axis and the intersection is the
    // boundary's y-intercept.
    let lin = Linear::normalized();
    let sq = Squared::normalized();
    for slf in [&lin as &dyn SpeedLimit, &sq as &dyn SpeedLimit] {
        let (gc, gg) = slf.intersection(f64::INFINITY);
        assert!(gc.abs() < TOL, "{}: gc {gc}", slf.name());
        assert!((gg - slf.max_gg()).abs() < TOL, "{}: gg {gg}", slf.name());
    }
    // Pure-gain pulse time: t = θg / max_gg. Both SLFs are symmetric, so
    // the orientation search may flip the axes; the closed form is the same.
    let theta = 0.9;
    let t = min_pulse_time(&sq, DriveAngles::new(0.0, theta)).unwrap();
    assert!((t - theta / sq.max_gg()).abs() < TOL);
}

#[test]
fn zero_angles_cost_zero_time() {
    let slf = Linear::normalized();
    let t = min_pulse_time(&slf, DriveAngles::new(0.0, 0.0)).unwrap();
    assert_eq!(t, 0.0);
}

#[test]
fn default_bisection_agrees_with_closed_forms() {
    // Wrap each SLF so the trait's default bisection runs instead of the
    // closed-form `intersection` overrides, and compare on many rays.
    struct Bisect<S: SpeedLimit>(S);
    impl<S: SpeedLimit> SpeedLimit for Bisect<S> {
        fn name(&self) -> &str {
            "bisect"
        }
        fn max_gc(&self) -> f64 {
            self.0.max_gc()
        }
        fn max_gg(&self) -> f64 {
            self.0.max_gg()
        }
        fn boundary(&self, gc: f64) -> f64 {
            self.0.boundary(gc)
        }
    }

    let betas = [0.0, 0.05, 0.5, 1.0, 2.0, 17.0, f64::INFINITY];
    for beta in betas {
        let (a, b) = Linear::normalized().intersection(beta);
        let (c, d) = Bisect(Linear::normalized()).intersection(beta);
        assert!(
            (a - c).abs() < 1e-8 && (b - d).abs() < 1e-8,
            "linear β={beta}"
        );

        let (a, b) = Squared::normalized().intersection(beta);
        let (c, d) = Bisect(Squared::normalized()).intersection(beta);
        assert!(
            (a - c).abs() < 1e-8 && (b - d).abs() < 1e-8,
            "squared β={beta}"
        );
    }
}

#[test]
fn scaling_the_budget_scales_time_inversely() {
    // Doubling the drive budget halves every pulse time (Algorithm 1 is
    // homogeneous of degree −1 in the SLF scale).
    let a = DriveAngles::new(0.8, 0.3);
    let t1 = min_pulse_time(&Linear::new(1.0), a).unwrap();
    let t2 = min_pulse_time(&Linear::new(2.0), a).unwrap();
    assert!((t1 - 2.0 * t2).abs() < TOL);

    let t1 = min_pulse_time(&Squared::new(1.0), a).unwrap();
    let t2 = min_pulse_time(&Squared::new(2.0), a).unwrap();
    assert!((t1 - 2.0 * t2).abs() < TOL);
}

//! Decomposition-template synthesis by numerical optimization.
//!
//! The paper's Algorithm 2 needs to answer: *can K applications of this
//! parallel-driven basis gate, with free pump phases `φc, φg`, 1Q drive
//! envelopes `ε1(t), ε2(t)` and interleaved 1Q gates, reach a given target
//! class?* We answer it the same way the paper does: Nelder–Mead over the
//! template's free parameters with a Makhlin-invariant loss functional, so
//! the optimizer chases the target's local-equivalence class rather than a
//! specific matrix (Fig. 8).
//!
//! # Example
//!
//! ```
//! use paradrive_optimizer::{NelderMead, Options};
//!
//! // Minimize a 2-d quadratic.
//! let f = |x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2);
//! let result = NelderMead::new(Options::default()).minimize(&f, &[0.0, 0.0]);
//! assert!(result.value < 1e-10);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod nelder_mead;
mod template;

pub use nelder_mead::{NelderMead, NmResult, Options};
pub use template::{SynthesisOutcome, TemplateSpec, TemplateSynthesizer};

/// Errors produced by template synthesis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptimizerError {
    /// The template was configured with zero repetitions or zero segments.
    EmptyTemplate,
    /// A Weyl-chamber computation failed on an optimizer iterate.
    Weyl(String),
}

impl std::fmt::Display for OptimizerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimizerError::EmptyTemplate => {
                write!(
                    f,
                    "template must have at least one repetition and one segment"
                )
            }
            OptimizerError::Weyl(e) => write!(f, "Weyl computation failed: {e}"),
        }
    }
}

impl std::error::Error for OptimizerError {}

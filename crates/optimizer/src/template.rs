//! Parallel-driven decomposition templates and their synthesis.
//!
//! A template is `K` applications of a fixed conversion–gain basis pulse,
//! each with free pump phases `(φc, φg)` and free piecewise-constant 1Q
//! drive envelopes `(ε1(t), ε2(t))`, optionally interleaved with free 1Q
//! gate layers (Fig. 8a). [`TemplateSynthesizer`] fits the free parameters
//! so the template's total unitary lands on a target local-equivalence
//! class, using the Makhlin-invariant loss.

use crate::nelder_mead::{NelderMead, NmResult, Options};
use crate::OptimizerError;
use paradrive_hamiltonian::{ConversionGain, ParallelDrive, Segment};
use paradrive_linalg::{paulis, CMat};
use paradrive_weyl::invariants::MakhlinInvariants;
use paradrive_weyl::magic::coordinates;
use paradrive_weyl::WeylPoint;
use rand::Rng;

/// The fixed structure of a decomposition template.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemplateSpec {
    /// Conversion strength of the basis pulse (with `total_time = 1`, this
    /// equals the pulse angle `θc`).
    pub gc: f64,
    /// Gain strength of the basis pulse (`θg` at unit time).
    pub gg: f64,
    /// Duration of one basis pulse.
    pub total_time: f64,
    /// Number of piecewise-constant 1Q drive segments per pulse (the paper
    /// uses 4, i.e. `D[1Q] = 0.25` of a full pulse).
    pub segments: usize,
    /// Number of basis-pulse repetitions `K`.
    pub k: usize,
    /// Whether the qubits are driven during the pulse (parallel drive). When
    /// `false` only the pump phases are free and the pulse stays on its
    /// conversion–gain ray.
    pub parallel_drive: bool,
    /// Whether free 1Q gate layers are interleaved between repetitions.
    pub interleaved_1q: bool,
}

impl TemplateSpec {
    /// Template over `k` applications of a basis pulse with angles
    /// `(θc, θg)` (unit pulse time, 4 segments, parallel drive and
    /// interleaving enabled).
    pub fn for_basis_angles(theta_c: f64, theta_g: f64, k: usize) -> Self {
        TemplateSpec {
            gc: theta_c,
            gg: theta_g,
            total_time: 1.0,
            segments: 4,
            k,
            parallel_drive: true,
            interleaved_1q: true,
        }
    }

    /// Template over `k` full iSWAP pulses.
    pub fn iswap_basis(k: usize) -> Self {
        Self::for_basis_angles(std::f64::consts::FRAC_PI_2, 0.0, k)
    }

    /// Template over `k` √iSWAP pulses.
    pub fn sqrt_iswap_basis(k: usize) -> Self {
        Self::for_basis_angles(std::f64::consts::FRAC_PI_4, 0.0, k)
    }

    /// Disables the parallel 1Q drives (plain conversion–gain pulses).
    #[must_use]
    pub fn without_parallel_drive(mut self) -> Self {
        self.parallel_drive = false;
        self
    }

    /// Disables the interleaved 1Q layers.
    #[must_use]
    pub fn without_interleaving(mut self) -> Self {
        self.interleaved_1q = false;
        self
    }

    /// Number of free parameters per basis-pulse slot.
    fn slot_params(&self) -> usize {
        2 + if self.parallel_drive {
            2 * self.segments
        } else {
            0
        }
    }

    /// Number of free parameters in an interleaved 1Q layer (two U3 gates).
    fn layer_params(&self) -> usize {
        if self.interleaved_1q {
            6
        } else {
            0
        }
    }

    /// Total number of free parameters.
    pub fn param_count(&self) -> usize {
        self.k * self.slot_params() + self.k.saturating_sub(1) * self.layer_params()
    }

    /// Evaluates the template's total unitary for a parameter vector.
    ///
    /// Layout: `k` slots of `[φc, φg, ε1[0..s], ε2[0..s]]` each followed
    /// (except the last) by `[θa, φa, λa, θb, φb, λb]` for the interleaved
    /// layer.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizerError::EmptyTemplate`] for a zero-repetition or
    /// zero-segment spec.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.param_count()`.
    pub fn evaluate(&self, params: &[f64]) -> Result<CMat, OptimizerError> {
        if self.k == 0 || self.segments == 0 {
            return Err(OptimizerError::EmptyTemplate);
        }
        assert_eq!(params.len(), self.param_count(), "parameter count mismatch");
        let mut u = CMat::identity(4);
        let mut cursor = 0usize;
        for rep in 0..self.k {
            let phi_c = params[cursor];
            let phi_g = params[cursor + 1];
            cursor += 2;
            let segs: Vec<Segment> = if self.parallel_drive {
                let e1 = &params[cursor..cursor + self.segments];
                let e2 = &params[cursor + self.segments..cursor + 2 * self.segments];
                cursor += 2 * self.segments;
                e1.iter()
                    .zip(e2)
                    .map(|(&a, &b)| Segment::new(a, b))
                    .collect()
            } else {
                vec![Segment::default(); self.segments]
            };
            let base = ConversionGain::try_new(self.gc, self.gg, phi_c, phi_g)
                .expect("spec strengths validated at construction");
            let pulse = ParallelDrive::new(base, segs, self.total_time)
                .expect("segments are non-empty and finite");
            u = pulse.unitary().mul(&u);

            if self.interleaved_1q && rep + 1 < self.k {
                let l = &params[cursor..cursor + 6];
                cursor += 6;
                let layer =
                    paulis::tensor(&paulis::u3(l[0], l[1], l[2]), &paulis::u3(l[3], l[4], l[5]));
                u = layer.mul(&u);
            }
        }
        Ok(u)
    }

    /// Samples a random parameter vector with the paper's `(0, 2π)` bounds.
    pub fn random_params<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        (0..self.param_count())
            .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
            .collect()
    }
}

/// The result of a template synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisOutcome {
    /// Best parameter vector.
    pub params: Vec<f64>,
    /// Final Makhlin-invariant loss.
    pub loss: f64,
    /// The synthesized unitary.
    pub unitary: CMat,
    /// Its chamber coordinates.
    pub point: WeylPoint,
    /// Best loss after each optimizer iteration (Fig. 8b).
    pub loss_history: Vec<f64>,
    /// Whether the loss reached the convergence threshold.
    pub converged: bool,
}

/// Multi-start Nelder–Mead synthesis of template parameters onto a target
/// gate class.
#[derive(Debug, Clone)]
pub struct TemplateSynthesizer {
    spec: TemplateSpec,
    options: Options,
    restarts: usize,
    tolerance: f64,
}

impl TemplateSynthesizer {
    /// Creates a synthesizer with sensible defaults (1200 iterations per
    /// start, 6 restarts, loss tolerance `1e-9`).
    pub fn new(spec: TemplateSpec) -> Self {
        TemplateSynthesizer {
            spec,
            options: Options {
                max_iter: 1200,
                ..Options::default()
            },
            restarts: 6,
            tolerance: 1e-9,
        }
    }

    /// Overrides the per-start optimizer options.
    #[must_use]
    pub fn with_options(mut self, options: Options) -> Self {
        self.options = options;
        self
    }

    /// Overrides the number of random restarts.
    #[must_use]
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// Overrides the convergence tolerance on the invariant loss.
    #[must_use]
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// The template structure being synthesized.
    pub fn spec(&self) -> &TemplateSpec {
        &self.spec
    }

    /// Synthesizes parameters that bring the template onto the target's
    /// local-equivalence class.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizerError`] when the template is degenerate or the
    /// final unitary's coordinates cannot be extracted.
    pub fn synthesize_to_class<R: Rng + ?Sized>(
        &self,
        target: MakhlinInvariants,
        rng: &mut R,
    ) -> Result<SynthesisOutcome, OptimizerError> {
        let spec = self.spec;
        let loss_fn = |params: &[f64]| -> f64 {
            let u = match spec.evaluate(params) {
                Ok(u) => u,
                Err(_) => return f64::MAX,
            };
            match MakhlinInvariants::of(&u) {
                Ok(inv) => inv.dist_sqr(target),
                Err(_) => f64::MAX,
            }
        };

        let nm = NelderMead::new(self.options);
        let mut best: Option<NmResult> = None;
        for _ in 0..self.restarts {
            let x0 = spec.random_params(rng);
            let run = nm.minimize(&loss_fn, &x0);
            let better = best.as_ref().is_none_or(|b| run.value < b.value);
            if better {
                best = Some(run);
            }
            if best.as_ref().is_some_and(|b| b.value < self.tolerance) {
                break;
            }
        }
        let best = best.expect("at least one restart ran");
        let unitary = spec.evaluate(&best.x)?;
        let point = coordinates(&unitary).map_err(|e| OptimizerError::Weyl(e.to_string()))?;
        Ok(SynthesisOutcome {
            converged: best.value < self.tolerance,
            params: best.x,
            loss: best.value,
            unitary,
            point,
            loss_history: best.history,
        })
    }

    /// Convenience: synthesize towards a target chamber point.
    ///
    /// # Errors
    ///
    /// See [`TemplateSynthesizer::synthesize_to_class`].
    pub fn synthesize_to_point<R: Rng + ?Sized>(
        &self,
        target: WeylPoint,
        rng: &mut R,
    ) -> Result<SynthesisOutcome, OptimizerError> {
        self.synthesize_to_class(MakhlinInvariants::of_point(target), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn param_count_layout() {
        let spec = TemplateSpec::iswap_basis(2);
        // 2 slots × (2 + 8) + 1 layer × 6 = 26.
        assert_eq!(spec.param_count(), 26);
        assert_eq!(spec.without_parallel_drive().param_count(), 2 * 2 + 6);
        assert_eq!(spec.without_interleaving().param_count(), 20);
    }

    #[test]
    fn evaluate_is_unitary() {
        let spec = TemplateSpec::iswap_basis(2);
        let mut rng = StdRng::seed_from_u64(1);
        let params = spec.random_params(&mut rng);
        let u = spec.evaluate(&params).unwrap();
        assert!(u.is_unitary(1e-9));
    }

    #[test]
    fn zero_k_rejected() {
        let mut spec = TemplateSpec::iswap_basis(1);
        spec.k = 0;
        assert_eq!(
            spec.evaluate(&[]).unwrap_err(),
            OptimizerError::EmptyTemplate
        );
    }

    #[test]
    fn plain_iswap_cannot_reach_cnot() {
        // Without parallel drive a single iSWAP pulse stays in the iSWAP
        // class — the optimizer must fail to reach CNOT.
        let spec = TemplateSpec::iswap_basis(1).without_parallel_drive();
        let mut rng = StdRng::seed_from_u64(2);
        let out = TemplateSynthesizer::new(spec)
            .with_restarts(2)
            .synthesize_to_point(WeylPoint::CNOT, &mut rng)
            .unwrap();
        assert!(!out.converged, "plain iSWAP reached CNOT?!");
        assert!(out.loss > 0.1);
    }

    #[test]
    fn parallel_driven_iswap_reaches_cnot() {
        // The paper's headline synthesis result (Fig. 8): K = 1 iSWAP with
        // parallel 1Q drives contains the CNOT class.
        let spec = TemplateSpec::iswap_basis(1);
        let mut rng = StdRng::seed_from_u64(3);
        let out = TemplateSynthesizer::new(spec)
            .with_tolerance(1e-8)
            .with_restarts(10)
            .synthesize_to_point(WeylPoint::CNOT, &mut rng)
            .unwrap();
        assert!(
            out.converged,
            "did not converge: loss {} at {}",
            out.loss, out.point
        );
        assert!(out.point.chamber_dist(WeylPoint::CNOT) < 1e-3);
    }

    #[test]
    fn two_sqrt_iswaps_reach_cnot() {
        // The classic analytic result, recovered numerically: K = 2 √iSWAP
        // (even without parallel drive) spans the CNOT class.
        let spec = TemplateSpec::sqrt_iswap_basis(2).without_parallel_drive();
        let mut rng = StdRng::seed_from_u64(4);
        let out = TemplateSynthesizer::new(spec)
            .with_tolerance(1e-8)
            .with_restarts(10)
            .synthesize_to_point(WeylPoint::CNOT, &mut rng)
            .unwrap();
        assert!(out.converged, "loss {}", out.loss);
    }

    #[test]
    fn loss_history_nonincreasing() {
        let spec = TemplateSpec::iswap_basis(1);
        let mut rng = StdRng::seed_from_u64(5);
        let out = TemplateSynthesizer::new(spec)
            .with_restarts(1)
            .synthesize_to_point(WeylPoint::CNOT, &mut rng)
            .unwrap();
        for w in out.loss_history.windows(2) {
            assert!(w[1] <= w[0] + 1e-15);
        }
    }
}

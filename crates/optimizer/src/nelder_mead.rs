//! A self-contained Nelder–Mead simplex minimizer.
//!
//! Uses the standard reflection/expansion/contraction/shrink moves with the
//! adaptive coefficients of Gao & Han for dimension-robust behaviour on the
//! 10–40 dimensional template parameter spaces this workspace optimizes.

/// Termination and behaviour options for [`NelderMead`].
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Maximum number of iterations (function evaluations are a small
    /// multiple of this).
    pub max_iter: usize,
    /// Stop when the simplex's value spread falls below this.
    pub f_tol: f64,
    /// Stop when the simplex's spatial diameter falls below this.
    pub x_tol: f64,
    /// Initial simplex step per coordinate.
    pub initial_step: f64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_iter: 2000,
            f_tol: 1e-14,
            x_tol: 1e-12,
            initial_step: 0.5,
        }
    }
}

/// The result of a minimization run.
#[derive(Debug, Clone)]
pub struct NmResult {
    /// Best parameter vector found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Best objective value after each iteration — the training-loss curve
    /// of the paper's Fig. 8b.
    pub history: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
}

/// A Nelder–Mead simplex minimizer.
#[derive(Debug, Clone, Copy)]
pub struct NelderMead {
    options: Options,
}

impl NelderMead {
    /// Creates a minimizer with the given options.
    pub fn new(options: Options) -> Self {
        NelderMead { options }
    }

    /// Minimizes `f` starting from `x0`.
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    pub fn minimize(&self, f: &dyn Fn(&[f64]) -> f64, x0: &[f64]) -> NmResult {
        let n = x0.len();
        assert!(n > 0, "cannot minimize over zero parameters");
        let o = &self.options;

        // Adaptive coefficients (Gao & Han 2012).
        let nf = n as f64;
        let alpha = 1.0;
        let beta = 1.0 + 2.0 / nf;
        let gamma = 0.75 - 1.0 / (2.0 * nf);
        let delta = 1.0 - 1.0 / nf;

        // Initial simplex: x0 plus a step along each axis.
        let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        simplex.push(x0.to_vec());
        for i in 0..n {
            let mut v = x0.to_vec();
            v[i] += if v[i].abs() > 1e-12 {
                o.initial_step * v[i].abs()
            } else {
                o.initial_step
            };
            simplex.push(v);
        }
        let mut values: Vec<f64> = simplex.iter().map(|v| f(v)).collect();
        let mut history = Vec::with_capacity(o.max_iter);
        let mut iterations = 0;

        for _ in 0..o.max_iter {
            iterations += 1;
            // Order the simplex by value.
            let mut idx: Vec<usize> = (0..=n).collect();
            idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
            simplex = idx.iter().map(|&i| simplex[i].clone()).collect();
            values = idx.iter().map(|&i| values[i]).collect();
            history.push(values[0]);

            // Convergence checks.
            let spread = values[n] - values[0];
            let diameter = simplex[1..]
                .iter()
                .map(|v| {
                    v.iter()
                        .zip(&simplex[0])
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0_f64, f64::max)
                })
                .fold(0.0_f64, f64::max);
            if spread < o.f_tol && diameter < o.x_tol {
                break;
            }

            // Centroid of all but the worst vertex.
            let mut centroid = vec![0.0; n];
            for v in &simplex[..n] {
                for (c, &x) in centroid.iter_mut().zip(v) {
                    *c += x;
                }
            }
            for c in &mut centroid {
                *c /= nf;
            }

            let lerp = |from: &[f64], towards: &[f64], t: f64| -> Vec<f64> {
                from.iter()
                    .zip(towards)
                    .map(|(&a, &b)| a + t * (b - a))
                    .collect()
            };

            // Reflect the worst point through the centroid.
            let reflected = lerp(&centroid, &simplex[n], -alpha);
            let fr = f(&reflected);

            if fr < values[0] {
                // Try expanding further.
                let expanded = lerp(&centroid, &simplex[n], -alpha * beta);
                let fe = f(&expanded);
                if fe < fr {
                    simplex[n] = expanded;
                    values[n] = fe;
                } else {
                    simplex[n] = reflected;
                    values[n] = fr;
                }
            } else if fr < values[n - 1] {
                simplex[n] = reflected;
                values[n] = fr;
            } else {
                // Contraction (outside if the reflection helped at all).
                let (point, fv) = if fr < values[n] {
                    let outside = lerp(&centroid, &simplex[n], -alpha * gamma);
                    let fo = f(&outside);
                    (outside, fo)
                } else {
                    let inside = lerp(&centroid, &simplex[n], gamma);
                    let fi = f(&inside);
                    (inside, fi)
                };
                if fv < values[n].min(fr) {
                    simplex[n] = point;
                    values[n] = fv;
                } else {
                    // Shrink everything towards the best vertex.
                    let best = simplex[0].clone();
                    for i in 1..=n {
                        simplex[i] = lerp(&best, &simplex[i], delta);
                        values[i] = f(&simplex[i]);
                    }
                }
            }
        }

        // Final ordering.
        let mut best_i = 0;
        for i in 1..=n {
            if values[i] < values[best_i] {
                best_i = i;
            }
        }
        NmResult {
            x: simplex[best_i].clone(),
            value: values[best_i],
            history,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_bowl() {
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let r = NelderMead::new(Options::default()).minimize(&f, &[3.0, -2.0, 1.0]);
        assert!(r.value < 1e-12, "value {}", r.value);
        for v in r.x {
            assert!(v.abs() < 1e-5);
        }
    }

    #[test]
    fn rosenbrock_2d() {
        let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let r = NelderMead::new(Options {
            max_iter: 5000,
            ..Options::default()
        })
        .minimize(&f, &[-1.2, 1.0]);
        assert!(r.value < 1e-8, "value {}", r.value);
        assert!((r.x[0] - 1.0).abs() < 1e-3 && (r.x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn history_is_monotone_nonincreasing() {
        let f = |x: &[f64]| (x[0] - 4.0).powi(2) + (x[1] * x[1] - 2.0).powi(2);
        let r = NelderMead::new(Options::default()).minimize(&f, &[0.0, 0.0]);
        for w in r.history.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-15,
                "history increased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn one_dimensional() {
        let f = |x: &[f64]| (x[0] - 7.5).powi(2);
        let r = NelderMead::new(Options::default()).minimize(&f, &[0.0]);
        assert!((r.x[0] - 7.5).abs() < 1e-6);
    }

    #[test]
    fn respects_max_iter() {
        let f = |x: &[f64]| x.iter().map(|v| v.abs()).sum::<f64>();
        let r = NelderMead::new(Options {
            max_iter: 5,
            ..Options::default()
        })
        .minimize(&f, &[1.0; 8]);
        assert!(r.iterations <= 5);
        assert_eq!(r.history.len(), r.iterations);
    }
}

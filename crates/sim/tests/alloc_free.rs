//! Zero-allocation regression tests for the per-gate and permutation hot
//! paths: after a register's buffers are warm, applying gates, permuting,
//! and resetting must not touch the heap.
//!
//! The whole file is one test function: the allocation counter is a
//! process global, and the default test harness runs `#[test]`s on
//! parallel threads whose allocations would bleed into each other's
//! counts.

// The workspace denies unsafe code; this counting allocator is the one
// sanctioned exception (`GlobalAlloc` is an unsafe trait). It only
// increments an atomic and defers to the system allocator.
#![allow(unsafe_code)]

use paradrive_circuit::{OneQ, TwoQ};
use paradrive_linalg::C64;
use paradrive_sim::{KernelPath, State};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations performed while running `f`.
fn allocations(f: impl FnOnce()) -> usize {
    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    f();
    ALLOC_CALLS.load(Ordering::SeqCst) - before
}

#[test]
fn warm_gate_permute_and_reset_paths_never_allocate() {
    let n = 10;
    // Everything allocation-bearing happens up front: the gate matrices,
    // the registers, the permutation, the prep factors — and one call of
    // each warm-up path (kernel detection's env lookup, the permute
    // scratch buffer).
    let h = OneQ::H.unitary();
    let rz = OneQ::Rz(0.37).unitary();
    let cx = TwoQ::Cx.unitary();
    let iswap = TwoQ::ISwap.unitary();
    let mut st = State::zero(n);
    let mut logical = State::zero(n - 2);
    let mut wide = State::zero(n);
    let perm: Vec<usize> = (0..n).map(|q| (q + 3) % n).collect();
    let factors = vec![C64::new(0.6, 0.0); 2 * (n - 2)];
    for path in [KernelPath::Scalar, KernelPath::Lanes] {
        st.apply_1q_with(&h, 0, path).unwrap();
    }
    let _ = State::run(&paradrive_circuit::Circuit::new(1)); // warms KernelPath::detected()
    st.permute(&perm).unwrap();

    for path in [KernelPath::Scalar, KernelPath::Lanes] {
        let count = allocations(|| {
            for q in 0..n {
                st.apply_1q_with(&h, q, path).unwrap();
                st.apply_1q_with(&rz, q, path).unwrap();
            }
            for a in 0..n - 1 {
                st.apply_2q_with(&cx, a, a + 1, path).unwrap();
                st.apply_2q_with(&iswap, a + 1, a, path).unwrap();
            }
        });
        assert_eq!(count, 0, "gate applies allocated on the {path:?} path");
    }

    let count = allocations(|| {
        for _ in 0..8 {
            st.permute(&perm).unwrap();
        }
    });
    assert_eq!(count, 0, "warm permute allocated");

    let count = allocations(|| {
        st.reset_zero();
        st.reset_basis(5);
        logical.reset_product(&factors).unwrap();
        wide.reset_embed(&logical).unwrap();
    });
    assert_eq!(count, 0, "reset paths allocated");

    // The linalg mul_vec_into satellite: the replay-loop form of the
    // matrix-vector product works entirely in caller buffers.
    let v = vec![C64::ONE, C64::ZERO];
    let mut out = vec![C64::ZERO; 2];
    let count = allocations(|| {
        for _ in 0..16 {
            h.mul_vec_into(&v, &mut out);
        }
    });
    assert_eq!(count, 0, "mul_vec_into allocated");

    // Sanity: the counter itself works — a cold permute on a fresh
    // register does allocate its scratch buffer.
    let mut cold = State::zero(n);
    assert!(
        allocations(|| cold.permute(&perm).unwrap()) > 0,
        "counter failed to observe the cold-path allocation"
    );
}

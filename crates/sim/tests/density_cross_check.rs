//! Cross-check of the two simulators: [`Density::run`] on a pure state
//! must agree with [`State::run`] probabilities — and full state fidelity —
//! for every circuit in the benchmark suite builders, instantiated at
//! density-tractable widths.

use paradrive_circuit::benchmarks;
use paradrive_sim::{Density, State};

#[test]
fn density_and_statevector_agree_on_every_suite_builder() {
    let seed = 7;
    let circuits = vec![
        ("QV", benchmarks::quantum_volume(5, 4, seed)),
        ("VQE_L", benchmarks::vqe_linear(6, 1, seed)),
        ("GHZ", benchmarks::ghz(6)),
        ("HLF", benchmarks::hidden_linear_function(6, seed)),
        ("QFT", benchmarks::qft(5)),
        ("Adder", benchmarks::adder(2)),
        ("QAOA", benchmarks::qaoa(6, 2, seed)),
        ("VQE_F", benchmarks::vqe_full(5, 2, seed)),
        ("Multiplier", benchmarks::multiplier(1)),
    ];
    for (name, c) in circuits {
        let psi = State::run(&c).unwrap();
        let rho = Density::run(&c).unwrap();
        assert!(
            (rho.trace() - 1.0).abs() < 1e-9,
            "{name}: trace {}",
            rho.trace()
        );
        assert!(
            (rho.purity() - 1.0).abs() < 1e-8,
            "{name}: purity {}",
            rho.purity()
        );
        let f = rho.fidelity(&psi);
        assert!((f - 1.0).abs() < 1e-8, "{name}: fidelity {f}");
        for (i, p) in psi.probabilities().iter().enumerate() {
            let diag = rho.matrix()[(i, i)].re;
            assert!(
                (diag - p).abs() < 1e-9,
                "{name}: P[{i}] density {diag} vs statevector {p}"
            );
        }
    }
}

//! The tentpole's correctness contract: the lane-parallel kernels are
//! **bit-identical** to the scalar reference on random circuits across
//! every register width, for both the statevector and the density-matrix
//! conjugation paths.
//!
//! Exact `to_bits` comparison, not an epsilon: both engines must compute
//! the identical floating-point expression per amplitude, which is what
//! keeps the repo's 1-vs-N-thread bit-identical-report discipline intact
//! no matter which engine a host selects.

use paradrive_circuit::{Circuit, OneQ, TwoQ};
use paradrive_linalg::C64;
use paradrive_sim::{Density, KernelPath, State};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random circuit drawing from the full 1Q/2Q gate alphabet.
fn random_circuit(n: usize, ops: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..ops {
        let two_q = n >= 2 && rng.gen_bool(0.5);
        if two_q {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n - 1);
            if b >= a {
                b += 1;
            }
            let theta = rng.gen_range(-3.0..3.0);
            let gate = match rng.gen_range(0..6u32) {
                0 => TwoQ::Cx,
                1 => TwoQ::Cz,
                2 => TwoQ::CPhase(theta),
                3 => TwoQ::Rzz(theta),
                4 => TwoQ::ISwap,
                _ => TwoQ::SqrtISwap,
            };
            c.push_2q(gate, a, b);
        } else {
            let q = rng.gen_range(0..n);
            let theta = rng.gen_range(-3.0..3.0);
            let gate = match rng.gen_range(0..7u32) {
                0 => OneQ::H,
                1 => OneQ::X,
                2 => OneQ::S,
                3 => OneQ::T,
                4 => OneQ::Rx(theta),
                5 => OneQ::Ry(theta),
                _ => OneQ::Rz(theta),
            };
            c.push_1q(gate, q);
        }
    }
    c
}

fn assert_bit_identical(a: &[C64], b: &[C64], context: &str) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{context}: amplitude {i} differs: scalar {x:?} vs lanes {y:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `State::run` amplitudes agree bitwise between engines on widths
    /// 1–12 — covering every lane regime: narrow fallbacks, the strided
    /// small-bit patterns, and the contiguous-run paths.
    #[test]
    fn state_run_is_bit_identical_across_paths(
        n in 1usize..=12,
        seed in 0u64..10_000,
    ) {
        let c = random_circuit(n, 24.min(4 * n), seed);
        let scalar = State::run_with(&c, KernelPath::Scalar).unwrap();
        let lanes = State::run_with(&c, KernelPath::Lanes).unwrap();
        assert_bit_identical(
            scalar.amplitudes(),
            lanes.amplitudes(),
            &format!("n={n} seed={seed}"),
        );
    }

    /// Density conjugations agree bitwise between engines (dense 4ⁿ
    /// matrices, so the widths stay small).
    #[test]
    fn density_conjugation_is_bit_identical_across_paths(
        n in 1usize..=6,
        seed in 0u64..10_000,
    ) {
        let c = random_circuit(n, 12, seed);
        let mut scalar = Density::from_state(&State::zero(n));
        let mut lanes = scalar.clone();
        scalar.apply_circuit_with(&c, KernelPath::Scalar).unwrap();
        lanes.apply_circuit_with(&c, KernelPath::Lanes).unwrap();
        assert_bit_identical(
            scalar.matrix().as_slice(),
            lanes.matrix().as_slice(),
            &format!("n={n} seed={seed}"),
        );
    }

    /// The in-place permutation is engine-independent and matches the
    /// allocating wrapper.
    #[test]
    fn permute_agrees_with_permuted_on_both_paths(
        n in 1usize..=10,
        seed in 0u64..10_000,
    ) {
        let c = random_circuit(n, 16, seed);
        // A seeded permutation: rotate by a seed-dependent offset.
        let shift = (seed as usize) % n;
        let perm: Vec<usize> = (0..n).map(|q| (q + shift) % n).collect();
        for path in [KernelPath::Scalar, KernelPath::Lanes] {
            let st = State::run_with(&c, path).unwrap();
            let via_wrapper = st.permuted(&perm).unwrap();
            let mut in_place = st.clone();
            in_place.permute(&perm).unwrap();
            assert_bit_identical(
                via_wrapper.amplitudes(),
                in_place.amplitudes(),
                &format!("n={n} seed={seed} path={path:?}"),
            );
        }
    }
}

//! Cross-check of the MPS simulator against the dense statevector: with
//! an unbounded bond the tensor network is an *exact* representation, so
//! [`MpsState::run`] must reproduce [`State::run`] amplitude-for-amplitude
//! (≤1e-10) with exactly zero discarded weight — on every benchmark suite
//! builder at dense-tractable widths and on random circuits over the full
//! gate alphabet. A second property pins the truncation law: with a small
//! bond cap the reported fidelity lower bound is never optimistic, and
//! the truncation budget fires deterministically.

use paradrive_circuit::{Circuit, OneQ, TwoQ};
use paradrive_sim::{MpsOptions, MpsState, SimError, State};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random circuit drawing from the full 1Q/2Q gate alphabet,
/// operand order included (MPS gate orientation is the subtle path).
fn random_circuit(n: usize, ops: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..ops {
        let two_q = n >= 2 && rng.gen_bool(0.5);
        if two_q {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n - 1);
            if b >= a {
                b += 1;
            }
            let theta = rng.gen_range(-3.0..3.0);
            let gate = match rng.gen_range(0..7u32) {
                0 => TwoQ::Cx,
                1 => TwoQ::Cz,
                2 => TwoQ::CPhase(theta),
                3 => TwoQ::Rzz(theta),
                4 => TwoQ::ISwap,
                5 => TwoQ::Swap,
                _ => TwoQ::SqrtISwap,
            };
            c.push_2q(gate, a, b);
        } else {
            let q = rng.gen_range(0..n);
            let theta = rng.gen_range(-3.0..3.0);
            let gate = match rng.gen_range(0..7u32) {
                0 => OneQ::H,
                1 => OneQ::X,
                2 => OneQ::S,
                3 => OneQ::T,
                4 => OneQ::Rx(theta),
                5 => OneQ::Ry(theta),
                _ => OneQ::Rz(theta),
            };
            c.push_1q(gate, q);
        }
    }
    c
}

fn assert_amplitudes_match(c: &Circuit, context: &str) {
    let dense = State::run(c).unwrap();
    let mps = MpsState::run(c, MpsOptions::exact()).unwrap();
    assert_eq!(
        mps.discarded_weight(),
        0.0,
        "{context}: unbounded bond must discard nothing"
    );
    let got = mps.amplitudes().unwrap();
    for (i, (m, d)) in got.iter().zip(dense.amplitudes()).enumerate() {
        assert!(
            (*m - *d).norm() <= 1e-10,
            "{context}: amplitude {i} differs: mps {m:?} vs dense {d:?}"
        );
    }
}

#[test]
fn mps_and_statevector_agree_on_every_suite_builder() {
    use paradrive_circuit::benchmarks;
    let seed = 7;
    let circuits = vec![
        ("QV", benchmarks::quantum_volume(8, 6, seed)),
        ("VQE_L", benchmarks::vqe_linear(10, 1, seed)),
        ("GHZ", benchmarks::ghz(10)),
        ("HLF", benchmarks::hidden_linear_function(9, seed)),
        ("QFT", benchmarks::qft(9)),
        ("Adder", benchmarks::adder(4)),
        ("QAOA", benchmarks::qaoa(10, 2, seed)),
        ("VQE_F", benchmarks::vqe_full(8, 2, seed)),
        ("Multiplier", benchmarks::multiplier(2)),
        ("QAOA_LR", benchmarks::long_range_qaoa(10, 1, seed)),
    ];
    for (name, c) in circuits {
        assert!(c.n_qubits() <= 10, "{name} too wide for the dense oracle");
        assert_amplitudes_match(&c, name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Unbounded-bond MPS equals the dense statevector on random circuits
    /// at widths 2–10, with exactly zero discarded weight.
    #[test]
    fn mps_matches_dense_on_random_circuits(
        n in 2usize..=10,
        seed in 0u64..10_000,
    ) {
        let c = random_circuit(n, 32.min(5 * n), seed);
        assert_amplitudes_match(&c, &format!("n={n} seed={seed}"));
    }

    /// Truncation law: with a tight bond cap (and an infinite budget so
    /// the run completes), the reported fidelity lower bound `1 − ε` never
    /// exceeds the true fidelity against the exact state.
    #[test]
    fn fidelity_lower_bound_is_never_optimistic(
        n in 4usize..=8,
        seed in 0u64..10_000,
        max_bond in 2usize..=4,
    ) {
        let c = random_circuit(n, 6 * n, seed);
        let exact = MpsState::run(&c, MpsOptions::exact()).unwrap();
        let truncated = MpsState::run(&c, MpsOptions::exact().max_bond(max_bond)).unwrap();
        let f = truncated.fidelity(&exact);
        let bound = truncated.fidelity_lower_bound();
        prop_assert!(
            f + 1e-9 >= bound,
            "n={n} seed={seed} χ={max_bond}: fidelity {f} below reported bound {bound}"
        );
    }
}

/// The truncation budget is a deterministic threshold, not a heuristic:
/// the same circuit at the same options either always completes or always
/// fails, with a bit-identical error payload — and the documented
/// condition (`discarded > trunc_tol`) separates a passing budget from a
/// failing one on the exact same run.
#[test]
fn truncation_budget_fires_at_the_documented_threshold() {
    use paradrive_circuit::benchmarks;
    let c = benchmarks::quantum_volume(8, 8, 3);
    // Measure the discarded weight with an unlimited budget.
    let probe = MpsState::run(&c, MpsOptions::exact().max_bond(2)).unwrap();
    let discarded = probe.discarded_weight();
    assert!(discarded > 0.0, "probe must truncate");

    // A budget above the measured weight completes; one below fails.
    let above = MpsOptions::default()
        .max_bond(2)
        .trunc_tol(discarded * 1.001);
    assert!(MpsState::run(&c, above).is_ok());
    let below = MpsOptions::default().max_bond(2).trunc_tol(discarded * 0.5);
    let e1 = MpsState::run(&c, below).unwrap_err();
    let e2 = MpsState::run(&c, below).unwrap_err();
    match (&e1, &e2) {
        (
            SimError::TruncationBudgetExceeded {
                discarded: d1,
                budget: b1,
            },
            SimError::TruncationBudgetExceeded {
                discarded: d2,
                budget: b2,
            },
        ) => {
            assert_eq!(
                d1.to_bits(),
                d2.to_bits(),
                "non-deterministic failure point"
            );
            assert_eq!(b1.to_bits(), b2.to_bits());
            assert!(*d1 > *b1, "error payload violates the documented condition");
        }
        other => panic!("expected TruncationBudgetExceeded twice, got {other:?}"),
    }
}

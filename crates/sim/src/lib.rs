//! Exact statevector simulation of the circuit IR.
//!
//! The transpiler's passes (routing, consolidation) claim to preserve
//! circuit semantics up to a final qubit permutation; this crate provides
//! the oracle that *checks* those claims, plus the ideal-distribution
//! analysis used by Quantum Volume workloads (heavy-output probability).
//!
//! Conventions: qubit 0 is the most-significant bit of the state index, so
//! a two-qubit gate on `(a, b)` treats `a` as the high bit — matching
//! [`paradrive_circuit::TwoQ::unitary`].
//!
//! # Example
//!
//! ```
//! use paradrive_circuit::{Circuit, OneQ, TwoQ};
//! use paradrive_sim::State;
//!
//! // A Bell pair: H on qubit 0, then CX(0 → 1).
//! let mut c = Circuit::new(2);
//! c.push_1q(OneQ::H, 0);
//! c.push_2q(TwoQ::Cx, 0, 1);
//! let state = State::run(&c)?;
//! let p = state.probabilities();
//! assert!((p[0b00] - 0.5).abs() < 1e-12);
//! assert!((p[0b11] - 0.5).abs() < 1e-12);
//! # Ok::<(), paradrive_sim::SimError>(())
//! ```
// Deny rather than forbid: the kernel module's AVX dispatch carries the
// crate's one sanctioned `unsafe` (a feature-checked call to a
// `#[target_feature]` function); see `kernels::avx`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod density;
pub mod kernels;
pub mod mps;
mod state;

pub use density::{Density, MAX_DENSITY_QUBITS};
pub use kernels::{lanes_available, KernelPath};
pub use mps::{MpsOptions, MpsState};
pub use state::{circuit_unitary, heavy_output_probability, State, MAX_STATE_QUBITS};

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The circuit is wider than this operation supports.
    TooWide {
        /// Requested width.
        qubits: usize,
        /// Maximum width supported by the operation.
        max: usize,
    },
    /// A permutation did not cover every qubit exactly once.
    BadPermutation,
    /// A gate addressed a qubit outside the register.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The register width.
        width: usize,
    },
    /// A two-qubit gate addressed the same qubit twice.
    DuplicateQubit(usize),
    /// A circuit was applied to a register of a different width.
    WidthMismatch {
        /// Circuit width.
        circuit: usize,
        /// Register width.
        state: usize,
    },
    /// A channel probability fell outside `[0, 1]`.
    InvalidProbability(f64),
    /// An MPS truncation pushed the cumulative discarded weight past the
    /// configured budget ([`MpsOptions::trunc_tol`](mps::MpsOptions)).
    TruncationBudgetExceeded {
        /// Cumulative discarded weight `Σ ε_i` at the failing update.
        discarded: f64,
        /// The configured budget it exceeded.
        budget: f64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::TooWide { qubits, max } => {
                write!(
                    f,
                    "circuit width {qubits} exceeds the supported maximum {max}"
                )
            }
            SimError::BadPermutation => write!(f, "invalid qubit permutation"),
            SimError::QubitOutOfRange { qubit, width } => {
                write!(f, "qubit {qubit} out of range for width {width}")
            }
            SimError::DuplicateQubit(q) => {
                write!(f, "two-qubit gate addresses qubit {q} twice")
            }
            SimError::WidthMismatch { circuit, state } => {
                write!(
                    f,
                    "circuit width {circuit} does not match register width {state}"
                )
            }
            SimError::InvalidProbability(p) => {
                write!(f, "probability {p} outside [0, 1]")
            }
            SimError::TruncationBudgetExceeded { discarded, budget } => {
                write!(
                    f,
                    "MPS truncation budget exceeded: discarded weight {discarded:.3e} > {budget:.3e}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

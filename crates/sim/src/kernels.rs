//! The gate-application kernels, in two bit-identical flavours.
//!
//! [`KernelPath::Scalar`] is the PR 5 branch-free reference: zero-bit
//! insertion enumerates each amplitude block once, in ascending memory
//! order, with the matrix entries in locals. [`KernelPath::Lanes`] is the
//! lane-parallel engine: the same block enumeration, but rewritten around
//! the observation that a target bit `b` partitions the register into
//! contiguous *runs* of `b` amplitudes, so the kernel walks pairs (1Q) or
//! quads (2Q) of runs and mixes them four amplitudes at a time with
//! packed `f64x4`-style re/im arithmetic (the crate-private `F64x4`).
//!
//! # Bit identity
//!
//! Every amplitude sees the *identical* floating-point expression on both
//! paths — `g00·a + g01·b` evaluated as two complex products summed left
//! to right, each product `(re·re − im·im, re·im + im·re)` — only the
//! *grouping of independent amplitudes into lanes* differs. Rust never
//! contracts separate mul/add into FMA, and IEEE-754 `+`/`×` are
//! commutative on the bit level (modulo NaN payloads that unitary
//! evolution never produces), so the two engines agree bit for bit. The
//! `kernel_equivalence` proptest suite asserts exactly that, and the
//! repo's 1-vs-N-thread determinism discipline therefore survives the
//! lane engine unchanged.
//!
//! Lane widths below the packing granularity (a 1Q target in the last two
//! index bits of a < 8-amplitude register, or a 2Q pair whose lower bit
//! sits in the last two positions) fall back to the scalar expression —
//! same arithmetic, different loop shape.

use paradrive_linalg::C64;
use paradrive_obs::Counter;
use std::sync::OnceLock;

/// Kernel-dispatch counters on the process-global recorder, registered
/// once (indexed `[1q-scalar, 1q-lanes, 2q-scalar, 2q-lanes]`). While the
/// global recorder is disabled — the default — each dispatch pays one
/// relaxed load and a predictable branch, nothing more; `--trace`-style
/// flags turn the mix into exported counters.
fn dispatch_counters() -> &'static [Counter; 4] {
    static CELLS: OnceLock<[Counter; 4]> = OnceLock::new();
    CELLS.get_or_init(|| {
        let g = paradrive_obs::global();
        [
            g.counter("sim.kernel.1q.scalar"),
            g.counter("sim.kernel.1q.lanes"),
            g.counter("sim.kernel.2q.scalar"),
            g.counter("sim.kernel.2q.lanes"),
        ]
    })
}

/// Which kernel engine applies gates to a statevector (or density
/// matrix).
///
/// Both paths produce bit-identical amplitudes; they differ only in
/// speed. [`KernelPath::detected`] picks the default for this process —
/// override it with the `PARADRIVE_SIM_KERNEL` environment variable
/// (`scalar`, `lanes`, or `auto`) to pin a path, e.g. for A/B testing in
/// CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// The branch-free scalar reference kernels.
    Scalar,
    /// The lane-parallel (`f64x4`-style) kernels.
    Lanes,
}

impl KernelPath {
    /// The default path for this process, computed once.
    ///
    /// The `PARADRIVE_SIM_KERNEL` environment variable wins when set to
    /// `scalar` or `lanes`; otherwise (`auto` or unset) the runtime
    /// detects whether the target has the lanes: 256-bit vectors on
    /// x86-64 (`avx`), always on aarch64 (NEON is baseline). Targets
    /// without them keep the scalar engine — the lane layout's
    /// deinterleave shuffles only pay for themselves with 4-wide `f64`
    /// hardware. Either way the results are bit-identical; this is purely
    /// a speed policy.
    pub fn detected() -> KernelPath {
        static DETECTED: OnceLock<KernelPath> = OnceLock::new();
        *DETECTED.get_or_init(|| {
            match std::env::var("PARADRIVE_SIM_KERNEL")
                .unwrap_or_default()
                .to_ascii_lowercase()
                .as_str()
            {
                "scalar" => KernelPath::Scalar,
                "lanes" | "simd" => KernelPath::Lanes,
                _ => {
                    if lanes_available() {
                        KernelPath::Lanes
                    } else {
                        KernelPath::Scalar
                    }
                }
            }
        })
    }

    /// The lowercase label used in reports and benchmarks.
    pub fn label(self) -> &'static str {
        match self {
            KernelPath::Scalar => "scalar",
            KernelPath::Lanes => "lanes",
        }
    }
}

/// True when this machine has hardware worth the lane layout.
pub fn lanes_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(target_arch = "aarch64")]
    {
        true
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

/// The 4-wide codegen island for x86-64.
///
/// Rust compiles for baseline SSE2, so the portable lane bodies lower to
/// 2-wide vectors plus deinterleave shuffles — which loses to the scalar
/// kernels. These wrappers recompile the *same bodies* (inlined, so the
/// attribute applies) with AVX2 enabled, giving true 4-lane `f64`
/// vectors. Identical Rust source → identical FP expression trees; rustc
/// never enables FP contraction, so AVX codegen cannot introduce FMAs and
/// bit identity with the scalar path is preserved.
///
/// This module holds the crate's only `unsafe`: each call is guarded by
/// [`lanes_available`] (`is_x86_feature_detected!("avx2")`), which is
/// exactly the soundness condition for invoking a `#[target_feature]`
/// function.
#[cfg(target_arch = "x86_64")]
mod avx {
    #![allow(unsafe_code)]

    use super::*;

    #[target_feature(enable = "avx2")]
    fn apply_1q_avx(amps: &mut [C64], bit: usize, g: [C64; 4]) {
        apply_1q_lanes(amps, bit, g);
    }

    #[target_feature(enable = "avx2")]
    fn apply_2q_avx(amps: &mut [C64], bit_a: usize, bit_b: usize, m: &[[C64; 4]; 4]) {
        apply_2q_lanes(amps, bit_a, bit_b, m);
    }

    #[target_feature(enable = "avx2")]
    fn mix_rows_1q_avx(a: &mut [C64], b: &mut [C64], g: [C64; 4]) {
        mix_rows_1q_lanes(a, b, g);
    }

    #[target_feature(enable = "avx2")]
    fn mix_rows_2q_avx(rows: [&mut [C64]; 4], m: &[[C64; 4]; 4]) {
        mix_rows_2q_lanes(rows, m);
    }

    /// Runs the 1Q kernel with AVX2 codegen when the host has it.
    pub(super) fn apply_1q(amps: &mut [C64], bit: usize, g: [C64; 4]) -> bool {
        if lanes_available() {
            // SAFETY: lanes_available() just confirmed avx2 on this host.
            unsafe { apply_1q_avx(amps, bit, g) };
            true
        } else {
            false
        }
    }

    /// Runs the 2Q kernel with AVX2 codegen when the host has it.
    pub(super) fn apply_2q(
        amps: &mut [C64],
        bit_a: usize,
        bit_b: usize,
        m: &[[C64; 4]; 4],
    ) -> bool {
        if lanes_available() {
            // SAFETY: lanes_available() just confirmed avx2 on this host.
            unsafe { apply_2q_avx(amps, bit_a, bit_b, m) };
            true
        } else {
            false
        }
    }

    /// Runs the 1Q row mix with AVX2 codegen when the host has it.
    pub(super) fn mix_rows_1q(a: &mut [C64], b: &mut [C64], g: [C64; 4]) -> bool {
        if lanes_available() {
            // SAFETY: lanes_available() just confirmed avx2 on this host.
            unsafe { mix_rows_1q_avx(a, b, g) };
            true
        } else {
            false
        }
    }

    /// Runs the 2Q row mix with AVX2 codegen. Unlike the other
    /// dispatchers this one cannot report "unavailable" after the fact —
    /// the row array is moved in — so it asserts the feature itself.
    pub(super) fn mix_rows_2q(rows: [&mut [C64]; 4], m: &[[C64; 4]; 4]) {
        assert!(lanes_available());
        // SAFETY: the assert above confirmed avx2 on this host.
        unsafe { mix_rows_2q_avx(rows, m) };
    }
}

/// Four `f64` lanes, written so LLVM lowers the lane-wise ops to packed
/// vector instructions. Plain safe Rust: the arrays are the portable
/// spelling of `f64x4`, and every op is per-lane mul/add/sub (never a
/// fused multiply-add, which would break bit identity with the scalar
/// path).
#[derive(Debug, Clone, Copy)]
pub(crate) struct F64x4(pub [f64; 4]);

impl F64x4 {
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        F64x4([v; 4])
    }
}

impl std::ops::Add for F64x4 {
    type Output = F64x4;
    #[inline(always)]
    fn add(self, r: F64x4) -> F64x4 {
        F64x4([
            self.0[0] + r.0[0],
            self.0[1] + r.0[1],
            self.0[2] + r.0[2],
            self.0[3] + r.0[3],
        ])
    }
}

impl std::ops::Sub for F64x4 {
    type Output = F64x4;
    #[inline(always)]
    fn sub(self, r: F64x4) -> F64x4 {
        F64x4([
            self.0[0] - r.0[0],
            self.0[1] - r.0[1],
            self.0[2] - r.0[2],
            self.0[3] - r.0[3],
        ])
    }
}

impl std::ops::Mul for F64x4 {
    type Output = F64x4;
    #[inline(always)]
    fn mul(self, r: F64x4) -> F64x4 {
        F64x4([
            self.0[0] * r.0[0],
            self.0[1] * r.0[1],
            self.0[2] * r.0[2],
            self.0[3] * r.0[3],
        ])
    }
}

/// Four complex lanes in split re/im (structure-of-arrays) form.
#[derive(Debug, Clone, Copy)]
pub(crate) struct C64x4 {
    pub re: F64x4,
    pub im: F64x4,
}

impl C64x4 {
    /// Broadcasts one complex scalar across the lanes.
    #[inline(always)]
    pub fn splat(z: C64) -> Self {
        C64x4 {
            re: F64x4::splat(z.re),
            im: F64x4::splat(z.im),
        }
    }

    /// Deinterleaves four consecutive amplitudes.
    #[inline(always)]
    pub fn load(src: &[C64]) -> Self {
        C64x4 {
            re: F64x4([src[0].re, src[1].re, src[2].re, src[3].re]),
            im: F64x4([src[0].im, src[1].im, src[2].im, src[3].im]),
        }
    }

    /// Gathers four amplitudes from explicit offsets of an 8-slot chunk
    /// (the strided small-bit patterns).
    #[inline(always)]
    pub fn gather(src: &[C64], idx: [usize; 4]) -> Self {
        C64x4 {
            re: F64x4([
                src[idx[0]].re,
                src[idx[1]].re,
                src[idx[2]].re,
                src[idx[3]].re,
            ]),
            im: F64x4([
                src[idx[0]].im,
                src[idx[1]].im,
                src[idx[2]].im,
                src[idx[3]].im,
            ]),
        }
    }

    /// Interleaves back into four consecutive amplitudes.
    #[inline(always)]
    pub fn store(self, dst: &mut [C64]) {
        for (l, slot) in dst.iter_mut().enumerate().take(4) {
            *slot = C64::new(self.re.0[l], self.im.0[l]);
        }
    }

    /// Scatters the lanes to explicit offsets of a chunk.
    #[inline(always)]
    pub fn scatter(self, dst: &mut [C64], idx: [usize; 4]) {
        for l in 0..4 {
            dst[idx[l]] = C64::new(self.re.0[l], self.im.0[l]);
        }
    }

    /// Lane-wise complex product — the same `(ac − bd, ad + bc)`
    /// expression as [`C64::mul`], so each lane is bit-identical to the
    /// scalar product.
    #[inline(always)]
    pub fn mul(self, r: C64x4) -> C64x4 {
        C64x4 {
            re: self.re * r.re - self.im * r.im,
            im: self.re * r.im + self.im * r.re,
        }
    }

    /// Lane-wise complex sum.
    #[inline(always)]
    pub fn add(self, r: C64x4) -> C64x4 {
        C64x4 {
            re: self.re + r.re,
            im: self.im + r.im,
        }
    }
}

/// `g00·a + g01·b` on four lanes — the row expression of every 1Q mix.
#[inline(always)]
fn mix2(g0: C64x4, a: C64x4, g1: C64x4, b: C64x4) -> C64x4 {
    g0.mul(a).add(g1.mul(b))
}

/// `((m0·o0 + m1·o1) + m2·o2) + m3·o3` on four lanes — the row
/// expression of every 2Q mix, associated exactly like the scalar path.
#[inline(always)]
fn mix4(m: [C64x4; 4], o: [C64x4; 4]) -> C64x4 {
    m[0].mul(o[0])
        .add(m[1].mul(o[1]))
        .add(m[2].mul(o[2]))
        .add(m[3].mul(o[3]))
}

// ---------------------------------------------------------------------
// 1Q kernels
// ---------------------------------------------------------------------

/// Applies a 2×2 `g = [g00, g01, g10, g11]` to the amplitude pairs
/// separated by `bit` — the scalar reference path.
pub(crate) fn apply_1q_scalar(amps: &mut [C64], bit: usize, g: [C64; 4]) {
    let [g00, g01, g10, g11] = g;
    let low = bit - 1;
    for k in 0..amps.len() / 2 {
        let i = ((k & !low) << 1) | (k & low);
        let j = i | bit;
        let (a, b) = (amps[i], amps[j]);
        amps[i] = g00 * a + g01 * b;
        amps[j] = g10 * a + g11 * b;
    }
}

/// The lane-parallel 1Q kernel. Bit-identical to
/// [`apply_1q_scalar`]; see the module docs for the argument.
///
/// `inline(always)` so the body inlines into the `#[target_feature]`
/// wrappers in [`avx`] and actually receives AVX codegen.
#[inline(always)]
pub(crate) fn apply_1q_lanes(amps: &mut [C64], bit: usize, g: [C64; 4]) {
    if amps.len() < 8 {
        return apply_1q_scalar(amps, bit, g);
    }
    let [g00, g01, g10, g11] = g;
    let (s00, s01, s10, s11) = (
        C64x4::splat(g00),
        C64x4::splat(g01),
        C64x4::splat(g10),
        C64x4::splat(g11),
    );
    match bit {
        // Adjacent pairs: chunk [a0 b0 a1 b1 a2 b2 a3 b3].
        1 => {
            for chunk in amps.chunks_exact_mut(8) {
                let a = C64x4::gather(chunk, [0, 2, 4, 6]);
                let b = C64x4::gather(chunk, [1, 3, 5, 7]);
                mix2(s00, a, s01, b).scatter(chunk, [0, 2, 4, 6]);
                mix2(s10, a, s11, b).scatter(chunk, [1, 3, 5, 7]);
            }
        }
        // Stride-2 pairs: chunk [a0 a1 b0 b1 a2 a3 b2 b3].
        2 => {
            for chunk in amps.chunks_exact_mut(8) {
                let a = C64x4::gather(chunk, [0, 1, 4, 5]);
                let b = C64x4::gather(chunk, [2, 3, 6, 7]);
                mix2(s00, a, s01, b).scatter(chunk, [0, 1, 4, 5]);
                mix2(s10, a, s11, b).scatter(chunk, [2, 3, 6, 7]);
            }
        }
        // Runs of exactly four: one lane step per run pair.
        4 => {
            for block in amps.chunks_exact_mut(8) {
                let (ca, cb) = block.split_at_mut(4);
                let a = C64x4::load(ca);
                let b = C64x4::load(cb);
                mix2(s00, a, s01, b).store(ca);
                mix2(s10, a, s11, b).store(cb);
            }
        }
        // Contiguous runs of `bit ≥ 8` amplitudes: mix run pairs eight
        // lanes at a time — pure sequential loads/stores, the
        // cache-friendly regime for wide states.
        _ => {
            for block in amps.chunks_exact_mut(2 * bit) {
                let (run_a, run_b) = block.split_at_mut(bit);
                for (ca, cb) in run_a.chunks_exact_mut(8).zip(run_b.chunks_exact_mut(8)) {
                    let (ca0, ca1) = ca.split_at_mut(4);
                    let (cb0, cb1) = cb.split_at_mut(4);
                    let a0 = C64x4::load(ca0);
                    let b0 = C64x4::load(cb0);
                    let a1 = C64x4::load(ca1);
                    let b1 = C64x4::load(cb1);
                    mix2(s00, a0, s01, b0).store(ca0);
                    mix2(s10, a0, s11, b0).store(cb0);
                    mix2(s00, a1, s01, b1).store(ca1);
                    mix2(s10, a1, s11, b1).store(cb1);
                }
            }
        }
    }
}

/// Dispatches a 1Q application to the chosen engine.
#[inline]
pub(crate) fn apply_1q(path: KernelPath, amps: &mut [C64], bit: usize, g: [C64; 4]) {
    let counters = dispatch_counters();
    match path {
        KernelPath::Scalar => {
            counters[0].incr(1);
            apply_1q_scalar(amps, bit, g)
        }
        KernelPath::Lanes => {
            counters[1].incr(1);
            #[cfg(target_arch = "x86_64")]
            if avx::apply_1q(amps, bit, g) {
                return;
            }
            apply_1q_lanes(amps, bit, g)
        }
    }
}

// ---------------------------------------------------------------------
// 2Q kernels
// ---------------------------------------------------------------------

/// Applies a 4×4 `m` (row-major, logical `(a, b)` order with `a` the
/// high bit) to the blocks addressed by `bit_a`/`bit_b` — the scalar
/// reference path.
pub(crate) fn apply_2q_scalar(amps: &mut [C64], bit_a: usize, bit_b: usize, m: &[[C64; 4]; 4]) {
    let (small, big) = (bit_a.min(bit_b), bit_a.max(bit_b));
    let (low_s, low_b) = (small - 1, big - 1);
    for k in 0..amps.len() / 4 {
        // Insert zero bits at the lower, then the higher position.
        let t = ((k & !low_s) << 1) | (k & low_s);
        let i = ((t & !low_b) << 1) | (t & low_b);
        let idx = [i, i | bit_b, i | bit_a, i | bit_a | bit_b];
        let old = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
        for (r, &out_i) in idx.iter().enumerate() {
            amps[out_i] = m[r][0] * old[0] + m[r][1] * old[1] + m[r][2] * old[2] + m[r][3] * old[3];
        }
    }
}

/// The lane-parallel 2Q (fused 4×4) kernel. Bit-identical to
/// [`apply_2q_scalar`].
///
/// The lower target bit partitions the register into contiguous runs of
/// `small` amplitudes; each 4×4 block spans four such runs at offsets
/// `{0, small}` × `{0, big}`. The kernel streams the four runs in
/// parallel, four amplitudes per step — at most four concurrent
/// sequential streams regardless of state width, which is what keeps the
/// iteration cache-resident for 20+-qubit registers.
#[inline(always)]
pub(crate) fn apply_2q_lanes(amps: &mut [C64], bit_a: usize, bit_b: usize, m: &[[C64; 4]; 4]) {
    let (small, big) = (bit_a.min(bit_b), bit_a.max(bit_b));
    let ms: [[C64x4; 4]; 4] =
        std::array::from_fn(|r| std::array::from_fn(|c| C64x4::splat(m[r][c])));
    if small >= 4 {
        // Contiguous regime: runs of ≥ 4 amplitudes per stream.
        for outer in amps.chunks_exact_mut(2 * big) {
            let (lo_half, hi_half) = outer.split_at_mut(big);
            for (lo_pair, hi_pair) in lo_half
                .chunks_exact_mut(2 * small)
                .zip(hi_half.chunks_exact_mut(2 * small))
            {
                let (s0, s1) = lo_pair.split_at_mut(small);
                let (s2, s3) = hi_pair.split_at_mut(small);
                // Hand the streams over in *logical* matrix order — slot
                // r is `idx[r] = [i, i|bit_b, i|bit_a, i|bit_a|bit_b]` —
                // so the inner loop carries no index indirection. When
                // `a` is the higher bit the value order is already
                // logical; otherwise the |small and |big streams swap.
                if bit_a > bit_b {
                    mix_streams_2q(s0, s1, s2, s3, &ms);
                } else {
                    mix_streams_2q(s0, s2, s1, s3, &ms);
                }
            }
        }
    } else if big >= 8 {
        // Half-strided regime: `small ∈ {1, 2}` interleaves the two low
        // streams inside each half of a block, in a pattern that repeats
        // every 8 amplitudes — gather four lanes per stream from paired
        // 8-chunks of the two halves.
        let (ia, ib) = if small == 1 {
            ([0, 2, 4, 6], [1, 3, 5, 7])
        } else {
            ([0, 1, 4, 5], [2, 3, 6, 7])
        };
        for outer in amps.chunks_exact_mut(2 * big) {
            let (lo_half, hi_half) = outer.split_at_mut(big);
            for (cl, ch) in lo_half.chunks_exact_mut(8).zip(hi_half.chunks_exact_mut(8)) {
                let v0 = C64x4::gather(cl, ia);
                let v1 = C64x4::gather(cl, ib);
                let v2 = C64x4::gather(ch, ia);
                let v3 = C64x4::gather(ch, ib);
                // Value stream s ∈ {base, |small, |big, |both}; logical
                // slot r is `idx[r]` as above.
                if bit_a > bit_b {
                    let o = [v0, v1, v2, v3];
                    mix4(ms[0], o).scatter(cl, ia);
                    mix4(ms[1], o).scatter(cl, ib);
                    mix4(ms[2], o).scatter(ch, ia);
                    mix4(ms[3], o).scatter(ch, ib);
                } else {
                    let o = [v0, v2, v1, v3];
                    mix4(ms[0], o).scatter(cl, ia);
                    mix4(ms[1], o).scatter(ch, ia);
                    mix4(ms[2], o).scatter(cl, ib);
                    mix4(ms[3], o).scatter(ch, ib);
                }
            }
        }
    } else if amps.len() >= 16 {
        // Whole-block regime: the full 4-stream pattern spans `2·big ≤ 8`
        // amplitudes, so a 16-chunk holds two or four complete blocks —
        // gather each stream's lanes across them.
        let (i0, i1, i2, i3) = match (small, big) {
            (1, 2) => ([0, 4, 8, 12], [1, 5, 9, 13], [2, 6, 10, 14], [3, 7, 11, 15]),
            (1, 4) => ([0, 2, 8, 10], [1, 3, 9, 11], [4, 6, 12, 14], [5, 7, 13, 15]),
            _ => ([0, 1, 8, 9], [2, 3, 10, 11], [4, 5, 12, 13], [6, 7, 14, 15]),
        };
        for chunk in amps.chunks_exact_mut(16) {
            let v0 = C64x4::gather(chunk, i0);
            let v1 = C64x4::gather(chunk, i1);
            let v2 = C64x4::gather(chunk, i2);
            let v3 = C64x4::gather(chunk, i3);
            if bit_a > bit_b {
                let o = [v0, v1, v2, v3];
                mix4(ms[0], o).scatter(chunk, i0);
                mix4(ms[1], o).scatter(chunk, i1);
                mix4(ms[2], o).scatter(chunk, i2);
                mix4(ms[3], o).scatter(chunk, i3);
            } else {
                let o = [v0, v2, v1, v3];
                mix4(ms[0], o).scatter(chunk, i0);
                mix4(ms[1], o).scatter(chunk, i2);
                mix4(ms[2], o).scatter(chunk, i1);
                mix4(ms[3], o).scatter(chunk, i3);
            }
        }
    } else {
        apply_2q_scalar(amps, bit_a, bit_b, m)
    }
}

/// The 2Q inner loop over four equal-length streams given in logical
/// matrix order: four zipped sequential runs, four amplitudes per step,
/// summed exactly as the scalar kernel associates them.
#[inline(always)]
fn mix_streams_2q(
    o0: &mut [C64],
    o1: &mut [C64],
    o2: &mut [C64],
    o3: &mut [C64],
    ms: &[[C64x4; 4]; 4],
) {
    if o0.len() >= 8 {
        // Two lane steps per iteration: halves the zip bookkeeping on
        // the wide-run regime (run lengths are powers of two ≥ 8, so
        // the chunks divide exactly).
        for (((c0, c1), c2), c3) in o0
            .chunks_exact_mut(8)
            .zip(o1.chunks_exact_mut(8))
            .zip(o2.chunks_exact_mut(8))
            .zip(o3.chunks_exact_mut(8))
        {
            let (c0a, c0b) = c0.split_at_mut(4);
            let (c1a, c1b) = c1.split_at_mut(4);
            let (c2a, c2b) = c2.split_at_mut(4);
            let (c3a, c3b) = c3.split_at_mut(4);
            let oa = [
                C64x4::load(c0a),
                C64x4::load(c1a),
                C64x4::load(c2a),
                C64x4::load(c3a),
            ];
            mix4(ms[0], oa).store(c0a);
            mix4(ms[1], oa).store(c1a);
            mix4(ms[2], oa).store(c2a);
            mix4(ms[3], oa).store(c3a);
            let ob = [
                C64x4::load(c0b),
                C64x4::load(c1b),
                C64x4::load(c2b),
                C64x4::load(c3b),
            ];
            mix4(ms[0], ob).store(c0b);
            mix4(ms[1], ob).store(c1b);
            mix4(ms[2], ob).store(c2b);
            mix4(ms[3], ob).store(c3b);
        }
    } else {
        // Runs of exactly four.
        let o = [
            C64x4::load(o0),
            C64x4::load(o1),
            C64x4::load(o2),
            C64x4::load(o3),
        ];
        mix4(ms[0], o).store(o0);
        mix4(ms[1], o).store(o1);
        mix4(ms[2], o).store(o2);
        mix4(ms[3], o).store(o3);
    }
}

/// Dispatches a 2Q application to the chosen engine.
#[inline]
pub(crate) fn apply_2q(
    path: KernelPath,
    amps: &mut [C64],
    bit_a: usize,
    bit_b: usize,
    m: &[[C64; 4]; 4],
) {
    let counters = dispatch_counters();
    match path {
        KernelPath::Scalar => {
            counters[2].incr(1);
            apply_2q_scalar(amps, bit_a, bit_b, m)
        }
        KernelPath::Lanes => {
            counters[3].incr(1);
            #[cfg(target_arch = "x86_64")]
            if avx::apply_2q(amps, bit_a, bit_b, m) {
                return;
            }
            apply_2q_lanes(amps, bit_a, bit_b, m)
        }
    }
}

// ---------------------------------------------------------------------
// Row mixes (density-matrix conjugation)
// ---------------------------------------------------------------------

/// Mixes two equal-length rows elementwise: `a ← g00·a + g01·b`,
/// `b ← g10·a + g11·b` — the scalar reference for the
/// left-multiplication step of a density conjugation, with the same
/// per-element expression as the 1Q kernels.
pub(crate) fn mix_rows_1q_scalar(a: &mut [C64], b: &mut [C64], g: [C64; 4]) {
    debug_assert_eq!(a.len(), b.len());
    let [g00, g01, g10, g11] = g;
    for (x_slot, y_slot) in a.iter_mut().zip(b.iter_mut()) {
        let (x, y) = (*x_slot, *y_slot);
        *x_slot = g00 * x + g01 * y;
        *y_slot = g10 * x + g11 * y;
    }
}

/// The lane-parallel 1Q row mix. Bit-identical to
/// [`mix_rows_1q_scalar`].
#[inline(always)]
pub(crate) fn mix_rows_1q_lanes(a: &mut [C64], b: &mut [C64], g: [C64; 4]) {
    debug_assert_eq!(a.len(), b.len());
    let [g00, g01, g10, g11] = g;
    let (s00, s01, s10, s11) = (
        C64x4::splat(g00),
        C64x4::splat(g01),
        C64x4::splat(g10),
        C64x4::splat(g11),
    );
    for (ca, cb) in a.chunks_exact_mut(4).zip(b.chunks_exact_mut(4)) {
        let x = C64x4::load(ca);
        let y = C64x4::load(cb);
        mix2(s00, x, s01, y).store(ca);
        mix2(s10, x, s11, y).store(cb);
    }
    let rem = a.len() - a.len() % 4;
    for (x_slot, y_slot) in a[rem..].iter_mut().zip(b[rem..].iter_mut()) {
        let (x, y) = (*x_slot, *y_slot);
        *x_slot = g00 * x + g01 * y;
        *y_slot = g10 * x + g11 * y;
    }
}

/// Dispatches a 1Q row mix to the chosen engine.
#[inline]
pub(crate) fn mix_rows_1q(path: KernelPath, a: &mut [C64], b: &mut [C64], g: [C64; 4]) {
    match path {
        KernelPath::Scalar => mix_rows_1q_scalar(a, b, g),
        KernelPath::Lanes => {
            #[cfg(target_arch = "x86_64")]
            if avx::mix_rows_1q(a, b, g) {
                return;
            }
            mix_rows_1q_lanes(a, b, g)
        }
    }
}

/// Mixes four equal-length rows elementwise by a 4×4 `m` given in the
/// rows' order — the scalar reference for the left-multiplication step
/// of a 2Q density conjugation.
pub(crate) fn mix_rows_2q_scalar(rows: [&mut [C64]; 4], m: &[[C64; 4]; 4]) {
    let len = rows[0].len();
    debug_assert!(rows.iter().all(|r| r.len() == len));
    let [r0, r1, r2, r3] = rows;
    for c in 0..len {
        let old = [r0[c], r1[c], r2[c], r3[c]];
        for (r, slot) in [&mut r0[c], &mut r1[c], &mut r2[c], &mut r3[c]]
            .into_iter()
            .enumerate()
        {
            *slot = m[r][0] * old[0] + m[r][1] * old[1] + m[r][2] * old[2] + m[r][3] * old[3];
        }
    }
}

/// The lane-parallel 2Q row mix. Bit-identical to
/// [`mix_rows_2q_scalar`].
#[inline(always)]
pub(crate) fn mix_rows_2q_lanes(rows: [&mut [C64]; 4], m: &[[C64; 4]; 4]) {
    let len = rows[0].len();
    debug_assert!(rows.iter().all(|r| r.len() == len));
    let lanes = len - len % 4;
    let [r0, r1, r2, r3] = rows;
    let ms: [[C64x4; 4]; 4] =
        std::array::from_fn(|r| std::array::from_fn(|c| C64x4::splat(m[r][c])));
    for off in (0..lanes).step_by(4) {
        let o = [
            C64x4::load(&r0[off..off + 4]),
            C64x4::load(&r1[off..off + 4]),
            C64x4::load(&r2[off..off + 4]),
            C64x4::load(&r3[off..off + 4]),
        ];
        mix4(ms[0], o).store(&mut r0[off..off + 4]);
        mix4(ms[1], o).store(&mut r1[off..off + 4]);
        mix4(ms[2], o).store(&mut r2[off..off + 4]);
        mix4(ms[3], o).store(&mut r3[off..off + 4]);
    }
    for c in lanes..len {
        let old = [r0[c], r1[c], r2[c], r3[c]];
        for (r, slot) in [&mut r0[c], &mut r1[c], &mut r2[c], &mut r3[c]]
            .into_iter()
            .enumerate()
        {
            *slot = m[r][0] * old[0] + m[r][1] * old[1] + m[r][2] * old[2] + m[r][3] * old[3];
        }
    }
}

/// Dispatches a 2Q row mix to the chosen engine.
#[inline]
pub(crate) fn mix_rows_2q(path: KernelPath, rows: [&mut [C64]; 4], m: &[[C64; 4]; 4]) {
    match path {
        KernelPath::Scalar => mix_rows_2q_scalar(rows, m),
        KernelPath::Lanes => {
            #[cfg(target_arch = "x86_64")]
            if lanes_available() {
                return avx::mix_rows_2q(rows, m);
            }
            mix_rows_2q_lanes(rows, m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<C64> {
        (0..n)
            .map(|i| C64::new(0.1 + i as f64 * 0.3, -0.2 + i as f64 * 0.05))
            .collect()
    }

    fn hadamard() -> [C64; 4] {
        let h = std::f64::consts::FRAC_1_SQRT_2;
        [C64::real(h), C64::real(h), C64::real(h), C64::real(-h)]
    }

    #[test]
    fn one_q_paths_agree_bitwise_on_every_bit() {
        for n in 1..10usize {
            let len = 1 << n;
            for q in 0..n {
                let bit = 1usize << (n - 1 - q);
                let mut scalar = ramp(len);
                let mut lanes = scalar.clone();
                let g = [
                    C64::new(0.6, 0.1),
                    C64::new(-0.3, 0.7),
                    C64::new(0.2, -0.5),
                    C64::new(0.8, 0.05),
                ];
                apply_1q_scalar(&mut scalar, bit, g);
                apply_1q_lanes(&mut lanes, bit, g);
                assert_eq!(scalar, lanes, "n={n} q={q}");
            }
        }
    }

    #[test]
    fn two_q_paths_agree_bitwise_on_every_pair() {
        let mut m = [[C64::ZERO; 4]; 4];
        for (r, row) in m.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                *cell = C64::new(0.1 * (r as f64 + 1.0), -0.07 * (c as f64 + 2.0));
            }
        }
        for n in 2..9usize {
            let len = 1 << n;
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let bit_a = 1usize << (n - 1 - a);
                    let bit_b = 1usize << (n - 1 - b);
                    let mut scalar = ramp(len);
                    let mut lanes = scalar.clone();
                    apply_2q_scalar(&mut scalar, bit_a, bit_b, &m);
                    apply_2q_lanes(&mut lanes, bit_a, bit_b, &m);
                    assert_eq!(scalar, lanes, "n={n} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn row_mixes_agree_across_paths_and_lengths() {
        let g = hadamard();
        for len in [1usize, 3, 4, 7, 8, 19] {
            let mut a_s = ramp(len);
            let mut b_s: Vec<C64> = ramp(len).iter().map(|z| z.conj()).collect();
            let mut a_l = a_s.clone();
            let mut b_l = b_s.clone();
            mix_rows_1q(KernelPath::Scalar, &mut a_s, &mut b_s, g);
            mix_rows_1q(KernelPath::Lanes, &mut a_l, &mut b_l, g);
            assert_eq!(a_s, a_l, "len={len}");
            assert_eq!(b_s, b_l, "len={len}");
        }
    }

    #[test]
    fn detection_reports_a_path() {
        // Whatever the machine, detection must settle on one of the two
        // engines and keep answering the same thing.
        let first = KernelPath::detected();
        assert_eq!(first, KernelPath::detected());
        assert!(matches!(first, KernelPath::Scalar | KernelPath::Lanes));
        assert!(!first.label().is_empty());
    }
}

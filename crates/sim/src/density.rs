//! Density-matrix simulation with amplitude damping — the physical
//! validation of the paper's decoherence fidelity model (Eqs. 10–11).
//!
//! The paper charges every circuit a fidelity `F_Q = exp(-D/T1)` per qubit
//! wire. That is exactly the amplitude-damping survival of an excited
//! qubit; this module lets tests *derive* the model from channel-level
//! simulation instead of assuming it.

use crate::State;
use paradrive_linalg::{CMat, C64};

/// An `n`-qubit density matrix (`2^n × 2^n`).
#[derive(Debug, Clone)]
pub struct Density {
    n: usize,
    mat: CMat,
}

impl Density {
    /// The pure density matrix `|ψ⟩⟨ψ|` of a state.
    pub fn from_state(state: &State) -> Self {
        let n = state.n_qubits();
        let amps = state.amplitudes();
        let dim = amps.len();
        let mut mat = CMat::zeros(dim, dim);
        for r in 0..dim {
            for c in 0..dim {
                mat[(r, c)] = amps[r] * amps[c].conj();
            }
        }
        Density { n, mat }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The raw matrix.
    pub fn matrix(&self) -> &CMat {
        &self.mat
    }

    /// Trace (should stay 1 under physical channels).
    pub fn trace(&self) -> f64 {
        self.mat.trace().re
    }

    /// Purity `tr(ρ²)` — 1 for pure states, `1/2^n` for maximally mixed.
    pub fn purity(&self) -> f64 {
        self.mat.mul(&self.mat).trace().re
    }

    /// Conjugates by a full-system unitary: `ρ → U ρ U†`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn apply_unitary(&mut self, u: &CMat) {
        assert_eq!(u.rows(), self.mat.rows(), "dimension mismatch");
        self.mat = u.mul(&self.mat).mul(&u.adjoint());
    }

    /// Applies the amplitude-damping channel with decay probability `p` to
    /// qubit `q`: Kraus operators `K0 = diag(1, √(1−p))`,
    /// `K1 = √p |0⟩⟨1|`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range or `p ∉ [0, 1]`.
    pub fn amplitude_damp(&mut self, q: usize, p: f64) {
        assert!(q < self.n, "qubit out of range");
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let k0 = CMat::diag(&[C64::ONE, C64::real((1.0 - p).sqrt())]);
        let mut k1 = CMat::zeros(2, 2);
        k1[(0, 1)] = C64::real(p.sqrt());
        let e0 = embed(&k0, q, self.n);
        let e1 = embed(&k1, q, self.n);
        let part0 = e0.mul(&self.mat).mul(&e0.adjoint());
        let part1 = e1.mul(&self.mat).mul(&e1.adjoint());
        self.mat = part0.add(&part1);
    }

    /// Applies `T1` relaxation for a duration `t` (same units as `t1`) to
    /// every qubit: damping probability `p = 1 − exp(−t/T1)`.
    pub fn relax_all(&mut self, t: f64, t1: f64) {
        let p = 1.0 - (-t / t1).exp();
        for q in 0..self.n {
            self.amplitude_damp(q, p);
        }
    }

    /// State fidelity `⟨ψ|ρ|ψ⟩` against a pure reference.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn fidelity(&self, reference: &State) -> f64 {
        assert_eq!(reference.n_qubits(), self.n, "width mismatch");
        let amps = reference.amplitudes();
        let mut acc = C64::ZERO;
        for r in 0..amps.len() {
            for c in 0..amps.len() {
                acc += amps[r].conj() * self.mat[(r, c)] * amps[c];
            }
        }
        acc.re
    }
}

/// Embeds a 2×2 operator on qubit `q` of an `n`-qubit register (qubit 0 is
/// the most-significant bit).
fn embed(op: &CMat, q: usize, n: usize) -> CMat {
    let mut m = CMat::identity(1);
    let id2 = CMat::identity(2);
    for i in 0..n {
        m = m.kron(if i == q { op } else { &id2 });
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradrive_circuit::{benchmarks, Circuit, OneQ};

    fn excited(n: usize) -> State {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.push_1q(OneQ::X, q);
        }
        State::run(&c)
    }

    #[test]
    fn pure_state_properties() {
        let rho = Density::from_state(&excited(2));
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!((rho.fidelity(&excited(2)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn damping_preserves_trace_and_reduces_purity() {
        let mut c = Circuit::new(2);
        c.push_1q(OneQ::H, 0);
        c.push_1q(OneQ::X, 1);
        let mut rho = Density::from_state(&State::run(&c));
        rho.amplitude_damp(0, 0.3);
        rho.amplitude_damp(1, 0.3);
        assert!((rho.trace() - 1.0).abs() < 1e-10);
        assert!(rho.purity() < 1.0);
    }

    #[test]
    fn amplitude_damping_is_trace_preserving_everywhere() {
        // The Kraus pair must satisfy K0†K0 + K1†K1 = I, so tr(ρ) stays 1
        // for every damping strength, qubit, width and input state —
        // including entangled (GHZ) and locally rotated ones.
        let states: Vec<State> = vec![State::run(&benchmarks::ghz(3)), excited(3), {
            let mut c = Circuit::new(3);
            c.push_1q(OneQ::H, 0);
            c.push_1q(OneQ::T, 1);
            c.push_1q(OneQ::X, 2);
            State::run(&c)
        }];
        for state in &states {
            for p in [0.0, 0.17, 0.5, 0.83, 1.0] {
                let mut rho = Density::from_state(state);
                for q in 0..rho.n_qubits() {
                    rho.amplitude_damp(q, p);
                    assert!(
                        (rho.trace() - 1.0).abs() < 1e-12,
                        "trace drifted to {} at p = {p}, qubit {q}",
                        rho.trace()
                    );
                }
            }
        }
        // Repeated relax_all steps keep the trace pinned too.
        let mut rho = Density::from_state(&State::run(&benchmarks::ghz(3)));
        for _ in 0..5 {
            rho.relax_all(0.21, 1.0);
        }
        assert!((rho.trace() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn full_damping_resets_to_ground() {
        let mut rho = Density::from_state(&excited(2));
        rho.amplitude_damp(0, 1.0);
        rho.amplitude_damp(1, 1.0);
        let ground = State::zero(2);
        assert!((rho.fidelity(&ground) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn excited_qubit_survival_matches_eq10_exactly() {
        // The paper's F_Q = exp(-D/T1): an excited qubit idling for D under
        // T1 relaxation survives with exactly that probability.
        let reference = excited(1);
        for d_over_t1 in [0.01, 0.1, 0.5] {
            let mut rho = Density::from_state(&reference);
            rho.relax_all(d_over_t1, 1.0);
            let f = rho.fidelity(&reference);
            let model = (-d_over_t1_total(d_over_t1)).exp();
            assert!(
                (f - model).abs() < 1e-12,
                "F {f} vs model {model} at D/T1 = {d_over_t1}"
            );
        }
        fn d_over_t1_total(x: f64) -> f64 {
            x
        }
    }

    #[test]
    fn total_fidelity_is_product_over_wires_eq11() {
        // |11…1⟩ on N qubits: F_T = exp(-N·D/T1) exactly (Eq. 11).
        for n in [1usize, 2, 3, 4] {
            let reference = excited(n);
            let mut rho = Density::from_state(&reference);
            let d_over_t1 = 0.2;
            rho.relax_all(d_over_t1, 1.0);
            let f = rho.fidelity(&reference);
            let model = (-(n as f64) * d_over_t1).exp();
            assert!(
                (f - model).abs() < 1e-10,
                "n={n}: F {f} vs exp(-N·D/T1) {model}"
            );
        }
    }

    #[test]
    fn superposition_decays_slower_than_excited() {
        // |+⟩ keeps half its population in |0⟩; the paper's model is the
        // worst-case wire. Channel-level fidelity must be ≥ the model.
        let mut c = Circuit::new(1);
        c.push_1q(OneQ::H, 0);
        let plus = State::run(&c);
        let mut rho = Density::from_state(&plus);
        rho.relax_all(0.3, 1.0);
        let f = rho.fidelity(&plus);
        let model = (-0.3_f64).exp();
        assert!(f > model, "superposition fidelity {f} ≤ model {model}");
    }

    #[test]
    fn ghz_fidelity_decays_with_width_and_time() {
        let mut last_f = 1.0;
        for n in [2usize, 3, 4] {
            let ghz = State::run(&benchmarks::ghz(n));
            let mut rho = Density::from_state(&ghz);
            rho.relax_all(0.2, 1.0);
            let f = rho.fidelity(&ghz);
            assert!(f < last_f, "fidelity should drop with width: {f}");
            last_f = f;
        }
        // And with time.
        let ghz = State::run(&benchmarks::ghz(3));
        let mut prev = 1.0;
        for steps in 1..4 {
            let mut rho = Density::from_state(&ghz);
            rho.relax_all(0.15 * steps as f64, 1.0);
            let f = rho.fidelity(&ghz);
            assert!(f < prev);
            prev = f;
        }
    }

    #[test]
    fn unitary_conjugation_preserves_purity() {
        let mut rho = Density::from_state(&excited(2));
        let u = paradrive_weyl::gates::b_gate();
        rho.apply_unitary(&u);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }
}

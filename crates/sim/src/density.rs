//! Density-matrix simulation with amplitude damping — the physical
//! validation of the paper's decoherence fidelity model (Eqs. 10–11).
//!
//! The paper charges every circuit a fidelity `F_Q = exp(-D/T1)` per qubit
//! wire. That is exactly the amplitude-damping survival of an excited
//! qubit; this module lets tests *derive* the model from channel-level
//! simulation instead of assuming it.

use crate::kernels::{self, KernelPath};
use crate::{SimError, State};
use paradrive_circuit::{Circuit, Op};
use paradrive_linalg::{CMat, C64};

/// Widest register [`Density::run`] will simulate (the matrix is dense:
/// `4^n` entries).
pub const MAX_DENSITY_QUBITS: usize = 10;

/// An `n`-qubit density matrix (`2^n × 2^n`).
#[derive(Debug, Clone)]
pub struct Density {
    n: usize,
    mat: CMat,
}

impl Density {
    /// The pure density matrix `|ψ⟩⟨ψ|` of a state.
    pub fn from_state(state: &State) -> Self {
        let n = state.n_qubits();
        let amps = state.amplitudes();
        let dim = amps.len();
        let mut mat = CMat::zeros(dim, dim);
        for r in 0..dim {
            for c in 0..dim {
                mat[(r, c)] = amps[r] * amps[c].conj();
            }
        }
        Density { n, mat }
    }

    /// Runs a circuit from `|0…0⟩⟨0…0|` at the channel level — the
    /// density-matrix counterpart of [`State::run`], used to cross-check
    /// the statevector simulator gate by gate.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooWide`] beyond [`MAX_DENSITY_QUBITS`] qubits
    /// and propagates gate-application errors.
    pub fn run(circuit: &Circuit) -> Result<Density, SimError> {
        let n = circuit.n_qubits();
        if n > MAX_DENSITY_QUBITS {
            return Err(SimError::TooWide {
                qubits: n,
                max: MAX_DENSITY_QUBITS,
            });
        }
        let mut rho = Density::from_state(&State::zero(n));
        rho.apply_circuit(circuit)?;
        Ok(rho)
    }

    /// Applies every operation of a circuit as a unitary conjugation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WidthMismatch`] when the circuit's width differs
    /// from the register's, and propagates gate-application errors.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        self.apply_circuit_with(circuit, KernelPath::detected())
    }

    /// [`Density::apply_circuit`] on an explicit kernel path.
    ///
    /// # Errors
    ///
    /// As [`Density::apply_circuit`].
    pub fn apply_circuit_with(
        &mut self,
        circuit: &Circuit,
        path: KernelPath,
    ) -> Result<(), SimError> {
        if circuit.n_qubits() != self.n {
            return Err(SimError::WidthMismatch {
                circuit: circuit.n_qubits(),
                state: self.n,
            });
        }
        for op in circuit.ops() {
            match op {
                Op::OneQ { gate, q } => self.conjugate_1q_with(&gate.unitary(), *q, path)?,
                Op::TwoQ { gate, a, b } => self.conjugate_2q_with(&gate.unitary(), *a, *b, path)?,
            }
        }
        Ok(())
    }

    /// Conjugates by a 2×2 unitary on qubit `q`: `ρ → U_q ρ U_q†`, as
    /// whole-row mixes (left factor) and per-row 1Q kernel applies (right
    /// factor) — contiguous traffic instead of the `2^n`-strided
    /// column-by-column walk, sharing the statevector kernels.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad index.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not 2×2.
    pub fn conjugate_1q(&mut self, g: &CMat, q: usize) -> Result<(), SimError> {
        self.conjugate_1q_with(g, q, KernelPath::detected())
    }

    /// [`Density::conjugate_1q`] on an explicit kernel path.
    ///
    /// # Errors
    ///
    /// As [`Density::conjugate_1q`].
    pub fn conjugate_1q_with(
        &mut self,
        g: &CMat,
        q: usize,
        path: KernelPath,
    ) -> Result<(), SimError> {
        if q >= self.n {
            return Err(SimError::QubitOutOfRange {
                qubit: q,
                width: self.n,
            });
        }
        assert_eq!((g.rows(), g.cols()), (2, 2));
        let d = 1usize << self.n;
        let bit = 1usize << (self.n - 1 - q);
        let low = bit - 1;
        let ga = [g[(0, 0)], g[(0, 1)], g[(1, 0)], g[(1, 1)]];
        let data = self.mat.as_mut_slice();
        // Left multiply by U: rows i and j mix elementwise.
        for k in 0..d / 2 {
            let i = ((k & !low) << 1) | (k & low);
            let j = i | bit;
            let (head, tail) = data.split_at_mut(j * d);
            kernels::mix_rows_1q(path, &mut head[i * d..(i + 1) * d], &mut tail[..d], ga);
        }
        // Right multiply by U†: each row is a 1Q apply with Ū (the
        // conjugate — adjoint of the adjoint's column action).
        let gc = [ga[0].conj(), ga[1].conj(), ga[2].conj(), ga[3].conj()];
        for row in data.chunks_exact_mut(d) {
            kernels::apply_1q(path, row, bit, gc);
        }
        Ok(())
    }

    /// Conjugates by a 4×4 unitary on qubits `(a, b)` with `a` as the high
    /// bit: `ρ → U_{ab} ρ U_{ab}†`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] or [`SimError::DuplicateQubit`]
    /// for bad indices.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not 4×4.
    pub fn conjugate_2q(&mut self, g: &CMat, a: usize, b: usize) -> Result<(), SimError> {
        self.conjugate_2q_with(g, a, b, KernelPath::detected())
    }

    /// [`Density::conjugate_2q`] on an explicit kernel path.
    ///
    /// # Errors
    ///
    /// As [`Density::conjugate_2q`].
    pub fn conjugate_2q_with(
        &mut self,
        g: &CMat,
        a: usize,
        b: usize,
        path: KernelPath,
    ) -> Result<(), SimError> {
        for q in [a, b] {
            if q >= self.n {
                return Err(SimError::QubitOutOfRange {
                    qubit: q,
                    width: self.n,
                });
            }
        }
        if a == b {
            return Err(SimError::DuplicateQubit(a));
        }
        assert_eq!((g.rows(), g.cols()), (4, 4));
        let d = 1usize << self.n;
        let bit_a = 1usize << (self.n - 1 - a);
        let bit_b = 1usize << (self.n - 1 - b);
        let (small, big) = (bit_a.min(bit_b), bit_a.max(bit_b));
        let (low_s, low_b) = (small - 1, big - 1);
        let mut m = [[C64::ZERO; 4]; 4];
        let mut mc = [[C64::ZERO; 4]; 4];
        for r in 0..4 {
            for c in 0..4 {
                m[r][c] = g[(r, c)];
                mc[r][c] = g[(r, c)].conj();
            }
        }
        let data = self.mat.as_mut_slice();
        // Left multiply by U: the four rows of each block mix elementwise.
        // Blocks are carved out in ascending row order, then handed to the
        // kernel in the logical (a-high) order the matrix uses.
        for k in 0..d / 4 {
            let t = ((k & !low_s) << 1) | (k & low_s);
            let i = ((t & !low_b) << 1) | (t & low_b);
            let asc = [i, i | small, i | big, i | small | big];
            let (head, rest) = data[asc[0] * d..].split_at_mut((asc[1] - asc[0]) * d);
            let (mid, rest) = rest.split_at_mut((asc[2] - asc[1]) * d);
            let (mid2, rest) = rest.split_at_mut((asc[3] - asc[2]) * d);
            let r0 = &mut head[..d];
            let r1 = &mut mid[..d];
            let r2 = &mut mid2[..d];
            let r3 = &mut rest[..d];
            let rows = if bit_a > bit_b {
                [r0, r1, r2, r3]
            } else {
                [r0, r2, r1, r3]
            };
            kernels::mix_rows_2q(path, rows, &m);
        }
        // Right multiply by U†: each row is a 2Q apply with Ū.
        for row in data.chunks_exact_mut(d) {
            kernels::apply_2q(path, row, bit_a, bit_b, &mc);
        }
        Ok(())
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The raw matrix.
    pub fn matrix(&self) -> &CMat {
        &self.mat
    }

    /// Trace (should stay 1 under physical channels).
    pub fn trace(&self) -> f64 {
        self.mat.trace().re
    }

    /// Purity `tr(ρ²)` — 1 for pure states, `1/2^n` for maximally mixed.
    pub fn purity(&self) -> f64 {
        self.mat.mul(&self.mat).trace().re
    }

    /// Conjugates by a full-system unitary: `ρ → U ρ U†`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn apply_unitary(&mut self, u: &CMat) {
        assert_eq!(u.rows(), self.mat.rows(), "dimension mismatch");
        self.mat = u.mul(&self.mat).mul(&u.adjoint());
    }

    /// Applies the amplitude-damping channel with decay probability `p` to
    /// qubit `q`: Kraus operators `K0 = diag(1, √(1−p))`,
    /// `K1 = √p |0⟩⟨1|`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad index and
    /// [`SimError::InvalidProbability`] when `p ∉ [0, 1]`.
    pub fn amplitude_damp(&mut self, q: usize, p: f64) -> Result<(), SimError> {
        if q >= self.n {
            return Err(SimError::QubitOutOfRange {
                qubit: q,
                width: self.n,
            });
        }
        if !(0.0..=1.0).contains(&p) {
            return Err(SimError::InvalidProbability(p));
        }
        let k0 = CMat::diag(&[C64::ONE, C64::real((1.0 - p).sqrt())]);
        let mut k1 = CMat::zeros(2, 2);
        k1[(0, 1)] = C64::real(p.sqrt());
        let e0 = embed(&k0, q, self.n);
        let e1 = embed(&k1, q, self.n);
        let part0 = e0.mul(&self.mat).mul(&e0.adjoint());
        let part1 = e1.mul(&self.mat).mul(&e1.adjoint());
        self.mat = part0.add(&part1);
        Ok(())
    }

    /// Applies `T1` relaxation for a duration `t` (same units as `t1`) to
    /// every qubit: damping probability `p = 1 − exp(−t/T1)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidProbability`] when `t/t1` is negative or
    /// non-finite.
    pub fn relax_all(&mut self, t: f64, t1: f64) -> Result<(), SimError> {
        let p = 1.0 - (-t / t1).exp();
        for q in 0..self.n {
            self.amplitude_damp(q, p)?;
        }
        Ok(())
    }

    /// State fidelity `⟨ψ|ρ|ψ⟩` against a pure reference.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn fidelity(&self, reference: &State) -> f64 {
        assert_eq!(reference.n_qubits(), self.n, "width mismatch");
        let amps = reference.amplitudes();
        let mut acc = C64::ZERO;
        for r in 0..amps.len() {
            for c in 0..amps.len() {
                acc += amps[r].conj() * self.mat[(r, c)] * amps[c];
            }
        }
        acc.re
    }
}

/// Embeds a 2×2 operator on qubit `q` of an `n`-qubit register (qubit 0 is
/// the most-significant bit).
fn embed(op: &CMat, q: usize, n: usize) -> CMat {
    let mut m = CMat::identity(1);
    let id2 = CMat::identity(2);
    for i in 0..n {
        m = m.kron(if i == q { op } else { &id2 });
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradrive_circuit::{benchmarks, Circuit, OneQ};

    fn excited(n: usize) -> State {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.push_1q(OneQ::X, q);
        }
        State::run(&c).unwrap()
    }

    #[test]
    fn run_matches_statevector_on_entangling_circuit() {
        use paradrive_circuit::TwoQ;
        let mut c = Circuit::new(3);
        c.push_1q(OneQ::H, 0);
        c.push_2q(TwoQ::Cx, 0, 1);
        c.push_2q(TwoQ::ISwap, 1, 2);
        c.push_1q(OneQ::T, 2);
        c.push_2q(TwoQ::Cx, 2, 0);
        let rho = Density::run(&c).unwrap();
        let psi = State::run(&c).unwrap();
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!((rho.fidelity(&psi) - 1.0).abs() < 1e-10);
        // Diagonal equals the statevector probabilities entry by entry.
        for (i, p) in psi.probabilities().iter().enumerate() {
            assert!((rho.matrix()[(i, i)].re - p).abs() < 1e-12);
        }
    }

    #[test]
    fn run_rejects_wide_and_bad_inputs_with_typed_errors() {
        assert_eq!(
            Density::run(&Circuit::new(MAX_DENSITY_QUBITS + 1)).unwrap_err(),
            SimError::TooWide {
                qubits: MAX_DENSITY_QUBITS + 1,
                max: MAX_DENSITY_QUBITS
            }
        );
        let mut rho = Density::from_state(&State::zero(2));
        assert_eq!(
            rho.apply_circuit(&Circuit::new(3)).unwrap_err(),
            SimError::WidthMismatch {
                circuit: 3,
                state: 2
            }
        );
        assert_eq!(
            rho.conjugate_1q(&OneQ::X.unitary(), 7).unwrap_err(),
            SimError::QubitOutOfRange { qubit: 7, width: 2 }
        );
        assert_eq!(
            rho.amplitude_damp(9, 0.5).unwrap_err(),
            SimError::QubitOutOfRange { qubit: 9, width: 2 }
        );
        assert_eq!(
            rho.amplitude_damp(0, 1.5).unwrap_err(),
            SimError::InvalidProbability(1.5)
        );
        // Rejected operations leave the state untouched.
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pure_state_properties() {
        let rho = Density::from_state(&excited(2));
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!((rho.fidelity(&excited(2)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn damping_preserves_trace_and_reduces_purity() {
        let mut c = Circuit::new(2);
        c.push_1q(OneQ::H, 0);
        c.push_1q(OneQ::X, 1);
        let mut rho = Density::from_state(&State::run(&c).unwrap());
        rho.amplitude_damp(0, 0.3).unwrap();
        rho.amplitude_damp(1, 0.3).unwrap();
        assert!((rho.trace() - 1.0).abs() < 1e-10);
        assert!(rho.purity() < 1.0);
    }

    #[test]
    fn amplitude_damping_is_trace_preserving_everywhere() {
        // The Kraus pair must satisfy K0†K0 + K1†K1 = I, so tr(ρ) stays 1
        // for every damping strength, qubit, width and input state —
        // including entangled (GHZ) and locally rotated ones.
        let states: Vec<State> = vec![State::run(&benchmarks::ghz(3)).unwrap(), excited(3), {
            let mut c = Circuit::new(3);
            c.push_1q(OneQ::H, 0);
            c.push_1q(OneQ::T, 1);
            c.push_1q(OneQ::X, 2);
            State::run(&c).unwrap()
        }];
        for state in &states {
            for p in [0.0, 0.17, 0.5, 0.83, 1.0] {
                let mut rho = Density::from_state(state);
                for q in 0..rho.n_qubits() {
                    rho.amplitude_damp(q, p).unwrap();
                    assert!(
                        (rho.trace() - 1.0).abs() < 1e-12,
                        "trace drifted to {} at p = {p}, qubit {q}",
                        rho.trace()
                    );
                }
            }
        }
        // Repeated relax_all steps keep the trace pinned too.
        let mut rho = Density::from_state(&State::run(&benchmarks::ghz(3)).unwrap());
        for _ in 0..5 {
            rho.relax_all(0.21, 1.0).unwrap();
        }
        assert!((rho.trace() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn full_damping_resets_to_ground() {
        let mut rho = Density::from_state(&excited(2));
        rho.amplitude_damp(0, 1.0).unwrap();
        rho.amplitude_damp(1, 1.0).unwrap();
        let ground = State::zero(2);
        assert!((rho.fidelity(&ground) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn excited_qubit_survival_matches_eq10_exactly() {
        // The paper's F_Q = exp(-D/T1): an excited qubit idling for D under
        // T1 relaxation survives with exactly that probability.
        let reference = excited(1);
        for d_over_t1 in [0.01, 0.1, 0.5] {
            let mut rho = Density::from_state(&reference);
            rho.relax_all(d_over_t1, 1.0).unwrap();
            let f = rho.fidelity(&reference);
            let model = (-d_over_t1_total(d_over_t1)).exp();
            assert!(
                (f - model).abs() < 1e-12,
                "F {f} vs model {model} at D/T1 = {d_over_t1}"
            );
        }
        fn d_over_t1_total(x: f64) -> f64 {
            x
        }
    }

    #[test]
    fn total_fidelity_is_product_over_wires_eq11() {
        // |11…1⟩ on N qubits: F_T = exp(-N·D/T1) exactly (Eq. 11).
        for n in [1usize, 2, 3, 4] {
            let reference = excited(n);
            let mut rho = Density::from_state(&reference);
            let d_over_t1 = 0.2;
            rho.relax_all(d_over_t1, 1.0).unwrap();
            let f = rho.fidelity(&reference);
            let model = (-(n as f64) * d_over_t1).exp();
            assert!(
                (f - model).abs() < 1e-10,
                "n={n}: F {f} vs exp(-N·D/T1) {model}"
            );
        }
    }

    #[test]
    fn superposition_decays_slower_than_excited() {
        // |+⟩ keeps half its population in |0⟩; the paper's model is the
        // worst-case wire. Channel-level fidelity must be ≥ the model.
        let mut c = Circuit::new(1);
        c.push_1q(OneQ::H, 0);
        let plus = State::run(&c).unwrap();
        let mut rho = Density::from_state(&plus);
        rho.relax_all(0.3, 1.0).unwrap();
        let f = rho.fidelity(&plus);
        let model = (-0.3_f64).exp();
        assert!(f > model, "superposition fidelity {f} ≤ model {model}");
    }

    #[test]
    fn ghz_fidelity_decays_with_width_and_time() {
        let mut last_f = 1.0;
        for n in [2usize, 3, 4] {
            let ghz = State::run(&benchmarks::ghz(n)).unwrap();
            let mut rho = Density::from_state(&ghz);
            rho.relax_all(0.2, 1.0).unwrap();
            let f = rho.fidelity(&ghz);
            assert!(f < last_f, "fidelity should drop with width: {f}");
            last_f = f;
        }
        // And with time.
        let ghz = State::run(&benchmarks::ghz(3)).unwrap();
        let mut prev = 1.0;
        for steps in 1..4 {
            let mut rho = Density::from_state(&ghz);
            rho.relax_all(0.15 * steps as f64, 1.0).unwrap();
            let f = rho.fidelity(&ghz);
            assert!(f < prev);
            prev = f;
        }
    }

    #[test]
    fn unitary_conjugation_preserves_purity() {
        let mut rho = Density::from_state(&excited(2));
        let u = paradrive_weyl::gates::b_gate();
        rho.apply_unitary(&u);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }
}

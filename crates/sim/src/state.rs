//! The statevector and gate application kernels.

use crate::kernels::{self, KernelPath};
use crate::SimError;
use paradrive_circuit::{Circuit, Op};
use paradrive_linalg::{CMat, C64};
use rand::Rng;

/// An `n`-qubit pure state of `2^n` complex amplitudes.
///
/// Qubit 0 is the most-significant index bit.
///
/// The register owns a scratch buffer so the in-place permutation path
/// ([`State::permute`]) allocates nothing after its first use. Scratch is
/// invisible: it never participates in equality and is not carried by
/// clones.
#[derive(Debug)]
pub struct State {
    n: usize,
    amps: Vec<C64>,
    scratch: Vec<C64>,
}

impl Clone for State {
    fn clone(&self) -> Self {
        State {
            n: self.n,
            amps: self.amps.clone(),
            scratch: Vec::new(),
        }
    }
}

impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.amps == other.amps
    }
}

/// Widest register [`State`] will allocate (`2^26` amplitudes ≈ 1 GiB).
pub const MAX_STATE_QUBITS: usize = 26;

impl State {
    /// The all-zeros computational basis state `|0…0⟩`.
    pub fn zero(n: usize) -> Self {
        assert!(
            n <= MAX_STATE_QUBITS,
            "statevector width limited to {MAX_STATE_QUBITS} qubits"
        );
        let mut amps = vec![C64::ZERO; 1 << n];
        amps[0] = C64::ONE;
        State {
            n,
            amps,
            scratch: Vec::new(),
        }
    }

    /// The computational basis state `|index⟩` over `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`MAX_STATE_QUBITS`] or `index ≥ 2^n`.
    pub fn basis(n: usize, index: usize) -> Self {
        let mut s = State::zero(n);
        assert!(index < s.amps.len(), "basis index out of range");
        s.amps[0] = C64::ZERO;
        s.amps[index] = C64::ONE;
        s
    }

    /// Builds a state from explicit amplitudes.
    ///
    /// # Panics
    ///
    /// Panics unless the length is a power of two.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        let n = amps.len().trailing_zeros() as usize;
        assert_eq!(1usize << n, amps.len(), "length must be a power of two");
        State {
            n,
            amps,
            scratch: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The amplitudes, indexed by computational basis state.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Applies a 2×2 unitary to qubit `q` via the process-default
    /// [`KernelPath`].
    ///
    /// Each amplitude pair is mixed exactly once, in ascending memory
    /// order; the scalar and lane engines are bit-identical (see
    /// [`crate::kernels`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad index.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not 2×2.
    pub fn apply_1q(&mut self, g: &CMat, q: usize) -> Result<(), SimError> {
        self.apply_1q_with(g, q, KernelPath::detected())
    }

    /// [`State::apply_1q`] on an explicit kernel path.
    ///
    /// # Errors
    ///
    /// As [`State::apply_1q`].
    pub fn apply_1q_with(&mut self, g: &CMat, q: usize, path: KernelPath) -> Result<(), SimError> {
        if q >= self.n {
            return Err(SimError::QubitOutOfRange {
                qubit: q,
                width: self.n,
            });
        }
        assert_eq!((g.rows(), g.cols()), (2, 2));
        let bit = 1usize << (self.n - 1 - q);
        let g = [g[(0, 0)], g[(0, 1)], g[(1, 0)], g[(1, 1)]];
        kernels::apply_1q(path, &mut self.amps, bit, g);
        Ok(())
    }

    /// Applies a 4×4 unitary to qubits `(a, b)` with `a` as the high bit,
    /// via the process-default [`KernelPath`].
    ///
    /// The 4-amplitude blocks are enumerated directly (two zero-bit
    /// insertions per iteration) with the 16 matrix entries in registers;
    /// both engines are bit-identical (see [`crate::kernels`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] or [`SimError::DuplicateQubit`]
    /// for bad indices.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not 4×4.
    pub fn apply_2q(&mut self, g: &CMat, a: usize, b: usize) -> Result<(), SimError> {
        self.apply_2q_with(g, a, b, KernelPath::detected())
    }

    /// [`State::apply_2q`] on an explicit kernel path.
    ///
    /// # Errors
    ///
    /// As [`State::apply_2q`].
    pub fn apply_2q_with(
        &mut self,
        g: &CMat,
        a: usize,
        b: usize,
        path: KernelPath,
    ) -> Result<(), SimError> {
        for q in [a, b] {
            if q >= self.n {
                return Err(SimError::QubitOutOfRange {
                    qubit: q,
                    width: self.n,
                });
            }
        }
        if a == b {
            return Err(SimError::DuplicateQubit(a));
        }
        assert_eq!((g.rows(), g.cols()), (4, 4));
        let bit_a = 1usize << (self.n - 1 - a);
        let bit_b = 1usize << (self.n - 1 - b);
        let mut m = [[C64::ZERO; 4]; 4];
        for (r, row) in m.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                *cell = g[(r, c)];
            }
        }
        kernels::apply_2q(path, &mut self.amps, bit_a, bit_b, &m);
        Ok(())
    }

    /// Runs a circuit from `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooWide`] beyond [`MAX_STATE_QUBITS`] qubits and
    /// propagates gate-application errors (which cannot occur for circuits
    /// built through the checked [`Circuit`] API).
    pub fn run(circuit: &Circuit) -> Result<State, SimError> {
        State::run_with(circuit, KernelPath::detected())
    }

    /// [`State::run`] on an explicit kernel path.
    ///
    /// # Errors
    ///
    /// As [`State::run`].
    pub fn run_with(circuit: &Circuit, path: KernelPath) -> Result<State, SimError> {
        let n = circuit.n_qubits();
        if n > MAX_STATE_QUBITS {
            return Err(SimError::TooWide {
                qubits: n,
                max: MAX_STATE_QUBITS,
            });
        }
        let mut s = State::zero(n);
        s.apply_circuit_with(circuit, path)?;
        Ok(s)
    }

    /// Applies every operation of a circuit in order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WidthMismatch`] when the circuit's width differs
    /// from the register's, and propagates gate-application errors.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        self.apply_circuit_with(circuit, KernelPath::detected())
    }

    /// [`State::apply_circuit`] on an explicit kernel path.
    ///
    /// # Errors
    ///
    /// As [`State::apply_circuit`].
    pub fn apply_circuit_with(
        &mut self,
        circuit: &Circuit,
        path: KernelPath,
    ) -> Result<(), SimError> {
        if circuit.n_qubits() != self.n {
            return Err(SimError::WidthMismatch {
                circuit: circuit.n_qubits(),
                state: self.n,
            });
        }
        for op in circuit.ops() {
            match op {
                Op::OneQ { gate, q } => self.apply_1q_with(&gate.unitary(), *q, path)?,
                Op::TwoQ { gate, a, b } => self.apply_2q_with(&gate.unitary(), *a, *b, path)?,
            }
        }
        Ok(())
    }

    /// Measurement probabilities per basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// State norm (should stay 1 under unitary evolution).
    pub fn norm(&self) -> f64 {
        self.probabilities().iter().sum::<f64>().sqrt()
    }

    /// `|⟨self|other⟩|²`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn fidelity(&self, other: &State) -> f64 {
        assert_eq!(self.n, other.n, "width mismatch");
        let ip: C64 = self
            .amps
            .iter()
            .zip(&other.amps)
            .map(|(&a, &b)| a.conj() * b)
            .sum();
        ip.norm_sqr()
    }

    /// Expectation of Pauli Z on qubit `q`.
    pub fn expect_z(&self, q: usize) -> f64 {
        let bit = 1usize << (self.n - 1 - q);
        self.amps
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let sign = if i & bit == 0 { 1.0 } else { -1.0 };
                sign * a.norm_sqr()
            })
            .sum()
    }

    /// Samples one measurement outcome in the computational basis.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let r: f64 = rng.gen_range(0.0..1.0);
        let mut acc = 0.0;
        for (i, p) in self.probabilities().into_iter().enumerate() {
            acc += p;
            if r < acc {
                return i;
            }
        }
        self.amps.len() - 1
    }

    /// Relabels qubits in place: `perm[logical] = physical` — the final
    /// layout a router reports. Afterwards logical qubit `l`'s amplitude
    /// pattern sits at position `l` again.
    ///
    /// The shuffle runs through the state-owned scratch buffer, so after
    /// the first call on a given register this allocates nothing — the
    /// verify oracles permute once per column/sample and rely on that.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadPermutation`] if `perm` is not a permutation
    /// of `0..n`; the state is untouched on error.
    pub fn permute(&mut self, perm: &[usize]) -> Result<(), SimError> {
        if perm.len() != self.n {
            return Err(SimError::BadPermutation);
        }
        // Duplicate/range check on a bitmask — no allocation (n ≤ 63 for
        // any state that fits in memory).
        let mut seen = 0u64;
        for &p in perm {
            if p >= self.n || seen >> p & 1 == 1 {
                return Err(SimError::BadPermutation);
            }
            seen |= 1 << p;
        }
        if self.scratch.len() != self.amps.len() {
            self.scratch.resize(self.amps.len(), C64::ZERO);
        }
        for (i, &a) in self.amps.iter().enumerate() {
            // Build the index where logical qubit l takes the bit that
            // currently sits at physical position perm[l].
            let mut j = 0usize;
            for (l, &p) in perm.iter().enumerate() {
                let bit = (i >> (self.n - 1 - p)) & 1;
                j |= bit << (self.n - 1 - l);
            }
            self.scratch[j] = a;
        }
        std::mem::swap(&mut self.amps, &mut self.scratch);
        Ok(())
    }

    /// Like [`State::permute`], but returns the relabelled state and
    /// leaves `self` untouched (one fresh allocation for the copy).
    ///
    /// # Errors
    ///
    /// As [`State::permute`].
    pub fn permuted(&self, perm: &[usize]) -> Result<State, SimError> {
        let mut out = self.clone();
        out.permute(perm)?;
        Ok(out)
    }

    /// Resets to `|0…0⟩` without reallocating.
    pub fn reset_zero(&mut self) {
        self.amps.fill(C64::ZERO);
        self.amps[0] = C64::ONE;
    }

    /// Resets to the computational basis state `|index⟩` without
    /// reallocating.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ 2^n` (as [`State::basis`]).
    pub fn reset_basis(&mut self, index: usize) {
        assert!(index < self.amps.len(), "basis index out of range");
        self.amps.fill(C64::ZERO);
        self.amps[index] = C64::ONE;
    }

    /// Resets to the product state `⊗_q (factors[2q]·|0⟩ + factors[2q+1]·|1⟩)`
    /// without reallocating.
    ///
    /// Built by in-place doubling, qubit 0 ending up as the high index
    /// bit. Each amplitude is the same left-to-right factor product the
    /// equivalent sequence of 1Q applies on `|0…0⟩` would compute, so the
    /// construction is bit-identical to that (O(n·2ⁿ) slower) route.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WidthMismatch`] unless `factors` holds exactly
    /// `2n` entries.
    pub fn reset_product(&mut self, factors: &[C64]) -> Result<(), SimError> {
        if factors.len() != 2 * self.n {
            return Err(SimError::WidthMismatch {
                circuit: factors.len() / 2,
                state: self.n,
            });
        }
        self.amps[0] = C64::ONE;
        let mut len = 1usize;
        for pair in factors.chunks_exact(2) {
            let (v0, v1) = (pair[0], pair[1]);
            for j in (0..len).rev() {
                let base = self.amps[j];
                self.amps[2 * j + 1] = base * v1;
                self.amps[2 * j] = base * v0;
            }
            len *= 2;
        }
        Ok(())
    }

    /// Resets to `logical ⊗ |0…0⟩` — the logical state on the top wires,
    /// every remaining (ancilla) wire in `|0⟩` — without reallocating.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WidthMismatch`] if `logical` is wider than this
    /// register.
    pub fn reset_embed(&mut self, logical: &State) -> Result<(), SimError> {
        if logical.n > self.n {
            return Err(SimError::WidthMismatch {
                circuit: logical.n,
                state: self.n,
            });
        }
        let anc_bits = self.n - logical.n;
        self.amps.fill(C64::ZERO);
        for (y, &a) in logical.amps.iter().enumerate() {
            self.amps[y << anc_bits] = a;
        }
        Ok(())
    }
}

/// The full unitary of a circuit, built column by column. Limited to small
/// widths (≤ 10 qubits) since the result is dense.
///
/// # Errors
///
/// Returns [`SimError::TooWide`] beyond 10 qubits.
pub fn circuit_unitary(circuit: &Circuit) -> Result<CMat, SimError> {
    let n = circuit.n_qubits();
    if n > 10 {
        return Err(SimError::TooWide { qubits: n, max: 10 });
    }
    let dim = 1usize << n;
    let mut u = CMat::zeros(dim, dim);
    for col in 0..dim {
        let mut s = State::basis(n, col);
        s.apply_circuit(circuit)?;
        for row in 0..dim {
            u[(row, col)] = s.amplitudes()[row];
        }
    }
    Ok(u)
}

/// Heavy-output probability of a circuit: the total ideal probability of
/// outcomes whose probability exceeds the median — the Quantum Volume
/// success metric (ideal value ≈ (1 + ln 2)/2 ≈ 0.85 for random circuits).
///
/// # Errors
///
/// As [`State::run`].
pub fn heavy_output_probability(circuit: &Circuit) -> Result<f64, SimError> {
    let probs = State::run(circuit)?.probabilities();
    let mut sorted = probs.clone();
    sorted.sort_by(f64::total_cmp);
    let m = sorted.len();
    let median = if m.is_multiple_of(2) {
        0.5 * (sorted[m / 2 - 1] + sorted[m / 2])
    } else {
        sorted[m / 2]
    };
    Ok(probs.into_iter().filter(|&p| p > median).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradrive_circuit::{benchmarks, OneQ, TwoQ};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_state() {
        let s = State::zero(3);
        assert_eq!(s.amplitudes().len(), 8);
        assert!((s.norm() - 1.0).abs() < 1e-15);
        assert_eq!(s.probabilities()[0], 1.0);
    }

    #[test]
    fn x_flips_qubit() {
        let mut c = Circuit::new(2);
        c.push_1q(OneQ::X, 0);
        let s = State::run(&c).unwrap();
        // Qubit 0 is the high bit → |10⟩ = index 2.
        assert!((s.probabilities()[2] - 1.0).abs() < 1e-12);
        assert!((s.expect_z(0) + 1.0).abs() < 1e-12);
        assert!((s.expect_z(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ghz_state_structure() {
        let s = State::run(&benchmarks::ghz(4)).unwrap();
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[15] - 0.5).abs() < 1e-12);
        assert!(p[1..15].iter().all(|&x| x < 1e-12));
    }

    #[test]
    fn swap_gate_swaps() {
        let mut c = Circuit::new(2);
        c.push_1q(OneQ::X, 1); // |01⟩
        c.push_2q(TwoQ::Swap, 0, 1); // |10⟩
        let s = State::run(&c).unwrap();
        assert!((s.probabilities()[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn circuit_unitary_of_cx() {
        let mut c = Circuit::new(2);
        c.push_2q(TwoQ::Cx, 0, 1);
        let u = circuit_unitary(&c).unwrap();
        assert!(u.approx_eq(&paradrive_weyl::gates::cnot(), 1e-12));
    }

    #[test]
    fn circuit_unitary_orientation() {
        // CX with control on qubit 1 (low bit) is the reversed CNOT.
        let mut c = Circuit::new(2);
        c.push_2q(TwoQ::Cx, 1, 0);
        let u = circuit_unitary(&c).unwrap();
        let s = paradrive_weyl::gates::swap();
        let rev = s.mul(&paradrive_weyl::gates::cnot()).mul(&s);
        assert!(u.approx_eq(&rev, 1e-12));
    }

    #[test]
    fn bad_qubit_indices_are_typed_errors() {
        // Regression: these used to panic via `assert!`; the simulator now
        // reports the crate's typed `SimError` instead.
        let mut s = State::zero(2);
        assert_eq!(
            s.apply_1q(&OneQ::X.unitary(), 5).unwrap_err(),
            SimError::QubitOutOfRange { qubit: 5, width: 2 }
        );
        assert_eq!(
            s.apply_2q(&TwoQ::Cx.unitary(), 0, 3).unwrap_err(),
            SimError::QubitOutOfRange { qubit: 3, width: 2 }
        );
        assert_eq!(
            s.apply_2q(&TwoQ::Cx.unitary(), 1, 1).unwrap_err(),
            SimError::DuplicateQubit(1)
        );
        // The state is untouched by rejected applications.
        assert_eq!(s.probabilities()[0], 1.0);
    }

    #[test]
    fn width_mismatch_is_a_typed_error() {
        let mut s = State::zero(2);
        let c = Circuit::new(3);
        assert_eq!(
            s.apply_circuit(&c).unwrap_err(),
            SimError::WidthMismatch {
                circuit: 3,
                state: 2
            }
        );
        assert!(matches!(
            State::run(&Circuit::new(MAX_STATE_QUBITS + 1)).unwrap_err(),
            SimError::TooWide { qubits, max } if qubits == MAX_STATE_QUBITS + 1 && max == MAX_STATE_QUBITS
        ));
    }

    #[test]
    fn basis_states_are_one_hot() {
        let s = State::basis(3, 5);
        let p = s.probabilities();
        assert_eq!(p[5], 1.0);
        assert!((s.norm() - 1.0).abs() < 1e-15);
        assert_eq!(p.iter().filter(|&&x| x > 0.0).count(), 1);
    }

    #[test]
    fn too_wide_unitary_rejected() {
        let c = Circuit::new(11);
        assert!(matches!(
            circuit_unitary(&c),
            Err(SimError::TooWide {
                qubits: 11,
                max: 10
            })
        ));
    }

    #[test]
    fn qft_preserves_norm_and_spreads() {
        let s = State::run(&benchmarks::qft(6)).unwrap();
        assert!((s.norm() - 1.0).abs() < 1e-10);
        // QFT of |0…0⟩ is uniform.
        for p in s.probabilities() {
            assert!((p - 1.0 / 64.0).abs() < 1e-10);
        }
    }

    #[test]
    fn permutation_round_trip() {
        let mut c = Circuit::new(3);
        c.push_1q(OneQ::H, 0);
        c.push_2q(TwoQ::Cx, 0, 2);
        let s = State::run(&c).unwrap();
        let id: Vec<usize> = (0..3).collect();
        assert!(s.permuted(&id).unwrap().fidelity(&s) > 1.0 - 1e-12);
        // A swap of qubits 0 and 2 twice is the identity.
        let p = vec![2, 1, 0];
        let twice = s.permuted(&p).unwrap().permuted(&p).unwrap();
        assert!(twice.fidelity(&s) > 1.0 - 1e-12);
    }

    #[test]
    fn bad_permutations_rejected() {
        let s = State::zero(2);
        assert_eq!(s.permuted(&[0]).unwrap_err(), SimError::BadPermutation);
        assert_eq!(s.permuted(&[0, 0]).unwrap_err(), SimError::BadPermutation);
        assert_eq!(s.permuted(&[0, 5]).unwrap_err(), SimError::BadPermutation);
    }

    #[test]
    fn permutation_matches_swap_network() {
        // Applying SWAP(0,1) to the state equals relabelling qubits 0↔1.
        let mut c = Circuit::new(3);
        c.push_1q(OneQ::H, 0);
        c.push_1q(OneQ::T, 1);
        c.push_2q(TwoQ::Cx, 0, 2);
        let s = State::run(&c).unwrap();
        let mut swapped_circuit = c.clone();
        swapped_circuit.push_2q(TwoQ::Swap, 0, 1);
        let via_gate = State::run(&swapped_circuit).unwrap();
        let via_perm = s.permuted(&[1, 0, 2]).unwrap();
        assert!(via_gate.fidelity(&via_perm) > 1.0 - 1e-12);
    }

    #[test]
    fn heavy_output_of_uniform_is_zero() {
        // QFT|0⟩ is uniform: no outcome exceeds the median.
        assert!(heavy_output_probability(&benchmarks::qft(5)).unwrap() < 1e-9);
    }

    #[test]
    fn heavy_output_of_qv_is_near_085() {
        // Ideal QV circuits have heavy-output probability ≈ 0.85.
        let mut acc = 0.0;
        let trials = 5;
        for seed in 0..trials {
            acc += heavy_output_probability(&benchmarks::quantum_volume(8, 8, seed)).unwrap();
        }
        let hop = acc / trials as f64;
        assert!((hop - 0.85).abs() < 0.08, "heavy-output {hop}");
    }

    #[test]
    fn sampling_matches_probabilities() {
        let mut c = Circuit::new(1);
        c.push_1q(OneQ::H, 0);
        let s = State::run(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let ones = (0..2000).filter(|_| s.sample(&mut rng) == 1).count();
        assert!((900..1100).contains(&ones), "{ones} ones");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_random_circuits_preserve_norm(seed in 0u64..200) {
            let c = benchmarks::quantum_volume(5, 4, seed);
            let s = State::run(&c).unwrap();
            prop_assert!((s.norm() - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_circuit_unitary_is_unitary(seed in 0u64..100) {
            let c = benchmarks::quantum_volume(4, 3, seed);
            let u = circuit_unitary(&c).unwrap();
            prop_assert!(u.is_unitary(1e-8));
        }
    }
}

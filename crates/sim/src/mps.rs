//! Matrix-product-state simulation with bounded bond dimension.
//!
//! [`MpsState`] mirrors the [`State`](crate::State) surface —
//! [`MpsState::apply_1q`], [`MpsState::apply_2q`], [`MpsState::run`], the
//! same qubit-0-is-most-significant convention — but stores the state as a
//! chain of rank-3 tensors, one per qubit, so memory scales with the
//! *entanglement* of the state rather than `2^n`. That is what makes a
//! true semantic check of 50–100-qubit transpiled circuits possible: where
//! the statevector caps at [`MAX_STATE_QUBITS`]
//! qubits, an MPS holds a QFT-64 comfortably.
//!
//! # Truncation and the certified error budget
//!
//! Every two-qubit gate contracts the two site tensors, applies the 4×4,
//! and splits the pair back with an SVD
//! ([`paradrive_linalg::svd`]). When the split's bond dimension would
//! exceed [`MpsOptions::max_bond`], the smallest singular values are
//! discarded; each truncation's *discarded weight* — the dropped fraction
//! `ε = Σ_dropped s_i² / Σ_all s_i²` of the Schmidt spectrum — accumulates
//! in [`MpsState::discarded_weight`]. Because the chain is kept in
//! canonical form around the split (an orthogonality center moved by
//! exact SVDs), every truncation is the *locally* optimal rank cut, and
//! each cut of weight `ε_i` moves the renormalized state by at most
//! `√(2 ε_i)` in the 2-norm. Errors from successive truncations compound
//! in *norm*, not in weight — unitaries preserve distances — so the final
//! state obeys `‖ψ_mps − ψ_exact‖ ≤ D = Σ_i √(2 ε_i)`
//! ([`MpsState::truncation_norm_error`]), giving the certified fidelity
//! bound
//!
//! ```text
//! F ≥ (1 − D²/2)²  =  fidelity_lower_bound()        (clamped at 0)
//! ```
//!
//! The cumulative budget is [`MpsOptions::trunc_tol`]: the first two-site
//! update that pushes `Σ ε_i` past it fails with
//! [`SimError::TruncationBudgetExceeded`] — deterministically, since the
//! whole evolution is a pure function of the circuit and options. A run
//! with unbounded bond ([`MpsOptions::exact`]) never truncates and reports
//! a discarded weight of exactly `0.0`.
//!
//! Non-adjacent two-qubit gates are handled by a tracked swap network:
//! the farther qubit is moved next to its partner through explicit
//! adjacent SWAP applications (each with the same SVD/truncation
//! machinery, so transport error is *counted*, never hidden) and moved
//! back afterwards; [`MpsState::swaps_applied`] reports the total.
//!
//! # Example
//!
//! ```
//! use paradrive_circuit::{Circuit, OneQ, TwoQ};
//! use paradrive_sim::{MpsOptions, MpsState, State};
//!
//! // A GHZ chain: MPS agrees with the dense statevector exactly.
//! let mut c = Circuit::new(3);
//! c.push_1q(OneQ::H, 0);
//! c.push_2q(TwoQ::Cx, 0, 1);
//! c.push_2q(TwoQ::Cx, 1, 2);
//! let mps = MpsState::run(&c, MpsOptions::exact())?;
//! let dense = State::run(&c)?;
//! assert_eq!(mps.discarded_weight(), 0.0);
//! for (i, &a) in dense.amplitudes().iter().enumerate() {
//!     assert!((mps.amplitude(i) - a).norm() < 1e-12);
//! }
//! # Ok::<(), paradrive_sim::SimError>(())
//! ```

use crate::{SimError, MAX_STATE_QUBITS};
use paradrive_circuit::{Circuit, Op};
use paradrive_linalg::svd::svd;
use paradrive_linalg::{CMat, C64};

/// Truncation policy for an MPS evolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpsOptions {
    /// Largest bond dimension kept at any cut; singular values beyond it
    /// are discarded (and counted).
    pub max_bond: usize,
    /// Cumulative discarded-weight budget: the evolution fails with
    /// [`SimError::TruncationBudgetExceeded`] as soon as
    /// `Σ ε_i > trunc_tol`.
    pub trunc_tol: f64,
}

impl Default for MpsOptions {
    /// A bounded simulation suitable for wide-circuit verification:
    /// `max_bond = 64`, `trunc_tol = 1e-6`.
    fn default() -> Self {
        MpsOptions {
            max_bond: 64,
            trunc_tol: 1e-6,
        }
    }
}

impl MpsOptions {
    /// Unbounded bond dimension and an infinite budget: the evolution is
    /// exact and the discarded weight stays `0.0` exactly.
    pub fn exact() -> Self {
        MpsOptions {
            max_bond: usize::MAX,
            trunc_tol: f64::INFINITY,
        }
    }

    /// Sets the maximum bond dimension.
    #[must_use]
    pub fn max_bond(mut self, max_bond: usize) -> Self {
        self.max_bond = max_bond;
        self
    }

    /// Sets the cumulative discarded-weight budget.
    #[must_use]
    pub fn trunc_tol(mut self, trunc_tol: f64) -> Self {
        self.trunc_tol = trunc_tol;
        self
    }
}

/// One site tensor with shape `(dl, 2, dr)`, stored row-major as
/// `data[(l * 2 + p) * dr + r]`.
#[derive(Debug, Clone)]
struct Site {
    dl: usize,
    dr: usize,
    data: Vec<C64>,
}

impl Site {
    /// A product-state site `|b⟩` with trivial bonds.
    fn product(bit: usize) -> Site {
        let mut data = vec![C64::ZERO; 2];
        data[bit] = C64::ONE;
        Site { dl: 1, dr: 1, data }
    }

    #[inline]
    fn at(&self, l: usize, p: usize, r: usize) -> C64 {
        self.data[(l * 2 + p) * self.dr + r]
    }
}

/// A matrix-product state over `n` qubits (site `i` holds qubit `i`;
/// qubit 0 is the most-significant bit of a basis index, as in
/// [`State`](crate::State)).
#[derive(Debug, Clone)]
pub struct MpsState {
    n: usize,
    sites: Vec<Site>,
    opts: MpsOptions,
    /// Orthogonality center: sites left of it are left-canonical, sites
    /// right of it right-canonical.
    center: usize,
    /// Cumulative discarded weight `Σ ε_i`.
    discarded: f64,
    /// Accumulated 2-norm truncation error `Σ √(2 ε_i)`.
    norm_error: f64,
    /// Largest bond dimension any cut reached.
    max_bond_used: usize,
    /// Adjacent SWAPs applied by the non-adjacent-gate transport network.
    swaps: u64,
}

impl MpsState {
    /// The all-zeros product state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics on a zero-width register.
    pub fn zero(n: usize, opts: MpsOptions) -> Self {
        assert!(n >= 1, "MPS register needs at least one qubit");
        MpsState {
            n,
            sites: (0..n).map(|_| Site::product(0)).collect(),
            opts,
            center: 0,
            discarded: 0.0,
            norm_error: 0.0,
            max_bond_used: 1,
            swaps: 0,
        }
    }

    /// The computational basis state `|index⟩` (qubit 0 reads the most
    /// significant bit of `index`).
    ///
    /// # Panics
    ///
    /// Panics if `index` has bits beyond the register width.
    pub fn basis(n: usize, index: usize) -> Self {
        Self::basis_with(n, index, MpsOptions::default())
    }

    /// [`MpsState::basis`] with explicit options.
    ///
    /// # Panics
    ///
    /// As [`MpsState::basis`].
    pub fn basis_with(n: usize, index: usize, opts: MpsOptions) -> Self {
        let mut s = MpsState::zero(n, opts);
        assert!(
            n >= usize::BITS as usize - index.leading_zeros() as usize,
            "basis index out of range"
        );
        for q in 0..n {
            let bit = (index >> (n - 1 - q)) & 1;
            s.sites[q] = Site::product(bit);
        }
        s
    }

    /// Runs a circuit from `|0…0⟩` under the given truncation policy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TruncationBudgetExceeded`] when the cumulative
    /// discarded weight passes [`MpsOptions::trunc_tol`].
    pub fn run(circuit: &Circuit, opts: MpsOptions) -> Result<MpsState, SimError> {
        let mut s = MpsState::zero(circuit.n_qubits().max(1), opts);
        s.apply_circuit(circuit)?;
        Ok(s)
    }

    /// Register width.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The truncation policy in force.
    pub fn options(&self) -> MpsOptions {
        self.opts
    }

    /// Cumulative discarded weight `Σ ε_i` over every truncation so far
    /// (exactly `0.0` when no bond ever exceeded
    /// [`MpsOptions::max_bond`]).
    pub fn discarded_weight(&self) -> f64 {
        self.discarded
    }

    /// Accumulated truncation error in the 2-norm, `Σ √(2 ε_i)`: an upper
    /// bound on `‖ψ_mps − ψ_exact‖`. Exactly `0.0` when nothing was ever
    /// truncated.
    pub fn truncation_norm_error(&self) -> f64 {
        self.norm_error
    }

    /// The certified fidelity bound against the untruncated evolution:
    /// with `D = Σ √(2 ε_i)` (see [`MpsState::truncation_norm_error`]),
    /// `|⟨ψ_exact|ψ_mps⟩|² ≥ (1 − D²/2)²`, clamped at zero. Truncation
    /// errors compound in norm across successive cuts, so the bound is on
    /// `D`, not on the raw discarded weight.
    pub fn fidelity_lower_bound(&self) -> f64 {
        let c = 1.0 - self.norm_error * self.norm_error / 2.0;
        c.max(0.0).powi(2)
    }

    /// Largest bond dimension any cut reached during the evolution.
    pub fn max_bond_used(&self) -> usize {
        self.max_bond_used
    }

    /// Adjacent SWAP gates the non-adjacent-gate transport network
    /// applied (each one is a tracked, truncating two-site update).
    pub fn swaps_applied(&self) -> u64 {
        self.swaps
    }

    /// Applies a 2×2 unitary to qubit `q`.
    ///
    /// 1Q gates act on a single physical leg, so they never change bond
    /// dimensions, never truncate, and preserve the canonical gauge.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] for a bad index.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not 2×2.
    pub fn apply_1q(&mut self, g: &CMat, q: usize) -> Result<(), SimError> {
        if q >= self.n {
            return Err(SimError::QubitOutOfRange {
                qubit: q,
                width: self.n,
            });
        }
        assert_eq!((g.rows(), g.cols()), (2, 2));
        let site = &mut self.sites[q];
        let (dl, dr) = (site.dl, site.dr);
        let mut out = vec![C64::ZERO; site.data.len()];
        for l in 0..dl {
            for r in 0..dr {
                let a0 = site.data[(l * 2) * dr + r];
                let a1 = site.data[(l * 2 + 1) * dr + r];
                out[(l * 2) * dr + r] = g[(0, 0)] * a0 + g[(0, 1)] * a1;
                out[(l * 2 + 1) * dr + r] = g[(1, 0)] * a0 + g[(1, 1)] * a1;
            }
        }
        site.data = out;
        Ok(())
    }

    /// Applies a 4×4 unitary to qubits `(a, b)` with `a` as the high bit.
    ///
    /// Adjacent pairs are one two-site update; non-adjacent pairs run the
    /// tracked swap network (move together, apply, move back).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::QubitOutOfRange`] or
    /// [`SimError::DuplicateQubit`] for bad indices, and
    /// [`SimError::TruncationBudgetExceeded`] when a truncation pushes the
    /// cumulative discarded weight past the budget.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not 4×4.
    pub fn apply_2q(&mut self, g: &CMat, a: usize, b: usize) -> Result<(), SimError> {
        for q in [a, b] {
            if q >= self.n {
                return Err(SimError::QubitOutOfRange {
                    qubit: q,
                    width: self.n,
                });
            }
        }
        if a == b {
            return Err(SimError::DuplicateQubit(a));
        }
        assert_eq!((g.rows(), g.cols()), (4, 4));
        let (lo, hi) = (a.min(b), a.max(b));
        // Transport `hi` down next to `lo`…
        for s in ((lo + 1)..hi).rev() {
            self.swap_adjacent(s)?;
        }
        // …apply with the right operand orientation (the gate treats `a`
        // as the high bit; the left site of the pair is the high bit of
        // the two-site update)…
        let oriented = if a == lo { g.clone() } else { swap_conj(g) };
        self.apply_2q_adjacent(&oriented, lo)?;
        // …and move everything back so site `i` keeps holding qubit `i`.
        for s in (lo + 1)..hi {
            self.swap_adjacent(s)?;
        }
        Ok(())
    }

    /// Applies every operation of a circuit in order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WidthMismatch`] when the circuit's width
    /// differs from the register's, and propagates gate-application
    /// errors.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        if circuit.n_qubits() != self.n {
            return Err(SimError::WidthMismatch {
                circuit: circuit.n_qubits(),
                state: self.n,
            });
        }
        for op in circuit.ops() {
            match op {
                Op::OneQ { gate, q } => self.apply_1q(&gate.unitary(), *q)?,
                Op::TwoQ { gate, a, b } => self.apply_2q(&gate.unitary(), *a, *b)?,
            }
        }
        Ok(())
    }

    /// The amplitude of one computational basis state, contracted in one
    /// left-to-right pass (`O(n · χ²)` — no exponential blowup).
    ///
    /// # Panics
    ///
    /// Panics if `index` has bits beyond the register width.
    pub fn amplitude(&self, index: usize) -> C64 {
        assert!(
            self.n >= usize::BITS as usize - index.leading_zeros() as usize,
            "basis index out of range"
        );
        let mut v = vec![C64::ONE];
        for q in 0..self.n {
            let bit = (index >> (self.n - 1 - q)) & 1;
            let site = &self.sites[q];
            let mut next = vec![C64::ZERO; site.dr];
            for (l, &vl) in v.iter().enumerate() {
                for (r, slot) in next.iter_mut().enumerate() {
                    *slot += vl * site.at(l, bit, r);
                }
            }
            v = next;
        }
        v[0]
    }

    /// All `2^n` amplitudes in basis order — the dense cross-check view.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooWide`] beyond
    /// [`MAX_STATE_QUBITS`] qubits (use
    /// [`MpsState::amplitude`] or [`MpsState::overlap`] for wide states).
    pub fn amplitudes(&self) -> Result<Vec<C64>, SimError> {
        if self.n > MAX_STATE_QUBITS {
            return Err(SimError::TooWide {
                qubits: self.n,
                max: MAX_STATE_QUBITS,
            });
        }
        Ok((0..1usize << self.n).map(|i| self.amplitude(i)).collect())
    }

    /// `⟨self|other⟩`, contracted site by site through the transfer
    /// matrix (`O(n · χ⁴)` — tractable at any width).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn overlap(&self, other: &MpsState) -> C64 {
        assert_eq!(self.n, other.n, "width mismatch");
        // E[la, lb] = Σ ⟨self prefix | other prefix⟩ over bond indices.
        let mut e = vec![C64::ONE];
        let (mut da, mut db) = (1usize, 1usize);
        for q in 0..self.n {
            let sa = &self.sites[q];
            let sb = &other.sites[q];
            let mut next = vec![C64::ZERO; sa.dr * sb.dr];
            for la in 0..da {
                for lb in 0..db {
                    let elb = e[la * db + lb];
                    if elb == C64::ZERO {
                        continue;
                    }
                    for p in 0..2 {
                        for ra in 0..sa.dr {
                            let aj = sa.at(la, p, ra).conj() * elb;
                            if aj == C64::ZERO {
                                continue;
                            }
                            for rb in 0..sb.dr {
                                next[ra * sb.dr + rb] += aj * sb.at(lb, p, rb);
                            }
                        }
                    }
                }
            }
            e = next;
            da = sa.dr;
            db = sb.dr;
        }
        e[0]
    }

    /// `|⟨self|other⟩|²`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn fidelity(&self, other: &MpsState) -> f64 {
        self.overlap(other).norm_sqr()
    }

    /// State norm (stays 1 under unitary evolution; truncations
    /// renormalize, so it stays 1 through those too).
    pub fn norm(&self) -> f64 {
        self.overlap(self).norm().sqrt()
    }

    /// Relabels qubits in place: `perm[logical] = physical`, with the
    /// same semantics as [`State::permute`](crate::State::permute) —
    /// afterwards logical qubit `l`'s state sits at site `l`.
    ///
    /// Realized as a network of tracked adjacent SWAPs (a selection sort
    /// over the chain), so on a truncating state the transport cost is
    /// counted in the discarded weight like any other update.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadPermutation`] if `perm` is not a
    /// permutation of `0..n` (state untouched), and propagates
    /// [`SimError::TruncationBudgetExceeded`] from the swap network.
    pub fn permute(&mut self, perm: &[usize]) -> Result<(), SimError> {
        if perm.len() != self.n {
            return Err(SimError::BadPermutation);
        }
        let mut seen = vec![false; self.n];
        for &p in perm {
            if p >= self.n || seen[p] {
                return Err(SimError::BadPermutation);
            }
            seen[p] = true;
        }
        // site_of[c] = chain position currently holding original qubit c.
        let mut site_of: Vec<usize> = (0..self.n).collect();
        let mut content_at: Vec<usize> = (0..self.n).collect();
        for (l, &want) in perm.iter().enumerate() {
            // Final site l must hold the qubit currently at position
            // perm[l] of the *original* labeling.
            let mut j = site_of[want];
            while j > l {
                self.swap_adjacent(j - 1)?;
                let other = content_at[j - 1];
                content_at.swap(j - 1, j);
                site_of[want] = j - 1;
                site_of[other] = j;
                j -= 1;
            }
        }
        Ok(())
    }

    /// Swaps the contents of sites `s` and `s + 1` with an explicit SWAP
    /// application, counting it in [`MpsState::swaps_applied`].
    fn swap_adjacent(&mut self, s: usize) -> Result<(), SimError> {
        self.swaps += 1;
        self.apply_2q_adjacent(&swap4(), s)
    }

    /// Moves the orthogonality center to `target` by exact SVD sweeps
    /// (no truncation: only exactly-zero singular values are dropped).
    fn move_center_to(&mut self, target: usize) {
        while self.center < target {
            let s = self.center;
            let site = &self.sites[s];
            let (dl, dr) = (site.dl, site.dr);
            let m = CMat::from_fn(dl * 2, dr, |i, j| site.data[i * dr + j]);
            let f = svd(&m).expect("Jacobi SVD converges on MPS tensors");
            let k = positive_rank(&f.s);
            // Site ← U (left-canonical), carry S·V† into the next site.
            self.sites[s] = Site {
                dl,
                dr: k,
                data: (0..dl * 2)
                    .flat_map(|i| (0..k).map(move |j| (i, j)))
                    .map(|(i, j)| f.u[(i, j)])
                    .collect(),
            };
            let next = &self.sites[s + 1];
            let (ndl, ndr) = (next.dl, next.dr);
            let mut data = vec![C64::ZERO; k * 2 * ndr];
            for i in 0..k {
                for x in 0..ndl {
                    let c = f.vt[(i, x)].scale(f.s[i]);
                    if c == C64::ZERO {
                        continue;
                    }
                    for p in 0..2 {
                        for r in 0..ndr {
                            data[(i * 2 + p) * ndr + r] += c * next.at(x, p, r);
                        }
                    }
                }
            }
            self.sites[s + 1] = Site {
                dl: k,
                dr: ndr,
                data,
            };
            self.center += 1;
        }
        while self.center > target {
            let s = self.center;
            let site = &self.sites[s];
            let (dl, dr) = (site.dl, site.dr);
            let m = CMat::from_fn(dl, 2 * dr, |i, j| site.data[(i * 2 + j / dr) * dr + j % dr]);
            let f = svd(&m).expect("Jacobi SVD converges on MPS tensors");
            let k = positive_rank(&f.s);
            // Site ← V† (right-canonical), carry U·S into the previous site.
            self.sites[s] = Site {
                dl: k,
                dr,
                data: (0..k)
                    .flat_map(|i| (0..2 * dr).map(move |j| (i, j)))
                    .map(|(i, j)| f.vt[(i, j)])
                    .collect(),
            };
            let prev = &self.sites[s - 1];
            let (pdl, pdr) = (prev.dl, prev.dr);
            let mut data = vec![C64::ZERO; pdl * 2 * k];
            for x in 0..pdr {
                for j in 0..k {
                    let c = f.u[(x, j)].scale(f.s[j]);
                    if c == C64::ZERO {
                        continue;
                    }
                    for l in 0..pdl {
                        for p in 0..2 {
                            data[(l * 2 + p) * k + j] += prev.at(l, p, x) * c;
                        }
                    }
                }
            }
            self.sites[s - 1] = Site {
                dl: pdl,
                dr: k,
                data,
            };
            self.center -= 1;
        }
    }

    /// The core two-site update on sites `(s, s + 1)`, with `g`'s high
    /// bit on the *left* site: contract, apply, split by SVD, truncate to
    /// the bond cap, renormalize, and charge the discarded weight to the
    /// budget.
    fn apply_2q_adjacent(&mut self, g: &CMat, s: usize) -> Result<(), SimError> {
        self.move_center_to(s);
        let left = &self.sites[s];
        let right = &self.sites[s + 1];
        let (dl, mid, dr) = (left.dl, left.dr, right.dr);
        debug_assert_eq!(mid, right.dl, "bond mismatch inside the chain");

        // θ[l, pa, pb, r], then the gate over the combined physical index.
        let mut theta = vec![C64::ZERO; dl * 4 * dr];
        for l in 0..dl {
            for pa in 0..2 {
                for m in 0..mid {
                    let a = left.at(l, pa, m);
                    if a == C64::ZERO {
                        continue;
                    }
                    for pb in 0..2 {
                        for r in 0..dr {
                            theta[((l * 2 + pa) * 2 + pb) * dr + r] += a * right.at(m, pb, r);
                        }
                    }
                }
            }
        }
        let mut applied = vec![C64::ZERO; dl * 4 * dr];
        for l in 0..dl {
            for r in 0..dr {
                for pout in 0..4 {
                    let mut acc = C64::ZERO;
                    for pin in 0..4 {
                        acc += g[(pout, pin)] * theta[(l * 4 + pin) * dr + r];
                    }
                    applied[(l * 4 + pout) * dr + r] = acc;
                }
            }
        }

        // Split: M[(l, pa), (pb, r)] = θ'[l, pa, pb, r].
        let m = CMat::from_fn(dl * 2, 2 * dr, |i, j| {
            applied[(i * 2 + j / dr) * dr + j % dr]
        });
        let f = svd(&m).expect("Jacobi SVD converges on MPS tensors");
        let full = positive_rank(&f.s);
        let keep = full.min(self.opts.max_bond).max(1);
        let mut scale = 1.0;
        if keep < full {
            let total: f64 = f.s.iter().map(|&x| x * x).sum();
            let kept: f64 = f.s[..keep].iter().map(|&x| x * x).sum();
            let eps = (total - kept) / total;
            self.discarded += eps;
            self.norm_error += (2.0 * eps).sqrt();
            // Renormalize the kept spectrum so the state norm survives
            // the cut; the lost weight is charged to the budget instead.
            scale = (total / kept).sqrt();
        }
        self.max_bond_used = self.max_bond_used.max(keep);

        self.sites[s] = Site {
            dl,
            dr: keep,
            data: (0..dl * 2)
                .flat_map(|i| (0..keep).map(move |j| (i, j)))
                .map(|(i, j)| f.u[(i, j)])
                .collect(),
        };
        self.sites[s + 1] = Site {
            dl: keep,
            dr,
            data: (0..keep)
                .flat_map(|i| (0..2 * dr).map(move |j| (i, j)))
                .map(|(i, j)| f.vt[(i, j)].scale(f.s[i] * scale))
                .collect(),
        };
        self.center = s + 1;

        if self.discarded > self.opts.trunc_tol {
            return Err(SimError::TruncationBudgetExceeded {
                discarded: self.discarded,
                budget: self.opts.trunc_tol,
            });
        }
        Ok(())
    }
}

/// The number of strictly positive singular values (at least 1, so a
/// zero state keeps a well-formed bond).
fn positive_rank(s: &[f64]) -> usize {
    s.iter().take_while(|&&x| x > 0.0).count().max(1)
}

/// The 4×4 SWAP unitary.
fn swap4() -> CMat {
    CMat::from_fn(4, 4, |i, j| {
        let swapped = ((i & 1) << 1) | (i >> 1);
        if swapped == j {
            C64::ONE
        } else {
            C64::ZERO
        }
    })
}

/// `SWAP · g · SWAP`: the same gate with its operands exchanged.
fn swap_conj(g: &CMat) -> CMat {
    let s = swap4();
    s.mul(g).mul(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::State;
    use paradrive_circuit::{benchmarks, OneQ, TwoQ};

    fn assert_matches_dense(c: &Circuit, tol: f64) {
        let dense = State::run(c).unwrap();
        let mps = MpsState::run(c, MpsOptions::exact()).unwrap();
        assert_eq!(mps.discarded_weight(), 0.0);
        for (i, &a) in dense.amplitudes().iter().enumerate() {
            let m = mps.amplitude(i);
            assert!(
                (m - a).norm() < tol,
                "amplitude {i}: mps {m:?} vs dense {a:?}"
            );
        }
    }

    #[test]
    fn bell_pair_matches_dense() {
        let mut c = Circuit::new(2);
        c.push_1q(OneQ::H, 0);
        c.push_2q(TwoQ::Cx, 0, 1);
        assert_matches_dense(&c, 1e-12);
    }

    #[test]
    fn non_adjacent_gates_transport_correctly() {
        let mut c = Circuit::new(5);
        c.push_1q(OneQ::H, 0);
        c.push_2q(TwoQ::Cx, 0, 4);
        c.push_2q(TwoQ::Cx, 4, 1);
        c.push_2q(TwoQ::CPhase(0.7), 3, 0);
        assert_matches_dense(&c, 1e-12);
        let mps = MpsState::run(&c, MpsOptions::exact()).unwrap();
        assert!(mps.swaps_applied() > 0, "transport network never engaged");
    }

    #[test]
    fn reversed_operand_orientation_matches_dense() {
        // CX(3, 1): high bit on the right site after transport.
        let mut c = Circuit::new(4);
        c.push_1q(OneQ::H, 3);
        c.push_2q(TwoQ::Cx, 3, 1);
        c.push_1q(OneQ::T, 1);
        c.push_2q(TwoQ::ISwap, 2, 0);
        assert_matches_dense(&c, 1e-12);
    }

    #[test]
    fn qft_matches_dense_exactly() {
        assert_matches_dense(&benchmarks::qft(6), 1e-10);
    }

    #[test]
    fn permute_matches_dense_permute() {
        let c = benchmarks::qaoa(5, 1, 3);
        let perm = vec![2usize, 0, 4, 1, 3];
        let mut dense = State::run(&c).unwrap();
        dense.permute(&perm).unwrap();
        let mut mps = MpsState::run(&c, MpsOptions::exact()).unwrap();
        mps.permute(&perm).unwrap();
        for (i, &a) in dense.amplitudes().iter().enumerate() {
            assert!((mps.amplitude(i) - a).norm() < 1e-10, "amplitude {i}");
        }
    }

    #[test]
    fn bad_permutations_are_rejected_without_touching_state() {
        let mut mps = MpsState::run(&benchmarks::ghz(3), MpsOptions::exact()).unwrap();
        for bad in [vec![0usize, 1], vec![0, 0, 1], vec![0, 1, 9]] {
            assert_eq!(mps.permute(&bad).unwrap_err(), SimError::BadPermutation);
        }
        let amp = mps.amplitude(0b111);
        assert!((amp.norm_sqr() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_of_identical_runs_is_one() {
        let c = benchmarks::vqe_linear(6, 2, 5);
        let a = MpsState::run(&c, MpsOptions::exact()).unwrap();
        let b = MpsState::run(&c, MpsOptions::exact()).unwrap();
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-10);
        assert!((a.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn truncation_budget_fires_deterministically() {
        // A volume-law circuit at bond 2 must blow any tiny budget, at
        // the same gate every time.
        let c = benchmarks::quantum_volume(8, 8, 3);
        let opts = MpsOptions::default().max_bond(2).trunc_tol(1e-9);
        let e1 = MpsState::run(&c, opts).unwrap_err();
        let e2 = MpsState::run(&c, opts).unwrap_err();
        assert_eq!(e1, e2, "budget failure is not deterministic");
        match e1 {
            SimError::TruncationBudgetExceeded { discarded, budget } => {
                assert!(discarded > budget);
                assert_eq!(budget, 1e-9);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn truncated_run_reports_an_honest_fidelity_bound() {
        let c = benchmarks::qaoa(8, 2, 7);
        let opts = MpsOptions::exact().max_bond(6);
        let mps = MpsState::run(&c, opts).unwrap();
        let dense = State::run(&c).unwrap();
        let mut overlap = C64::ZERO;
        for (i, &a) in dense.amplitudes().iter().enumerate() {
            overlap += a.conj() * mps.amplitude(i);
        }
        let f = overlap.norm_sqr();
        let bound = mps.fidelity_lower_bound();
        assert!(
            f + 1e-12 >= bound,
            "true fidelity {f} violates the certified bound {bound}"
        );
        assert!(mps.max_bond_used() <= 6);
    }

    #[test]
    fn wide_states_refuse_dense_readout_but_answer_amplitudes() {
        let c = benchmarks::ghz(30);
        let mps = MpsState::run(&c, MpsOptions::exact()).unwrap();
        assert!(matches!(
            mps.amplitudes().unwrap_err(),
            SimError::TooWide { qubits: 30, .. }
        ));
        assert!((mps.amplitude(0).norm_sqr() - 0.5).abs() < 1e-12);
        assert!((mps.amplitude((1 << 30) - 1).norm_sqr() - 0.5).abs() < 1e-12);
        assert_eq!(mps.max_bond_used(), 2);
    }

    #[test]
    fn gate_errors_match_state_semantics() {
        let mut mps = MpsState::zero(3, MpsOptions::default());
        let g2 = paradrive_linalg::paulis::x();
        assert!(matches!(
            mps.apply_1q(&g2, 3).unwrap_err(),
            SimError::QubitOutOfRange { qubit: 3, width: 3 }
        ));
        let g4 = swap4();
        assert_eq!(
            mps.apply_2q(&g4, 1, 1).unwrap_err(),
            SimError::DuplicateQubit(1)
        );
        assert!(matches!(
            mps.apply_2q(&g4, 0, 5).unwrap_err(),
            SimError::QubitOutOfRange { qubit: 5, width: 3 }
        ));
        let mut c = Circuit::new(2);
        c.push_1q(OneQ::H, 0);
        assert!(matches!(
            mps.apply_circuit(&c).unwrap_err(),
            SimError::WidthMismatch {
                circuit: 2,
                state: 3
            }
        ));
    }
}

use paradrive_circuit::{Circuit, OneQ, TwoQ};
use paradrive_sim::{KernelPath, State};
use std::time::Instant;

fn time_circuit(c: &Circuit, label: &str) {
    let n = c.n_qubits();
    let mut ms = [0.0f64; 2];
    for (i, path) in [KernelPath::Scalar, KernelPath::Lanes]
        .into_iter()
        .enumerate()
    {
        let mut st = State::zero(n);
        st.apply_circuit_with(c, path).unwrap(); // warm
        let t = Instant::now();
        for _ in 0..3 {
            st.apply_circuit_with(c, path).unwrap();
        }
        ms[i] = t.elapsed().as_secs_f64() * 1e3 / 3.0;
    }
    println!(
        "{label}: scalar {:.1} ms, lanes {:.1} ms, speedup {:.2}x",
        ms[0],
        ms[1],
        ms[0] / ms[1]
    );
}

fn main() {
    let n = 20;
    println!(
        "detected: {:?}, lanes_available: {}",
        KernelPath::detected(),
        paradrive_sim::lanes_available()
    );

    // The mixed workload (what PR 5's scalar path ran).
    let mut mixed = Circuit::new(n);
    for q in 0..n {
        mixed.push_1q(OneQ::H, q);
    }
    for a in 0..n - 1 {
        mixed.push_2q(TwoQ::Cx, a, a + 1);
    }
    for q in 0..n {
        mixed.push_1q(OneQ::Rz(0.3), q);
    }
    for a in (0..n - 1).step_by(2) {
        mixed.push_2q(TwoQ::ISwap, a, a + 1);
    }
    time_circuit(&mixed, "mixed   ");

    // 1Q-only, contiguous-run regime (bit >= 4 i.e. q <= n-5).
    let mut q1_hi = Circuit::new(n);
    for _ in 0..4 {
        for q in 0..n - 4 {
            q1_hi.push_1q(OneQ::H, q);
        }
    }
    time_circuit(&q1_hi, "1q high ");

    // 1Q-only, strided low bits (q in n-4..n).
    let mut q1_lo = Circuit::new(n);
    for _ in 0..16 {
        for q in n - 4..n {
            q1_lo.push_1q(OneQ::H, q);
        }
    }
    time_circuit(&q1_lo, "1q low  ");

    // 2Q-only, contiguous regime (both bits >= 4).
    let mut q2_hi = Circuit::new(n);
    for _ in 0..2 {
        for a in 0..n - 6 {
            q2_hi.push_2q(TwoQ::Cx, a, a + 1);
        }
    }
    time_circuit(&q2_hi, "2q high ");

    // 2Q-only, small-bit fallback regime.
    let mut q2_lo = Circuit::new(n);
    for _ in 0..9 {
        for a in n - 4..n - 1 {
            q2_lo.push_2q(TwoQ::Cx, a, a + 1);
        }
    }
    time_circuit(&q2_lo, "2q low  ");
}

//! The paper's benchmark workload suite (Section IV-B, Table VII).
//!
//! All generators target 16 qubits by default — the size the paper maps
//! onto its 4×4 square-lattice topology — but accept arbitrary widths for
//! testing. Gate-level constructions follow the standard textbook circuits;
//! Toffolis are emitted pre-decomposed into {CX, H, T} so the IR stays
//! strictly 1Q + 2Q.

use crate::ir::{Circuit, OneQ, Qubit, TwoQ};
use paradrive_linalg::qr::random_unitary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// Quantum Fourier Transform with final bit-reversal SWAPs.
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for i in 0..n {
        c.push_1q(OneQ::H, i);
        for j in (i + 1)..n {
            let theta = PI / (1u64 << (j - i)) as f64;
            c.push_2q(TwoQ::CPhase(theta), j, i);
        }
    }
    for i in 0..n / 2 {
        c.push_2q(TwoQ::Swap, i, n - 1 - i);
    }
    c
}

/// GHZ-state preparation: `H` then a CX chain.
pub fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.push_1q(OneQ::H, 0);
    for i in 0..n - 1 {
        c.push_2q(TwoQ::Cx, i, i + 1);
    }
    c
}

/// QAOA for MaxCut on a random 3-regular-ish graph (ring plus random
/// chords), with `p` alternating cost/mixer layers.
pub fn qaoa(n: usize, p: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(Qubit, Qubit)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    // Random chords to approximate degree 3.
    let mut chords = 0;
    let mut guard = 0;
    while chords < n / 2 && guard < 10 * n {
        guard += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
            edges.push((a.min(b), a.max(b)));
            chords += 1;
        }
    }

    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push_1q(OneQ::H, q);
    }
    for layer in 0..p {
        let gamma = 0.4 + 0.17 * layer as f64;
        let beta = 0.9 - 0.23 * layer as f64;
        for &(a, b) in &edges {
            c.push_2q(TwoQ::Rzz(2.0 * gamma), a, b);
        }
        for q in 0..n {
            c.push_1q(OneQ::Rx(2.0 * beta), q);
        }
    }
    c
}

/// Hidden Linear Function: `H⊗n · U_q · H⊗n` where `U_q` applies CZ on the
/// edges of a random symmetric adjacency and `S` on a random diagonal.
pub fn hidden_linear_function(n: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push_1q(OneQ::H, q);
    }
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(0.25) {
                c.push_2q(TwoQ::Cz, a, b);
            }
        }
    }
    for q in 0..n {
        if rng.gen_bool(0.5) {
            c.push_1q(OneQ::S, q);
        }
    }
    for q in 0..n {
        c.push_1q(OneQ::H, q);
    }
    c
}

/// Emits a Toffoli (CCX) decomposed into the standard 6-CX network.
fn push_toffoli(c: &mut Circuit, ctrl1: Qubit, ctrl2: Qubit, target: Qubit) {
    c.push_1q(OneQ::H, target);
    c.push_2q(TwoQ::Cx, ctrl2, target);
    c.push_1q(OneQ::Tdg, target);
    c.push_2q(TwoQ::Cx, ctrl1, target);
    c.push_1q(OneQ::T, target);
    c.push_2q(TwoQ::Cx, ctrl2, target);
    c.push_1q(OneQ::Tdg, target);
    c.push_2q(TwoQ::Cx, ctrl1, target);
    c.push_1q(OneQ::T, ctrl2);
    c.push_1q(OneQ::T, target);
    c.push_1q(OneQ::H, target);
    c.push_2q(TwoQ::Cx, ctrl1, ctrl2);
    c.push_1q(OneQ::T, ctrl1);
    c.push_1q(OneQ::Tdg, ctrl2);
    c.push_2q(TwoQ::Cx, ctrl1, ctrl2);
}

/// Cuccaro ripple-carry adder on two `k`-bit registers with carry-in and
/// carry-out, totalling `2k + 2` qubits (`k = 7` gives the 16-qubit
/// benchmark).
///
/// Layout: `[cin, a0, b0, a1, b1, …, a(k-1), b(k-1), cout]`.
pub fn adder(k: usize) -> Circuit {
    let n = 2 * k + 2;
    let mut c = Circuit::new(n);
    let a = |i: usize| 1 + 2 * i;
    let b = |i: usize| 2 + 2 * i;
    let cin = 0;
    let cout = n - 1;

    // MAJ cascade.
    let maj = |c: &mut Circuit, x: Qubit, y: Qubit, z: Qubit| {
        c.push_2q(TwoQ::Cx, z, y);
        c.push_2q(TwoQ::Cx, z, x);
        push_toffoli(c, x, y, z);
    };
    let uma = |c: &mut Circuit, x: Qubit, y: Qubit, z: Qubit| {
        push_toffoli(c, x, y, z);
        c.push_2q(TwoQ::Cx, z, x);
        c.push_2q(TwoQ::Cx, x, y);
    };

    maj(&mut c, cin, b(0), a(0));
    for i in 1..k {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.push_2q(TwoQ::Cx, a(k - 1), cout);
    for i in (1..k).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, cin, b(0), a(0));
    c
}

/// QFT-based multiplier: `out += a × b` with `a`, `b` of `k` bits and a
/// `2k`-bit product register (`k = 4` gives the 16-qubit benchmark).
///
/// Doubly-controlled phases are decomposed into five 2Q controlled-phase
/// gates and two CX — the deep, CPhase-heavy workload of the paper's
/// Table VII.
pub fn multiplier(k: usize) -> Circuit {
    let n = 4 * k;
    let mut c = Circuit::new(n);
    let a = |i: usize| i;
    let b = |i: usize| k + i;
    let out = |i: usize| 2 * k + i;
    let out_bits = 2 * k;

    // QFT on the product register (no swaps needed for the arithmetic).
    for i in 0..out_bits {
        c.push_1q(OneQ::H, out(i));
        for j in (i + 1)..out_bits {
            let theta = PI / (1u64 << (j - i)) as f64;
            c.push_2q(TwoQ::CPhase(theta), out(j), out(i));
        }
    }

    // Doubly-controlled phase rotations: for each partial product a_i·b_j,
    // rotate out bit m by π·2^{i+j-m}·... (standard weighted phase ladder).
    let ccphase = |c: &mut Circuit, theta: f64, c1: Qubit, c2: Qubit, t: Qubit| {
        c.push_2q(TwoQ::CPhase(theta / 2.0), c2, t);
        c.push_2q(TwoQ::Cx, c1, c2);
        c.push_2q(TwoQ::CPhase(-theta / 2.0), c2, t);
        c.push_2q(TwoQ::Cx, c1, c2);
        c.push_2q(TwoQ::CPhase(theta / 2.0), c1, t);
    };
    for i in 0..k {
        for j in 0..k {
            let weight = i + j;
            for m in weight..out_bits {
                let theta = PI / (1u64 << (m - weight)) as f64;
                ccphase(&mut c, theta, a(i), b(j), out(m));
            }
        }
    }

    // Inverse QFT on the product register.
    for i in (0..out_bits).rev() {
        for j in ((i + 1)..out_bits).rev() {
            let theta = -PI / (1u64 << (j - i)) as f64;
            c.push_2q(TwoQ::CPhase(theta), out(j), out(i));
        }
        c.push_1q(OneQ::H, out(i));
    }
    c
}

/// Hardware-efficient VQE ansatz with linear-chain entanglement.
pub fn vqe_linear(n: usize, layers: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..layers {
        for q in 0..n {
            c.push_1q(OneQ::Ry(rng.gen_range(0.0..PI)), q);
        }
        for q in 0..n - 1 {
            c.push_2q(TwoQ::Cx, q, q + 1);
        }
    }
    for q in 0..n {
        c.push_1q(OneQ::Ry(rng.gen_range(0.0..PI)), q);
    }
    c
}

/// Hardware-efficient VQE ansatz with full (all-to-all) entanglement.
pub fn vqe_full(n: usize, layers: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..layers {
        for q in 0..n {
            c.push_1q(OneQ::Ry(rng.gen_range(0.0..PI)), q);
        }
        for a in 0..n {
            for b in (a + 1)..n {
                c.push_2q(TwoQ::Cx, a, b);
            }
        }
    }
    for q in 0..n {
        c.push_1q(OneQ::Ry(rng.gen_range(0.0..PI)), q);
    }
    c
}

/// Quantum Volume model circuit: `depth` layers of a random qubit
/// permutation followed by Haar-random SU(4) blocks on adjacent pairs.
pub fn quantum_volume(n: usize, depth: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..depth {
        let mut perm: Vec<Qubit> = (0..n).collect();
        // Fisher–Yates shuffle.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        for pair in perm.chunks_exact(2) {
            let u = random_unitary(4, &mut rng);
            c.push_2q(TwoQ::Unitary(Box::new(u)), pair[0], pair[1]);
        }
    }
    c
}

/// QAOA for MaxCut on a *star* graph: every cost edge couples the hub
/// (qubit 0) to one leaf, so almost every two-qubit gate is long-range on
/// any planar topology — the stress case for swap networks and for the
/// MPS oracle's transport cost. The star is also what keeps wide
/// instances *verifiable*: conditioned on the hub the cost layer is a
/// product of single-qubit phases, so the state's Schmidt rank stays ≤ 2
/// across **any** bipartition — including the scrambled positional cuts a
/// routed layout induces — no matter how wide the register. Per-edge
/// angles are seed-jittered so no two edges commute to the same phase.
pub fn long_range_qaoa(n: usize, p: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push_1q(OneQ::H, q);
    }
    for layer in 0..p {
        let gamma = 0.4 + 0.17 * layer as f64;
        let beta = 0.9 - 0.23 * layer as f64;
        for leaf in 1..n {
            let jitter = rng.gen_range(-0.05..0.05);
            c.push_2q(TwoQ::Rzz(2.0 * gamma + jitter), 0, leaf);
        }
        for q in 0..n {
            c.push_1q(OneQ::Rx(2.0 * beta), q);
        }
    }
    c
}

/// One benchmark instance: a name and its circuit.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Display name matching the paper's Table VII rows.
    pub name: &'static str,
    /// The generated circuit.
    pub circuit: Circuit,
}

/// The paper's Table VII workload suite at 16 qubits.
pub fn standard_suite(seed: u64) -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "QV",
            circuit: quantum_volume(16, 16, seed),
        },
        Benchmark {
            name: "VQE_L",
            circuit: vqe_linear(16, 1, seed),
        },
        Benchmark {
            name: "GHZ",
            circuit: ghz(16),
        },
        Benchmark {
            name: "HLF",
            circuit: hidden_linear_function(16, seed),
        },
        Benchmark {
            name: "QFT",
            circuit: qft(16),
        },
        Benchmark {
            name: "Adder",
            circuit: adder(7),
        },
        Benchmark {
            name: "QAOA",
            circuit: qaoa(16, 2, seed),
        },
        Benchmark {
            name: "VQE_F",
            circuit: vqe_full(16, 2, seed),
        },
        Benchmark {
            name: "Multiplier",
            circuit: multiplier(4),
        },
    ]
}

/// The wide-circuit family: 64-qubit workloads far beyond the dense
/// oracle's reach, exercised by the matrix-product-state verification
/// path. `QFT_64` is bond-trivial from `|0…0⟩` but swap-heavy once
/// routed; `QAOA_LR` forces long-range entangling gates across the whole
/// register.
pub fn wide_suite(seed: u64) -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "QFT_64",
            circuit: qft(64),
        },
        Benchmark {
            name: "QAOA_LR",
            circuit: long_range_qaoa(64, 1, seed),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qft_structure() {
        let c = qft(5);
        // 5 H, C(5,2)=10 CPhase, 2 SWAPs.
        assert_eq!(c.one_q_count(), 5);
        assert_eq!(c.two_q_count(), 10 + 2);
    }

    #[test]
    fn ghz_structure() {
        let c = ghz(16);
        assert_eq!(c.one_q_count(), 1);
        assert_eq!(c.two_q_count(), 15);
        assert_eq!(c.depth(), 16);
    }

    #[test]
    fn qaoa_has_cost_and_mixer_layers() {
        let c = qaoa(8, 2, 1);
        // Ring has 8 edges; plus up to 4 chords; times 2 layers.
        assert!(c.two_q_count() >= 16);
        // Mixer RX gates: 8 per layer plus initial 8 H.
        assert!(c.one_q_count() >= 24);
    }

    #[test]
    fn adder_is_16_qubits_at_k7() {
        let c = adder(7);
        assert_eq!(c.n_qubits(), 16);
        // Each MAJ/UMA has a Toffoli (6 CX) + 2 CX → 8 CX; 2k blocks + 1.
        assert!(c.two_q_count() >= 7 * 2 * 8);
    }

    #[test]
    fn multiplier_is_16_qubits_at_k4() {
        let c = multiplier(4);
        assert_eq!(c.n_qubits(), 16);
        // Deep CPhase-heavy circuit, the paper's heaviest workload.
        assert!(c.two_q_count() > 400, "count {}", c.two_q_count());
    }

    #[test]
    fn vqe_variants_scale() {
        let lin = vqe_linear(16, 1, 3);
        let full = vqe_full(16, 2, 3);
        assert_eq!(lin.two_q_count(), 15);
        assert_eq!(full.two_q_count(), 2 * (16 * 15) / 2);
        assert!(full.two_q_count() > lin.two_q_count());
    }

    #[test]
    fn quantum_volume_blocks() {
        let c = quantum_volume(16, 16, 9);
        assert_eq!(c.two_q_count(), 16 * 8);
        // All blocks are valid unitaries (checked on push via weyl_point).
        for op in c.ops() {
            if let crate::ir::Op::TwoQ { gate, .. } = op {
                assert!(gate.unitary().is_unitary(1e-9));
            }
        }
    }

    #[test]
    fn standard_suite_shape() {
        let suite = standard_suite(7);
        assert_eq!(suite.len(), 9);
        for b in &suite {
            assert_eq!(b.circuit.n_qubits(), 16, "{} has wrong width", b.name);
            assert!(b.circuit.two_q_count() > 0);
        }
        // Multiplier is the deepest workload, as in the paper.
        let count = |name: &str| {
            suite
                .iter()
                .find(|b| b.name == name)
                .unwrap()
                .circuit
                .two_q_count()
        };
        assert!(count("Multiplier") > count("QFT"));
        assert!(count("VQE_F") > count("VQE_L"));
    }

    #[test]
    fn long_range_qaoa_spans_the_register() {
        let c = long_range_qaoa(64, 1, 7);
        assert_eq!(c.n_qubits(), 64);
        // Star: one hub edge per leaf per layer.
        assert_eq!(c.two_q_count(), 63);
        // Most edges are genuinely long-range (span > half the register).
        let long = c
            .ops()
            .iter()
            .filter(|op| match op {
                crate::ir::Op::TwoQ { a, b, .. } => a.abs_diff(*b) > 32,
                _ => false,
            })
            .count();
        assert!(long >= 31, "only {long} long-range edges in the cost graph");
    }

    #[test]
    fn wide_suite_shape() {
        let suite = wide_suite(7);
        assert_eq!(suite.len(), 2);
        for b in &suite {
            assert_eq!(b.circuit.n_qubits(), 64, "{} has wrong width", b.name);
            assert!(b.circuit.two_q_count() > 0);
        }
    }

    #[test]
    fn toffoli_decomposition_is_correct() {
        // Verify the 6-CX Toffoli against the exact CCX unitary on 3 qubits
        // by brute-force simulation of the small circuit.
        use paradrive_linalg::{CMat, C64};
        let mut c = Circuit::new(3);
        push_toffoli(&mut c, 0, 1, 2);
        // Simulate: embed each op into 8x8.
        let mut u = CMat::identity(8);
        for op in c.ops() {
            let full = match op {
                crate::ir::Op::OneQ { gate, q } => embed1(&gate.unitary(), *q),
                crate::ir::Op::TwoQ { gate, a, b } => embed2(&gate.unitary(), *a, *b),
            };
            u = full.mul(&u);
        }
        // CCX on (0,1 controls, 2 target), qubit 0 = MSB.
        let mut ccx = CMat::identity(8);
        ccx[(6, 6)] = C64::ZERO;
        ccx[(7, 7)] = C64::ZERO;
        ccx[(6, 7)] = C64::ONE;
        ccx[(7, 6)] = C64::ONE;
        let f = paradrive_linalg::mat::process_fidelity(&u, &ccx);
        assert!(f > 1.0 - 1e-9, "Toffoli fidelity {f}");

        fn embed1(g: &CMat, q: usize) -> CMat {
            let id2 = CMat::identity(2);
            let mut m = CMat::identity(1);
            for i in 0..3 {
                m = m.kron(if i == q { g } else { &id2 });
            }
            m
        }
        fn embed2(g: &CMat, a: usize, b: usize) -> CMat {
            // Build by summing basis projections: for 3 qubits only.
            let mut m = CMat::zeros(8, 8);
            for row in 0..8usize {
                for col in 0..8usize {
                    // Extract bits of a,b and the spectator.
                    let bits = |x: usize, q: usize| (x >> (2 - q)) & 1;
                    let spect: Vec<usize> = (0..3).filter(|&q| q != a && q != b).collect();
                    let s = spect[0];
                    if bits(row, s) != bits(col, s) {
                        continue;
                    }
                    let gr = (bits(row, a) << 1) | bits(row, b);
                    let gc = (bits(col, a) << 1) | bits(col, b);
                    m[(row, col)] = g[(gr, gc)];
                }
            }
            m
        }
    }
}

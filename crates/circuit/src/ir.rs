//! The circuit intermediate representation.

use crate::CircuitError;
use paradrive_linalg::{paulis, CMat, C64};
use paradrive_weyl::{gates, WeylPoint};

/// A qubit index within a circuit.
pub type Qubit = usize;

/// One-qubit gate kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OneQ {
    /// Hadamard.
    H,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Phase gate `S`.
    S,
    /// `S†`.
    Sdg,
    /// `T` gate.
    T,
    /// `T†`.
    Tdg,
    /// Rotation about X.
    Rx(f64),
    /// Rotation about Y.
    Ry(f64),
    /// Rotation about Z.
    Rz(f64),
    /// General Euler-angle unitary `U3(θ, φ, λ)`.
    U3(f64, f64, f64),
}

impl OneQ {
    /// The 2×2 unitary of this gate.
    pub fn unitary(self) -> CMat {
        match self {
            OneQ::H => paulis::h(),
            OneQ::X => paulis::x(),
            OneQ::Y => paulis::y(),
            OneQ::Z => paulis::z(),
            OneQ::S => paulis::s(),
            OneQ::Sdg => paulis::s().adjoint(),
            OneQ::T => paulis::t(),
            OneQ::Tdg => paulis::t().adjoint(),
            OneQ::Rx(t) => paulis::rx(t),
            OneQ::Ry(t) => paulis::ry(t),
            OneQ::Rz(t) => paulis::rz(t),
            OneQ::U3(t, p, l) => paulis::u3(t, p, l),
        }
    }

    /// True for gates that are diagonal in the computational basis and can
    /// be realized as zero-duration virtual-Z frame updates.
    pub fn is_virtual_z(self) -> bool {
        matches!(
            self,
            OneQ::Z | OneQ::S | OneQ::Sdg | OneQ::T | OneQ::Tdg | OneQ::Rz(_)
        )
    }
}

/// Two-qubit gate kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TwoQ {
    /// CNOT with the first operand as control.
    Cx,
    /// Controlled-Z.
    Cz,
    /// Controlled phase `diag(1,1,1,e^{iθ})`.
    CPhase(f64),
    /// `RZZ(θ) = exp(-i θ/2 Z⊗Z)` — the QAOA cost-layer gate.
    Rzz(f64),
    /// SWAP.
    Swap,
    /// iSWAP.
    ISwap,
    /// √iSWAP.
    SqrtISwap,
    /// An arbitrary 4×4 unitary (e.g. a Quantum-Volume SU(4) block).
    Unitary(Box<CMat>),
}

impl TwoQ {
    /// The 4×4 unitary of this gate (first operand is the high bit).
    pub fn unitary(&self) -> CMat {
        match self {
            TwoQ::Cx => gates::cnot(),
            TwoQ::Cz => gates::cz(),
            TwoQ::CPhase(t) => gates::cphase(*t),
            TwoQ::Rzz(t) => {
                // exp(-i θ/2 ZZ) = diag(e^{-iθ/2}, e^{iθ/2}, e^{iθ/2}, e^{-iθ/2})
                CMat::diag(&[
                    C64::cis(-t / 2.0),
                    C64::cis(t / 2.0),
                    C64::cis(t / 2.0),
                    C64::cis(-t / 2.0),
                ])
            }
            TwoQ::Swap => gates::swap(),
            TwoQ::ISwap => gates::iswap(),
            TwoQ::SqrtISwap => gates::sqrt_iswap(),
            TwoQ::Unitary(u) => (**u).clone(),
        }
    }

    /// The canonical Weyl-chamber point of this gate.
    ///
    /// # Panics
    ///
    /// Panics if a `Unitary` payload is not a valid 4×4 unitary.
    pub fn weyl_point(&self) -> WeylPoint {
        paradrive_weyl::magic::coordinates(&self.unitary())
            .expect("all IR two-qubit gates are unitary")
    }
}

/// A circuit operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A one-qubit gate.
    OneQ {
        /// Gate kind.
        gate: OneQ,
        /// Target qubit.
        q: Qubit,
    },
    /// A two-qubit gate.
    TwoQ {
        /// Gate kind.
        gate: TwoQ,
        /// First operand (control where applicable).
        a: Qubit,
        /// Second operand.
        b: Qubit,
    },
}

impl Op {
    /// The qubits this operation touches.
    pub fn qubits(&self) -> Vec<Qubit> {
        match self {
            Op::OneQ { q, .. } => vec![*q],
            Op::TwoQ { a, b, .. } => vec![*a, *b],
        }
    }
}

/// A flat, time-ordered quantum circuit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    n_qubits: usize,
    ops: Vec<Op>,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            ops: Vec::new(),
        }
    }

    /// Circuit width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The operations in time order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Appends a one-qubit gate.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range (use [`Circuit::try_push_1q`] to handle
    /// the error).
    pub fn push_1q(&mut self, gate: OneQ, q: Qubit) {
        self.try_push_1q(gate, q).expect("qubit out of range");
    }

    /// Appends a one-qubit gate, checking the qubit index.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] for a bad index.
    pub fn try_push_1q(&mut self, gate: OneQ, q: Qubit) -> Result<(), CircuitError> {
        if q >= self.n_qubits {
            return Err(CircuitError::QubitOutOfRange {
                qubit: q,
                width: self.n_qubits,
            });
        }
        self.ops.push(Op::OneQ { gate, q });
        Ok(())
    }

    /// Appends a two-qubit gate.
    ///
    /// # Panics
    ///
    /// Panics on a bad qubit pair (use [`Circuit::try_push_2q`] to handle
    /// the error).
    pub fn push_2q(&mut self, gate: TwoQ, a: Qubit, b: Qubit) {
        self.try_push_2q(gate, a, b).expect("invalid qubit pair");
    }

    /// Appends a two-qubit gate, checking the qubit indices.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] for out-of-range or duplicate qubits.
    pub fn try_push_2q(&mut self, gate: TwoQ, a: Qubit, b: Qubit) -> Result<(), CircuitError> {
        for q in [a, b] {
            if q >= self.n_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    width: self.n_qubits,
                });
            }
        }
        if a == b {
            return Err(CircuitError::DuplicateQubit(a));
        }
        self.ops.push(Op::TwoQ { gate, a, b });
        Ok(())
    }

    /// Appends all ops of another circuit (widths must match).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn extend(&mut self, other: &Circuit) {
        assert_eq!(self.n_qubits, other.n_qubits, "width mismatch");
        self.ops.extend(other.ops.iter().cloned());
    }

    /// Number of two-qubit gates.
    pub fn two_q_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, Op::TwoQ { .. }))
            .count()
    }

    /// Number of one-qubit gates.
    pub fn one_q_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, Op::OneQ { .. }))
            .count()
    }

    /// Circuit depth counting every gate as one layer (greedy ASAP
    /// scheduling over qubit availability).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.n_qubits];
        let mut depth = 0;
        for op in &self.ops {
            let qs = op.qubits();
            let start = qs.iter().map(|&q| level[q]).max().unwrap_or(0);
            for &q in &qs {
                level[q] = start + 1;
            }
            depth = depth.max(start + 1);
        }
        depth
    }

    /// Histogram of two-qubit Weyl points, bucketed by the named classes of
    /// the paper's Fig. 3b shot chart. Returns `(label, count)` pairs sorted
    /// by descending count.
    pub fn two_q_class_histogram(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for op in &self.ops {
            if let Op::TwoQ { gate, .. } = op {
                let p = gate.weyl_point();
                let label = classify(p);
                *counts.entry(label).or_insert(0) += 1;
            }
        }
        let mut v: Vec<(String, usize)> = counts.into_iter().collect();
        v.sort_by_key(|(_, count)| std::cmp::Reverse(*count));
        v
    }
}

/// Buckets a Weyl point into a named class label for reporting.
fn classify(p: WeylPoint) -> String {
    const TOL: f64 = 1e-6;
    let named = [
        ("I", WeylPoint::IDENTITY),
        ("CNOT", WeylPoint::CNOT),
        ("iSWAP", WeylPoint::ISWAP),
        ("SWAP", WeylPoint::SWAP),
        ("sqrt_iSWAP", WeylPoint::SQRT_ISWAP),
        ("B", WeylPoint::B),
        ("sqrt_CNOT", WeylPoint::SQRT_CNOT),
    ];
    for (name, q) in named {
        if p.chamber_dist(q) < TOL {
            return name.to_string();
        }
    }
    if p.c3 < TOL && p.c2 < TOL {
        return "CNOT-family".to_string();
    }
    if p.c3 < TOL && (p.c1 - p.c2).abs() < TOL {
        return "iSWAP-family".to_string();
    }
    "other".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn push_and_counts() {
        let mut c = Circuit::new(3);
        c.push_1q(OneQ::H, 0);
        c.push_2q(TwoQ::Cx, 0, 1);
        c.push_2q(TwoQ::Swap, 1, 2);
        assert_eq!(c.one_q_count(), 1);
        assert_eq!(c.two_q_count(), 2);
    }

    #[test]
    fn bad_indices_rejected() {
        let mut c = Circuit::new(2);
        assert!(matches!(
            c.try_push_1q(OneQ::X, 5),
            Err(CircuitError::QubitOutOfRange { qubit: 5, width: 2 })
        ));
        assert!(matches!(
            c.try_push_2q(TwoQ::Cx, 0, 0),
            Err(CircuitError::DuplicateQubit(0))
        ));
        assert!(c.try_push_2q(TwoQ::Cx, 0, 3).is_err());
    }

    #[test]
    fn depth_computation() {
        let mut c = Circuit::new(3);
        c.push_1q(OneQ::H, 0); // layer 1 on q0
        c.push_1q(OneQ::H, 1); // layer 1 on q1
        c.push_2q(TwoQ::Cx, 0, 1); // layer 2
        c.push_1q(OneQ::X, 2); // layer 1 on q2
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn gate_unitaries_are_unitary() {
        for g in [
            TwoQ::Cx,
            TwoQ::Cz,
            TwoQ::CPhase(0.3),
            TwoQ::Rzz(1.1),
            TwoQ::Swap,
            TwoQ::ISwap,
            TwoQ::SqrtISwap,
        ] {
            assert!(g.unitary().is_unitary(1e-12), "{g:?}");
        }
        for g in [
            OneQ::H,
            OneQ::S,
            OneQ::T,
            OneQ::Rx(0.7),
            OneQ::U3(0.1, 0.2, 0.3),
        ] {
            assert!(g.unitary().is_unitary(1e-12), "{g:?}");
        }
    }

    #[test]
    fn weyl_points_of_ir_gates() {
        assert!(TwoQ::Cx.weyl_point().approx_eq(WeylPoint::CNOT, 1e-8));
        assert!(TwoQ::Cz.weyl_point().approx_eq(WeylPoint::CNOT, 1e-8));
        assert!(TwoQ::Swap.weyl_point().approx_eq(WeylPoint::SWAP, 1e-8));
        assert!(TwoQ::ISwap.weyl_point().approx_eq(WeylPoint::ISWAP, 1e-8));
        // CP(π) ≅ CZ ≅ CNOT; CP(π/2) is half way down the CNOT family ray.
        assert!(TwoQ::CPhase(PI)
            .weyl_point()
            .approx_eq(WeylPoint::CNOT, 1e-8));
        assert!(TwoQ::CPhase(FRAC_PI_2)
            .weyl_point()
            .approx_eq(WeylPoint::SQRT_CNOT, 1e-8));
        // RZZ(θ) ≅ CAN(θ, 0, 0): RZZ(π/2) is the CNOT class (≅ CZ up to
        // local Z rotations), RZZ(π/4) is √CNOT.
        assert!(TwoQ::Rzz(FRAC_PI_2)
            .weyl_point()
            .approx_eq(WeylPoint::CNOT, 1e-8));
        assert!(TwoQ::Rzz(FRAC_PI_2 / 2.0)
            .weyl_point()
            .approx_eq(WeylPoint::SQRT_CNOT, 1e-8));
    }

    #[test]
    fn virtual_z_classification() {
        assert!(OneQ::Rz(0.3).is_virtual_z());
        assert!(OneQ::S.is_virtual_z());
        assert!(!OneQ::H.is_virtual_z());
        assert!(!OneQ::Rx(0.2).is_virtual_z());
    }

    #[test]
    fn class_histogram() {
        let mut c = Circuit::new(4);
        c.push_2q(TwoQ::Cx, 0, 1);
        c.push_2q(TwoQ::Cz, 1, 2);
        c.push_2q(TwoQ::Swap, 2, 3);
        let h = c.two_q_class_histogram();
        assert_eq!(h[0], ("CNOT".to_string(), 2));
        assert_eq!(h[1], ("SWAP".to_string(), 1));
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Circuit::new(2);
        a.push_1q(OneQ::H, 0);
        let mut b = Circuit::new(2);
        b.push_2q(TwoQ::Cx, 0, 1);
        a.extend(&b);
        assert_eq!(a.ops().len(), 2);
    }
}

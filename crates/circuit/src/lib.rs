//! Quantum circuit IR and benchmark workload generators.
//!
//! The IR is deliberately small: a [`Circuit`] is a flat, time-ordered list
//! of [`Op`]s over `n` qubits — one-qubit gates ([`OneQ`]) and two-qubit
//! gates ([`TwoQ`]). Every gate knows its exact unitary, so downstream
//! passes (consolidation, Weyl-coordinate extraction) are exact rather than
//! symbolic approximations.
//!
//! [`benchmarks`] generates the paper's Table VII workload suite at 16
//! qubits: QFT, QAOA, GHZ, Hidden Linear Function, Adder, Multiplier,
//! VQE (linear and full entanglement) and Quantum Volume.
//!
//! # Example
//!
//! ```
//! use paradrive_circuit::{Circuit, OneQ, TwoQ};
//!
//! let mut c = Circuit::new(2);
//! c.push_1q(OneQ::H, 0);
//! c.push_2q(TwoQ::Cx, 0, 1);
//! assert_eq!(c.two_q_count(), 1);
//! assert_eq!(c.depth(), 2);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
mod ir;

pub use ir::{Circuit, OneQ, Op, Qubit, TwoQ};

/// Errors produced when constructing circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A gate referenced a qubit index at or beyond the circuit width.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The circuit width.
        width: usize,
    },
    /// A two-qubit gate was applied to the same qubit twice.
    DuplicateQubit(usize),
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, width } => {
                write!(f, "qubit {qubit} out of range for width {width}")
            }
            CircuitError::DuplicateQubit(q) => {
                write!(f, "two-qubit gate applied twice to qubit {q}")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

//! Shape checks for the execution trace every [`run_batch`] carries: one
//! span per pipeline stage per job, per-shard cache counters, and a
//! Chrome trace-event export that parses back as balanced B/E pairs.

use paradrive_circuit::benchmarks;
use paradrive_engine::{run_batch, Batch, EngineConfig, VerifyLevel};
use paradrive_obs::json::{self, Value};
use paradrive_transpiler::topology::CouplingMap;

const SEEDS: u64 = 3;

fn smoke_report() -> &'static paradrive_engine::EngineReport {
    static REPORT: std::sync::OnceLock<paradrive_engine::EngineReport> = std::sync::OnceLock::new();
    REPORT.get_or_init(|| {
        let mut batch = Batch::new(CouplingMap::grid(3, 3));
        batch.push("GHZ", benchmarks::ghz(6));
        batch.push("QFT", benchmarks::qft(5));
        let config = EngineConfig::default()
            .threads(2)
            .routing_seeds(SEEDS)
            .verify(VerifyLevel::Sampled)
            .verify_samples(2);
        run_batch(&batch, &config).expect("smoke batch")
    })
}

#[test]
fn every_job_gets_every_pipeline_stage_span() {
    let report = smoke_report();
    let trace = &report.trace;

    for job in 0..2u64 {
        // Routing fans out per seed; the back-half stages run once.
        for (stage, want) in [
            ("route", SEEDS as usize),
            ("select", 1),
            ("consolidate", 1),
            ("verify", 1),
            ("schedule", 1),
        ] {
            let n = trace
                .spans
                .iter()
                .filter(|s| s.name == stage && s.key == job)
                .count();
            assert_eq!(n, want, "job {job}: {stage} spans");
        }
    }
    // Route spans carry their seed in the label; back-half spans carry
    // the job name.
    assert!(trace
        .spans
        .iter()
        .filter(|s| s.name == "route")
        .all(|s| s.label.contains('#')));
    assert!(trace
        .spans
        .iter()
        .any(|s| s.name == "schedule" && s.label == "GHZ"));

    // Per-shard cache counters are present for both passes, and the
    // sharded split sums back to the deterministic totals.
    let stats = report.cache_stats().expect("cache on");
    for prefix in ["cache.baseline", "cache.optimized"] {
        for kind in ["hits", "misses", "inserts", "wait_ns"] {
            assert!(
                trace
                    .counters
                    .iter()
                    .any(|(name, _)| name.starts_with(prefix) && name.ends_with(kind)),
                "missing {prefix}.*.{kind} counters"
            );
        }
    }
    let shard_hits: u64 = trace
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("cache.") && name.ends_with(".hits"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(shard_hits, stats.hits, "sharded hits disagree with totals");

    // Pipeline counters made it out of the workers.
    assert_eq!(
        trace.counter("route.seed_attempts"),
        Some(2 * SEEDS),
        "one seed attempt per (job, seed)"
    );
    assert!(trace.counter("verify.samples").unwrap_or(0) > 0);
}

#[test]
fn chrome_export_parses_back_with_balanced_begin_end_pairs() {
    let report = smoke_report();
    let text = report.trace.to_chrome_json();
    let root = json::parse(&text).expect("chrome trace is valid JSON");

    let events = root
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Replay the B/E edges per tid: every end must close the span the
    // stack says is open, and every stack must drain.
    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> = Default::default();
    let mut completed = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).expect("ph");
        let tid = ev.get("tid").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        match ph {
            "B" => {
                let name = ev.get("name").and_then(Value::as_str).expect("B name");
                assert!(ev.get("ts").and_then(Value::as_f64).is_some(), "B ts");
                stacks.entry(tid).or_default().push(name.to_string());
            }
            "E" => {
                stacks
                    .entry(tid)
                    .or_default()
                    .pop()
                    .expect("E without matching B");
                completed += 1;
            }
            "M" | "C" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(stacks.values().all(Vec::is_empty), "unclosed spans");
    assert_eq!(completed, report.trace.spans.len());

    // Counter events made it into the export too.
    assert!(events
        .iter()
        .any(|ev| ev.get("ph").and_then(Value::as_str) == Some("C")));
}

//! The fleet re-transpilation policy layer: replaying a drifting
//! calibration timeline as a sequence of epochs.
//!
//! A routing that was optimal at calibration time silently decays as the
//! device drifts — edge error rates creep, couplers die — but
//! re-transpiling every circuit at every epoch is wasted work when the
//! drift is mild. [`run_fleet`] replays a
//! [`CalibrationTimeline`] epoch by epoch over a set of [`FleetJob`]s and
//! lets a [`RetranspilePolicy`] make the stale-vs-keep call per job:
//!
//! - at **epoch 0** every job transpiles fresh through the engine
//!   ([`EpochDecision::Fresh`]);
//! - at each later epoch the policy sees the *predicted fidelity loss* of
//!   the cached routing — how much of the route's gate-error survival
//!   product ([`Calibration::routed_survival`]) the new calibration has
//!   eaten relative to its adoption epoch — and either **keeps** the
//!   route (re-scored under the new calibration, no routing work) or
//!   **re-transpiles** it through the full engine pipeline;
//! - one [`DecompositionCache`] pair is shared across every epoch (see
//!   [`run_batch_streaming_with_caches`]), so re-transpiles revisit warm
//!   Weyl classes instead of rebuilding cold caches per epoch.
//!
//! The outcome is a [`FleetReport`]: per-epoch, per-job reports with
//! their decisions, plus fleet rollups (mean delivered fidelity over
//! time, re-transpile rate, route-reuse rate per epoch). Everything
//! deterministic is a pure function of `(jobs, config, policy)` —
//! bit-identical at any thread count; wall clock and cache counters stay
//! quarantined in the trace.
//!
//! [`CalibrationTimeline`]: paradrive_transpiler::calibration::drift::CalibrationTimeline
//! [`Calibration::routed_survival`]: paradrive_transpiler::calibration::Calibration::routed_survival
//! [`run_batch_streaming_with_caches`]: crate::run_batch_streaming_with_caches
//! [`DecompositionCache`]: crate::DecompositionCache

use crate::batch::{Batch, EngineConfig};
use crate::cache::{CachedCostModel, DecompositionCache};
use crate::engine::{run_batch_streaming_with_caches, OptimizedModel};
use crate::report::CircuitReport;
use crate::EngineError;
use paradrive_circuit::Circuit;
use paradrive_core::flow::evaluate_with_calibration;
use paradrive_core::rules::BaselineSqrtIswap;
use paradrive_obs::Trace;
use paradrive_transpiler::calibration::drift::CalibrationTimeline;
use paradrive_transpiler::consolidate::{consolidate, Item};
use paradrive_transpiler::topology::CouplingMap;
use paradrive_verify::Verification;
use std::str::FromStr;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// When does a fleet job re-transpile against the current epoch's
/// calibration?
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetranspilePolicy {
    /// Keep the epoch-0 routing forever (the do-nothing fleet).
    Never,
    /// Re-transpile every job at every epoch (the paranoid fleet).
    Always,
    /// Re-transpile a job only when its cached route's predicted fidelity
    /// loss exceeds the threshold: `1 − survival_now / survival_adopted`,
    /// both measured by [`routed_survival`] on the same routed circuit.
    ///
    /// [`routed_survival`]: paradrive_transpiler::calibration::Calibration::routed_survival
    Adaptive {
        /// Maximum tolerated predicted fidelity loss in `[0, 1]` before a
        /// re-transpile is ordered.
        max_fidelity_loss: f64,
    },
}

impl RetranspilePolicy {
    /// The canonical grammar label: `never`, `always`, or
    /// `adaptive<LOSS>` (e.g. `adaptive0.05`) — `{}` on the threshold
    /// prints the shortest string that parses back to the same value, so
    /// labels round-trip through [`FromStr`].
    pub fn label(&self) -> String {
        match self {
            RetranspilePolicy::Never => "never".to_string(),
            RetranspilePolicy::Always => "always".to_string(),
            RetranspilePolicy::Adaptive { max_fidelity_loss } => {
                format!("adaptive{max_fidelity_loss}")
            }
        }
    }
}

impl std::fmt::Display for RetranspilePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// A [`RetranspilePolicy`] label that failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyParseError {
    /// The rejected input.
    pub input: String,
}

impl std::fmt::Display for PolicyParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown re-transpile policy `{}` (expected never, always, or adaptive<LOSS> \
             with LOSS in [0, 1], e.g. adaptive0.05)",
            self.input
        )
    }
}

impl std::error::Error for PolicyParseError {}

impl FromStr for RetranspilePolicy {
    type Err = PolicyParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let reject = || PolicyParseError {
            input: s.to_string(),
        };
        match s {
            "never" => Ok(RetranspilePolicy::Never),
            "always" => Ok(RetranspilePolicy::Always),
            _ => {
                let loss = s.strip_prefix("adaptive").ok_or_else(reject)?;
                let max_fidelity_loss: f64 = loss.parse().map_err(|_| reject())?;
                if !(0.0..=1.0).contains(&max_fidelity_loss) {
                    return Err(reject());
                }
                Ok(RetranspilePolicy::Adaptive { max_fidelity_loss })
            }
        }
    }
}

/// What happened to one job at one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochDecision {
    /// First transpile (epoch 0) — nothing cached to keep.
    Fresh,
    /// The cached routing was kept and re-scored under the new
    /// calibration.
    Kept,
    /// The cached routing was declared stale and the job re-transpiled.
    Retranspiled,
}

impl EpochDecision {
    /// Short stable label for renders and journals.
    pub fn label(&self) -> &'static str {
        match self {
            EpochDecision::Fresh => "fresh",
            EpochDecision::Kept => "kept",
            EpochDecision::Retranspiled => "retrans",
        }
    }
}

/// One circuit riding a calibration timeline through a fleet run.
#[derive(Debug, Clone)]
pub struct FleetJob {
    /// Job name, carried into every epoch's report.
    pub name: String,
    /// The logical circuit.
    pub circuit: Circuit,
    /// The device it routes on.
    pub map: Arc<CouplingMap>,
    /// The drifting calibration it is scored under, epoch by epoch. All
    /// jobs in one fleet must agree on the epoch count.
    pub timeline: Arc<CalibrationTimeline>,
}

/// One job's outcome at one epoch.
#[derive(Debug, Clone)]
pub struct FleetJobReport {
    /// The policy's call for this job at this epoch.
    pub decision: EpochDecision,
    /// The predicted fidelity loss the policy saw (`0.0` at epoch 0).
    pub predicted_loss: f64,
    /// The full per-circuit report under this epoch's calibration.
    pub report: CircuitReport,
}

/// Every job's outcome at one epoch.
#[derive(Debug, Clone)]
pub struct FleetEpochReport {
    /// The epoch index (0 is the initial calibration).
    pub epoch: usize,
    /// Per-job outcomes, in fleet submission order.
    pub jobs: Vec<FleetJobReport>,
}

impl FleetEpochReport {
    fn count(&self, d: EpochDecision) -> usize {
        self.jobs.iter().filter(|j| j.decision == d).count()
    }

    /// Jobs that kept their cached route this epoch.
    pub fn kept(&self) -> usize {
        self.count(EpochDecision::Kept)
    }

    /// Jobs that re-transpiled this epoch.
    pub fn retranspiled(&self) -> usize {
        self.count(EpochDecision::Retranspiled)
    }

    /// Mean delivered (optimized total) fidelity over this epoch's jobs,
    /// `NaN` when empty.
    pub fn mean_delivered_ft(&self) -> f64 {
        if self.jobs.is_empty() {
            return f64::NAN;
        }
        self.jobs
            .iter()
            .map(|j| j.report.result.optimized_total_fidelity)
            .sum::<f64>()
            / self.jobs.len() as f64
    }

    /// Fraction of jobs that reused their cached route this epoch — the
    /// deterministic "cache hit decay" signal (`0.0` at epoch 0, where
    /// every job is fresh; `NaN` when empty).
    pub fn route_reuse_rate(&self) -> f64 {
        if self.jobs.is_empty() {
            return f64::NAN;
        }
        self.kept() as f64 / self.jobs.len() as f64
    }
}

/// The outcome of one [`run_fleet`] replay.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-epoch outcomes, in epoch order.
    pub epochs: Vec<FleetEpochReport>,
    /// Worker threads the fleet's engine batches ran with.
    pub threads: usize,
    /// End-to-end fleet wall clock.
    pub wall_clock: Duration,
    /// The merged trace across every epoch's engine run: spans shifted
    /// onto one timeline, counters prefixed `epochN.`, plus per-epoch
    /// `fleet.epochN.{fresh,kept,retranspiled}` decision counters.
    /// Wall-clock-bearing — never render it into the deterministic
    /// report.
    pub trace: Trace,
}

impl FleetReport {
    /// Mean delivered (optimized total) fidelity over every `(epoch,
    /// job)` cell, `NaN` when empty.
    pub fn mean_delivered_fidelity(&self) -> f64 {
        let n: usize = self.epochs.iter().map(|e| e.jobs.len()).sum();
        if n == 0 {
            return f64::NAN;
        }
        self.epochs
            .iter()
            .flat_map(|e| &e.jobs)
            .map(|j| j.report.result.optimized_total_fidelity)
            .sum::<f64>()
            / n as f64
    }

    /// Total re-transpiles ordered after epoch 0 — the policy's cost.
    pub fn total_retranspiles(&self) -> usize {
        self.epochs.iter().map(|e| e.retranspiled()).sum()
    }

    /// Fraction of post-epoch-0 decisions that ordered a re-transpile,
    /// `NaN` with fewer than two epochs.
    pub fn retranspile_rate(&self) -> f64 {
        let decisions: usize = self.epochs.iter().skip(1).map(|e| e.jobs.len()).sum();
        if decisions == 0 {
            return f64::NAN;
        }
        self.total_retranspiles() as f64 / decisions as f64
    }
}

/// A job's cached transpilation, adopted at its last fresh/re-transpile
/// epoch.
struct Adopted {
    routed: Circuit,
    items: Vec<Item>,
    swaps: usize,
    /// The route's gate-error survival product under the calibration it
    /// was adopted at — the denominator of the predicted-loss estimate.
    survival: f64,
    verification: Option<Verification>,
}

/// Replays every job's calibration timeline epoch by epoch under one
/// re-transpilation `policy`.
///
/// Epoch 0 transpiles every job fresh; later epochs consult the policy
/// per job (see [`RetranspilePolicy`]). Kept jobs are re-scored under the
/// new calibration without routing; re-transpiled jobs go through the
/// full engine pipeline as one sub-batch per epoch, sharing a single warm
/// [`DecompositionCache`] pair across all epochs. Kept jobs carry their
/// adoption verification verdict forward — the routed circuit is
/// unchanged, so the verdict is too.
///
/// Deterministic outputs are pure functions of `(jobs, config, policy)`:
/// bit-identical at any thread count.
///
/// # Errors
///
/// [`EngineError::Fleet`] when the jobs disagree on epoch count, and any
/// [`EngineError::Job`] a sub-batch reports (invalid calibration,
/// unroutable circuit, …).
pub fn run_fleet(
    jobs: &[FleetJob],
    config: &EngineConfig,
    policy: &RetranspilePolicy,
) -> Result<FleetReport, EngineError> {
    let started = Instant::now();
    let mut trace = Trace::default();
    if jobs.is_empty() {
        return Ok(FleetReport {
            epochs: Vec::new(),
            threads: config.effective_threads(),
            wall_clock: started.elapsed(),
            trace,
        });
    }
    let n_epochs = jobs[0].timeline.epochs();
    if let Some(odd) = jobs.iter().find(|j| j.timeline.epochs() != n_epochs) {
        return Err(EngineError::Fleet {
            reason: format!(
                "job `{}` rides a {}-epoch timeline but the fleet runs {} epochs",
                odd.name,
                odd.timeline.epochs(),
                n_epochs
            ),
        });
    }

    // One warm cache pair for the whole fleet: re-transpiles at late
    // epochs revisit the Weyl classes epoch 0 already decomposed.
    let caches = config
        .cache
        .then(|| (DecompositionCache::new(), DecompositionCache::new()));
    let cache_refs = caches.as_ref().map(|(b, o)| (b, o));
    // Sub-batches must keep routed circuits — the cached route *is* the
    // fleet's working state; the caller's `keep_routed` governs only what
    // the emitted reports retain.
    let inner = config.keep_routed(true);
    let baseline = BaselineSqrtIswap::new(config.d_1q);
    let optimized = OptimizedModel::new(config);

    let mut adopted: Vec<Option<Adopted>> = (0..jobs.len()).map(|_| None).collect();
    let mut epochs = Vec::with_capacity(n_epochs);
    let mut threads = config.effective_threads();

    for epoch in 0..n_epochs {
        // Decide per job. Epoch 0 is always fresh; later epochs compare
        // the cached route's survival under the new calibration with its
        // survival at adoption.
        let decisions: Vec<(EpochDecision, f64)> = jobs
            .iter()
            .enumerate()
            .map(|(j, job)| {
                if epoch == 0 {
                    return (EpochDecision::Fresh, 0.0);
                }
                let cached = adopted[j].as_ref().expect("adopted at epoch 0");
                let now = job.timeline.snapshot(epoch).routed_survival(&cached.routed);
                let loss = (1.0 - now / cached.survival).max(0.0);
                let decision = match policy {
                    RetranspilePolicy::Never => EpochDecision::Kept,
                    RetranspilePolicy::Always => EpochDecision::Retranspiled,
                    RetranspilePolicy::Adaptive { max_fidelity_loss } => {
                        if loss > *max_fidelity_loss {
                            EpochDecision::Retranspiled
                        } else {
                            EpochDecision::Kept
                        }
                    }
                };
                (decision, loss)
            })
            .collect();

        // Re-transpile the stale jobs as one engine sub-batch.
        let stale: Vec<usize> = decisions
            .iter()
            .enumerate()
            .filter(|(_, (d, _))| *d != EpochDecision::Kept)
            .map(|(j, _)| j)
            .collect();
        let mut fresh_reports: Vec<Option<CircuitReport>> = (0..jobs.len()).map(|_| None).collect();
        if !stale.is_empty() {
            let mut batch = Batch::with_shared(Arc::clone(&jobs[stale[0]].map));
            for &j in &stale {
                let job = &jobs[j];
                batch.push_calibrated(
                    job.name.clone(),
                    job.circuit.clone(),
                    Arc::clone(&job.map),
                    job.timeline.snapshot_shared(epoch),
                );
            }
            let slots: Vec<Mutex<Option<CircuitReport>>> =
                stale.iter().map(|_| Mutex::new(None)).collect();
            let summary = run_batch_streaming_with_caches(
                &batch,
                &inner,
                &|i, report| {
                    *slots[i].lock().expect("report slot poisoned") = Some(report);
                },
                cache_refs,
            )?;
            threads = summary.threads.max(threads);
            let mut sub = summary.trace;
            sub.shift(trace.end_ns());
            sub.prefix_counters(&format!("epoch{epoch}."));
            trace.merge(sub);
            for (i, &j) in stale.iter().enumerate() {
                let report = slots[i]
                    .lock()
                    .expect("report slot poisoned")
                    .take()
                    .expect("every successful job produces a report");
                let routed = report
                    .routed
                    .clone()
                    .expect("fleet sub-batches keep routed circuits");
                let items = consolidate(&routed).map_err(|e| EngineError::Job {
                    job: jobs[j].name.clone(),
                    source: e,
                })?;
                adopted[j] = Some(Adopted {
                    survival: jobs[j].timeline.snapshot(epoch).routed_survival(&routed),
                    routed,
                    items,
                    swaps: report.result.swaps,
                    verification: report.verification.clone(),
                });
                fresh_reports[j] = Some(report);
            }
        }

        // Assemble the epoch: re-transpiled jobs take their fresh engine
        // reports; kept jobs re-score their cached items under the new
        // calibration through the exact arithmetic the engine's back half
        // uses (shared caches included), with their adoption verification
        // verdict carried forward.
        let mut epoch_jobs = Vec::with_capacity(jobs.len());
        for (j, job) in jobs.iter().enumerate() {
            let (decision, predicted_loss) = decisions[j];
            let mut report = match fresh_reports[j].take() {
                Some(report) => report,
                None => {
                    let cached = adopted[j].as_ref().expect("adopted at epoch 0");
                    let cal = job.timeline.snapshot(epoch);
                    let result = match cache_refs {
                        Some((bcache, ocache)) => evaluate_with_calibration(
                            &job.name,
                            &cached.items,
                            cached.swaps,
                            &CachedCostModel::new(&baseline, bcache),
                            &CachedCostModel::new(&optimized, ocache),
                            job.map.n_qubits(),
                            job.circuit.n_qubits(),
                            config.fidelity,
                            Some(cal),
                        ),
                        None => evaluate_with_calibration(
                            &job.name,
                            &cached.items,
                            cached.swaps,
                            &baseline,
                            &optimized,
                            job.map.n_qubits(),
                            job.circuit.n_qubits(),
                            config.fidelity,
                            Some(cal),
                        ),
                    };
                    CircuitReport {
                        result,
                        topology: job.map.label().to_string(),
                        calibration: cal.label().to_string(),
                        routed: Some(cached.routed.clone()),
                        verification: cached.verification.clone(),
                        route_time: Duration::ZERO,
                        pipeline_time: Duration::ZERO,
                    }
                }
            };
            if !config.keep_routed {
                report.routed = None;
            }
            epoch_jobs.push(FleetJobReport {
                decision,
                predicted_loss,
                report,
            });
        }
        let epoch_report = FleetEpochReport {
            epoch,
            jobs: epoch_jobs,
        };
        trace.set_counter(
            format!("fleet.epoch{epoch}.fresh"),
            epoch_report.count(EpochDecision::Fresh) as u64,
        );
        trace.set_counter(
            format!("fleet.epoch{epoch}.kept"),
            epoch_report.kept() as u64,
        );
        trace.set_counter(
            format!("fleet.epoch{epoch}.retranspiled"),
            epoch_report.retranspiled() as u64,
        );
        epochs.push(epoch_report);
    }

    if let Some((bcache, ocache)) = cache_refs {
        let b = bcache.stats();
        let o = ocache.stats();
        trace.set_counter("fleet.cache.hits", b.hits + o.hits);
        trace.set_counter("fleet.cache.misses", b.misses + o.misses);
    }

    Ok(FleetReport {
        epochs,
        threads,
        wall_clock: started.elapsed(),
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_batch;
    use paradrive_circuit::benchmarks;
    use paradrive_transpiler::calibration::drift::DriftSpec;
    use paradrive_transpiler::calibration::Calibration;
    use paradrive_transpiler::fidelity::FidelityModel;

    fn fleet_on(
        map: &Arc<CouplingMap>,
        timeline: &Arc<CalibrationTimeline>,
        circuits: Vec<(&str, Circuit)>,
    ) -> Vec<FleetJob> {
        circuits
            .into_iter()
            .map(|(name, circuit)| FleetJob {
                name: name.to_string(),
                circuit,
                map: Arc::clone(map),
                timeline: Arc::clone(timeline),
            })
            .collect()
    }

    fn reports_identical(a: &FleetReport, b: &FleetReport) {
        assert_eq!(a.epochs.len(), b.epochs.len());
        for (x, y) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(x.jobs.len(), y.jobs.len());
            for (p, q) in x.jobs.iter().zip(&y.jobs) {
                assert_eq!(p.decision, q.decision);
                assert_eq!(p.predicted_loss.to_bits(), q.predicted_loss.to_bits());
                let (r, s) = (&p.report.result, &q.report.result);
                assert_eq!(r.name, s.name);
                assert_eq!(r.swaps, s.swaps);
                assert_eq!(
                    r.optimized_total_fidelity.to_bits(),
                    s.optimized_total_fidelity.to_bits()
                );
                assert_eq!(
                    r.optimized_duration.to_bits(),
                    s.optimized_duration.to_bits()
                );
                assert_eq!(p.report.routed, q.report.routed);
                assert_eq!(p.report.verification, q.report.verification);
            }
        }
    }

    #[test]
    fn policy_labels_round_trip() {
        for policy in [
            RetranspilePolicy::Never,
            RetranspilePolicy::Always,
            RetranspilePolicy::Adaptive {
                max_fidelity_loss: 0.05,
            },
        ] {
            let parsed: RetranspilePolicy = policy.label().parse().unwrap();
            assert_eq!(parsed, policy);
        }
        for bad in ["", "sometimes", "adaptive", "adaptive-0.1", "adaptive1.5"] {
            assert!(bad.parse::<RetranspilePolicy>().is_err(), "{bad}");
        }
    }

    #[test]
    fn calm_fleet_keeps_everything_and_matches_the_static_batch_bitwise() {
        let map = Arc::new(CouplingMap::grid(3, 3));
        let cal = Calibration::uniform(&map, FidelityModel::paper());
        let timeline =
            Arc::new(CalibrationTimeline::generate(&cal, &map, &DriftSpec::calm(3, 7)).unwrap());
        let jobs = fleet_on(
            &map,
            &timeline,
            vec![("ghz8", benchmarks::ghz(8)), ("ghz9", benchmarks::ghz(9))],
        );
        let config = EngineConfig::default()
            .routing_seeds(3)
            .threads(2)
            .keep_routed(true)
            .noise_aware(true);
        let fleet = run_fleet(
            &jobs,
            &config,
            &RetranspilePolicy::Adaptive {
                max_fidelity_loss: 0.01,
            },
        )
        .unwrap();
        assert_eq!(fleet.epochs.len(), 3);
        assert_eq!(
            fleet.total_retranspiles(),
            0,
            "nothing drifts, nothing re-transpiles"
        );

        // The static reference: the same jobs through the plain engine.
        let mut batch = Batch::with_shared(Arc::clone(&map));
        for job in &jobs {
            batch.push_calibrated(
                job.name.clone(),
                job.circuit.clone(),
                Arc::clone(&map),
                timeline.snapshot_shared(0),
            );
        }
        let static_report = run_batch(&batch, &config).unwrap();
        for epoch in &fleet.epochs {
            for (fleet_job, static_job) in epoch.jobs.iter().zip(&static_report.circuits) {
                let (r, s) = (&fleet_job.report.result, &static_job.result);
                assert_eq!(r.swaps, s.swaps);
                assert_eq!(
                    r.optimized_total_fidelity.to_bits(),
                    s.optimized_total_fidelity.to_bits()
                );
                assert_eq!(r.baseline_duration.to_bits(), s.baseline_duration.to_bits());
                assert_eq!(fleet_job.report.routed, static_job.routed);
            }
        }
        assert_eq!(fleet.epochs[0].route_reuse_rate(), 0.0);
        assert_eq!(fleet.epochs[1].route_reuse_rate(), 1.0);
    }

    /// The acceptance scenario: on a drifting device with dead-edge
    /// events, the adaptive policy delivers strictly higher mean fidelity
    /// than never re-transpiling, at strictly fewer re-transpiles than
    /// doing it every epoch.
    #[test]
    fn adaptive_beats_never_on_fidelity_and_always_on_cost() {
        let map = Arc::new(CouplingMap::grid(4, 4));
        let cal = Calibration::uniform(&map, FidelityModel::paper());
        // Two abrupt dead-edge events over five epochs: at least two quiet
        // epochs where nothing drifted, so the adaptive policy has keeps
        // to show against the always policy's blanket re-transpiles.
        let spec = DriftSpec {
            epochs: 5,
            qubit_sigma: 0.0,
            edge_sigma: 0.0,
            dead_edges: 2,
            seed: 11,
        };
        let timeline = Arc::new(CalibrationTimeline::generate(&cal, &map, &spec).unwrap());
        let jobs = fleet_on(
            &map,
            &timeline,
            vec![
                ("qft16", benchmarks::qft(16)),
                ("ghz16", benchmarks::ghz(16)),
                ("vqe16", benchmarks::vqe_linear(16, 2, 5)),
            ],
        );
        let config = EngineConfig::default()
            .routing_seeds(2)
            .threads(2)
            .noise_aware(true);
        let run = |policy: RetranspilePolicy| run_fleet(&jobs, &config, &policy).unwrap();
        let never = run(RetranspilePolicy::Never);
        let always = run(RetranspilePolicy::Always);
        let adaptive = run(RetranspilePolicy::Adaptive {
            max_fidelity_loss: 0.05,
        });

        assert!(
            adaptive.mean_delivered_fidelity() > never.mean_delivered_fidelity(),
            "adaptive {} must beat never {}",
            adaptive.mean_delivered_fidelity(),
            never.mean_delivered_fidelity()
        );
        assert!(
            adaptive.total_retranspiles() < always.total_retranspiles(),
            "adaptive {} must cost less than always {}",
            adaptive.total_retranspiles(),
            always.total_retranspiles()
        );
        assert!(
            adaptive.total_retranspiles() > 0,
            "the dead edges must bite"
        );
        assert_eq!(never.total_retranspiles(), 0);
        assert_eq!(always.total_retranspiles(), jobs.len() * (spec.epochs - 1));
        assert!(adaptive.retranspile_rate() < 1.0);
        // Quiet epochs (zero-sigma walk, no event onset) must be pure
        // keeps: the reuse-rate decay is driven by events, not noise.
        assert!(adaptive
            .epochs
            .iter()
            .skip(1)
            .any(|e| e.route_reuse_rate() == 1.0));
    }

    #[test]
    fn fleet_reports_are_thread_deterministic() {
        let map = Arc::new(CouplingMap::grid(3, 3));
        let cal = Calibration::spread(&map, FidelityModel::paper(), 0.2, 5).unwrap();
        let spec = DriftSpec::walk(3, 0.2, 1, 13);
        let timeline = Arc::new(CalibrationTimeline::generate(&cal, &map, &spec).unwrap());
        let jobs = fleet_on(
            &map,
            &timeline,
            vec![
                ("ghz8", benchmarks::ghz(8)),
                ("ghz9", benchmarks::ghz(9)),
                ("vqe8", benchmarks::vqe_linear(8, 2, 5)),
            ],
        );
        let base = EngineConfig::default()
            .routing_seeds(3)
            .keep_routed(true)
            .noise_aware(true);
        let policy = RetranspilePolicy::Adaptive {
            max_fidelity_loss: 0.02,
        };
        let one = run_fleet(&jobs, &base.threads(1), &policy).unwrap();
        let four = run_fleet(&jobs, &base.threads(4), &policy).unwrap();
        reports_identical(&one, &four);
        // Cache off agrees too: the cache only changes wall clock.
        let raw = run_fleet(&jobs, &base.threads(2).cache(false), &policy).unwrap();
        reports_identical(&one, &raw);
    }

    #[test]
    fn mismatched_timelines_are_a_fleet_error() {
        let map = Arc::new(CouplingMap::grid(3, 3));
        let cal = Calibration::uniform(&map, FidelityModel::paper());
        let three =
            Arc::new(CalibrationTimeline::generate(&cal, &map, &DriftSpec::calm(3, 1)).unwrap());
        let two =
            Arc::new(CalibrationTimeline::generate(&cal, &map, &DriftSpec::calm(2, 1)).unwrap());
        let mut jobs = fleet_on(&map, &three, vec![("a", benchmarks::ghz(8))]);
        jobs.extend(fleet_on(&map, &two, vec![("b", benchmarks::ghz(9))]));
        let err =
            run_fleet(&jobs, &EngineConfig::default(), &RetranspilePolicy::Never).unwrap_err();
        assert!(matches!(err, EngineError::Fleet { .. }), "{err}");
    }

    #[test]
    fn empty_fleet_is_fine() {
        let fleet = run_fleet(&[], &EngineConfig::default(), &RetranspilePolicy::Never).unwrap();
        assert!(fleet.epochs.is_empty());
        assert!(fleet.mean_delivered_fidelity().is_nan());
        assert!(fleet.retranspile_rate().is_nan());
    }
}

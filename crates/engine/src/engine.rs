//! The scoped worker pool that drives a [`Batch`] through the pipeline.
//!
//! Work is split into *routing units* — one per `(job, seed)` pair — so
//! that best-of-N routing inside a single circuit fans across workers just
//! like distinct circuits do. Workers pull units from a shared atomic
//! cursor; the worker that completes a job's **last** unit immediately
//! runs that job's back half (best-seed selection → consolidate →
//! schedule → fidelity), so there is no barrier between phases and no
//! idle tail while one late circuit finishes routing.
//!
//! Determinism: every routing unit seeds its own `StdRng` from the unit's
//! seed value, best-seed selection is "strictly fewer SWAPs, earliest seed
//! wins" (exactly [`route_best_of`]'s rule), and results land in
//! per-job slots — the output is a pure function of the batch and config,
//! bit-for-bit identical at any thread count.
//!
//! [`route_best_of`]: paradrive_transpiler::routing::route_best_of

use crate::batch::{Batch, Costing, EngineConfig};
use crate::cache::{CachedCostModel, DecompositionCache};
use crate::report::{BatchSummary, CircuitReport, EngineReport};
use crate::EngineError;
use paradrive_core::flow::evaluate_with_calibration;
use paradrive_core::rules::{BaselineSqrtIswap, ParallelDriveRules, SynthesizedParallelDrive};
use paradrive_obs::{Counter, Recorder, Trace};
use paradrive_transpiler::consolidate::consolidate;
use paradrive_transpiler::routing::{route_with_oracle, NoiseOracle, Routed, RouterOptions};
use paradrive_transpiler::TranspileError;
use paradrive_transpiler::{CostModel, GateCost};
use paradrive_verify::{verify, Physical, Verification, VerifyLevel};
use paradrive_weyl::WeylPoint;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A per-job completion sink for [`run_batch_streaming`]: called once per
/// successful job, on the worker thread that finished it, with the job's
/// submission index and its finished report. Must be `Sync` — workers
/// call it concurrently.
pub type JobSink<'a> = dyn Fn(usize, CircuitReport) + Sync + 'a;

/// Runs every job in `batch` and returns the aggregated report.
///
/// This is the retain-everything entry point: reports are collected into
/// submission order and per-job wall times are rebuilt from the drained
/// trace. Constant-memory consumers (the sharded sweep) should use
/// [`run_batch_streaming`] instead and fold each report as it lands.
///
/// # Errors
///
/// Returns [`EngineError`] for the first failing job (in submission
/// order); remaining jobs still run to completion.
pub fn run_batch(batch: &Batch, config: &EngineConfig) -> Result<EngineReport, EngineError> {
    let slots: Vec<Mutex<Option<CircuitReport>>> =
        (0..batch.len()).map(|_| Mutex::new(None)).collect();
    let summary = run_batch_streaming(batch, config, &|job, report| {
        *slots[job].lock().expect("report slot poisoned") = Some(report);
    })?;
    let mut circuits: Vec<CircuitReport> = slots
        .iter()
        .map(|slot| {
            slot.lock()
                .expect("report slot poisoned")
                .take()
                .expect("every successful job produces a report")
        })
        .collect();

    // Derive the per-job wall times from the trace spans — the single
    // timing path (workers leave placeholders). A job's route time sums
    // its per-seed "route" spans; its pipeline time sums the sequential
    // back-half stages.
    let mut route_ns = vec![0u64; circuits.len()];
    let mut back_ns = vec![0u64; circuits.len()];
    for s in &summary.trace.spans {
        let per_job = if s.name == "route" {
            &mut route_ns
        } else {
            &mut back_ns
        };
        if let Some(slot) = per_job.get_mut(s.key as usize) {
            *slot += s.dur_ns;
        }
    }
    for (j, c) in circuits.iter_mut().enumerate() {
        c.route_time = Duration::from_nanos(route_ns[j]);
        c.pipeline_time = Duration::from_nanos(back_ns[j]);
    }

    Ok(EngineReport {
        circuits,
        threads: summary.threads,
        wall_clock: summary.wall_clock,
        baseline_cache: summary.baseline_cache,
        optimized_cache: summary.optimized_cache,
        trace: summary.trace,
    })
}

/// Runs every job in `batch`, handing each finished [`CircuitReport`] to
/// `sink` the moment its worker completes it — the engine retains no
/// per-job results, so peak report memory is bounded by the number of
/// in-flight jobs, not the batch size.
///
/// The sink runs on worker threads (hence the `Sync` bound) and may be
/// called in any completion order; job indices refer to submission order.
/// Reports arrive with zero `route_time`/`pipeline_time` — per-job wall
/// times can be rebuilt from the returned [`BatchSummary::trace`] by
/// summing span durations keyed by job index (see [`run_batch`]).
///
/// # Errors
///
/// Returns [`EngineError`] for the first failing job (in submission
/// order); remaining jobs still run to completion, and the sink may have
/// received reports for jobs that succeeded before the error is reported.
pub fn run_batch_streaming(
    batch: &Batch,
    config: &EngineConfig,
    sink: &JobSink<'_>,
) -> Result<BatchSummary, EngineError> {
    let owned = config
        .cache
        .then(|| (DecompositionCache::new(), DecompositionCache::new()));
    run_batch_streaming_with_caches(batch, config, sink, owned.as_ref().map(|(b, o)| (b, o)))
}

/// [`run_batch_streaming`] with caller-owned decomposition caches.
///
/// The `(baseline, optimized)` cache pair — when given — supersedes
/// [`EngineConfig::cache`], and the caches outlive the call: a driver that
/// replays many batches (the fleet policy loop re-transpiling across
/// calibration epochs) shares one warm pair across all of them instead of
/// rebuilding cold caches per batch. Cached and uncached runs produce
/// bit-identical reports, so sharing only changes wall clock, never
/// results; the returned [`BatchSummary`] carries the pair's *cumulative*
/// stats.
///
/// # Errors
///
/// Exactly as [`run_batch_streaming`].
pub fn run_batch_streaming_with_caches(
    batch: &Batch,
    config: &EngineConfig,
    sink: &JobSink<'_>,
    caches: Option<(&DecompositionCache, &DecompositionCache)>,
) -> Result<BatchSummary, EngineError> {
    let started = Instant::now();
    let seeds = config.routing_seeds.max(1) as usize;
    let n_jobs = batch.len();
    let unit_count = n_jobs * seeds;
    let threads = config.workers_for(batch);

    // Validate each job's calibration against its device once, and build
    // the noise-aware routing oracle (an all-pairs effective-distance
    // solve) once per job rather than once per routing seed. Invalid jobs
    // carry their error into the routing units.
    let noise: Vec<Result<Option<NoiseOracle>, TranspileError>> = (0..n_jobs)
        .map(|job| {
            let map = batch.map_for(job);
            match batch.calibration_for(job) {
                Some(cal) => {
                    cal.validate_for(map)?;
                    Ok(config
                        .noise_aware
                        .then(|| NoiseOracle::new(map, cal, RouterOptions::default())))
                }
                None => Ok(None),
            }
        })
        .collect();

    // The batch's own recorder, always on: per-stage spans are cheap next
    // to millisecond-scale jobs, and the drained trace is both the source
    // of the per-job route/pipeline times and the `--trace` export. The
    // process-global `paradrive_obs::global()` recorder is untouched here
    // — it stays opt-in for free-floating hot paths (simulator kernels).
    let rec = Recorder::new();
    let shared = Shared {
        batch,
        config,
        noise,
        seeds,
        baseline: BaselineSqrtIswap::new(config.d_1q),
        optimized: OptimizedModel::new(config),
        caches,
        next_unit: AtomicUsize::new(0),
        units_left: (0..n_jobs).map(|_| AtomicUsize::new(seeds)).collect(),
        routed: (0..unit_count).map(|_| Mutex::new(None)).collect(),
        failures: (0..n_jobs).map(|_| Mutex::new(None)).collect(),
        seed_attempts: rec.counter("route.seed_attempts"),
        rec,
        sink,
    };

    if unit_count > 0 {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| shared.run_worker());
            }
        });
    }

    for (j, slot) in shared.failures.iter().enumerate() {
        if let Some(e) = slot.lock().expect("failure slot poisoned").take() {
            return Err(EngineError::Job {
                job: batch.jobs()[j].name.clone(),
                source: e,
            });
        }
    }

    let mut trace = shared.rec.take();
    if let Some((bcache, ocache)) = caches {
        fold_shard_counters(&mut trace, "cache.baseline", bcache);
        fold_shard_counters(&mut trace, "cache.optimized", ocache);
    }

    Ok(BatchSummary {
        threads,
        wall_clock: started.elapsed(),
        baseline_cache: caches.map(|(b, _)| b.stats()),
        optimized_cache: caches.map(|(_, o)| o.stats()),
        trace,
    })
}

/// Copies a cache's per-shard counters into the trace under
/// `<prefix>.shardNN.*` names. Shard attribution is hash-seeded (see
/// [`DecompositionCache::shard_stats`]), so these live only in the trace
/// channel.
fn fold_shard_counters(trace: &mut Trace, prefix: &str, cache: &DecompositionCache) {
    for (i, s) in cache.shard_stats().into_iter().enumerate() {
        trace.set_counter(format!("{prefix}.shard{i:02}.hits"), s.hits);
        trace.set_counter(format!("{prefix}.shard{i:02}.misses"), s.misses);
        trace.set_counter(format!("{prefix}.shard{i:02}.inserts"), s.inserts);
        trace.set_counter(format!("{prefix}.shard{i:02}.wait_ns"), s.wait_ns);
    }
}

/// FNV-1a over bytes — a stable, dependency-free hash for deriving each
/// job's verification seed from its name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The optimized-side cost model, chosen by [`Costing`]. Shared with the
/// fleet policy layer so kept-route re-scoring uses the exact model the
/// engine's back half would.
pub(crate) enum OptimizedModel {
    Hull(ParallelDriveRules),
    Synthesized(SynthesizedParallelDrive),
}

impl OptimizedModel {
    pub(crate) fn new(config: &EngineConfig) -> Self {
        match config.costing {
            Costing::Hull => OptimizedModel::Hull(ParallelDriveRules::new(config.d_1q)),
            Costing::Synthesized => {
                OptimizedModel::Synthesized(SynthesizedParallelDrive::new(config.d_1q))
            }
        }
    }
}

impl CostModel for OptimizedModel {
    fn cost(&self, target: WeylPoint) -> GateCost {
        match self {
            OptimizedModel::Hull(m) => m.cost(target),
            OptimizedModel::Synthesized(m) => m.cost(target),
        }
    }

    fn d_1q(&self) -> f64 {
        match self {
            OptimizedModel::Hull(m) => m.d_1q(),
            OptimizedModel::Synthesized(m) => m.d_1q(),
        }
    }

    fn name(&self) -> &str {
        match self {
            OptimizedModel::Hull(m) => m.name(),
            OptimizedModel::Synthesized(m) => m.name(),
        }
    }
}

/// State shared by every worker for one batch run.
struct Shared<'a, 'sink> {
    batch: &'a Batch,
    config: &'a EngineConfig,
    /// Per-job noise-aware routing oracle (`Ok(None)` for noise-blind or
    /// uncalibrated jobs), or the calibration-validation error every one
    /// of the job's routing units reports.
    noise: Vec<Result<Option<NoiseOracle>, TranspileError>>,
    seeds: usize,
    baseline: BaselineSqrtIswap,
    optimized: OptimizedModel,
    caches: Option<(&'a DecompositionCache, &'a DecompositionCache)>,
    /// Cursor over the flattened `(job, seed)` routing units.
    next_unit: AtomicUsize,
    /// Routing units still outstanding per job; the worker that drops a
    /// job's counter to zero owns its back half.
    units_left: Vec<AtomicUsize>,
    /// Routing results, indexed `job * seeds + seed`.
    routed: Vec<Mutex<Option<Result<Routed, TranspileError>>>>,
    /// Per-job error slots; successful reports go straight to the sink.
    failures: Vec<Mutex<Option<TranspileError>>>,
    /// Routing units executed (one per `(job, seed)` pair).
    seed_attempts: Counter,
    /// The batch-scoped recorder every stage span and counter lands in;
    /// spans are keyed by job index so `run_batch` can rebuild per-job
    /// times from the drained trace.
    rec: Recorder,
    /// Where finished reports go, called on the finishing worker — the
    /// engine itself retains nothing per job beyond the error slots.
    sink: &'sink JobSink<'sink>,
}

impl Shared<'_, '_> {
    fn run_worker(&self) {
        let unit_count = self.routed.len();
        loop {
            let unit = self.next_unit.fetch_add(1, Ordering::Relaxed);
            if unit >= unit_count {
                return;
            }
            let job = unit / self.seeds;
            let seed = (unit % self.seeds) as u64;

            let map = self.batch.map_for(job);
            let result = {
                let _span = self.rec.span_full("route", job as u64, || {
                    format!("{}#{seed}", self.batch.jobs()[job].name)
                });
                self.seed_attempts.incr(1);
                match &self.noise[job] {
                    Ok(oracle) => route_with_oracle(
                        &self.batch.jobs()[job].circuit,
                        map,
                        oracle.as_ref(),
                        seed,
                        RouterOptions::default(),
                    ),
                    Err(e) => Err(e.clone()),
                }
            };
            *self.routed[unit].lock().expect("routing slot poisoned") = Some(result);

            // The worker that finishes a job's last routing unit runs the
            // job's back half right away and streams the report out.
            if self.units_left[job].fetch_sub(1, Ordering::AcqRel) == 1 {
                match self.finish_job(job) {
                    Ok(report) => (self.sink)(job, report),
                    Err(e) => {
                        *self.failures[job].lock().expect("failure slot poisoned") = Some(e);
                    }
                }
            }
        }
    }

    /// Best-seed selection, consolidation, scheduling and scoring for one
    /// fully routed job. Each stage runs under its own span (keyed by the
    /// job index, labeled by the job name); the spans are sequential, so
    /// their summed duration is the job's pipeline time — `run_batch`
    /// rebuilds it from the trace, and the placeholders below stay zero
    /// until then.
    fn finish_job(&self, job: usize) -> Result<CircuitReport, TranspileError> {
        let spec = &self.batch.jobs()[job];
        let stage = |name| self.rec.span_full(name, job as u64, || spec.name.clone());
        let cal = self.batch.calibration_for(job);
        // Pick the best seed. Uncalibrated jobs keep `route_best_of`'s
        // rule — strictly fewest SWAPs, earliest seed wins. Calibrated
        // jobs rank by the route's gate-error survival product first, so
        // a detour around degraded edges beats a shorter route through
        // them on the metric the rollups report, with SWAP count then
        // earliest seed as tie-breaks. A uniform calibration scores every
        // seed at exactly 1.0, degrading to the legacy rule.
        let best = {
            let _span = stage("select");
            let mut best: Option<(Routed, f64)> = None;
            for seed in 0..self.seeds {
                let routed = self.routed[job * self.seeds + seed]
                    .lock()
                    .expect("routing slot poisoned")
                    .take()
                    .expect("all units of a finished job are routed")?;
                let survival = cal.map_or(1.0, |c| c.routed_survival(&routed.circuit));
                if best.as_ref().is_none_or(|(b, s)| {
                    survival > *s || (survival == *s && routed.swaps_inserted < b.swaps_inserted)
                }) {
                    best = Some((routed, survival));
                }
            }
            best.expect("at least one seed per job").0
        };
        let items = {
            let _span = stage("consolidate");
            consolidate(&best.circuit)?
        };

        let map = self.batch.map_for(job);

        // Semantic verification replays the *consolidated* stream — each
        // two-qubit block as one fused 4×4 apply — against the logical
        // circuit under the routed output permutation, so a failure in
        // either routing or consolidation is caught. The Monte-Carlo seed
        // mixes in the job's name, so every job is probed with its own
        // input states (still a pure function of the batch, never of the
        // thread count). Oracle errors (an engine invariant broken, not a
        // bad circuit) become a failing `Verification::Error` verdict
        // rather than aborting the batch — or silently passing.
        let verification = (self.config.verify != VerifyLevel::Off).then(|| {
            let _span = stage("verify");
            let cfg = self
                .config
                .verify_config()
                .seed(self.config.verify_seed ^ fnv1a(spec.name.as_bytes()));
            verify(
                &spec.circuit,
                &Physical::Consolidated {
                    items: &items,
                    n_qubits: map.n_qubits(),
                },
                &best.layout,
                &cfg,
            )
            .unwrap_or_else(|e| Verification::Error {
                reason: e.to_string(),
            })
        });
        if let Some(Verification::Sampled { samples, .. }) = &verification {
            self.rec.add("verify.samples", *samples as u64);
        }
        let _span = stage("schedule");
        let result = match self.caches {
            Some((bcache, ocache)) => evaluate_with_calibration(
                &spec.name,
                &items,
                best.swaps_inserted,
                &CachedCostModel::new(&self.baseline, bcache),
                &CachedCostModel::new(&self.optimized, ocache),
                map.n_qubits(),
                spec.circuit.n_qubits(),
                self.config.fidelity,
                cal,
            ),
            None => evaluate_with_calibration(
                &spec.name,
                &items,
                best.swaps_inserted,
                &self.baseline,
                &self.optimized,
                map.n_qubits(),
                spec.circuit.n_qubits(),
                self.config.fidelity,
                cal,
            ),
        };

        Ok(CircuitReport {
            result,
            topology: map.label().to_string(),
            calibration: cal.map_or_else(|| "uniform".to_string(), |c| c.label().to_string()),
            routed: self.config.keep_routed.then_some(best.circuit),
            verification,
            // Filled from the drained trace by `run_batch`.
            route_time: Duration::ZERO,
            pipeline_time: Duration::ZERO,
        })
    }
}

// `CostModel` has no `Sync` bound, so make the assumptions explicit: both
// models are plain-old-data plus lazily initialized shared coverage
// stacks, and the engine hands them to scoped workers by reference.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<BaselineSqrtIswap>();
    assert_sync::<ParallelDriveRules>();
    assert_sync::<SynthesizedParallelDrive>();
    assert_sync::<DecompositionCache>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use paradrive_circuit::benchmarks;
    use paradrive_transpiler::topology::CouplingMap;

    /// Family-class circuits only (CNOT/iSWAP/SWAP blocks), so the lazily
    /// built Monte-Carlo coverage stacks are never consulted and the tests
    /// stay fast; the repo-level `engine_determinism` integration test
    /// covers the general-class path.
    fn small_batch() -> Batch {
        let mut b = Batch::new(CouplingMap::grid(3, 3));
        b.push("ghz8", benchmarks::ghz(8));
        b.push("ghz9", benchmarks::ghz(9));
        b.push("vqe8", benchmarks::vqe_linear(8, 2, 5));
        b
    }

    fn results_identical(a: &EngineReport, b: &EngineReport) {
        assert_eq!(a.circuits.len(), b.circuits.len());
        for (x, y) in a.circuits.iter().zip(&b.circuits) {
            let (r, s) = (&x.result, &y.result);
            assert_eq!(r.name, s.name);
            assert_eq!(r.swaps, s.swaps);
            assert_eq!(r.blocks, s.blocks);
            assert_eq!(
                r.baseline_duration.to_bits(),
                s.baseline_duration.to_bits(),
                "{}",
                r.name
            );
            assert_eq!(
                r.optimized_duration.to_bits(),
                s.optimized_duration.to_bits()
            );
            assert_eq!(
                r.ft_improvement_pct.to_bits(),
                s.ft_improvement_pct.to_bits()
            );
            assert_eq!(x.routed, y.routed);
            assert_eq!(x.verification, y.verification);
        }
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let batch = small_batch();
        let base = EngineConfig::default().routing_seeds(4).keep_routed(true);
        let one = run_batch(&batch, &base.threads(1)).unwrap();
        let four = run_batch(&batch, &base.threads(4)).unwrap();
        results_identical(&one, &four);
        assert_eq!(one.threads, 1);
        assert_eq!(four.threads, 4);
    }

    #[test]
    fn cache_toggle_agrees_bitwise() {
        let batch = small_batch();
        let base = EngineConfig::default().routing_seeds(3).keep_routed(true);
        let cached = run_batch(&batch, &base.threads(2)).unwrap();
        let raw = run_batch(&batch, &base.threads(2).cache(false)).unwrap();
        results_identical(&cached, &raw);
        let stats = cached.cache_stats().unwrap();
        assert!(stats.hits > 0, "no cache hits over a repeated-class batch");
        assert!(raw.cache_stats().is_none());
    }

    #[test]
    fn synthesized_costing_is_deterministic_and_cache_heavy() {
        // Circuits whose blocks merge CPhase·SWAP on one pair — general
        // (off-base-plane) classes drawn from a small angle set that
        // repeats across circuits, so synthesis costing hits the cache.
        use paradrive_circuit::{Circuit, TwoQ};
        let mut batch = Batch::new(CouplingMap::grid(2, 2));
        for i in 0..6 {
            let mut c = Circuit::new(4);
            for k in 0..3u32 {
                let theta = std::f64::consts::PI / (2 + ((i + k as usize) % 3)) as f64;
                c.push_2q(TwoQ::CPhase(theta), 0, 1);
                c.push_2q(TwoQ::Swap, 0, 1);
                c.push_2q(TwoQ::Cx, 2, 3);
            }
            batch.push(format!("gadget{i}"), c);
        }
        let base = EngineConfig::default()
            .routing_seeds(2)
            .costing(Costing::Synthesized)
            .keep_routed(true);
        let cached = run_batch(&batch, &base.threads(2)).unwrap();
        let seq = run_batch(&batch, &base.threads(1).cache(false)).unwrap();
        results_identical(&cached, &seq);
        let stats = cached.cache_stats().unwrap();
        assert!(
            stats.hits > stats.misses,
            "repeated classes should mostly hit: {stats:?}"
        );
    }

    #[test]
    fn heterogeneous_batch_routes_each_job_on_its_own_map() {
        use std::sync::Arc;
        let ring = Arc::new(CouplingMap::ring(10));
        let hex = Arc::new(CouplingMap::heavy_hex(2));
        let mut batch = Batch::new(CouplingMap::grid(3, 3));
        batch.push("ghz-grid", benchmarks::ghz(9));
        batch.push_on("ghz-ring", benchmarks::ghz(10), Arc::clone(&ring));
        batch.push_on("vqe-hex", benchmarks::vqe_linear(7, 2, 5), Arc::clone(&hex));
        batch.push_on("vqe-ring", benchmarks::vqe_linear(10, 2, 5), ring);

        let base = EngineConfig::default().routing_seeds(3).keep_routed(true);
        let one = run_batch(&batch, &base.threads(1)).unwrap();
        let four = run_batch(&batch, &base.threads(4)).unwrap();
        results_identical(&one, &four);

        let labels: Vec<&str> = one.circuits.iter().map(|c| c.topology.as_str()).collect();
        assert_eq!(labels, ["grid3x3", "ring10", "heavy-hex2", "ring10"]);
        // Routed circuits are as wide as their own device, not the default.
        assert_eq!(one.circuits[1].routed.as_ref().unwrap().n_qubits(), 10);
        assert_eq!(one.circuits[2].routed.as_ref().unwrap().n_qubits(), 7);

        let groups = one.by_topology();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[1].topology, "ring10");
        assert_eq!(groups[1].circuits, 2);
    }

    #[test]
    fn uniform_calibration_matches_legacy_pipeline_bitwise() {
        use paradrive_transpiler::calibration::Calibration;
        use std::sync::Arc;
        let map = Arc::new(CouplingMap::grid(3, 3));
        let cal = Arc::new(Calibration::uniform(&map, EngineConfig::default().fidelity));
        let mut plain = Batch::with_shared(Arc::clone(&map));
        let mut calibrated = Batch::with_shared(Arc::clone(&map));
        for (name, c) in [
            ("ghz8", benchmarks::ghz(8)),
            ("ghz9", benchmarks::ghz(9)),
            ("vqe8", benchmarks::vqe_linear(8, 2, 5)),
        ] {
            plain.push(name, c.clone());
            calibrated.push_calibrated(name, c, Arc::clone(&map), Arc::clone(&cal));
        }
        // Noise-aware on a uniform calibration is still the blind router.
        let base = EngineConfig::default()
            .routing_seeds(3)
            .keep_routed(true)
            .noise_aware(true);
        let a = run_batch(&plain, &base.threads(2)).unwrap();
        let b = run_batch(&calibrated, &base.threads(2)).unwrap();
        results_identical(&a, &b);
        for (x, y) in a.circuits.iter().zip(&b.circuits) {
            assert_eq!(
                x.result.optimized_total_fidelity.to_bits(),
                y.result.optimized_total_fidelity.to_bits()
            );
            assert_eq!(x.calibration, "uniform");
            assert_eq!(y.calibration, "uniform");
        }
    }

    #[test]
    fn calibrated_batch_is_thread_deterministic() {
        use paradrive_transpiler::calibration::Calibration;
        use std::sync::Arc;
        let map = Arc::new(CouplingMap::grid(3, 3));
        let fidelity = EngineConfig::default().fidelity;
        let spread = Arc::new(Calibration::spread(&map, fidelity, 0.3, 7).unwrap());
        let hotspot = Arc::new(Calibration::hotspot(&map, fidelity, 2, 7).unwrap());
        let mut batch = Batch::with_shared(Arc::clone(&map));
        for cal in [&spread, &hotspot] {
            batch.push_calibrated(
                format!("ghz9-{}", cal.label()),
                benchmarks::ghz(9),
                Arc::clone(&map),
                Arc::clone(cal),
            );
            batch.push_calibrated(
                format!("vqe8-{}", cal.label()),
                benchmarks::vqe_linear(8, 2, 5),
                Arc::clone(&map),
                Arc::clone(cal),
            );
        }
        let base = EngineConfig::default()
            .routing_seeds(4)
            .keep_routed(true)
            .noise_aware(true);
        let one = run_batch(&batch, &base.threads(1)).unwrap();
        let four = run_batch(&batch, &base.threads(4)).unwrap();
        results_identical(&one, &four);
        for (x, y) in one.circuits.iter().zip(&four.circuits) {
            assert_eq!(x.calibration, y.calibration);
            assert_eq!(
                x.result.optimized_total_fidelity.to_bits(),
                y.result.optimized_total_fidelity.to_bits()
            );
        }
        let groups = one.by_calibration();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].calibration, "spread0.3");
        assert_eq!(groups[1].calibration, "hotspot2");
    }

    #[test]
    fn calibration_device_mismatch_is_job_error() {
        use paradrive_transpiler::calibration::Calibration;
        use std::sync::Arc;
        let grid = Arc::new(CouplingMap::grid(3, 3));
        let ring = Arc::new(CouplingMap::ring(4));
        let wrong = Arc::new(Calibration::uniform(
            &ring,
            EngineConfig::default().fidelity,
        ));
        let mut batch = Batch::with_shared(Arc::clone(&grid));
        batch.push_calibrated("mismatch", benchmarks::ghz(4), grid, wrong);
        let err = run_batch(&batch, &EngineConfig::default().routing_seeds(1)).unwrap_err();
        let EngineError::Job { job, source } = err else {
            panic!("expected a job error");
        };
        assert_eq!(job, "mismatch");
        assert!(matches!(
            source,
            TranspileError::CalibrationMismatch { cal: 4, device: 9 }
        ));

        // Same qubit count, different topology: the edge sets differ, so
        // the calibration is rejected rather than silently read as
        // nominal on every unknown edge.
        let ring16 = Arc::new(CouplingMap::ring(16));
        let sneaky = Arc::new(
            Calibration::hotspot(&ring16, EngineConfig::default().fidelity, 2, 7).unwrap(),
        );
        let grid16 = Arc::new(CouplingMap::grid(4, 4));
        let mut batch = Batch::with_shared(Arc::clone(&grid16));
        batch.push_calibrated("sneaky", benchmarks::ghz(16), grid16, sneaky);
        let err = run_batch(&batch, &EngineConfig::default().routing_seeds(1)).unwrap_err();
        let EngineError::Job { job, source } = err else {
            panic!("expected a job error");
        };
        assert_eq!(job, "sneaky");
        assert!(matches!(source, TranspileError::InvalidCalibration(_)));
    }

    #[test]
    fn verification_verdicts_pass_and_are_thread_deterministic() {
        let batch = small_batch();
        let base = EngineConfig::default()
            .routing_seeds(2)
            .verify(VerifyLevel::Exact);
        let one = run_batch(&batch, &base.threads(1)).unwrap();
        let four = run_batch(&batch, &base.threads(4)).unwrap();
        results_identical(&one, &four);
        for c in &one.circuits {
            let v = c.verification.as_ref().expect("verification on");
            assert!(!v.failed(), "{}: {v}", c.result.name);
            // All of grid3x3 fits the dense oracle: strictly exact.
            assert_eq!(v.method(), "exact", "{}: {v}", c.result.name);
        }
        let summary = one.verification_summary().unwrap();
        assert!(summary.all_passed());
        assert_eq!(summary.exact, 3);
        assert!(summary.min_fidelity > 1.0 - 1e-9);
        // Off by default: no verdicts, no summary.
        let off = run_batch(&batch, &EngineConfig::default().routing_seeds(1)).unwrap();
        assert!(off.circuits.iter().all(|c| c.verification.is_none()));
        assert!(off.verification_summary().is_none());
    }

    #[test]
    fn sampled_verification_handles_wide_devices() {
        use std::sync::Arc;
        let grid = Arc::new(CouplingMap::grid(4, 4));
        let mut batch = Batch::with_shared(Arc::clone(&grid));
        batch.push("qft12", benchmarks::qft(12));
        let report = run_batch(
            &batch,
            &EngineConfig::default()
                .routing_seeds(2)
                .threads(2)
                .verify(VerifyLevel::Sampled)
                .verify_samples(3),
        )
        .unwrap();
        let v = report.circuits[0].verification.as_ref().unwrap();
        assert_eq!(v.method(), "sampled", "{v}");
        assert!(!v.failed(), "{v}");
    }

    #[test]
    fn streaming_sink_matches_run_batch_bitwise() {
        let batch = small_batch();
        let config = EngineConfig::default()
            .routing_seeds(3)
            .threads(4)
            .keep_routed(true)
            .verify(VerifyLevel::Exact);
        let slots: Vec<Mutex<Option<CircuitReport>>> =
            (0..batch.len()).map(|_| Mutex::new(None)).collect();
        let summary = run_batch_streaming(&batch, &config, &|job, report| {
            let mut slot = slots[job].lock().unwrap();
            assert!(slot.is_none(), "job {job} delivered twice");
            // Streamed reports leave the wall times as placeholders; the
            // trace is the single timing channel.
            assert_eq!(report.route_time, Duration::ZERO);
            assert_eq!(report.pipeline_time, Duration::ZERO);
            *slot = Some(report);
        })
        .unwrap();
        let streamed = EngineReport {
            circuits: slots
                .into_iter()
                .map(|slot| slot.into_inner().unwrap().expect("every job delivered"))
                .collect(),
            threads: summary.threads,
            wall_clock: summary.wall_clock,
            baseline_cache: summary.baseline_cache,
            optimized_cache: summary.optimized_cache,
            trace: summary.trace,
        };
        let full = run_batch(&batch, &config).unwrap();
        results_identical(&full, &streamed);
        // The collecting wrapper rebuilds per-job wall times from spans.
        assert!(full.busy_time() > Duration::ZERO);
    }

    #[test]
    fn streaming_failure_reports_error_but_successes_still_stream() {
        let mut batch = Batch::new(CouplingMap::grid(2, 2));
        batch.push("ok", benchmarks::ghz(4));
        batch.push("too-wide", benchmarks::ghz(9));
        let delivered: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
        let err = run_batch_streaming(&batch, &EngineConfig::default().threads(2), &|job, r| {
            delivered.lock().unwrap().push((job, r.result.name.clone()));
        })
        .unwrap_err();
        let EngineError::Job { job, .. } = err else {
            panic!("expected a job error");
        };
        assert_eq!(job, "too-wide");
        let delivered = delivered.into_inner().unwrap();
        assert_eq!(delivered, vec![(0, "ok".to_string())]);
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch = Batch::new(CouplingMap::grid(2, 2));
        let r = run_batch(&batch, &EngineConfig::default()).unwrap();
        assert!(r.circuits.is_empty());
    }

    #[test]
    fn oversized_circuit_reports_job_error() {
        let mut batch = Batch::new(CouplingMap::grid(2, 2));
        batch.push("ok", benchmarks::ghz(4));
        batch.push("too-wide", benchmarks::ghz(9));
        let err = run_batch(&batch, &EngineConfig::default().threads(2)).unwrap_err();
        match err {
            EngineError::Job { job, .. } => assert_eq!(job, "too-wide"),
            other => panic!("expected a job error, got {other}"),
        }
    }

    #[test]
    fn thread_cap_never_exceeds_units() {
        let mut batch = Batch::new(CouplingMap::grid(2, 2));
        batch.push("ghz4", benchmarks::ghz(4));
        let r = run_batch(
            &batch,
            &EngineConfig::default().routing_seeds(2).threads(64),
        )
        .unwrap();
        assert!(r.threads <= 2);
    }
}

//! Aggregated batch results: [`CircuitReport`] and [`EngineReport`].

use crate::cache::CacheStats;
use paradrive_circuit::Circuit;
use paradrive_core::flow::BenchmarkResult;
use paradrive_obs::{StageStats, Trace};
use paradrive_verify::Verification;
use std::fmt;
use std::time::Duration;

/// The outcome of one job.
#[derive(Debug, Clone)]
pub struct CircuitReport {
    /// Scheduling/fidelity numbers, identical in layout to the sequential
    /// flow's per-benchmark result.
    pub result: BenchmarkResult,
    /// Label of the coupling topology the job was routed on.
    pub topology: String,
    /// Label of the device calibration the job was scored under
    /// (`"uniform"` for jobs without one — they run the homogeneous
    /// model).
    pub calibration: String,
    /// The best routed physical circuit (only when
    /// [`crate::EngineConfig::keep_routed`] is set).
    pub routed: Option<Circuit>,
    /// The semantic-equivalence verdict for this job (`None` with
    /// [`crate::EngineConfig::verify`] off). A pure function of the job
    /// and config — identical at any thread count.
    pub verification: Option<Verification>,
    /// Wall time spent routing this circuit, summed over its seeds
    /// (seeds may have run on different workers concurrently).
    pub route_time: Duration,
    /// Wall time spent consolidating, scheduling and scoring.
    pub pipeline_time: Duration,
}

/// The batch-level outcome of a streaming run (see
/// [`crate::run_batch_streaming`]): everything [`EngineReport`] carries
/// *except* the per-job reports, which were handed to the sink as they
/// completed. Holding one of these retains O(1) memory in the batch size
/// (the trace grows with job count but holds spans, not circuits).
#[derive(Debug, Clone)]
pub struct BatchSummary {
    /// Worker threads the batch actually ran with.
    pub threads: usize,
    /// End-to-end batch wall clock.
    pub wall_clock: Duration,
    /// Baseline-model cache counters (`None` with the cache disabled).
    pub baseline_cache: Option<CacheStats>,
    /// Optimized-model cache counters (`None` with the cache disabled).
    pub optimized_cache: Option<CacheStats>,
    /// The batch's execution trace (see [`EngineReport::trace`]); spans
    /// are keyed by job index, so per-job wall times can be rebuilt by
    /// summing span durations per key.
    pub trace: Trace,
}

impl BatchSummary {
    /// Combined counters over both per-model caches.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        match (self.baseline_cache, self.optimized_cache) {
            (Some(b), Some(o)) => Some(b.merged(o)),
            (one, other) => one.or(other),
        }
    }
}

/// The outcome of a whole batch.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Per-circuit outcomes, in submission order.
    pub circuits: Vec<CircuitReport>,
    /// Worker threads the batch actually ran with.
    pub threads: usize,
    /// End-to-end batch wall clock.
    pub wall_clock: Duration,
    /// Baseline-model cache counters (`None` with the cache disabled).
    pub baseline_cache: Option<CacheStats>,
    /// Optimized-model cache counters (`None` with the cache disabled).
    pub optimized_cache: Option<CacheStats>,
    /// The batch's execution trace: per-stage spans and counters,
    /// including the per-shard cache split. Wall-clock-bearing and
    /// thread-schedule-dependent — export it with
    /// [`Trace::write_chrome`] / [`Trace::write_jsonl`] or roll it up
    /// with [`EngineReport::metrics_summary`], but never render it into
    /// the deterministic report (the `Display` impl ignores it).
    pub trace: Trace,
}

impl EngineReport {
    /// Combined counters over both per-model caches.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        match (self.baseline_cache, self.optimized_cache) {
            (Some(b), Some(o)) => Some(b.merged(o)),
            (one, other) => one.or(other),
        }
    }

    /// Combined cache hit rate in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        self.cache_stats().and_then(|s| s.hit_rate())
    }

    /// Mean duration reduction over the batch, percent.
    pub fn average_reduction_pct(&self) -> f64 {
        if self.circuits.is_empty() {
            return f64::NAN;
        }
        self.circuits
            .iter()
            .map(|c| c.result.duration_reduction_pct)
            .sum::<f64>()
            / self.circuits.len() as f64
    }

    /// Total CPU time attributed to jobs (routing + pipeline); with N
    /// workers this can exceed [`EngineReport::wall_clock`] by up to N×.
    pub fn busy_time(&self) -> Duration {
        self.circuits
            .iter()
            .map(|c| c.route_time + c.pipeline_time)
            .sum()
    }

    /// Per-topology aggregates over a heterogeneous batch, grouped by
    /// topology label in first-seen (submission) order.
    pub fn by_topology(&self) -> Vec<TopologySummary> {
        let mut groups: Vec<TopologySummary> = Vec::new();
        for c in &self.circuits {
            let entry = match groups.iter_mut().find(|g| g.topology == c.topology) {
                Some(g) => g,
                None => {
                    groups.push(TopologySummary {
                        topology: c.topology.clone(),
                        circuits: 0,
                        total_swaps: 0,
                        mean_reduction_pct: 0.0,
                    });
                    groups.last_mut().expect("just pushed")
                }
            };
            entry.circuits += 1;
            entry.total_swaps += c.result.swaps;
            entry.mean_reduction_pct += c.result.duration_reduction_pct;
        }
        for g in &mut groups {
            g.mean_reduction_pct /= g.circuits as f64;
        }
        groups
    }

    /// Per-calibration aggregates over a calibrated batch, grouped by
    /// calibration label in first-seen (submission) order — the rollup
    /// that makes noise-aware vs noise-blind routing comparable on a
    /// heterogeneous device scenario.
    pub fn by_calibration(&self) -> Vec<CalibrationSummary> {
        let mut groups: Vec<CalibrationSummary> = Vec::new();
        for c in &self.circuits {
            let entry = match groups.iter_mut().find(|g| g.calibration == c.calibration) {
                Some(g) => g,
                None => {
                    groups.push(CalibrationSummary {
                        calibration: c.calibration.clone(),
                        circuits: 0,
                        total_swaps: 0,
                        mean_reduction_pct: 0.0,
                        mean_optimized_ft: 0.0,
                    });
                    groups.last_mut().expect("just pushed")
                }
            };
            entry.circuits += 1;
            entry.total_swaps += c.result.swaps;
            entry.mean_reduction_pct += c.result.duration_reduction_pct;
            entry.mean_optimized_ft += c.result.optimized_total_fidelity;
        }
        for g in &mut groups {
            g.mean_reduction_pct /= g.circuits as f64;
            g.mean_optimized_ft /= g.circuits as f64;
        }
        groups
    }

    /// Rolls the trace up into stage-time statistics (p50/p95 per stage)
    /// and a thread-utilization fraction. Wall-clock data: render it only
    /// under `--timings`-style diagnostic flags, never in the
    /// deterministic report.
    pub fn metrics_summary(&self) -> MetricsSummary {
        let busy: u64 = self.trace.spans.iter().map(|s| s.dur_ns).sum();
        let capacity = self.wall_clock.as_nanos() as u64 * self.threads as u64;
        MetricsSummary {
            stages: self.trace.stage_summary(),
            threads: self.threads,
            wall_clock: self.wall_clock,
            utilization: if capacity > 0 {
                (busy as f64 / capacity as f64).min(1.0)
            } else {
                0.0
            },
        }
    }

    /// Batch-wide verification rollup, or `None` when no job carried a
    /// verdict (verification off).
    pub fn verification_summary(&self) -> Option<VerificationSummary> {
        let mut summary = VerificationSummary {
            exact: 0,
            mps: 0,
            sampled: 0,
            skipped: 0,
            errors: 0,
            failed: 0,
            min_fidelity: f64::INFINITY,
        };
        let mut any = false;
        for v in self.circuits.iter().filter_map(|c| c.verification.as_ref()) {
            any = true;
            match v {
                Verification::Exact { .. } => summary.exact += 1,
                Verification::Mps { .. } => summary.mps += 1,
                Verification::Sampled { .. } => summary.sampled += 1,
                Verification::Skipped { .. } => summary.skipped += 1,
                Verification::Error { .. } => summary.errors += 1,
            }
            if v.failed() {
                summary.failed += 1;
            }
            if let Some(f) = v.fidelity() {
                summary.min_fidelity = summary.min_fidelity.min(f);
            }
        }
        if !any {
            return None;
        }
        if summary.min_fidelity == f64::INFINITY {
            summary.min_fidelity = f64::NAN;
        }
        Some(summary)
    }
}

/// Batch-wide verification counters (see
/// [`EngineReport::verification_summary`]).
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationSummary {
    /// Jobs verified by the exact unitary oracle.
    pub exact: usize,
    /// Jobs verified by the matrix-product-state overlap oracle.
    pub mps: usize,
    /// Jobs verified by the Monte-Carlo oracle.
    pub sampled: usize,
    /// Jobs whose verification was skipped (too wide to simulate) — a
    /// policy outcome, not a failure.
    pub skipped: usize,
    /// Jobs whose oracle could not run at all (malformed inputs — a
    /// broken caller invariant). Always counted in `failed` too.
    pub errors: usize,
    /// Jobs whose oracle rejected the equivalence or errored out.
    pub failed: usize,
    /// Worst fidelity any oracle measured (`NaN` when every job skipped).
    pub min_fidelity: f64,
}

impl VerificationSummary {
    /// True when every verified job passed its oracle.
    pub fn all_passed(&self) -> bool {
        self.failed == 0
    }
}

impl fmt::Display for VerificationSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify: {} exact, ", self.exact)?;
        // The MPS count renders only when present, keeping the summary
        // line byte-stable for the (common) batches that never escalate.
        if self.mps > 0 {
            write!(f, "{} mps, ", self.mps)?;
        }
        write!(
            f,
            "{} sampled, {} skipped, {} failed",
            self.sampled, self.skipped, self.failed
        )?;
        if self.errors > 0 {
            write!(f, " ({} oracle errors)", self.errors)?;
        }
        if !self.min_fidelity.is_nan() {
            write!(f, ", min F {:.9}", self.min_fidelity)?;
        }
        Ok(())
    }
}

/// Wall-clock rollup of a batch trace (see
/// [`EngineReport::metrics_summary`]): per-stage duration statistics and
/// how much of the worker pool's capacity the spans cover.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSummary {
    /// Per-stage statistics, in first-span order.
    pub stages: Vec<StageStats>,
    /// Worker threads the batch ran with.
    pub threads: usize,
    /// End-to-end batch wall clock.
    pub wall_clock: Duration,
    /// Fraction of `threads × wall_clock` covered by recorded spans, in
    /// `[0, 1]` — low values mean workers idled (e.g. one late job
    /// serialized the tail).
    pub utilization: f64,
}

impl fmt::Display for MetricsSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>6} {:>10} {:>10} {:>10} {:>10}",
            "stage", "spans", "total", "p50", "p95", "max"
        )?;
        let ms = |ns: u64| format!("{:.3}ms", ns as f64 / 1e6);
        for s in &self.stages {
            writeln!(
                f,
                "{:<12} {:>6} {:>10} {:>10} {:>10} {:>10}",
                s.name,
                s.count,
                ms(s.total_ns),
                ms(s.p50_ns),
                ms(s.p95_ns),
                ms(s.max_ns),
            )?;
        }
        write!(
            f,
            "threads {}, wall {:.1} ms, utilization {:.0}%",
            self.threads,
            self.wall_clock.as_secs_f64() * 1e3,
            self.utilization * 100.0,
        )
    }
}

/// Aggregate outcome for every job sharing one coupling topology.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySummary {
    /// Topology label (see `CouplingMap::label`).
    pub topology: String,
    /// Number of jobs routed on this topology.
    pub circuits: usize,
    /// Total SWAPs inserted across those jobs.
    pub total_swaps: usize,
    /// Mean duration reduction over those jobs, percent.
    pub mean_reduction_pct: f64,
}

/// Aggregate outcome for every job sharing one device calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationSummary {
    /// Calibration label (see `Calibration::label`).
    pub calibration: String,
    /// Number of jobs scored under this calibration.
    pub circuits: usize,
    /// Total SWAPs inserted across those jobs.
    pub total_swaps: usize,
    /// Mean duration reduction over those jobs, percent.
    pub mean_reduction_pct: f64,
    /// Mean optimized total fidelity `F_T` over those jobs — the headline
    /// number noise-aware routing is judged on. The per-wire decay term
    /// uses the circuit's initial-layout wires (Eq. 11's convention, kept
    /// for bit-compatibility with the homogeneous model); routing quality
    /// enters through the duration and the per-edge gate-error survival
    /// product.
    pub mean_optimized_ft: f64,
}

impl fmt::Display for EngineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:<16} {:<12} {:>6} {:>7} {:>10} {:>10} {:>7} {:>9} {:>9}",
            "circuit",
            "topology",
            "calib",
            "swaps",
            "blocks",
            "D[base]",
            "D[opt]",
            "Δ%",
            "F[T]opt",
            "time"
        )?;
        for c in &self.circuits {
            let r = &c.result;
            write!(
                f,
                "{:<12} {:<16} {:<12} {:>6} {:>7} {:>10.2} {:>10.2} {:>7.1} {:>9.4} {:>8.1}ms",
                r.name,
                c.topology,
                c.calibration,
                r.swaps,
                r.blocks,
                r.baseline_duration,
                r.optimized_duration,
                r.duration_reduction_pct,
                r.optimized_total_fidelity,
                (c.route_time + c.pipeline_time).as_secs_f64() * 1e3,
            )?;
            match &c.verification {
                Some(v) => writeln!(f, "  {v}")?,
                None => writeln!(f)?,
            }
        }
        writeln!(
            f,
            "batch: {} circuits on {} threads in {:.1} ms (busy {:.1} ms), mean reduction {:.1}%",
            self.circuits.len(),
            self.threads,
            self.wall_clock.as_secs_f64() * 1e3,
            self.busy_time().as_secs_f64() * 1e3,
            self.average_reduction_pct(),
        )?;
        match self.cache_stats() {
            Some(s) => writeln!(
                f,
                "cache: {} hits / {} misses ({:.1}% hit rate), {} entries",
                s.hits,
                s.misses,
                s.hit_rate().unwrap_or(0.0) * 100.0,
                s.entries,
            )?,
            None => writeln!(f, "cache: disabled")?,
        }
        if let Some(v) = self.verification_summary() {
            writeln!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, reduction: f64) -> BenchmarkResult {
        BenchmarkResult {
            name: name.to_string(),
            swaps: 2,
            blocks: 5,
            baseline_duration: 10.0,
            optimized_duration: 10.0 * (1.0 - reduction / 100.0),
            duration_reduction_pct: reduction,
            fq_improvement_pct: 0.1,
            ft_improvement_pct: 1.0,
            baseline_total_fidelity: 0.8,
            optimized_total_fidelity: 0.9,
        }
    }

    fn report() -> EngineReport {
        EngineReport {
            circuits: vec![
                CircuitReport {
                    result: result("a", 10.0),
                    topology: "grid4x4".to_string(),
                    calibration: "uniform".to_string(),
                    routed: None,
                    verification: None,
                    route_time: Duration::from_millis(2),
                    pipeline_time: Duration::from_millis(3),
                },
                CircuitReport {
                    result: result("b", 20.0),
                    topology: "ring16".to_string(),
                    calibration: "hotspot2".to_string(),
                    routed: None,
                    verification: None,
                    route_time: Duration::from_millis(1),
                    pipeline_time: Duration::from_millis(4),
                },
            ],
            threads: 2,
            wall_clock: Duration::from_millis(6),
            baseline_cache: Some(CacheStats {
                hits: 30,
                misses: 10,
                entries: 10,
            }),
            optimized_cache: Some(CacheStats {
                hits: 20,
                misses: 20,
                entries: 20,
            }),
            trace: Trace::default(),
        }
    }

    #[test]
    fn aggregates() {
        let r = report();
        assert!((r.average_reduction_pct() - 15.0).abs() < 1e-12);
        assert_eq!(r.busy_time(), Duration::from_millis(10));
        let s = r.cache_stats().unwrap();
        assert_eq!((s.hits, s.misses, s.entries), (50, 30, 30));
        assert!((r.cache_hit_rate().unwrap() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn by_topology_groups_in_submission_order() {
        let mut r = report();
        r.circuits.push(CircuitReport {
            result: result("c", 30.0),
            topology: "grid4x4".to_string(),
            calibration: "uniform".to_string(),
            routed: None,
            verification: None,
            route_time: Duration::from_millis(1),
            pipeline_time: Duration::from_millis(1),
        });
        let groups = r.by_topology();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].topology, "grid4x4");
        assert_eq!(groups[0].circuits, 2);
        assert_eq!(groups[0].total_swaps, 4);
        assert!((groups[0].mean_reduction_pct - 20.0).abs() < 1e-12);
        assert_eq!(groups[1].topology, "ring16");
        assert_eq!(groups[1].circuits, 1);
        assert!((groups[1].mean_reduction_pct - 20.0).abs() < 1e-12);
    }

    #[test]
    fn by_calibration_groups_and_averages_ft() {
        let mut r = report();
        r.circuits.push(CircuitReport {
            result: BenchmarkResult {
                optimized_total_fidelity: 0.5,
                ..result("c", 30.0)
            },
            topology: "grid4x4".to_string(),
            calibration: "hotspot2".to_string(),
            routed: None,
            verification: None,
            route_time: Duration::from_millis(1),
            pipeline_time: Duration::from_millis(1),
        });
        let groups = r.by_calibration();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].calibration, "uniform");
        assert_eq!(groups[0].circuits, 1);
        assert!((groups[0].mean_optimized_ft - 0.9).abs() < 1e-12);
        assert_eq!(groups[1].calibration, "hotspot2");
        assert_eq!(groups[1].circuits, 2);
        assert!((groups[1].mean_optimized_ft - 0.7).abs() < 1e-12);
        assert!((groups[1].mean_reduction_pct - 25.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_cache_and_rows() {
        let text = report().to_string();
        assert!(text.contains("cache: 50 hits / 30 misses"));
        assert!(text.contains("mean reduction 15.0%"));
        assert!(text.contains("ring16"));
        let mut disabled = report();
        disabled.baseline_cache = None;
        disabled.optimized_cache = None;
        assert!(disabled.to_string().contains("cache: disabled"));
    }

    #[test]
    fn verification_summary_rolls_up_and_renders() {
        let mut r = report();
        assert!(r.verification_summary().is_none());
        r.circuits[0].verification = Some(Verification::Exact {
            fidelity: 1.0,
            columns: 16,
            width: 4,
            passed: true,
        });
        r.circuits[1].verification = Some(Verification::Sampled {
            min_fidelity: 0.5,
            samples: 8,
            width: 16,
            passed: false,
        });
        let s = r.verification_summary().unwrap();
        assert_eq!((s.exact, s.sampled, s.skipped, s.failed), (1, 1, 0, 1));
        assert!(!s.all_passed());
        assert!((s.min_fidelity - 0.5).abs() < 1e-12);
        let text = r.to_string();
        assert!(text.contains("verify: 1 exact, 1 sampled, 0 skipped, 1 failed"));
        assert!(text.contains("sampled FAIL"));

        // All-skipped batches report NaN fidelity but still roll up.
        r.circuits[0].verification = Some(Verification::Skipped {
            reason: "off".to_string(),
        });
        r.circuits[1].verification = Some(Verification::Skipped {
            reason: "off".to_string(),
        });
        let s = r.verification_summary().unwrap();
        assert_eq!(s.skipped, 2);
        assert!(s.min_fidelity.is_nan());
        assert!(s.all_passed());

        // An oracle error is a failure — a batch that asked for
        // verification and didn't get it must not report success.
        r.circuits[0].verification = Some(Verification::Error {
            reason: "layout is not a permutation".to_string(),
        });
        let s = r.verification_summary().unwrap();
        assert_eq!((s.errors, s.failed, s.skipped), (1, 1, 1));
        assert!(!s.all_passed());
        assert!(r.to_string().contains("(1 oracle errors)"));
        assert!(r
            .to_string()
            .contains("ERROR (layout is not a permutation)"));
    }

    #[test]
    fn empty_report_mean_is_nan() {
        let r = EngineReport {
            circuits: vec![],
            threads: 1,
            wall_clock: Duration::ZERO,
            baseline_cache: None,
            optimized_cache: None,
            trace: Trace::default(),
        };
        assert!(r.average_reduction_pct().is_nan());
        assert!(r.cache_hit_rate().is_none());
        let m = r.metrics_summary();
        assert!(m.stages.is_empty());
        assert_eq!(m.utilization, 0.0);
    }

    #[test]
    fn metrics_summary_rolls_up_stage_times_and_utilization() {
        use paradrive_obs::SpanEvent;
        let mut r = report();
        r.wall_clock = Duration::from_nanos(1000);
        r.threads = 2;
        // 1500 ns of spans over a 2 × 1000 ns budget: 75% utilization.
        for (name, tid, start_ns, dur_ns) in [
            ("route", 0, 0, 600),
            ("route", 1, 0, 400),
            ("schedule", 0, 600, 500),
        ] {
            r.trace.spans.push(SpanEvent {
                name,
                label: String::new(),
                key: 0,
                tid,
                start_ns,
                dur_ns,
            });
        }
        let m = r.metrics_summary();
        assert_eq!(m.stages.len(), 2);
        assert_eq!(m.stages[0].name, "route");
        assert_eq!(m.stages[0].count, 2);
        assert_eq!(m.stages[0].total_ns, 1000);
        assert!((m.utilization - 0.75).abs() < 1e-12);
        let text = m.to_string();
        assert!(text.contains("utilization 75%"), "{text}");
        assert!(text.contains("schedule"), "{text}");
        // The deterministic report ignores the trace entirely.
        let mut quiet = report();
        quiet.wall_clock = r.wall_clock;
        quiet.threads = r.threads;
        assert_eq!(quiet.to_string(), r.to_string());
    }
}

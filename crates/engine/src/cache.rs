//! The sharded, read-mostly decomposition cost cache.
//!
//! Thousands of consolidated blocks across a benchmark batch share a
//! handful of Weyl-chamber classes (every routed SWAP is the same class,
//! every `CX` the same class, …), yet the cost models re-derive the
//! decomposition for each block. [`DecompositionCache`] memoizes any
//! [`CostModel`] keyed by the block's [`WeylKey`].
//!
//! **Exactness.** The quantized key only selects a hash bucket; within a
//! bucket, entries are matched on the *exact bit pattern* of the query
//! coordinates. A cached answer is therefore always the same `f64`s the
//! wrapped model would have produced — the cached engine stays bit-for-bit
//! identical to the uncached sequential pipeline, never "close enough".
//!
//! **Concurrency.** The table is split into shards, each behind its own
//! `RwLock`; lookups take a read lock, and a miss takes a short write lock
//! only to install an empty [`OnceLock`] cell. The cost itself is computed
//! *outside* every shard lock via `OnceLock::get_or_init`, so threads
//! racing on the same fresh target block on the one in-flight computation
//! instead of repeating it — without a cell, N workers starting on a batch
//! would each pay the full synthesis for the same first-seen classes (a
//! cold-start thundering herd measured at N× the cached runtime).

use paradrive_transpiler::{CostModel, GateCost};
use paradrive_weyl::{WeylKey, WeylPoint};
use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Hit/miss counters and current size of a [`DecompositionCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that had to run the wrapped cost model.
    pub misses: u64,
    /// Distinct entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `None` before the first lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }

    /// Component-wise sum — aggregates the per-model caches for reports.
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            entries: self.entries + other.entries,
        }
    }
}

/// Counters for one lock domain of a [`DecompositionCache`] (see
/// [`DecompositionCache::shard_stats`]).
///
/// Shard assignment comes from a per-cache `RandomState` hasher, so the
/// *distribution* across shards varies run to run even though the summed
/// totals are deterministic. Per-shard numbers therefore belong in traces
/// (wall-clock-bearing diagnostics), never in deterministic reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Lookups this shard answered from its table.
    pub hits: u64,
    /// Lookups that ran the wrapped cost model.
    pub misses: u64,
    /// Fresh cells installed (one per distinct coordinate seen).
    pub inserts: u64,
    /// Nanoseconds threads spent blocked on another thread's in-flight
    /// `OnceLock` computation (the cold-start thundering-herd cost the
    /// cell design amortizes).
    pub wait_ns: u64,
    /// Distinct entries currently stored.
    pub entries: usize,
}

/// One shard entry: the exact query coordinates and a write-once cell the
/// first owner fills (waiters block on it instead of recomputing).
/// Near-identical points that share a [`WeylKey`] bucket but differ in
/// their bits coexist in the bucket's vector (it stays length 1 in
/// practice — the quantum is below extraction noise).
type Bucket = Vec<(WeylPoint, Arc<OnceLock<GateCost>>)>;

/// One lock domain: its table plus its own counters, so the hot path
/// never touches cache-global atomics shared across every worker.
#[derive(Default)]
struct Shard {
    table: RwLock<HashMap<WeylKey, Bucket>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    wait_ns: AtomicU64,
}

/// A sharded memoization table for [`CostModel::cost`].
///
/// One cache serves one model — costs are a property of the (model,
/// target) pair, so wrap each model in its own cache (or its own
/// [`CachedCostModel`]).
pub struct DecompositionCache {
    shards: Vec<Shard>,
    hasher: RandomState,
}

impl Default for DecompositionCache {
    fn default() -> Self {
        Self::new()
    }
}

impl DecompositionCache {
    /// Default shard count: enough to keep write contention negligible at
    /// any realistic worker count without bloating the structure.
    const DEFAULT_SHARDS: usize = 16;

    /// Creates an empty cache with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(Self::DEFAULT_SHARDS)
    }

    /// Creates an empty cache with `shards` independent lock domains.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "cache needs at least one shard");
        DecompositionCache {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            hasher: RandomState::new(),
        }
    }

    fn shard_of(&self, key: WeylKey) -> &Shard {
        let h = self.hasher.hash_one(key);
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Exact bit-pattern equality (`-0.0` and `0.0` are distinct, which at
    /// worst duplicates a bucket entry — never a wrong answer).
    fn same_bits(a: WeylPoint, b: WeylPoint) -> bool {
        a.c1.to_bits() == b.c1.to_bits()
            && a.c2.to_bits() == b.c2.to_bits()
            && a.c3.to_bits() == b.c3.to_bits()
    }

    /// Returns `model.cost(target)`, memoized.
    pub fn cost_through(&self, model: &dyn CostModel, target: WeylPoint) -> GateCost {
        let key = WeylKey::new(target);
        let shard = self.shard_of(key);
        let find = |bucket: &Bucket| {
            bucket
                .iter()
                .find(|(p, _)| Self::same_bits(*p, target))
                .map(|(_, cell)| Arc::clone(cell))
        };
        let cell = {
            let table = shard.table.read().expect("cache shard poisoned");
            table.get(&key).and_then(find)
        };
        let cell = cell.unwrap_or_else(|| {
            // Install (or adopt a racer's) empty cell under a short write
            // lock; the model itself never runs while a shard is locked.
            let mut table = shard.table.write().expect("cache shard poisoned");
            let bucket = table.entry(key).or_default();
            find(bucket).unwrap_or_else(|| {
                let fresh = Arc::new(OnceLock::new());
                bucket.push((target, Arc::clone(&fresh)));
                shard.inserts.fetch_add(1, Ordering::Relaxed);
                fresh
            })
        });
        // The warm path: the cell is already filled — count the hit and
        // skip the clock entirely.
        if let Some(cost) = cell.get() {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            return *cost;
        }
        // First owner computes (possibly milliseconds of synthesis); every
        // concurrent waiter blocks here instead of duplicating the work.
        // Waiters still count as hits (the totals stay identical to the
        // pre-instrumented cache), but their blocked time is attributed to
        // the shard's `wait_ns` so traces can show the cold-start herd.
        let blocked = Instant::now();
        let mut computed = false;
        let cost = *cell.get_or_init(|| {
            computed = true;
            model.cost(target)
        });
        if computed {
            shard.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            shard
                .wait_ns
                .fetch_add(blocked.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        cost
    }

    /// Snapshot of the hit/miss counters and entry count, summed over
    /// every shard. The totals are deterministic (a pure function of the
    /// lookups made), unlike the per-shard split.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        for s in self.shard_stats() {
            stats.hits += s.hits;
            stats.misses += s.misses;
            stats.entries += s.entries;
        }
        stats
    }

    /// Per-shard counter snapshot, in shard-index order — trace/diagnostic
    /// data (see [`ShardStats`] on why it must stay out of reports).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                inserts: s.inserts.load(Ordering::Relaxed),
                wait_ns: s.wait_ns.load(Ordering::Relaxed),
                entries: s
                    .table
                    .read()
                    .expect("cache shard poisoned")
                    .values()
                    .map(Vec::len)
                    .sum(),
            })
            .collect()
    }

    /// Drops every entry and resets the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.table.write().expect("cache shard poisoned").clear();
            shard.hits.store(0, Ordering::Relaxed);
            shard.misses.store(0, Ordering::Relaxed);
            shard.inserts.store(0, Ordering::Relaxed);
            shard.wait_ns.store(0, Ordering::Relaxed);
        }
    }
}

/// A [`CostModel`] adapter that answers through a [`DecompositionCache`].
///
/// Borrows both halves so one long-lived cache can serve many scheduling
/// passes (and many worker threads — the adapter is `Sync` whenever the
/// wrapped model is).
pub struct CachedCostModel<'a> {
    inner: &'a dyn CostModel,
    cache: &'a DecompositionCache,
}

impl<'a> CachedCostModel<'a> {
    /// Wraps `inner` with `cache`.
    pub fn new(inner: &'a dyn CostModel, cache: &'a DecompositionCache) -> Self {
        CachedCostModel { inner, cache }
    }
}

impl CostModel for CachedCostModel<'_> {
    fn cost(&self, target: WeylPoint) -> GateCost {
        self.cache.cost_through(self.inner, target)
    }

    fn d_1q(&self) -> f64 {
        self.inner.d_1q()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A model that counts how often it is actually consulted.
    struct Counting {
        calls: AtomicUsize,
    }

    impl Counting {
        fn new() -> Self {
            Counting {
                calls: AtomicUsize::new(0),
            }
        }
    }

    impl CostModel for Counting {
        fn cost(&self, target: WeylPoint) -> GateCost {
            self.calls.fetch_add(1, Ordering::Relaxed);
            GateCost {
                two_q_time: target.c1,
                one_q_layers: 2,
            }
        }
        fn d_1q(&self) -> f64 {
            0.25
        }
        fn name(&self) -> &str {
            "counting"
        }
    }

    #[test]
    fn repeated_lookups_hit() {
        let cache = DecompositionCache::new();
        let model = Counting::new();
        for _ in 0..10 {
            let c = cache.cost_through(&model, WeylPoint::CNOT);
            assert_eq!(c.two_q_time, WeylPoint::CNOT.c1);
        }
        assert_eq!(model.calls.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (9, 1, 1));
        assert!((stats.hit_rate().unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn distinct_points_miss_separately() {
        let cache = DecompositionCache::new();
        let model = Counting::new();
        cache.cost_through(&model, WeylPoint::CNOT);
        cache.cost_through(&model, WeylPoint::SWAP);
        cache.cost_through(&model, WeylPoint::ISWAP);
        assert_eq!(model.calls.load(Ordering::Relaxed), 3);
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn cached_answers_are_bit_exact() {
        let cache = DecompositionCache::new();
        let model = Counting::new();
        // An awkward, noise-like coordinate.
        let p = WeylPoint::new(0.123456789012345, 0.04, 0.01);
        let fresh = model.cost(p);
        let via_cache = cache.cost_through(&model, p);
        let again = cache.cost_through(&model, p);
        assert_eq!(fresh.two_q_time.to_bits(), via_cache.two_q_time.to_bits());
        assert_eq!(fresh.two_q_time.to_bits(), again.two_q_time.to_bits());
    }

    #[test]
    fn sub_quantum_twins_share_a_bucket_but_not_an_entry() {
        // Two points inside the same lattice cell but with different bits:
        // both get exact answers, and the bucket holds both.
        let cache = DecompositionCache::new();
        let model = Counting::new();
        let p = WeylPoint::new(0.5, 0.1, 0.05);
        let twin = WeylPoint::new(0.5 + 1e-13, 0.1, 0.05);
        assert_eq!(WeylKey::new(p), WeylKey::new(twin));
        let cp = cache.cost_through(&model, p);
        let ct = cache.cost_through(&model, twin);
        assert_eq!(cp.two_q_time.to_bits(), p.c1.to_bits());
        assert_eq!(ct.two_q_time.to_bits(), twin.c1.to_bits());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = DecompositionCache::new();
        let model = Counting::new();
        cache.cost_through(&model, WeylPoint::CNOT);
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
        cache.cost_through(&model, WeylPoint::CNOT);
        assert_eq!(model.calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache = DecompositionCache::with_shards(4);
        let model = Counting::new();
        let points: Vec<WeylPoint> = (0..64)
            .map(|i| WeylPoint::new(0.01 + i as f64 * 0.02, 0.005, 0.0))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for &p in &points {
                        let c = cache.cost_through(&model, p);
                        assert_eq!(c.two_q_time.to_bits(), p.c1.to_bits());
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.entries, points.len());
        assert_eq!(stats.hits + stats.misses, 4 * points.len() as u64);
    }

    #[test]
    fn shard_stats_sum_to_totals() {
        let cache = DecompositionCache::with_shards(4);
        let model = Counting::new();
        for p in [WeylPoint::CNOT, WeylPoint::SWAP, WeylPoint::ISWAP] {
            cache.cost_through(&model, p);
            cache.cost_through(&model, p);
        }
        let shards = cache.shard_stats();
        assert_eq!(shards.len(), 4);
        let (hits, misses, inserts, entries) = shards
            .iter()
            .fold((0u64, 0u64, 0u64, 0usize), |(h, m, i, e), s| {
                (h + s.hits, m + s.misses, i + s.inserts, e + s.entries)
            });
        let totals = cache.stats();
        assert_eq!(
            (hits, misses, entries),
            (totals.hits, totals.misses, totals.entries)
        );
        assert_eq!((hits, misses, inserts, entries), (3, 3, 3, 3));
        cache.clear();
        assert!(cache
            .shard_stats()
            .iter()
            .all(|s| *s == ShardStats::default()));
    }

    #[test]
    fn adapter_forwards_metadata() {
        let cache = DecompositionCache::new();
        let model = Counting::new();
        let cached = CachedCostModel::new(&model, &cache);
        assert_eq!(cached.d_1q(), 0.25);
        assert_eq!(cached.name(), "counting");
        let c = cached.cost(WeylPoint::B);
        assert_eq!(c.two_q_time.to_bits(), WeylPoint::B.c1.to_bits());
    }
}

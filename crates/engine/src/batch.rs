//! Batch submission: [`Job`]s, the [`Batch`] container, and [`EngineConfig`].
//!
//! A batch carries a *default* coupling topology plus, optionally, a
//! per-job override ([`Batch::push_on`]) — one engine run can therefore
//! fan a whole topology × workload cross-product across the worker pool
//! while sharing a single decomposition cache (decomposition costs depend
//! only on the Weyl class, never on the topology, so cache entries are
//! valid across every map in the batch). Topologies and [`Calibration`]s
//! are held behind [`Arc`] so a sweep that reuses one device across many
//! jobs shares a single distance matrix and calibration table.

use paradrive_circuit::benchmarks::standard_suite;
use paradrive_circuit::Circuit;
use paradrive_transpiler::calibration::Calibration;
use paradrive_transpiler::fidelity::FidelityModel;
use paradrive_transpiler::topology::CouplingMap;
use paradrive_verify::{VerifyConfig, VerifyLevel};
use std::sync::Arc;

/// One unit of batch work: a named logical circuit to push through the
/// route → consolidate → schedule → fidelity pipeline, optionally pinned
/// to its own coupling topology and device calibration.
#[derive(Debug, Clone)]
pub struct Job {
    /// Display name carried into the report.
    pub name: String,
    /// The logical circuit.
    pub circuit: Circuit,
    /// Per-job topology override (`None` uses the batch default).
    map: Option<Arc<CouplingMap>>,
    /// Device calibration (`None` runs the homogeneous legacy pipeline).
    calibration: Option<Arc<Calibration>>,
}

impl Job {
    /// Creates a job on the batch's default topology.
    pub fn new(name: impl Into<String>, circuit: Circuit) -> Self {
        Job {
            name: name.into(),
            circuit,
            map: None,
            calibration: None,
        }
    }

    /// Creates a job pinned to its own coupling topology.
    pub fn on(name: impl Into<String>, circuit: Circuit, map: Arc<CouplingMap>) -> Self {
        Job {
            name: name.into(),
            circuit,
            map: Some(map),
            calibration: None,
        }
    }

    /// Attaches a device calibration (builder). The calibration must be
    /// built for exactly the job's topology (same qubit count and edge
    /// set, see `Calibration::validate_for`); mismatches fail the job at
    /// run time with a typed error.
    #[must_use]
    pub fn calibrated(mut self, calibration: Arc<Calibration>) -> Self {
        self.calibration = Some(calibration);
        self
    }

    /// The job's topology override, if any.
    pub fn map(&self) -> Option<&CouplingMap> {
        self.map.as_deref()
    }

    /// The job's device calibration, if any.
    pub fn calibration(&self) -> Option<&Calibration> {
        self.calibration.as_deref()
    }
}

/// A batch of jobs with a default coupling topology and optional per-job
/// overrides (a *heterogeneous* batch).
///
/// Submission order is preserved: report entries come back in the order
/// jobs were pushed, regardless of which worker processed them.
#[derive(Debug, Clone)]
pub struct Batch {
    map: Arc<CouplingMap>,
    jobs: Vec<Job>,
}

impl Batch {
    /// Creates an empty batch whose default topology is `map`.
    pub fn new(map: CouplingMap) -> Self {
        Batch::with_shared(Arc::new(map))
    }

    /// Creates an empty batch around an already-shared topology.
    pub fn with_shared(map: Arc<CouplingMap>) -> Self {
        Batch {
            map,
            jobs: Vec::new(),
        }
    }

    /// The paper's Table VII workload suite on the 4×4 lattice.
    pub fn standard(workload_seed: u64) -> Self {
        let mut batch = Batch::new(CouplingMap::grid(4, 4));
        for b in standard_suite(workload_seed) {
            batch.push(b.name, b.circuit);
        }
        batch
    }

    /// Appends one job on the default topology.
    pub fn push(&mut self, name: impl Into<String>, circuit: Circuit) -> &mut Self {
        self.jobs.push(Job::new(name, circuit));
        self
    }

    /// Appends one job pinned to its own topology.
    pub fn push_on(
        &mut self,
        name: impl Into<String>,
        circuit: Circuit,
        map: Arc<CouplingMap>,
    ) -> &mut Self {
        self.jobs.push(Job::on(name, circuit, map));
        self
    }

    /// Appends one job pinned to its own topology *and* device
    /// calibration — one sweep cell of a topology × calibration
    /// cross-product.
    pub fn push_calibrated(
        &mut self,
        name: impl Into<String>,
        circuit: Circuit,
        map: Arc<CouplingMap>,
        calibration: Arc<Calibration>,
    ) -> &mut Self {
        self.jobs
            .push(Job::on(name, circuit, map).calibrated(calibration));
        self
    }

    /// The batch's default coupling topology.
    pub fn map(&self) -> &CouplingMap {
        &self.map
    }

    /// The effective topology of job `job` (its override, or the default).
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    pub fn map_for(&self, job: usize) -> &CouplingMap {
        self.jobs[job].map().unwrap_or(&self.map)
    }

    /// The calibration of job `job`, if one is attached.
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    pub fn calibration_for(&self, job: usize) -> Option<&Calibration> {
        self.jobs[job].calibration()
    }

    /// The submitted jobs, in submission order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no jobs have been submitted.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// How the optimized model prices general (non-named) target classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Costing {
    /// Query the precomputed Monte-Carlo coverage hulls
    /// ([`paradrive_core::rules::ParallelDriveRules`]) — nanoseconds per
    /// target, identical to the pre-existing sequential flow.
    #[default]
    Hull,
    /// Synthesize each general target's template on demand
    /// ([`paradrive_core::rules::SynthesizedParallelDrive`]) — the paper's
    /// Algorithm-1 discipline, milliseconds per target; this is the mode
    /// the decomposition cache pays for itself in.
    Synthesized,
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Worker threads; `0` uses [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Routing seeds per circuit (best-of-N, the paper uses 10).
    pub routing_seeds: u64,
    /// 1Q layer duration in normalized pulses (the paper uses 0.25).
    pub d_1q: f64,
    /// Decoherence model for the fidelity columns.
    pub fidelity: FidelityModel,
    /// Memoize decomposition costs across the whole batch.
    pub cache: bool,
    /// General-class costing discipline for the optimized model.
    pub costing: Costing,
    /// Keep each job's routed physical circuit in the report (costs
    /// memory; used by determinism tests and downstream consumers).
    pub keep_routed: bool,
    /// Route noise-aware on jobs that carry a calibration: SWAP scoring
    /// penalizes high-error edges and dead edges are never used. Off by
    /// default — the noise-blind scoring is the baseline costing.
    pub noise_aware: bool,
    /// Semantic verification level: each job's consolidated output is
    /// replayed through the equivalence oracles on the worker that
    /// finishes it (see [`paradrive_verify`]). `Off` by default.
    pub verify: VerifyLevel,
    /// Random product-state inputs per circuit for the Monte-Carlo
    /// verification oracle.
    pub verify_samples: u32,
    /// Base seed for the Monte-Carlo verification inputs; verdicts are a
    /// pure function of `(job, seed)`, never of the thread count.
    pub verify_seed: u64,
    /// Bond-dimension cap for the MPS verification oracle.
    pub verify_max_bond: usize,
    /// Overlap-infidelity tolerance (beyond the certified truncation
    /// bound) for the MPS verification oracle.
    pub verify_mps_tol: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let verify_defaults = VerifyConfig::default();
        EngineConfig {
            threads: 0,
            routing_seeds: 10,
            d_1q: 0.25,
            fidelity: FidelityModel::paper(),
            cache: true,
            costing: Costing::default(),
            keep_routed: false,
            noise_aware: false,
            verify: VerifyLevel::Off,
            verify_samples: verify_defaults.samples,
            verify_seed: verify_defaults.seed,
            verify_max_bond: verify_defaults.max_bond,
            verify_mps_tol: verify_defaults.mps_tol,
        }
    }
}

impl EngineConfig {
    /// Sets the worker-thread count (`0` = auto).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the number of routing seeds per circuit.
    pub fn routing_seeds(mut self, seeds: u64) -> Self {
        self.routing_seeds = seeds;
        self
    }

    /// Enables or disables the decomposition cache.
    pub fn cache(mut self, on: bool) -> Self {
        self.cache = on;
        self
    }

    /// Selects the general-class costing discipline.
    pub fn costing(mut self, costing: Costing) -> Self {
        self.costing = costing;
        self
    }

    /// Keeps routed circuits in the report.
    pub fn keep_routed(mut self, on: bool) -> Self {
        self.keep_routed = on;
        self
    }

    /// Enables or disables noise-aware routing on calibrated jobs.
    pub fn noise_aware(mut self, on: bool) -> Self {
        self.noise_aware = on;
        self
    }

    /// Sets the semantic verification level.
    pub fn verify(mut self, level: VerifyLevel) -> Self {
        self.verify = level;
        self
    }

    /// Sets the Monte-Carlo verification sample count.
    pub fn verify_samples(mut self, samples: u32) -> Self {
        self.verify_samples = samples;
        self
    }

    /// Sets the Monte-Carlo verification base seed.
    pub fn verify_seed(mut self, seed: u64) -> Self {
        self.verify_seed = seed;
        self
    }

    /// Sets the MPS verification oracle's bond-dimension cap.
    pub fn verify_max_bond(mut self, max_bond: usize) -> Self {
        self.verify_max_bond = max_bond;
        self
    }

    /// Sets the MPS verification oracle's overlap-infidelity tolerance.
    pub fn verify_mps_tol(mut self, mps_tol: f64) -> Self {
        self.verify_mps_tol = mps_tol;
        self
    }

    /// The per-job verification configuration this engine config implies.
    pub fn verify_config(&self) -> VerifyConfig {
        VerifyConfig::default()
            .level(self.verify)
            .samples(self.verify_samples)
            .seed(self.verify_seed)
            .max_bond(self.verify_max_bond)
            .mps_tol(self.verify_mps_tol)
    }

    /// The effective worker count for this configuration.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// The worker count [`crate::run_batch`] will actually spawn for
    /// `batch`: [`EngineConfig::effective_threads`] clamped to the number
    /// of routing units (jobs × seeds), never below one.
    pub fn workers_for(&self, batch: &Batch) -> usize {
        let units = batch.len() * self.routing_seeds.max(1) as usize;
        self.effective_threads().min(units.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradrive_circuit::benchmarks;

    #[test]
    fn batch_preserves_submission_order() {
        let mut b = Batch::new(CouplingMap::grid(2, 2));
        b.push("a", benchmarks::ghz(3))
            .push("b", benchmarks::ghz(4));
        assert_eq!(b.len(), 2);
        assert_eq!(b.jobs()[0].name, "a");
        assert_eq!(b.jobs()[1].name, "b");
        assert!(!b.is_empty());
    }

    #[test]
    fn heterogeneous_batch_resolves_per_job_maps() {
        let ring = Arc::new(CouplingMap::ring(8));
        let mut b = Batch::new(CouplingMap::grid(2, 2));
        b.push("default", benchmarks::ghz(4)).push_on(
            "ring",
            benchmarks::ghz(8),
            Arc::clone(&ring),
        );
        assert_eq!(b.map_for(0).label(), "grid2x2");
        assert_eq!(b.map_for(1).label(), "ring8");
        assert!(b.jobs()[0].map().is_none());
        assert_eq!(b.jobs()[1].map().unwrap().n_qubits(), 8);
    }

    #[test]
    fn calibrated_jobs_resolve_per_job_calibrations() {
        let ring = Arc::new(CouplingMap::ring(8));
        let cal = Arc::new(Calibration::uniform(&ring, FidelityModel::paper()));
        let mut b = Batch::new(CouplingMap::grid(2, 2));
        b.push("plain", benchmarks::ghz(4)).push_calibrated(
            "calibrated",
            benchmarks::ghz(8),
            Arc::clone(&ring),
            Arc::clone(&cal),
        );
        assert!(b.calibration_for(0).is_none());
        assert_eq!(b.calibration_for(1).unwrap().label(), "uniform");
        assert_eq!(b.jobs()[1].calibration().unwrap().n_qubits(), 8);
    }

    #[test]
    fn standard_batch_matches_suite() {
        let b = Batch::standard(7);
        assert_eq!(b.len(), 9);
        assert_eq!(b.map().n_qubits(), 16);
    }

    #[test]
    fn config_builders() {
        let c = EngineConfig::default()
            .threads(3)
            .routing_seeds(5)
            .cache(false)
            .keep_routed(true);
        assert_eq!(c.threads, 3);
        assert_eq!(c.effective_threads(), 3);
        assert_eq!(c.routing_seeds, 5);
        assert!(!c.cache);
        assert!(c.keep_routed);
        assert!(EngineConfig::default().effective_threads() >= 1);
    }
}

//! `paradrive-engine` — a batched, multi-threaded transpilation engine
//! with a canonical-Weyl decomposition cache.
//!
//! The paper's codesign loop (Section IV-B) scores every basis candidate
//! by transpiling a whole benchmark suite: route with best-of-N seeds,
//! consolidate, charge each block through the decomposition rules, score
//! fidelity. This crate turns that from a one-circuit-at-a-time loop into
//! a batch system:
//!
//! - [`Batch`] / [`Job`] collect circuits over a default topology, with
//!   optional per-job overrides ([`Batch::push_on`]) so one batch can
//!   span a whole topology × workload cross-product (a *heterogeneous*
//!   batch — see the `sweep` CLI in `crates/repro`);
//! - [`run_batch`] fans both circuits *and* the routing seeds inside each
//!   circuit across a [`std::thread::scope`] worker pool — deterministic
//!   and bit-for-bit identical to the sequential pipeline at any thread
//!   count. [`run_batch_streaming`] is the constant-memory variant: each
//!   finished [`CircuitReport`] is handed to a caller sink on the worker
//!   that completed it, so peak report retention is O(in-flight), not
//!   O(batch) — the entry point the sharded sweep folds through;
//! - [`DecompositionCache`] memoizes any
//!   [`CostModel`](paradrive_transpiler::CostModel) across the whole
//!   batch, keyed by the quantized
//!   [`WeylKey`](paradrive_weyl::WeylKey) with exact-bit verification,
//!   and reports hit/miss counters;
//! - [`EngineReport`] aggregates per-circuit results, timings, cache
//!   statistics and the batch wall clock, with per-topology rollups
//!   ([`EngineReport::by_topology`]) for heterogeneous batches and
//!   per-calibration rollups ([`EngineReport::by_calibration`]) for
//!   calibrated ones;
//! - jobs may carry a device
//!   [`Calibration`](paradrive_transpiler::calibration::Calibration)
//!   ([`Batch::push_calibrated`]): scheduling then charges per-edge 2Q
//!   durations, fidelity uses per-wire lifetimes and per-edge gate
//!   errors, and [`EngineConfig::noise_aware`] routes around high-error
//!   edges. A uniform calibration reproduces the legacy homogeneous
//!   pipeline bit for bit;
//! - [`EngineConfig::verify`] turns every batch into a self-checking
//!   experiment: each job's consolidated output is replayed through the
//!   [`paradrive_verify`] equivalence oracles (exact up-to-permutation on
//!   small supports, seeded Monte-Carlo beyond), with verdicts surfaced
//!   per circuit ([`CircuitReport::verification`]) and batch-wide
//!   ([`EngineReport::verification_summary`]).
//!
//! # Example
//!
//! ```
//! use paradrive_engine::{run_batch, Batch, EngineConfig};
//! use paradrive_circuit::benchmarks;
//! use paradrive_transpiler::topology::CouplingMap;
//!
//! let mut batch = Batch::new(CouplingMap::grid(3, 3));
//! batch.push("ghz8", benchmarks::ghz(8));
//! batch.push("ghz9", benchmarks::ghz(9));
//! let report = run_batch(&batch, &EngineConfig::default().threads(2).routing_seeds(3))?;
//! assert_eq!(report.circuits.len(), 2);
//! assert!(report.cache_hit_rate().unwrap() > 0.0);
//! # Ok::<(), paradrive_engine::EngineError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
pub mod cache;
mod engine;
pub mod policy;
mod report;

pub use batch::{Batch, Costing, EngineConfig, Job};
pub use cache::{CacheStats, CachedCostModel, DecompositionCache, ShardStats};
pub use engine::{run_batch, run_batch_streaming, run_batch_streaming_with_caches, JobSink};
pub use paradrive_obs::{StageStats, Trace};
pub use paradrive_verify::{Verification, VerifyLevel};
pub use policy::{
    run_fleet, EpochDecision, FleetEpochReport, FleetJob, FleetJobReport, FleetReport,
    RetranspilePolicy,
};
pub use report::{
    BatchSummary, CalibrationSummary, CircuitReport, EngineReport, MetricsSummary, TopologySummary,
    VerificationSummary,
};

use paradrive_transpiler::TranspileError;

/// Errors produced by the engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// A job failed inside the pipeline; the first failure in submission
    /// order is reported.
    Job {
        /// The failing job's name.
        job: String,
        /// The underlying transpilation failure.
        source: TranspileError,
    },
    /// A fleet replay was malformed (see [`run_fleet`]): its jobs
    /// disagreed on the timeline's epoch count.
    Fleet {
        /// What was inconsistent.
        reason: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Job { job, source } => write!(f, "job `{job}` failed: {source}"),
            EngineError::Fleet { reason } => write!(f, "fleet replay rejected: {reason}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Job { source, .. } => Some(source),
            EngineError::Fleet { .. } => None,
        }
    }
}

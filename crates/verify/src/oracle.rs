//! The equivalence oracles, operating on a compacted physical program.

use crate::physical::CompactProgram;
use crate::{Verification, VerifyError, MPS_DISCARD_CAP};
use paradrive_circuit::{Circuit, Op};
use paradrive_linalg::{paulis, C64};
use paradrive_sim::{circuit_unitary, MpsOptions, MpsState, State};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::{PI, TAU};

/// Exact unitary equivalence up to the output permutation.
///
/// With `W = U_original ⊗ I_ancilla` and `P` the permutation the router
/// reports, the routed (or consolidated) program must satisfy
/// `P · U_physical = e^{iθ} W`; the oracle measures the process fidelity
/// `|tr(W† P U)|² / d²`, which is 1 exactly when that holds. The trace is
/// accumulated column by column — each basis column of `U_physical` is one
/// statevector run (the same construction as
/// [`circuit_unitary`]), permuted, and projected onto the
/// matching column of `W`, so the full `d × d` product is never formed.
pub(crate) fn exact(
    original: &Circuit,
    prog: &CompactProgram,
    max_infidelity: f64,
) -> Result<Verification, VerifyError> {
    let u_orig = circuit_unitary(original)?;
    let s = prog.width;
    let d = 1usize << s;
    let anc_bits = s - prog.n_logical;
    let anc_mask = (1usize << anc_bits) - 1;
    let dl = 1usize << prog.n_logical;
    let mut tr = C64::ZERO;
    // One register reused across all columns: after the first column's
    // permute warms the scratch buffer, the whole sweep is allocation-free.
    let mut st = State::zero(s);
    for col in 0..d {
        st.reset_basis(col);
        prog.apply_to(&mut st)?;
        st.permute(&prog.perm)?;
        let va = st.amplitudes();
        // Column `col = (x, anc)` of W is (U_orig e_x) ⊗ e_anc.
        let x = col >> anc_bits;
        let anc = col & anc_mask;
        for y in 0..dl {
            tr += u_orig[(y, x)].conj() * va[(y << anc_bits) | anc];
        }
    }
    let fidelity = tr.norm_sqr() / (d as f64 * d as f64);
    Ok(Verification::Exact {
        fidelity,
        columns: d,
        width: s,
        passed: 1.0 - fidelity <= max_infidelity,
    })
}

/// The matrix-product-state overlap oracle for wide circuits.
///
/// Both sides evolve from `|0…0⟩` as MPS over the full compact support:
/// the logical side applies the original circuit's gates on wires
/// `0..n_logical` (ancilla sites stay `|0⟩` at bond 1 for free), the
/// physical side replays the compacted program and then the router's
/// permutation as a tracked swap network. The verdict is the squared
/// overlap `|⟨ψ_logical|P·ψ_physical⟩|²` — contracted through transfer
/// matrices, never through a dense statevector, so width is unbounded.
///
/// Scope: this is *state* equivalence on the all-zeros input — the state
/// the engine actually prepares — not full process equivalence. Defects
/// that act trivially on `|0…0⟩`'s orbit (e.g. an X planted into a
/// circuit whose output is the uniform superposition) are invisible
/// here but caught by the exact oracle's column sweep.
///
/// Truncation honesty: each side may discard at most [`MPS_DISCARD_CAP`]
/// cumulative Schmidt weight (beyond that the run aborts with
/// `TruncationBudgetExceeded` and the ladder escalates). The accumulated
/// 2-norm truncation errors of both sides (`Σ √(2 ε_i)` per side, see
/// [`MpsState::truncation_norm_error`]) combine into a certified bound on
/// how far the measured overlap can sit from the exact one — the overlap
/// shifts by at most `δ = D_L + D_P`, and the squared overlap by at most
/// `2δ + δ²`. A correct transpilation therefore *always* measures
/// `F ≥ 1 − trunc_bound`, and the pass criterion charges the bound to
/// the tolerance: `1 − F ≤ mps_tol + trunc_bound`. When neither side
/// truncates (ε = 0 exactly) the bound is exactly 0 and the check is as
/// sharp as the dense oracles.
pub(crate) fn mps(
    original: &Circuit,
    prog: &CompactProgram,
    max_bond: usize,
    mps_tol: f64,
) -> Result<Verification, VerifyError> {
    let opts = MpsOptions {
        max_bond,
        trunc_tol: MPS_DISCARD_CAP,
    };
    // Logical side: the original circuit on wires 0..n_logical of a
    // support-width chain (gate by gate — the widths differ, so
    // apply_circuit's width check would reject the circuit itself).
    let mut logical = MpsState::zero(prog.width, opts);
    for op in original.ops() {
        match op {
            Op::OneQ { gate, q } => logical.apply_1q(&gate.unitary(), *q)?,
            Op::TwoQ { gate, a, b } => logical.apply_2q(&gate.unitary(), *a, *b)?,
        }
    }
    // Physical side: the compacted program, then the output permutation.
    let mut physical = MpsState::zero(prog.width, opts);
    prog.apply_to_mps(&mut physical)?;
    physical.permute(&prog.perm)?;

    let fidelity = logical.fidelity(&physical);
    let delta = logical.truncation_norm_error() + physical.truncation_norm_error();
    let trunc_bound = 2.0 * delta + delta * delta;
    Ok(Verification::Mps {
        fidelity,
        trunc_bound,
        max_bond_used: logical.max_bond_used().max(physical.max_bond_used()),
        width: prog.width,
        passed: 1.0 - fidelity <= mps_tol + trunc_bound,
    })
}

/// The seeded Monte-Carlo oracle: `samples` random product states through
/// both programs, compared under the output permutation with every
/// ancilla required back in `|0⟩`.
pub(crate) fn sampled(
    original: &Circuit,
    prog: &CompactProgram,
    samples: u32,
    seed: u64,
    max_infidelity: f64,
) -> Result<Verification, VerifyError> {
    let n_log = prog.n_logical;
    let anc_bits = prog.width - n_log;
    let samples = samples.max(1);
    let mut min_fidelity = f64::INFINITY;
    // Buffers reused across every sample: the per-qubit preparation
    // columns and the two registers. After the first sample's permute
    // warms the scratch buffer, the Monte-Carlo loop is allocation-free
    // up to the 2×2 `u3` gate construction.
    let e0 = [C64::ONE, C64::ZERO];
    let mut factors = vec![C64::ZERO; 2 * n_log];
    let mut orig = State::zero(n_log);
    let mut phys = State::zero(prog.width);
    for k in 0..samples {
        // One deterministic stream per (seed, sample); the golden-ratio
        // stride decorrelates neighbouring sample seeds.
        let mut rng = StdRng::seed_from_u64(
            seed.wrapping_add((k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        // Each qubit's prepared single-qubit vector is u3·|0⟩ — the
        // matrix's first column, extracted without a fresh allocation.
        for q in 0..n_log {
            let g = paulis::u3(
                rng.gen_range(0.0..PI),
                rng.gen_range(0.0..TAU),
                rng.gen_range(0.0..TAU),
            );
            g.mul_vec_into(&e0, &mut factors[2 * q..2 * q + 2]);
        }

        // The router's initial layout is trivial, so the same product
        // state enters on compact wires 0..n_log (ancillas stay |0⟩).
        orig.reset_product(&factors)?;
        phys.reset_embed(&orig)?;
        orig.apply_circuit(original)?;
        prog.apply_to(&mut phys)?;
        phys.permute(&prog.perm)?;

        // ⟨original ⊗ 0…0 | permuted physical⟩.
        let pa = phys.amplitudes();
        let mut ip = C64::ZERO;
        for (y, &w) in orig.amplitudes().iter().enumerate() {
            ip += w.conj() * pa[y << anc_bits];
        }
        min_fidelity = min_fidelity.min(ip.norm_sqr());
    }
    Ok(Verification::Sampled {
        min_fidelity,
        samples: samples as usize,
        width: prog.width,
        passed: 1.0 - min_fidelity <= max_infidelity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify, Physical, VerifyConfig, VerifyLevel};
    use paradrive_circuit::{benchmarks, OneQ, TwoQ};
    use paradrive_transpiler::consolidate::consolidate;
    use paradrive_transpiler::routing::route;
    use paradrive_transpiler::topology::CouplingMap;

    fn exact_cfg() -> VerifyConfig {
        VerifyConfig::default().level(VerifyLevel::Exact)
    }

    #[test]
    fn routed_ghz_verifies_exactly_on_small_ring() {
        let c = benchmarks::ghz(5);
        let map = CouplingMap::ring(6);
        let routed = route(&c, &map, 3).unwrap();
        let v = verify(
            &c,
            &Physical::Circuit(&routed.circuit),
            &routed.layout,
            &exact_cfg(),
        )
        .unwrap();
        assert!(!v.failed(), "{v}");
        assert_eq!(v.method(), "exact");
        assert!(v.fidelity().unwrap() > 1.0 - 1e-12);
    }

    #[test]
    fn small_circuit_on_wide_device_compacts_into_exact_range() {
        // ghz(4) on a 16-qubit grid: the device is far beyond the dense
        // 10-qubit limit, but the circuit's support is not.
        let c = benchmarks::ghz(4);
        let map = CouplingMap::grid(4, 4);
        let routed = route(&c, &map, 1).unwrap();
        let v = verify(
            &c,
            &Physical::Circuit(&routed.circuit),
            &routed.layout,
            &exact_cfg(),
        )
        .unwrap();
        assert_eq!(v.method(), "exact", "{v}");
        assert!(!v.failed(), "{v}");
        match v {
            Verification::Exact { width, .. } => assert!(width <= 10, "support {width}"),
            other => panic!("unexpected verdict {other:?}"),
        }
    }

    #[test]
    fn exact_level_escalates_to_mps_beyond_the_support_limit() {
        let c = benchmarks::qft(12);
        let map = CouplingMap::grid(4, 4);
        let routed = route(&c, &map, 0).unwrap();
        let v = verify(
            &c,
            &Physical::Circuit(&routed.circuit),
            &routed.layout,
            &exact_cfg(),
        )
        .unwrap();
        assert_eq!(v.method(), "mps", "{v}");
        assert!(!v.failed(), "{v}");
    }

    #[test]
    fn mps_level_verifies_routed_circuits_with_zero_truncation() {
        let c = benchmarks::qft(8);
        let map = CouplingMap::grid(3, 3);
        let routed = route(&c, &map, 1).unwrap();
        let items = consolidate(&routed.circuit).unwrap();
        for physical in [
            Physical::Circuit(&routed.circuit),
            Physical::Consolidated {
                items: &items,
                n_qubits: map.n_qubits(),
            },
        ] {
            let v = verify(
                &c,
                &physical,
                &routed.layout,
                &VerifyConfig::default().level(VerifyLevel::Mps),
            )
            .unwrap();
            assert_eq!(v.method(), "mps", "{v}");
            assert!(!v.failed(), "{v}");
            match v {
                Verification::Mps {
                    fidelity,
                    trunc_bound,
                    ..
                } => {
                    assert!(fidelity > 1.0 - 1e-9, "F = {fidelity}");
                    assert_eq!(trunc_bound, 0.0, "untruncated run must certify 0");
                }
                other => panic!("unexpected verdict {other:?}"),
            }
        }
    }

    #[test]
    fn mps_oracle_agrees_with_exact_on_every_small_route() {
        for (c, map) in [
            (benchmarks::ghz(5), CouplingMap::ring(6)),
            (benchmarks::qaoa(6, 2, 7), CouplingMap::grid(2, 4)),
            (benchmarks::vqe_linear(6, 1, 3), CouplingMap::line(6)),
        ] {
            let routed = route(&c, &map, 0).unwrap();
            let phys = Physical::Circuit(&routed.circuit);
            let e = verify(&c, &phys, &routed.layout, &exact_cfg()).unwrap();
            let m = verify(
                &c,
                &phys,
                &routed.layout,
                &VerifyConfig::default().level(VerifyLevel::Mps),
            )
            .unwrap();
            assert!(!e.failed() && !m.failed(), "{e} vs {m}");
            // Same equivalence, measured two ways: both fidelities ≈ 1.
            assert!((e.fidelity().unwrap() - m.fidelity().unwrap()).abs() < 1e-8);
        }
    }

    #[test]
    fn mps_oracle_catches_corruption_and_wrong_layouts() {
        // A QAOA state has generic amplitudes, so both a planted X and a
        // wrong output permutation visibly move it. (QFT would be a bad
        // choice here: QFT|0…0⟩ is the uniform product state, invariant
        // under X and wire swaps — invisible to any |0⟩-input oracle.)
        let c = benchmarks::qaoa(6, 2, 7);
        let map = CouplingMap::grid(2, 3);
        let routed = route(&c, &map, 0).unwrap();
        let cfg = VerifyConfig::default().level(VerifyLevel::Mps);
        let mut bad = routed.circuit.clone();
        bad.push_1q(OneQ::X, 2);
        let v = verify(&c, &Physical::Circuit(&bad), &routed.layout, &cfg).unwrap();
        assert_eq!(v.method(), "mps");
        assert!(v.failed(), "planted bug not caught ({v})");
        let mut wrong = routed.layout.clone();
        wrong.swap(0, 5);
        let v = verify(&c, &Physical::Circuit(&routed.circuit), &wrong, &cfg).unwrap();
        assert!(v.failed(), "wrong layout not caught ({v})");
    }

    #[test]
    fn mps_level_escalates_to_sampling_when_the_bond_cap_is_too_tight() {
        // A volume-law circuit at bond 2 blows the discard cap; the
        // ladder must land on the Monte-Carlo oracle, which still passes.
        let c = benchmarks::quantum_volume(10, 10, 5);
        let map = CouplingMap::grid(4, 3);
        let routed = route(&c, &map, 0).unwrap();
        let v = verify(
            &c,
            &Physical::Circuit(&routed.circuit),
            &routed.layout,
            &VerifyConfig::default().level(VerifyLevel::Mps).max_bond(2),
        )
        .unwrap();
        assert_eq!(v.method(), "sampled", "{v}");
        assert!(!v.failed(), "{v}");
    }

    #[test]
    fn consolidated_items_verify_like_the_raw_circuit() {
        let c = benchmarks::qft(5);
        let map = CouplingMap::grid(2, 3);
        let routed = route(&c, &map, 2).unwrap();
        let items = consolidate(&routed.circuit).unwrap();
        for physical in [
            Physical::Circuit(&routed.circuit),
            Physical::Consolidated {
                items: &items,
                n_qubits: map.n_qubits(),
            },
        ] {
            let v = verify(&c, &physical, &routed.layout, &exact_cfg()).unwrap();
            assert_eq!(v.method(), "exact");
            assert!(!v.failed(), "{v}");
        }
    }

    #[test]
    fn corrupted_transpilation_is_caught_by_both_oracles() {
        let c = benchmarks::ghz(5);
        let map = CouplingMap::line(5);
        let routed = route(&c, &map, 0).unwrap();
        // Plant a bug: an extra X deep in the "transpiled" output.
        let mut bad = routed.circuit.clone();
        bad.push_1q(OneQ::X, 2);
        for level in [VerifyLevel::Exact, VerifyLevel::Mps, VerifyLevel::Sampled] {
            let v = verify(
                &c,
                &Physical::Circuit(&bad),
                &routed.layout,
                &VerifyConfig::default().level(level),
            )
            .unwrap();
            assert!(v.failed(), "{level}: planted bug not caught ({v})");
        }
        // A *wrong permutation* is caught too.
        let mut wrong = routed.layout.clone();
        wrong.swap(0, 4);
        let v = verify(
            &c,
            &Physical::Circuit(&routed.circuit),
            &wrong,
            &exact_cfg(),
        )
        .unwrap();
        assert!(v.failed(), "wrong layout not caught ({v})");
    }

    #[test]
    fn global_phase_differences_still_verify() {
        // Rz ≅ a phase on |1⟩: original uses Rz(θ), physical realizes it
        // with an extra global phase via U3-style composition. Here we
        // emulate a global-phase slip by conjugating with Z·X pairs whose
        // product is -iY ... simplest: compare RZZ against CPhase-based
        // identity with differing global phase conventions.
        let mut original = Circuit::new(2);
        original.push_2q(TwoQ::Rzz(1.3), 0, 1);
        // RZZ(θ) = e^{-iθ/2} · diag(1, e^{iθ}, e^{iθ}, 1) — realize the
        // diagonal with CPhase and Rz, leaving a pure global phase off.
        let mut physical = Circuit::new(2);
        physical.push_2q(TwoQ::CPhase(-1.3 * 2.0), 0, 1);
        physical.push_1q(OneQ::Rz(1.3), 0);
        physical.push_1q(OneQ::Rz(1.3), 1);
        // Sanity: the two differ by a global phase only.
        let v = verify(
            &original,
            &Physical::Circuit(&physical),
            &[0, 1],
            &exact_cfg(),
        )
        .unwrap();
        assert!(!v.failed(), "global phase should be ignored: {v}");
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        let c = benchmarks::ghz(4);
        let phys = Circuit::new(3);
        assert_eq!(
            verify(&c, &Physical::Circuit(&phys), &[0, 1, 2], &exact_cfg()).unwrap_err(),
            VerifyError::WidthMismatch {
                logical: 4,
                physical: 3
            }
        );
        let phys = Circuit::new(4);
        for bad in [vec![0usize, 1, 2], vec![0, 0, 1, 2], vec![0, 1, 2, 9]] {
            assert_eq!(
                verify(&c, &Physical::Circuit(&phys), &bad, &exact_cfg()).unwrap_err(),
                VerifyError::BadLayout
            );
        }
    }

    #[test]
    fn off_level_skips() {
        let c = benchmarks::ghz(3);
        let v = verify(
            &c,
            &Physical::Circuit(&c),
            &[0, 1, 2],
            &VerifyConfig::default().level(VerifyLevel::Off),
        )
        .unwrap();
        assert_eq!(v.method(), "skip");
        assert!(!v.failed());
    }

    #[test]
    fn sampled_oracle_is_deterministic_in_the_seed() {
        let c = benchmarks::qaoa(8, 2, 5);
        let map = CouplingMap::grid(4, 4);
        let routed = route(&c, &map, 1).unwrap();
        let cfg = VerifyConfig::default().samples(4).seed(99);
        let a = verify(
            &c,
            &Physical::Circuit(&routed.circuit),
            &routed.layout,
            &cfg,
        )
        .unwrap();
        let b = verify(
            &c,
            &Physical::Circuit(&routed.circuit),
            &routed.layout,
            &cfg,
        )
        .unwrap();
        assert_eq!(a, b);
        match (
            a,
            verify(
                &c,
                &Physical::Circuit(&routed.circuit),
                &routed.layout,
                &cfg.seed(7),
            )
            .unwrap(),
        ) {
            (
                Verification::Sampled {
                    min_fidelity: x, ..
                },
                Verification::Sampled {
                    min_fidelity: y, ..
                },
            ) => {
                // Different seeds draw different inputs; both must pass.
                assert!(1.0 - x <= 1e-7 && 1.0 - y <= 1e-7);
            }
            other => panic!("unexpected verdicts {other:?}"),
        }
    }
}
